"""Case study: location-privacy attacks on a giant-panda IoT sensor network.

Reproduces the Section X.A analysis of the paper (Figures 4, 6a and 6b):

1. load the 22-BAS treelike attack tree of the wildlife-monitoring network;
2. compute the deterministic cost-damage Pareto front bottom-up (Theorem 4)
   and compare it against the published Fig. 6a points;
3. compute the cost-expected-damage front (Theorem 9) and compare its prefix
   against Fig. 6b;
4. derive the defence priorities the paper draws from the fronts: internal
   information leakage (b18) and base-station compromise (b19/b20, b21/b22)
   are the attacks to defend against first.

Run it with::

    python examples/panda_iot.py
"""

from repro import CostDamageAnalyzer, catalog
from repro.experiments.casestudies import (
    PAPER_FIG6A_FRONT,
    PAPER_FIG6B_PREFIX,
)


def main() -> None:
    model = catalog.panda_iot()
    analyzer = CostDamageAnalyzer(model)

    print("=" * 72)
    print("Giant-panda IoT sensor network (Fig. 4 of the paper)")
    print("=" * 72)
    print(analyzer.describe())
    print()
    print(model.tree.pretty())
    print()

    # ------------------------------------------------------------------ #
    # Fig. 6a — deterministic front
    # ------------------------------------------------------------------ #
    deterministic_front = analyzer.pareto_front()
    print("Deterministic cost-damage Pareto front (Fig. 6a):")
    print(deterministic_front.table())
    print()
    print(f"published points: {PAPER_FIG6A_FRONT}")
    reproduced = deterministic_front.values() == [
        (float(c), float(d)) for c, d in PAPER_FIG6A_FRONT
    ]
    print(f"reproduces the published front exactly: {reproduced}")
    print()

    # ------------------------------------------------------------------ #
    # Fig. 6b — probabilistic front
    # ------------------------------------------------------------------ #
    probabilistic_front = analyzer.expected_pareto_front()
    print(f"Cost-expected-damage Pareto front has {len(probabilistic_front)} points "
          f"(the paper reports 31); first five published points: {PAPER_FIG6B_PREFIX}")
    for cost, damage in probabilistic_front.values()[:8]:
        print(f"  cost {cost:5.1f}  expected damage {damage:6.2f}")
    print()

    # ------------------------------------------------------------------ #
    # Defence priorities (the paper's reading of the fronts)
    # ------------------------------------------------------------------ #
    deterministic_report = analyzer.critical_basic_attack_steps()
    probabilistic_report = analyzer.critical_basic_attack_steps(probabilistic=True)

    def describe(bas_names):
        return ", ".join(
            f"{name} ({model.tree.node(name).label})" for name in sorted(bas_names)
        ) or "(none)"

    print("BASs appearing in some deterministic Pareto-optimal attack:")
    print("  " + describe(deterministic_report.in_some_optimal_attack))
    print("BASs appearing in every probabilistic Pareto-optimal attack:")
    print("  " + describe(probabilistic_report.in_every_optimal_attack))
    print()
    print("Reading (Section X.A of the paper): security improvements should")
    print("focus on internal information leakage (b18) and base-station")
    print("compromise by physical theft (b19, b20) or code theft (b21, b22);")
    print("in the probabilistic setting internal leakage is part of *every*")
    print("optimal attack and is therefore the single most important defence.")

    # ------------------------------------------------------------------ #
    # What-if: damage achievable per budget
    # ------------------------------------------------------------------ #
    print()
    print("Worst-case damage per attacker budget (Equation (1)):")
    for point in analyzer.damage_budget_curve([0, 3, 5, 10, 20, 30, 60]):
        if not point.reachable:
            print(f"  budget {point.budget:5.0f}  ->  no attack affordable")
            continue
        print(f"  budget {point.budget:5.0f}  ->  damage {point.damage:6.1f} million USD")


if __name__ == "__main__":
    main()
