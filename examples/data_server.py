"""Case study: attacks on a data server behind a firewall (DAG-like AT).

Reproduces the Section X.B analysis of the paper (Figures 5 and 6c).  The
attack tree is DAG-like — the "internet connection to the FTP server" step
is shared by three different exploits — so the bottom-up method does not
apply and the analysis uses the bi-objective integer linear programming
translation of Theorem 6.

The example also demonstrates solver choice: the same Pareto front is
computed with the HiGHS backend and with the library's pure-Python
branch-and-bound solver.

Run it with::

    python examples/data_server.py
"""

from repro import CostDamageAnalyzer, catalog
from repro.core.bilp import pareto_front_bilp
from repro.experiments.casestudies import PAPER_FIG6C_FRONT
from repro.milp.branch_bound import BranchAndBoundSolver


def main() -> None:
    model = catalog.data_server()
    analyzer = CostDamageAnalyzer(model)

    print("=" * 72)
    print("Data server on a network behind a firewall (Fig. 5 of the paper)")
    print("=" * 72)
    print(analyzer.describe())
    shared = ", ".join(sorted(model.tree.shared_nodes()))
    print(f"shared nodes (what makes this a DAG): {shared}")
    print()

    # ------------------------------------------------------------------ #
    # Fig. 6c — Pareto front via BILP (Theorem 6)
    # ------------------------------------------------------------------ #
    front = analyzer.pareto_front()
    print("Cost-damage Pareto front (Fig. 6c), cost in seconds of attacker time:")
    print(front.table())
    print()
    print(f"published points: {PAPER_FIG6C_FRONT}")
    print()

    # The paper's observation: every Pareto-optimal attack contains the
    # previous one, so defences can be prioritised along a single chain.
    nonzero = [p for p in front if p.cost > 0]
    nested = all(a.attack <= b.attack for a, b in zip(nonzero, nonzero[1:]))
    print(f"every optimal attack contains the previous one: {nested}")
    report = analyzer.critical_basic_attack_steps()
    critical = ", ".join(
        f"{name} ({model.tree.node(name).label})"
        for name in sorted(report.in_every_optimal_attack)
    )
    print(f"BASs in every optimal attack (defend these first): {critical}")
    print()

    # Only the cheapest optimal attack fails to reach the top node — but it
    # still causes damage 24 on the FTP server, which a minimal-attack
    # analysis (successful attacks only) would have missed entirely.
    cheapest = nonzero[0]
    print(f"cheapest optimal attack {sorted(cheapest.attack)}: damage "
          f"{cheapest.damage:g} without reaching the data server "
          f"(reaches top: {cheapest.reaches_root})")
    print()

    # ------------------------------------------------------------------ #
    # Budget / threshold queries via the single-objective ILPs (Theorem 7)
    # ------------------------------------------------------------------ #
    for budget in [250, 600, 1000, 1300]:
        result = analyzer.max_damage(budget)
        print(f"DgC: within {budget:>5} s the attacker can do damage {result.value:g}")
    threshold = 60
    result = analyzer.min_cost(threshold)
    print(f"CgD: damage ≥ {threshold} requires at least {result.value:g} s "
          f"(attack {sorted(result.witness)})")
    print()

    # ------------------------------------------------------------------ #
    # Same front with the pure-Python branch-and-bound backend
    # ------------------------------------------------------------------ #
    pure_front = pareto_front_bilp(model, solver=BranchAndBoundSolver())
    print("Pure-Python branch-and-bound backend reproduces the same front: "
          f"{pure_front.values() == front.values()}")


if __name__ == "__main__":
    main()
