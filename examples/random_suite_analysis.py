"""Scaling study on randomly generated attack trees (Fig. 7, scaled down).

This example regenerates a miniature version of the paper's Fig. 7
evaluation: it generates random treelike and DAG-like attack trees with the
Section X.D combination procedure, times the bottom-up, BILP and enumerative
methods on them, and prints the mean-time-per-size-group series plus the
overall statistics table (Fig. 7d).

The defaults finish in well under a minute; raise ``MAX_TARGET_SIZE`` and
``TREES_PER_SIZE`` towards 100 / 5 to reproduce the paper's full 500-AT
suites (expect hours for the enumerative baseline, exactly as the paper
reports).

Run it with::

    python examples/random_suite_analysis.py
"""

from repro.attacktree.random_gen import RandomSuiteSpec
from repro.experiments.random_suite import (
    render_fig7_series,
    render_fig7d_statistics,
    run_suite_timings,
    summarize,
)

MAX_TARGET_SIZE = 35
TREES_PER_SIZE = 1
ENUMERATIVE_BAS_LIMIT = 10


def main() -> None:
    tree_spec = RandomSuiteSpec(
        max_target_size=MAX_TARGET_SIZE, trees_per_size=TREES_PER_SIZE,
        treelike=True, seed=2023,
    )
    dag_spec = RandomSuiteSpec(
        max_target_size=MAX_TARGET_SIZE, trees_per_size=TREES_PER_SIZE,
        treelike=False, seed=2024,
    )

    print("generating and timing the treelike suite (deterministic)...")
    tree_det = run_suite_timings(
        tree_spec, probabilistic=False, enumerative_bas_limit=ENUMERATIVE_BAS_LIMIT
    )
    print("generating and timing the treelike suite (probabilistic)...")
    tree_prob = run_suite_timings(
        tree_spec, probabilistic=True, enumerative_bas_limit=ENUMERATIVE_BAS_LIMIT
    )
    print("generating and timing the DAG suite (deterministic)...")
    dag_det = run_suite_timings(
        dag_spec, probabilistic=False, enumerative_bas_limit=ENUMERATIVE_BAS_LIMIT
    )
    print()

    print(render_fig7_series(tree_det, "Fig. 7a (scaled down) — T_tree, deterministic"))
    print()
    print(render_fig7_series(tree_prob, "Fig. 7b (scaled down) — T_tree, probabilistic"))
    print()
    print(render_fig7_series(dag_det, "Fig. 7c (scaled down) — T_DAG, deterministic"))
    print()
    print(render_fig7d_statistics(
        summarize(tree_det + tree_prob + dag_det),
        "Fig. 7d (scaled down) — overall statistics",
    ))
    print()

    summaries = {s.method: s for s in summarize(tree_det)}
    if {"bottom-up", "bilp"} <= set(summaries):
        speedup = summaries["bilp"].mean / summaries["bottom-up"].mean
        print(f"On treelike ATs the bottom-up method is ~{speedup:.0f}x faster than "
              "BILP on average — the paper's Fig. 7a/Table III observation.")
    enumerative = {s.method: s for s in summarize(tree_det + dag_det)}.get("enumerative")
    if enumerative is not None:
        print("The enumerative baseline is orders of magnitude slower even on the "
              f"small ATs it was allowed to run on (mean {enumerative.mean:.3f}s vs "
              f"{summaries['bottom-up'].mean:.4f}s for bottom-up).")


if __name__ == "__main__":
    main()
