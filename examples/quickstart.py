"""Quickstart: model an attack tree and run every cost-damage analysis.

This example rebuilds the paper's running example (Fig. 1) — a factory whose
production can be shut down by a cyberattack or by physically destroying the
production robot — and walks through the library's main entry points:

* building a decorated attack tree with :class:`AttackTreeBuilder`;
* computing the cost-damage Pareto front (problem CDPF);
* answering budget questions (DgC) and damage-threshold questions (CgD);
* extending the model with success probabilities and repeating the analysis
  with expected damage (CEDPF / EDgC).

Run it with::

    python examples/quickstart.py
"""

from repro import AttackTreeBuilder, CostDamageAnalyzer


def build_factory_model():
    """The cd-AT of Fig. 1: damages in 1000 USD, costs unitless."""
    builder = AttackTreeBuilder()
    builder.bas("ca", cost=1, label="cyberattack")
    builder.bas("pb", cost=3, label="place bomb")
    builder.bas("fd", cost=2, damage=10, label="force door")
    builder.and_gate("dr", ["pb", "fd"], damage=100, label="destroy robot")
    builder.or_gate("ps", ["ca", "dr"], damage=200, label="production shutdown")
    return builder.build_cd(root="ps")


def deterministic_analysis():
    model = build_factory_model()
    analyzer = CostDamageAnalyzer(model)

    print("=" * 72)
    print("Deterministic analysis (cd-AT)")
    print("=" * 72)
    print(analyzer.describe())
    print()

    front = analyzer.pareto_front()
    print("Cost-damage Pareto front (Fig. 3 of the paper):")
    print(front.table())
    print()

    budget = 2
    result = analyzer.max_damage(budget)
    print(f"DgC: with a budget of {budget} the worst-case damage is "
          f"{result.value:g} (attack {sorted(result.witness)})")

    threshold = 300
    result = analyzer.min_cost(threshold)
    print(f"CgD: doing at least {threshold} damage costs the attacker "
          f"{result.value:g} (attack {sorted(result.witness)})")
    print()


def probabilistic_analysis():
    model = build_factory_model().with_probabilities(
        {"ca": 0.2, "pb": 0.4, "fd": 0.9}
    )
    analyzer = CostDamageAnalyzer(model)

    print("=" * 72)
    print("Probabilistic analysis (cdp-AT, Example 8 of the paper)")
    print("=" * 72)
    front = analyzer.expected_pareto_front()
    print("Cost-expected-damage Pareto front:")
    print(front.table())
    print()

    budget = 5
    result = analyzer.max_expected_damage(budget)
    print(f"EDgC: with a budget of {budget} the expected damage is "
          f"{result.value:g} (attack {sorted(result.witness)})")
    print()
    print("Note how the probabilistic front differs from the deterministic")
    print("one: attempts that would be redundant when every step surely")
    print("succeeds become worthwhile when they merely raise the probability")
    print("of reaching a damaging node (Example 10 of the paper).")


if __name__ == "__main__":
    deterministic_analysis()
    probabilistic_analysis()
