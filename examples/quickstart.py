"""Quickstart: model an attack tree and query it through the analysis engine.

This example rebuilds the paper's running example (Fig. 1) — a factory whose
production can be shut down by a cyberattack or by physically destroying the
production robot — and walks through the library's main entry points:

* building a decorated attack tree with :class:`AttackTreeBuilder`;
* opening an :class:`AnalysisSession` and running typed
  :class:`AnalysisRequest` objects against it — the engine's registry picks
  the right algorithm per Table I of the paper, results carry the resolved
  backend, wall time and cache status;
* executing a *batch* of requests in one call;
* round-tripping requests and results through JSON (the service wire
  format);
* the probabilistic setting (expected damage) and an extension backend
  (``monte-carlo``) requested by name;
* the backwards-compatible ``solve()`` / ``CostDamageAnalyzer`` entry
  points that older code keeps using.

Run it with::

    python examples/quickstart.py

To *benchmark* workloads instead of analyzing one model, see
``atcd bench run --profile smoke`` and ``benchmarks/DESIGN.md`` — the
declarative workload generator (:mod:`repro.workloads`) and the harness
(:mod:`repro.bench`) time whole scenario families through the same engine
used here.
"""

from repro import (
    AnalysisRequest,
    AnalysisResult,
    AnalysisSession,
    AttackTreeBuilder,
    CostDamageAnalyzer,
    Problem,
    solve,
)


def build_factory_model():
    """The cd-AT of Fig. 1: damages in 1000 USD, costs unitless."""
    builder = AttackTreeBuilder()
    builder.bas("ca", cost=1, label="cyberattack")
    builder.bas("pb", cost=3, label="place bomb")
    builder.bas("fd", cost=2, damage=10, label="force door")
    builder.and_gate("dr", ["pb", "fd"], damage=100, label="destroy robot")
    builder.or_gate("ps", ["ca", "dr"], damage=200, label="production shutdown")
    return builder.build_cd(root="ps")


def engine_analysis():
    model = build_factory_model()
    session = AnalysisSession(model)

    print("=" * 72)
    print("Engine analysis (cd-AT through AnalysisSession)")
    print("=" * 72)

    # One request: the engine resolves the backend (bottom-up, Table I).
    result = session.run(AnalysisRequest(Problem.CDPF))
    print("Cost-damage Pareto front (Fig. 3 of the paper):")
    print(result.front.table())
    print(f"-> {result.summary()}")
    print()

    # Re-running an identical request is served from the session cache.
    again = session.run(AnalysisRequest(Problem.CDPF))
    print(f"repeat request cached: {again.cache_hit}")
    print()

    # A batch of single-objective questions in one call; pass
    # parallel=True to fan a large batch out over a thread pool.
    batch = session.run_batch(
        [
            AnalysisRequest(Problem.DGC, budget=2),
            AnalysisRequest(Problem.CGD, threshold=300),
            AnalysisRequest(Problem.CDPF, backend="enumerative"),
        ]
    )
    dgc, cgd, check = batch
    print(f"DgC: with a budget of 2 the worst-case damage is {dgc.value:g} "
          f"(attack {sorted(dgc.witness)})")
    print(f"CgD: doing at least 300 damage costs the attacker {cgd.value:g} "
          f"(attack {sorted(cgd.witness)})")
    print(f"cross-check via {check.backend}: fronts agree = "
          f"{check.front.values() == result.front.values()}")
    print()

    # Requests and results round-trip through JSON — the wire format for
    # service-style deployments (see also: atcd batch).
    wire = AnalysisRequest(Problem.DGC, budget=2).to_json()
    print(f"request on the wire:  {wire}")
    reply = session.run(AnalysisRequest.from_json(wire))
    restored = AnalysisResult.from_json(reply.to_json())
    print(f"result off the wire:  value={restored.value:g}, "
          f"backend={restored.backend}, cached={restored.cache_hit}")
    print()


def probabilistic_analysis():
    model = build_factory_model().with_probabilities(
        {"ca": 0.2, "pb": 0.4, "fd": 0.9}
    )
    session = AnalysisSession(model)

    print("=" * 72)
    print("Probabilistic analysis (cdp-AT, Example 8 of the paper)")
    print("=" * 72)
    front = session.run(AnalysisRequest(Problem.CEDPF)).front
    print("Cost-expected-damage Pareto front:")
    print(front.table())
    print()

    result = session.run(AnalysisRequest(Problem.EDGC, budget=5))
    print(f"EDgC: with a budget of 5 the expected damage is "
          f"{result.value:g} (attack {sorted(result.witness)})")
    print()

    # Extension backends are registered alongside the exact ones and are
    # selected by name — here the Monte-Carlo estimator with its options.
    sampled = session.run(
        AnalysisRequest(
            Problem.CEDPF,
            backend="monte-carlo",
            options={"samples_per_attack": 4000, "seed": 7},
        )
    )
    worst = max(
        (e["standard_error"] for e in sampled.extras["standard_errors"]),
        default=0.0,
    )
    print(f"Monte-Carlo cross-check: {len(sampled.front)} points, "
          f"max standard error {worst:.2f}")
    print()
    print("Note how the probabilistic front differs from the deterministic")
    print("one: attempts that would be redundant when every step surely")
    print("succeeds become worthwhile when they merely raise the probability")
    print("of reaching a damaging node (Example 10 of the paper).")
    print()


def legacy_entry_points():
    """The pre-engine API keeps working; it forwards to the same registry.

    One deliberate exception: ``damage_budget_curve`` now returns
    ``BudgetDamagePoint(budget, damage, reachable)`` triples instead of
    bare pairs, so unreachable budgets are no longer reported as damage 0.
    """
    model = build_factory_model()

    print("=" * 72)
    print("Backwards-compatible entry points")
    print("=" * 72)
    result = solve(model, Problem.DGC, budget=2)
    print(f"solve(..., DGC, budget=2) -> {result.value:g} via {result.method.value}")

    analyzer = CostDamageAnalyzer(model)
    print(f"CostDamageAnalyzer.min_cost(300) -> {analyzer.min_cost(300).value:g}")
    curve = analyzer.damage_budget_curve([0, 2, 5])
    print("damage/budget curve:", [(p.budget, p.damage) for p in curve])


if __name__ == "__main__":
    engine_analysis()
    probabilistic_analysis()
    legacy_entry_points()
