"""Probabilistic cost-damage analysis: expected damage, Monte-Carlo checks,
and the open DAG problem.

This example goes deeper into the probabilistic side of the paper
(Sections VIII and IX):

1. it contrasts the deterministic and probabilistic Pareto fronts of a small
   model (Example 10 of the paper) to show why redundant attack steps become
   worthwhile when success is uncertain;
2. it validates the exact expected-damage semantics against a Monte-Carlo
   estimator on the panda case study;
3. it demonstrates the extension for the paper's open problem — probabilistic
   analysis of DAG-like ATs — on a scaled-down version of the data-server
   model, using exact enumeration and Monte-Carlo estimation.

Run it with::

    python examples/probabilistic_analysis.py
"""

from repro import AttackTreeBuilder, catalog
from repro.core.bottom_up import pareto_front_treelike
from repro.core.bottom_up_prob import pareto_front_treelike_probabilistic
from repro.extensions.prob_dag import (
    pareto_front_probabilistic_exact,
    pareto_front_probabilistic_montecarlo,
)
from repro.probability.actualization import expected_damage
from repro.probability.montecarlo import estimate_expected_damage


def redundancy_pays_off() -> None:
    print("=" * 72)
    print("1. Redundant attempts pay off under uncertainty (Example 10)")
    print("=" * 72)
    model = catalog.example10_or_pair()
    deterministic = pareto_front_treelike(model.deterministic())
    probabilistic = pareto_front_treelike_probabilistic(model)
    print("deterministic front:", deterministic.values())
    print("probabilistic front:", probabilistic.values())
    print("Attempting BOTH children of the OR gate is never optimal")
    print("deterministically, but probabilistically it raises the chance of")
    print("reaching the damaging node from 0.5 to 0.75 for one extra unit of cost.")
    print()


def monte_carlo_validation() -> None:
    print("=" * 72)
    print("2. Monte-Carlo validation of the exact expected damage (panda AT)")
    print("=" * 72)
    model = catalog.panda_iot()
    attacks = [
        frozenset({"b18"}),
        frozenset({"b18", "b19", "b20"}),
        frozenset({"b18", "b19", "b20", "b21", "b22"}),
        frozenset({"b7", "b8", "b9", "b18"}),
    ]
    for attack in attacks:
        exact = expected_damage(model, attack)
        estimate = estimate_expected_damage(model, attack, samples=20_000)
        low, high = estimate.confidence_interval()
        agrees = low - 0.5 <= exact <= high + 0.5
        print(f"  attack {sorted(attack)}")
        print(f"    exact E[damage] = {exact:7.3f}   "
              f"Monte-Carlo = {estimate.mean:7.3f} ± {estimate.standard_error:.3f}"
              f"   consistent: {agrees}")
    print()


def probabilistic_dag_extension() -> None:
    print("=" * 72)
    print("3. Probabilistic DAG analysis (the paper's open problem, extension)")
    print("=" * 72)
    # A scaled-down probabilistic data-server model: the shared FTP-connection
    # BAS correlates the SSH and FTP exploits, so the treelike recursion of
    # Theorem 9 does not apply.
    builder = AttackTreeBuilder()
    builder.bas("connect_ftp", cost=100, probability=0.9,
                label="internet connection to FTP server")
    builder.bas("ssh_exploit", cost=155, probability=0.5, label="attack via SSH")
    builder.bas("ftp_exploit", cost=150, probability=0.6, label="attack via FTP")
    builder.bas("licq", cost=155, probability=0.7, label="LICQ remote-to-user attack")
    builder.and_gate("ssh_overflow", ["connect_ftp", "ssh_exploit"])
    builder.and_gate("ftp_overflow", ["connect_ftp", "ftp_exploit"])
    builder.or_gate("root_ftp", ["ssh_overflow", "ftp_overflow"], damage=10.5,
                    label="root access to FTP server")
    builder.and_gate("user_data_server", ["root_ftp", "licq"], damage=13.5,
                     label="user access to data server")
    model = builder.build_cdp(root="user_data_server")
    print(f"model is treelike: {model.tree.is_treelike} "
          f"(shared: {sorted(model.tree.shared_nodes())})")

    exact_front = pareto_front_probabilistic_exact(model)
    print("exact cost-expected-damage front (enumerative):")
    print(exact_front.table())

    approximate = pareto_front_probabilistic_montecarlo(model, samples_per_attack=3000)
    print("Monte-Carlo approximation of the same front:")
    for point in approximate:
        print(f"  cost {point.cost:6.1f}  E[damage] ≈ {point.expected_damage:6.2f} "
              f"(± {point.estimate.standard_error:.2f})  attack {sorted(point.attack)}")
    print()
    print("Both agree that attempting BOTH exploits on top of the shared")
    print("connection is Pareto-optimal — the probabilistic analogue of the")
    print("redundancy effect, now on a DAG, which the paper leaves open.")


if __name__ == "__main__":
    redundancy_pays_off()
    monte_carlo_validation()
    probabilistic_dag_extension()
