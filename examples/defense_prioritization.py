"""Defence prioritisation workflow with uncertainty (robust extension).

A security team rarely knows exact costs and damages.  This example shows a
complete defender workflow on top of the library:

1. model a corporate-network attack tree with *interval-valued* costs and
   damages (the robust extension of the paper's future-work section);
2. compute the pessimistic and optimistic Pareto fronts and the band of
   worst-case damage per budget;
3. identify the attacks that are Pareto-optimal in every scenario
   ("robustly optimal") — these are the defences to fund first;
4. simulate a defence (hardening one BAS raises its cost) and re-run the
   analysis to check whether the risk actually dropped — the iterative loop
   the paper recommends at the end of Section X.A.

Run it with::

    python examples/defense_prioritization.py
"""

from repro import AttackTreeBuilder, CostDamageAnalyzer
from repro.attacktree.attributes import CostDamageAT
from repro.extensions.robust import IntervalCostDamageAT, robust_pareto_front


def build_corporate_tree():
    """A small corporate-exfiltration AT (inspired by the paper's case studies)."""
    builder = AttackTreeBuilder()
    builder.bas("phish", cost=2, label="spear-phishing an employee")
    builder.bas("exploit_vpn", cost=6, label="exploit VPN appliance")
    builder.bas("bribe", cost=8, label="bribe an insider")
    builder.bas("crack_db", cost=4, label="crack database credentials")
    builder.bas("exfil", cost=1, label="exfiltrate data")
    builder.bas("wipe_logs", cost=3, label="wipe audit logs")
    builder.or_gate("foothold", ["phish", "exploit_vpn", "bribe"], damage=5,
                    label="network foothold")
    builder.and_gate("db_access", ["foothold", "crack_db"], damage=20,
                     label="database access")
    builder.and_gate("data_theft", ["db_access", "exfil"], damage=60,
                     label="customer data stolen")
    builder.and_gate("covered_tracks", ["data_theft", "wipe_logs"], damage=15,
                     label="breach undetected")
    return builder.build_tree(root="covered_tracks")


def main() -> None:
    tree = build_corporate_tree()

    # Interval decorations: costs known to within a factor, damages estimated
    # as ranges by the risk team (in 10k EUR).
    interval_model = IntervalCostDamageAT(
        tree,
        cost={
            "phish": (1, 3), "exploit_vpn": (5, 8), "bribe": (6, 12),
            "crack_db": (3, 5), "exfil": (1, 1), "wipe_logs": (2, 4),
        },
        damage={
            "foothold": (3, 8), "db_access": (15, 25),
            "data_theft": (45, 80), "covered_tracks": (10, 20),
        },
    )

    print("=" * 72)
    print("Robust cost-damage analysis of the corporate-exfiltration AT")
    print("=" * 72)
    robust = robust_pareto_front(interval_model)
    print("Pessimistic front (attacker-favourable costs/damages):")
    print(robust.pessimistic.table())
    print()
    print("Optimistic front (defender-favourable costs/damages):")
    print(robust.optimistic.table())
    print()
    for budget in [5, 10, 15, 20]:
        low, high = robust.damage_band(budget)
        print(f"budget {budget:>3}: worst-case damage lies in [{low:5.1f}, {high:5.1f}]")
    print()
    robust_attacks = sorted(sorted(attack) for attack in robust.robust_attacks if attack)
    print(f"robustly Pareto-optimal attacks (optimal in every scenario): {robust_attacks}")
    print()

    # ------------------------------------------------------------------ #
    # Evaluate one defence: phishing training doubles the phishing cost.
    # ------------------------------------------------------------------ #
    nominal = interval_model.scenario(attacker_favourable=True)
    analyzer_before = CostDamageAnalyzer(nominal)
    hardened = CostDamageAT(
        tree,
        cost={**dict(nominal.cost), "phish": nominal.cost["phish"] * 4},
        damage=dict(nominal.damage),
    )
    analyzer_after = CostDamageAnalyzer(hardened)

    print("Effect of phishing training (phish cost ×4), attacker-favourable view:")
    for budget in [5, 10, 15]:
        before = analyzer_before.max_damage(budget).value
        after = analyzer_after.max_damage(budget).value
        print(f"  budget {budget:>3}: worst-case damage {before:5.1f} -> {after:5.1f}")
    print()
    print("The defence only helps for small attacker budgets — beyond the cost")
    print("of the VPN exploit the attacker simply switches entry vector, which")
    print("is exactly the kind of insight the cost-damage Pareto front is for.")


if __name__ == "__main__":
    main()
