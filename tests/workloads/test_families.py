"""Tests for the workload family registry and the built-in families."""

import pytest

from repro.attacktree import serialization
from repro.attacktree.attributes import CostDamageAT, CostDamageProbAT
from repro.workloads import (
    ScenarioSpec,
    WorkloadFamily,
    expand,
    family,
    family_names,
    register_family,
)

ALL_FAMILIES = ("catalog", "random", "deep-chain", "wide-fan", "shared-bas")


class TestRegistry:
    def test_builtins_registered(self):
        assert set(ALL_FAMILIES) <= set(family_names())

    def test_unknown_family_lists_known(self):
        with pytest.raises(ValueError, match="registered families"):
            family("nope")

    def test_duplicate_registration_rejected(self):
        with pytest.raises(ValueError, match="already registered"):
            register_family(family("random"))

    def test_replace_allows_reregistration(self):
        existing = family("random")
        assert register_family(existing, replace=True) is existing

    def test_nameless_family_rejected(self):
        with pytest.raises(ValueError, match="non-empty name"):
            register_family(WorkloadFamily())


class TestExpansion:
    @pytest.mark.parametrize("name", ALL_FAMILIES)
    def test_expansion_is_deterministic(self, name):
        shape = "dag" if name == "shared-bas" else "treelike"
        spec = ScenarioSpec(family=name, shape=shape, sizes=(6,), cases_per_size=2)
        first = expand(spec)
        second = expand(spec)
        assert [c.case_id for c in first] == [c.case_id for c in second]
        assert [serialization.to_json(c.model) for c in first] == \
               [serialization.to_json(c.model) for c in second]

    @pytest.mark.parametrize("name", ALL_FAMILIES)
    def test_seed_changes_generated_models(self, name):
        if name == "catalog":
            pytest.skip("catalog models are fixed, not seeded")
        shape = "dag" if name == "shared-bas" else "treelike"
        base = ScenarioSpec(family=name, shape=shape, sizes=(8,))
        reseeded = base.with_overrides(seed=base.seed + 1)
        first = serialization.to_json(expand(base)[0].model)
        second = serialization.to_json(expand(reseeded)[0].model)
        assert first != second

    def test_setting_controls_model_type(self):
        det = expand(ScenarioSpec(family="random", sizes=(6,)))[0].model
        prob = expand(
            ScenarioSpec(family="random", setting="probabilistic", sizes=(6,))
        )[0].model
        assert isinstance(det, CostDamageAT) and not isinstance(det, CostDamageProbAT)
        assert isinstance(prob, CostDamageProbAT)

    def test_case_count_follows_spec(self):
        spec = ScenarioSpec(family="random", sizes=(4, 8, 12), cases_per_size=3)
        cases = expand(spec)
        assert len(cases) == 9
        assert len({c.case_id for c in cases}) == 9

    def test_decoration_ranges_respected(self):
        from repro.workloads import DecorationRanges

        spec = ScenarioSpec(
            family="random", sizes=(12,),
            decoration=DecorationRanges(cost_range=(5, 5), damage_range=(2, 2)),
        )
        model = expand(spec)[0].model
        assert set(model.cost.values()) == {5.0}
        assert set(model.damage.values()) == {2.0}


class TestShapes:
    def test_treelike_families_generate_trees(self):
        for name in ("random", "deep-chain", "wide-fan"):
            case = expand(ScenarioSpec(family=name, sizes=(10,)))[0]
            assert case.model.tree.is_treelike, name

    def test_dag_variants_generate_sharing(self):
        for name in ("deep-chain", "wide-fan", "shared-bas"):
            case = expand(ScenarioSpec(family=name, shape="dag", sizes=(10,)))[0]
            assert not case.model.tree.is_treelike, name

    def test_shared_bas_rejects_treelike(self):
        with pytest.raises(ValueError, match="does not support"):
            expand(ScenarioSpec(family="shared-bas", shape="treelike"))

    def test_catalog_rejects_probabilistic_dag(self):
        with pytest.raises(ValueError, match="does not support"):
            expand(ScenarioSpec(family="catalog", shape="dag",
                                setting="probabilistic"))

    def test_mismatched_family_name_rejected(self):
        spec = ScenarioSpec(family="random")
        with pytest.raises(ValueError, match="was given to"):
            family("deep-chain").generate(spec)


class TestCatalogFamily:
    def test_treelike_deterministic_cases(self):
        cases = expand(ScenarioSpec(family="catalog"))
        assert {c.case_id.split("s2023-")[-1] for c in cases} == \
               {"factory", "panda-iot"}
        assert all(isinstance(c.model, CostDamageAT) for c in cases)

    def test_dag_deterministic_is_data_server(self):
        cases = expand(ScenarioSpec(family="catalog", shape="dag"))
        assert len(cases) == 1
        assert not cases[0].model.tree.is_treelike

    def test_sizes_are_model_sizes(self):
        for case in expand(ScenarioSpec(family="catalog", sizes=(999,))):
            assert case.size == len(case.model.tree)


class TestStressShapes:
    def test_deep_chain_depth_scales(self):
        small = expand(ScenarioSpec(family="deep-chain", sizes=(5,)))[0]
        large = expand(ScenarioSpec(family="deep-chain", sizes=(20,)))[0]
        assert large.node_count > small.node_count

    def test_wide_fan_width_matches_size(self):
        case = expand(ScenarioSpec(family="wide-fan", sizes=(9,)))[0]
        assert case.bas_count == 9

    def test_shared_bas_pool_is_shared(self):
        case = expand(ScenarioSpec(family="shared-bas", shape="dag", sizes=(10,)))[0]
        tree = case.model.tree
        parents = {}
        for node in tree.nodes.values():
            for child in node.children:
                parents.setdefault(child, []).append(node.name)
        assert any(len(p) > 1 for p in parents.values())
