"""Tests for the declarative scenario-spec layer."""

import pytest

from repro.workloads import DecorationRanges, ScenarioSpec


class TestDecorationRanges:
    def test_paper_defaults(self):
        ranges = DecorationRanges()
        assert ranges.cost_choices() == tuple(range(1, 11))
        assert ranges.damage_choices() == tuple(range(0, 11))
        assert ranges.probability_choices()[0] == pytest.approx(0.1)
        assert ranges.probability_choices()[-1] == pytest.approx(1.0)
        assert len(ranges.probability_choices()) == 10

    def test_custom_ranges(self):
        ranges = DecorationRanges(cost_range=(2, 4), damage_range=(0, 1),
                                  probability_step=0.5)
        assert ranges.cost_choices() == (2, 3, 4)
        assert ranges.damage_choices() == (0, 1)
        assert ranges.probability_choices() == (0.5, 1.0)

    @pytest.mark.parametrize("kwargs", [
        {"cost_range": (5, 2)},
        {"cost_range": (-1, 2)},
        {"damage_range": (1,)},
        {"probability_step": 0.0},
        {"probability_step": 1.5},
    ])
    def test_invalid_ranges_rejected(self, kwargs):
        with pytest.raises(ValueError):
            DecorationRanges(**kwargs)

    def test_round_trip(self):
        ranges = DecorationRanges(cost_range=(1, 3), probability_step=0.25)
        assert DecorationRanges.from_dict(ranges.to_dict()) == ranges

    def test_unknown_field_rejected(self):
        with pytest.raises(ValueError, match="unknown decoration"):
            DecorationRanges.from_dict({"colour": "red"})


class TestScenarioSpec:
    def test_defaults(self):
        spec = ScenarioSpec(family="random")
        assert spec.shape == "treelike"
        assert spec.setting == "deterministic"
        assert spec.default_problem() == "cdpf"

    def test_probabilistic_default_problem(self):
        spec = ScenarioSpec(family="random", setting="probabilistic")
        assert spec.default_problem() == "cedpf"

    def test_explicit_problem_wins(self):
        spec = ScenarioSpec(family="random", problem="dgc")
        assert spec.default_problem() == "dgc"

    def test_single_size_normalized(self):
        assert ScenarioSpec(family="random", sizes=7).sizes == (7,)

    @pytest.mark.parametrize("kwargs", [
        {"family": ""},
        {"family": "random", "shape": "cyclic"},
        {"family": "random", "setting": "quantum"},
        {"family": "random", "sizes": ()},
        {"family": "random", "sizes": (0,)},
        {"family": "random", "cases_per_size": 0},
        {"family": "random", "seed": "abc"},
    ])
    def test_invalid_specs_rejected(self, kwargs):
        with pytest.raises(ValueError):
            ScenarioSpec(**kwargs)

    def test_case_seed_is_stable_and_distinct(self):
        spec = ScenarioSpec(family="random", seed=7)
        assert spec.case_seed(10, 0) == spec.case_seed(10, 0)
        assert spec.case_seed(10, 0) != spec.case_seed(10, 1)
        assert spec.case_seed(10, 0) != spec.case_seed(20, 0)
        other = spec.with_overrides(seed=8)
        assert other.case_seed(10, 0) != spec.case_seed(10, 0)

    def test_params_are_frozen_and_sorted(self):
        spec = ScenarioSpec(family="random", params={"b": 2, "a": 1})
        assert spec.params == (("a", 1), ("b", 2))
        assert spec.param("a") == 1
        assert spec.param("missing", 42) == 42

    def test_round_trip(self):
        spec = ScenarioSpec(
            family="deep-chain", shape="dag", setting="probabilistic",
            sizes=(5, 10), cases_per_size=3, seed=99, problem="edgc",
            backend="enumerative", params={"budget": 4},
            decoration=DecorationRanges(cost_range=(1, 5)),
        )
        assert ScenarioSpec.from_dict(spec.to_dict()) == spec

    def test_round_trip_minimal(self):
        spec = ScenarioSpec(family="catalog")
        payload = spec.to_dict()
        assert "problem" not in payload and "decoration" not in payload
        assert ScenarioSpec.from_dict(payload) == spec

    def test_from_dict_rejects_unknown_and_missing(self):
        with pytest.raises(ValueError, match="unknown scenario"):
            ScenarioSpec.from_dict({"family": "random", "colour": "red"})
        with pytest.raises(ValueError, match="missing the 'family'"):
            ScenarioSpec.from_dict({"shape": "dag"})
