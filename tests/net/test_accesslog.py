"""Tests for structured access logging on the broker and the service."""

import io
import json

import pytest

from repro.net import AccessLog, BrokerServer, HttpQueue, REQUEST_ID_HEADER
from repro.net.accesslog import new_request_id


class TestAccessLog:
    def test_one_json_line_per_record(self):
        stream = io.StringIO()
        log = AccessLog(stream, clock=lambda: 1000.0)
        log.record(method="GET", route="/ping", status=200,
                   latency_ms=1.234, request_id="abc123", tenant=None)
        log.record(method="POST", route="/v1/jobs", status=202,
                   latency_ms=10.5, request_id="def456", tenant="acme")
        lines = [json.loads(line) for line in stream.getvalue().splitlines()]
        assert lines == [
            {"ts": 1000.0, "request_id": "abc123", "tenant": None,
             "method": "GET", "route": "/ping", "status": 200,
             "latency_ms": 1.23},
            {"ts": 1000.0, "request_id": "def456", "tenant": "acme",
             "method": "POST", "route": "/v1/jobs", "status": 202,
             "latency_ms": 10.5},
        ]

    def test_broken_stream_never_raises(self):
        class Broken:
            def write(self, text):
                raise OSError("disk full")

            def flush(self):
                raise OSError("disk full")

        log = AccessLog(Broken())
        log.record(method="GET", route="/ping", status=200,
                   latency_ms=0.1, request_id="abc123")

    def test_request_ids_are_fresh(self):
        ids = {new_request_id() for _ in range(64)}
        assert len(ids) == 64
        assert all(len(request_id) == 12 for request_id in ids)


class TestBrokerAccessLog:
    def test_every_request_is_logged_and_id_echoed(self, tmp_path):
        stream = io.StringIO()
        server = BrokerServer(
            queue_path=str(tmp_path / "q.sqlite"),
            access_log=AccessLog(stream),
        )
        server.start()
        try:
            with HttpQueue(server.url) as queue:
                queue.ping()
                queue.submit([{"kind": "t"}])
                queue.counts()
        finally:
            server.close()
        lines = [json.loads(line) for line in stream.getvalue().splitlines()]
        routes = [line["route"] for line in lines]
        assert routes == ["/ping", "/queue/submit", "/queue/counts"]
        assert all(line["status"] == 200 for line in lines)
        assert all(line["latency_ms"] >= 0 for line in lines)
        assert all(len(line["request_id"]) == 12 for line in lines)
        # The broker has no tenants; the field is present but null.
        assert all(line["tenant"] is None for line in lines)

    def test_failed_requests_are_logged_too(self, tmp_path):
        import urllib.error
        import urllib.request

        stream = io.StringIO()
        server = BrokerServer(
            queue_path=str(tmp_path / "q.sqlite"),
            access_log=AccessLog(stream),
        )
        server.start()
        try:
            with pytest.raises(urllib.error.HTTPError) as excinfo:
                urllib.request.urlopen(f"{server.url}/nonsense", timeout=10)
            assert excinfo.value.code == 404
            # The response carries the id the log line recorded.
            echoed = excinfo.value.headers[REQUEST_ID_HEADER]
        finally:
            server.close()
        (line,) = [json.loads(l) for l in stream.getvalue().splitlines()]
        assert line["status"] == 404
        assert line["route"] == "/nonsense"
        assert line["request_id"] == echoed
