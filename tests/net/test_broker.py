"""Broker failure modes: restarts, bad requests, auth, wire conformance.

The happy-path semantics of :class:`HttpQueue`/:class:`HttpStore` are
covered by the shared ``any_queue``/``any_store`` fixtures in
``tests/distributed/test_queue.py`` and ``tests/engine/test_store.py``
(every queue/store test runs against a live broker there).  This file
covers what only the network layer can get wrong: a server restart
mid-run, malformed and unauthorized requests, and protocol conformance.
"""

import http.client
import json
import threading

import pytest

from repro.attacktree.catalog import factory
from repro.core.problems import Problem
from repro.distributed import (
    QueueError,
    TaskState,
    Worker,
    WorkQueue,
)
from repro.engine import AnalysisRequest, model_fingerprint, run_request
from repro.engine.store import ResultStore, StoreError, open_store
from repro.distributed.queue import open_queue
from repro.net import BrokerServer, HttpQueue, HttpStore, WIRE_VERSION


@pytest.fixture
def paths(tmp_path):
    return str(tmp_path / "queue.sqlite"), str(tmp_path / "store.sqlite")


@pytest.fixture
def broker(paths):
    queue_path, store_path = paths
    server = BrokerServer(queue_path=queue_path, store_path=store_path,
                          grace_seconds=0.0)
    server.start()
    yield server
    server.close()


def raw_request(server, method, path, body=None, headers=None):
    connection = http.client.HTTPConnection(server.host, server.port,
                                            timeout=10)
    try:
        connection.request(method, path, body=body, headers=headers or {})
        response = connection.getresponse()
        return response.status, json.loads(response.read().decode())
    finally:
        connection.close()


class TestProtocolConformance:
    def test_clients_satisfy_the_runtime_protocols(self, broker):
        with HttpQueue(broker.url) as queue, HttpStore(broker.url) as store:
            assert isinstance(queue, WorkQueue)
            assert isinstance(store, ResultStore)

    def test_ping_reports_wire_version_and_resources(self, broker):
        status, document = raw_request(broker, "GET", "/ping")
        assert status == 200
        assert document["server"] == "atcd-broker"
        assert document["wire_version"] == WIRE_VERSION
        assert document["queue"] is True and document["store"] is True

    def test_open_queue_and_open_store_dispatch_urls(self, broker):
        with open_queue(broker.url, must_exist=True) as queue:
            assert isinstance(queue, HttpQueue)
            assert queue.counts()["pending"] == 0
        with open_store(broker.url, must_exist=True) as store:
            assert isinstance(store, HttpStore)
            assert len(store) == 0

    def test_queue_only_broker_rejects_store_clients(self, paths):
        queue_path, _ = paths
        with BrokerServer(queue_path=queue_path) as server:
            server.start()
            with pytest.raises(StoreError, match="serves no result store"):
                open_store(server.url, must_exist=True)
            status, document = raw_request(
                server, "POST", "/store/len", body=b"{}"
            )
            assert status == 404

    def test_store_only_broker_rejects_queue_clients(self, paths):
        _, store_path = paths
        with BrokerServer(store_path=store_path) as server:
            server.start()
            with pytest.raises(QueueError, match="serves no work queue"):
                open_queue(server.url, must_exist=True)

    def test_unreachable_broker_fails_with_one_clear_error(self):
        queue = HttpQueue("http://127.0.0.1:9", retries=1,
                          backoff_seconds=0.01)
        with pytest.raises(QueueError, match="unreachable"):
            queue.counts()

    def test_ping_succeeds_against_a_real_broker(self, broker):
        assert HttpQueue(broker.url).ping()["queue"] is True
        assert HttpStore(broker.url).ping()["store"] is True

    def test_non_broker_http_server_is_rejected_on_ping(self):
        """A live HTTP server that is not an atcd broker must be refused
        with a clear message, not probed with queue traffic."""
        from http.server import BaseHTTPRequestHandler, ThreadingHTTPServer

        class NotABroker(BaseHTTPRequestHandler):
            def do_GET(self):
                body = b"{\"hello\": \"world\"}"
                self.send_response(200)
                self.send_header("Content-Length", str(len(body)))
                self.end_headers()
                self.wfile.write(body)

            def log_message(self, format, *args):  # noqa: A002
                pass

        server = ThreadingHTTPServer(("127.0.0.1", 0), NotABroker)
        thread = threading.Thread(target=server.serve_forever, daemon=True)
        thread.start()
        url = f"http://127.0.0.1:{server.server_address[1]}"
        try:
            with pytest.raises(QueueError, match="not an atcd broker"):
                HttpQueue(url).ping()
            with pytest.raises(StoreError, match="not an atcd broker"):
                open_store(url)  # the dispatch point pings URLs eagerly
        finally:
            server.shutdown()
            server.server_close()
            thread.join(timeout=5)

    def test_invalid_urls_are_rejected_up_front(self):
        with pytest.raises(QueueError, match="invalid broker URL"):
            HttpQueue("ftp://host:1")
        with pytest.raises(StoreError, match="invalid broker URL"):
            HttpStore("http://host:1/some/path")


class TestMalformedRequests:
    """A broken or hostile client gets a clean 4xx, never a hung server."""

    def test_garbage_json_body_is_a_400(self, broker):
        status, document = raw_request(
            broker, "POST", "/queue/submit", body=b"{not json",
        )
        assert status == 400
        assert "JSON" in document["error"]

    def test_non_object_body_is_a_400(self, broker):
        status, document = raw_request(
            broker, "POST", "/queue/submit", body=b"[1, 2]",
        )
        assert status == 400

    def test_missing_arguments_are_a_400(self, broker):
        status, document = raw_request(
            broker, "POST", "/queue/claim", body=b"{}",
        )
        assert status == 400
        assert document["kind"] == "bad-request"

    def test_unknown_operation_is_a_400(self, broker):
        status, document = raw_request(
            broker, "POST", "/queue/nonsense", body=b"{}",
        )
        assert status == 400
        assert "unknown queue operation" in document["error"]

    def test_unknown_path_is_a_404(self, broker):
        status, _ = raw_request(broker, "GET", "/whatever")
        assert status == 404
        status, _ = raw_request(broker, "POST", "/queue/claim/extra",
                                body=b"{}")
        assert status == 404

    def test_malformed_store_document_is_a_400_not_a_crash(self, broker):
        status, document = raw_request(
            broker, "POST", "/store/get",
            body=json.dumps({
                "fingerprint": "f" * 64,
                "request": {"problem": "not-a-problem"},
            }).encode(),
        )
        assert status == 400
        # The server stays healthy for well-formed traffic.
        with HttpQueue(broker.url) as queue:
            assert queue.counts()["pending"] == 0

    def test_server_side_queue_error_maps_to_queue_error(self, broker):
        with HttpQueue(broker.url) as queue:
            with pytest.raises(QueueError, match="max_attempts"):
                queue.submit([{"kind": "x"}], max_attempts=0)


class TestAuthentication:
    @pytest.fixture
    def secured(self, paths, monkeypatch):
        # The token must not leak in from the test environment.
        monkeypatch.delenv("ATCD_BROKER_TOKEN", raising=False)
        queue_path, store_path = paths
        server = BrokerServer(queue_path=queue_path, store_path=store_path,
                              token="s3cret")
        server.start()
        yield server
        server.close()

    def test_missing_token_is_rejected(self, secured):
        with pytest.raises(QueueError, match="unauthorized"):
            HttpQueue(secured.url).counts()
        with pytest.raises(StoreError, match="unauthorized"):
            HttpStore(secured.url).summary()

    def test_wrong_token_is_rejected(self, secured):
        with pytest.raises(QueueError, match="unauthorized"):
            HttpQueue(secured.url, token="wrong").counts()

    def test_matching_token_is_accepted(self, secured):
        with HttpQueue(secured.url, token="s3cret") as queue:
            assert queue.counts()["pending"] == 0

    def test_token_read_from_environment(self, secured, monkeypatch):
        monkeypatch.setenv("ATCD_BROKER_TOKEN", "s3cret")
        with HttpQueue(secured.url) as queue:
            assert queue.counts()["pending"] == 0

    def test_ping_requires_the_token_too(self, secured):
        with pytest.raises(QueueError, match="not an atcd broker"):
            HttpQueue(secured.url).ping()


class TestServerRestartMidRun:
    def test_clients_reconnect_and_the_run_completes(self, paths):
        """Stop the broker while a worker is mid-run; restart it on the
        same port, against the same sqlite files.  The clients' retry /
        backoff must carry the run to completion with nothing lost."""
        queue_path, store_path = paths
        server = BrokerServer(queue_path=queue_path, store_path=store_path,
                              grace_seconds=0.0)
        server.start()
        host, port = server.host, server.port
        with HttpQueue(server.url, retries=8) as submitter:
            submitter.submit([{"kind": "t", "i": i} for i in range(6)])

        claimed_once = threading.Event()

        def executor(payload):
            claimed_once.set()
            return {"i": payload["i"]}

        worker_queue = HttpQueue(f"http://{host}:{port}", retries=8,
                                 backoff_seconds=0.05)
        worker = Worker(worker_queue, worker_id="w", poll_seconds=0.05,
                        executor=executor)
        reports = []
        thread = threading.Thread(target=lambda: reports.append(worker.run()))
        thread.start()
        try:
            assert claimed_once.wait(timeout=30), "worker never started"
            # Restart: same port, same files — a broker deploy mid-run.
            server.close()
            server = BrokerServer(queue_path=queue_path,
                                  store_path=store_path,
                                  host=host, port=port, grace_seconds=0.0)
            server.start()
            thread.join(timeout=60)
            assert not thread.is_alive(), "worker never finished the run"
        finally:
            worker.stop()
            thread.join(timeout=5)
            worker_queue.close()
            server.close()
        (report,) = reports
        # Every task completed exactly once; at most the one in flight
        # during the restart was retried (lost-response orphan lease).
        with BrokerServer(queue_path=queue_path, store_path=store_path) as final:
            final.start()
            with HttpQueue(final.url) as check:
                done = check.tasks(TaskState.DONE)
                assert len(done) == 6
                assert sorted(task.result["i"] for task in done) == list(range(6))

    def test_store_clients_survive_a_restart_too(self, paths):
        queue_path, store_path = paths
        server = BrokerServer(store_path=store_path)
        server.start()
        host, port = server.host, server.port
        model = factory()
        fingerprint = model_fingerprint(model)
        request = AnalysisRequest(Problem.CDPF)
        live = run_request(model, request)
        store = HttpStore(server.url, retries=8, backoff_seconds=0.05)
        try:
            store.put(fingerprint, request, live)
            server.close()
            server = BrokerServer(store_path=store_path, host=host, port=port)
            server.start()
            loaded = store.get(fingerprint, request)
            assert loaded is not None
            assert loaded.to_dict() == live.to_dict()
        finally:
            store.close()
            server.close()


class TestRetrySafety:
    def test_submit_retry_after_lost_response_does_not_duplicate(self, broker):
        """The response to a committed submit is lost mid-flight; the
        client's retry must get the original task ids back (dedupe key),
        not append the batch a second time."""
        queue = HttpQueue(broker.url, retries=3, backoff_seconds=0.01)
        transport = queue._transport
        real_round_trip = transport._round_trip
        lost = []

        def lossy(method, path, body):
            status, raw = real_round_trip(method, path, body)
            if path == "/queue/submit" and not lost:
                lost.append(True)  # the server committed; the reply died
                raise ConnectionResetError("response lost")
            return status, raw

        transport._round_trip = lossy
        try:
            ids = queue.submit([{"kind": "t", "i": i} for i in range(4)])
        finally:
            queue.close()
        assert lost, "the fault was never injected"
        assert len(ids) == 4
        with HttpQueue(broker.url) as check:
            assert check.counts() == {
                "pending": 4, "running": 0, "done": 0, "dead": 0,
                "cancelled": 0,
            }
            assert [task.task_id for task in check.tasks()] == ids

    def test_explicit_dedupe_key_round_trips_all_backends(
        self, tmp_path
    ):
        from repro.distributed import InMemoryQueue, SqliteQueue

        for queue in (
            InMemoryQueue(),
            SqliteQueue(str(tmp_path / "dedupe.sqlite")),
        ):
            with queue:
                first = queue.submit([{"i": 1}, {"i": 2}], dedupe_key="run-a")
                replay = queue.submit([{"i": 1}, {"i": 2}], dedupe_key="run-a")
                assert replay == first
                assert queue.counts()["pending"] == 2
                # A different key is a genuinely new batch.
                queue.submit([{"i": 3}], dedupe_key="run-b")
                assert queue.counts()["pending"] == 3


class TestKeepAliveHygiene:
    def test_unattached_resource_errors_do_not_desync_the_connection(
        self, paths
    ):
        """Early error replies (sent before the body is read) must retire
        the kept-alive socket; otherwise the unread body bytes would be
        parsed as the next request and garble every later call."""
        queue_path, _ = paths
        with BrokerServer(queue_path=queue_path) as server:
            server.start()
            store = HttpStore(server.url, retries=0)
            for _ in range(3):  # same client, same thread, same transport
                with pytest.raises(StoreError, match="serves no store"):
                    len(store)
            # The connection (and server) still serve well-formed traffic.
            with HttpQueue(server.url) as queue:
                assert queue.counts()["pending"] == 0

    def test_repeated_unauthorized_posts_keep_clean_errors(self, paths):
        queue_path, _ = paths
        with BrokerServer(queue_path=queue_path, token="t0ken") as server:
            server.start()
            queue = HttpQueue(server.url, token="wrong", retries=0)
            for _ in range(3):
                with pytest.raises(QueueError, match="unauthorized"):
                    queue.submit([{"kind": "x"}])
            queue.close()


class TestLostResponseReplays:
    """Transport-level: the server commits, the reply dies, the client
    retries — the caller must still see the truthful outcome."""

    def _lossy(self, queue, path_to_drop):
        transport = queue._transport
        real_round_trip = transport._round_trip
        dropped = []

        def lossy(method, path, body):
            status, raw = real_round_trip(method, path, body)
            if path == path_to_drop and not dropped:
                dropped.append(True)
                raise ConnectionResetError("response lost")
            return status, raw

        transport._round_trip = lossy
        return dropped

    def test_complete_replay_reports_success_not_lost_lease(self, broker):
        queue = HttpQueue(broker.url, retries=3, backoff_seconds=0.01)
        try:
            queue.submit([{"kind": "t"}])
            task = queue.claim("w", lease_seconds=30)
            dropped = self._lossy(queue, "/queue/complete")
            assert queue.complete(task.task_id, "w", {"answer": 7})
            assert dropped, "the fault was never injected"
            (done,) = queue.tasks(TaskState.DONE)
            assert done.result == {"answer": 7}
        finally:
            queue.close()

    def test_run_descriptor_cas_replay_still_wins(self, broker):
        """Coordinator._record_run's check-and-set: a replayed
        set_meta_if_absent of our own committed descriptor must read as
        the win it was, or the submission aborts itself."""
        queue = HttpQueue(broker.url, retries=3, backoff_seconds=0.01)
        try:
            dropped = self._lossy(queue, "/queue/set_meta_if_absent")
            assert queue.set_meta_if_absent("run", "{\"name\": \"mine\"}")
            assert dropped, "the fault was never injected"
            # A genuinely different writer still loses.
            assert not queue.set_meta_if_absent("run", "{\"name\": \"other\"}")
            assert queue.get_meta("run") == "{\"name\": \"mine\"}"
        finally:
            queue.close()


class TestBodyDraining:
    def test_early_404_drains_large_body_and_keeps_the_connection(self, broker):
        """An error reply sent before dispatch must consume the request
        body (not slam the socket shut): the client both receives the
        4xx — no RST racing a mid-upload close — and can reuse the
        connection for the next call."""
        connection = http.client.HTTPConnection(broker.host, broker.port,
                                                timeout=30)
        try:
            big_body = b"{" + b" " * (1 << 20) + b"}"  # 1 MiB of JSON
            connection.request("POST", "/nowhere/at-all", body=big_body)
            response = connection.getresponse()
            assert response.status == 404
            assert b"unknown endpoint" in response.read()
            # Same socket, next request: parsed cleanly, not from body
            # leftovers.
            connection.request("POST", "/queue/counts", body=b"{}")
            response = connection.getresponse()
            assert response.status == 200
            assert json.loads(response.read())["value"]["counts"][
                "pending"] == 0
        finally:
            connection.close()
