"""Tests for multi-queue roots: QueueRoot, the --root broker, BrokerAdmin.

A root broker hosts many named queues behind one port; these tests cover
the name grammar (names are filenames *and* URL segments), the management
verbs locally and over HTTP, strict 404s for unknown queue names, and the
isolation between queues sharing one broker.
"""

import pytest

from repro.distributed import QUEUE_FILE_SUFFIX, QueueError, QueueRoot
from repro.net import BrokerAdmin, BrokerServer, HttpQueue, split_queue_url


@pytest.fixture
def root_path(tmp_path):
    return str(tmp_path / "root")


@pytest.fixture
def root_broker(root_path):
    server = BrokerServer(root=root_path)
    server.start()
    yield server
    server.close()


class TestQueueRoot:
    def test_create_list_drop_round_trip(self, root_path):
        with QueueRoot(root_path) as root:
            assert root.names() == []
            assert root.create("alpha") is True
            assert root.create("alpha") is False  # idempotent
            assert root.create("beta") is True
            assert root.names() == ["alpha", "beta"]
            assert root.drop("alpha") is True
            assert root.drop("alpha") is False
            assert root.names() == ["beta"]

    def test_invalid_names_are_rejected(self, root_path):
        with QueueRoot(root_path) as root:
            for bad in ("", "../escape", "a/b", ".hidden", "-flag",
                        "x" * 65, "sp ace"):
                with pytest.raises(QueueError, match="queue name"):
                    root.open(bad)
            # Nothing leaked onto disk while rejecting.
            assert root.names() == []

    def test_queues_are_isolated(self, root_path):
        with QueueRoot(root_path) as root:
            alpha = root.open("alpha")
            beta = root.open("beta")
            alpha.submit([{"kind": "t", "i": 0}])
            assert beta.counts()["pending"] == 0
            assert alpha.counts()["pending"] == 1

    def test_open_must_exist_refuses_typos(self, root_path):
        with QueueRoot(root_path) as root:
            with pytest.raises(QueueError, match="no queue named"):
                root.open("absent", must_exist=True)

    def test_drop_closes_the_cached_handle(self, root_path):
        with QueueRoot(root_path) as root:
            queue = root.open("alpha")
            queue.submit([{"kind": "t"}])
            assert root.drop("alpha")
            with pytest.raises(QueueError):
                queue.submit([{"kind": "t"}])
            # Recreating starts from an empty queue, not a resurrected one.
            assert root.open("alpha").counts()["pending"] == 0

    def test_root_path_collision_with_file_raises(self, tmp_path):
        path = tmp_path / "not-a-dir"
        path.write_text("occupied")
        with pytest.raises(QueueError, match="not a directory"):
            QueueRoot(str(path))

    def test_foreign_files_are_not_listed(self, root_path):
        with QueueRoot(root_path) as root:
            root.create("alpha")
            from pathlib import Path

            (Path(root_path) / f"stray{QUEUE_FILE_SUFFIX}x").write_text("")
            assert root.names() == ["alpha"]


class TestSplitQueueUrl:
    def test_bare_and_named_urls(self):
        assert split_queue_url("http://h:1") == ("http://h:1", None)
        assert split_queue_url("http://h:1/queues/alpha") == (
            "http://h:1", "alpha"
        )

    def test_rejects_garbage_paths(self):
        for bad in ("http://h:1/queue/alpha", "http://h:1/queues",
                    "http://h:1/queues/a/b", "http://h:1/queues/bad name"):
            with pytest.raises(QueueError):
                split_queue_url(bad)


class TestRootBroker:
    def test_admin_verbs_over_http(self, root_broker):
        with BrokerAdmin(root_broker.url) as admin:
            assert admin.ping()["root"] is True
            assert admin.create_queue("alpha") is True
            assert admin.create_queue("alpha") is False
            rows = admin.list_queues()
            assert [row["name"] for row in rows] == ["alpha"]
            assert rows[0]["counts"]["pending"] == 0
            assert admin.drop_queue("alpha") is True
            assert admin.drop_queue("alpha") is False

    def test_named_queue_operations_over_http(self, root_broker):
        with BrokerAdmin(root_broker.url) as admin:
            admin.create_queue("alpha")
        with HttpQueue(f"{root_broker.url}/queues/alpha") as queue:
            ids = queue.submit([{"kind": "t", "i": i} for i in range(2)])
            task = queue.claim("w", lease_seconds=30)
            assert queue.complete(task.task_id, "w", {"ok": True})
            assert queue.cancel_pending(ids) == [ids[1]]
            counts = queue.counts()
            assert counts["done"] == 1 and counts["cancelled"] == 1

    def test_unknown_queue_name_is_404_not_conjured(self, root_broker):
        with HttpQueue(f"{root_broker.url}/queues/absent") as queue:
            with pytest.raises(QueueError, match="queue create"):
                queue.counts()
        # And nothing was created by the failed operations.
        with BrokerAdmin(root_broker.url) as admin:
            assert admin.list_queues() == []

    def test_two_queues_behind_one_broker_are_isolated(self, root_broker):
        with BrokerAdmin(root_broker.url) as admin:
            admin.create_queue("alpha")
            admin.create_queue("beta")
        with HttpQueue(f"{root_broker.url}/queues/alpha") as alpha, \
                HttpQueue(f"{root_broker.url}/queues/beta") as beta:
            alpha.submit([{"kind": "t"}])
            alpha.set_meta("run", "alpha-run")
            assert beta.counts()["pending"] == 0
            assert beta.get_meta("run") is None

    def test_unnamed_client_against_root_broker_fails_ping(self, root_broker):
        with HttpQueue(root_broker.url) as queue:
            with pytest.raises(QueueError, match="queues/<name>"):
                queue.ping()

    def test_named_client_against_single_queue_broker_fails(self, tmp_path):
        server = BrokerServer(queue_path=str(tmp_path / "q.sqlite"))
        server.start()
        try:
            with HttpQueue(f"{server.url}/queues/alpha") as queue:
                with pytest.raises(QueueError, match="no named queues"):
                    queue.ping()
        finally:
            server.close()

    def test_admin_against_single_queue_broker_fails(self, tmp_path):
        server = BrokerServer(queue_path=str(tmp_path / "q.sqlite"))
        server.start()
        try:
            with BrokerAdmin(server.url) as admin:
                with pytest.raises(QueueError, match="no queue root"):
                    admin.ping()
        finally:
            server.close()
