"""End-to-end ``atcd serve`` CLI tests: shared-nothing runs over HTTP.

The broker runs as a real subprocess (its own process, its own sqlite
files); submit/worker/status/gather/resubmit and ``dist run`` execute
in-process against its URL only — no path they use touches the broker's
files, which is exactly the shared-nothing deployment shape.
"""

import json
import os
import signal
import subprocess
import sys
from pathlib import Path

import pytest

from repro.bench import profiles
from repro.bench.harness import execute_specs
from repro.cli import main
from repro.workloads import ScenarioSpec

SRC = str(Path(__file__).resolve().parents[2] / "src")

TINY_SPECS = [
    ScenarioSpec(family="catalog", shape="treelike", setting="deterministic"),
    ScenarioSpec(family="catalog", shape="dag", setting="deterministic"),
]

RESULT_KEYS = ("case_id", "problem", "backend", "result_points", "value")


def results_section(rows):
    return json.dumps(
        [{key: row.get(key) for key in RESULT_KEYS} for row in rows],
        sort_keys=True,
    )


@pytest.fixture
def tiny_profile(monkeypatch):
    monkeypatch.setitem(profiles.PROFILES, "tiny-net", list(TINY_SPECS))
    return "tiny-net"


@pytest.fixture
def broker(tmp_path):
    """A real ``atcd serve`` subprocess on a free port; yields its URL."""
    env = dict(os.environ)
    env["PYTHONPATH"] = SRC + os.pathsep + env.get("PYTHONPATH", "")
    env.pop("ATCD_BROKER_TOKEN", None)
    process = subprocess.Popen(
        [sys.executable, "-m", "repro.cli", "serve",
         "--queue", str(tmp_path / "broker.queue"),
         "--store", str(tmp_path / "broker.store"),
         "--port", "0"],
        env=env, stdout=subprocess.PIPE, stderr=subprocess.DEVNULL, text=True,
    )
    line = process.stdout.readline()
    url = next(
        (word for word in line.split() if word.startswith("http://")), None
    )
    assert url, f"serve printed no URL: {line!r}"
    yield url
    process.send_signal(signal.SIGTERM)
    process.wait(timeout=30)


class TestServeEndToEnd:
    def test_shared_nothing_run_matches_sequential(self, broker, tiny_profile,
                                                   tmp_path, capsys):
        """submit → worker → status → gather entirely over HTTP, results
        byte-identical to the sequential harness."""
        out = str(tmp_path / "BENCH_net.json")
        assert main(["dist", "submit", "--queue", broker,
                     "--profile", tiny_profile]) == 0
        assert main(["dist", "status", "--queue", broker]) == 0
        assert "pending" in capsys.readouterr().out
        assert main(["dist", "worker", "--queue", broker, "--store", broker,
                     "--poll", "0.01"]) == 0
        assert main(["dist", "gather", "--queue", broker, "--out", out]) == 0
        artifact = json.load(open(out))
        sequential = [run.to_dict() for run in execute_specs(TINY_SPECS)]
        assert results_section(artifact["runs"]) == results_section(sequential)
        # The worker wrote through the broker store too.
        capsys.readouterr()
        assert main(["store", "stats", broker]) == 0
        assert "entries" in capsys.readouterr().out

    def test_dist_run_fleet_over_broker_urls(self, broker, tiny_profile,
                                             tmp_path):
        """`dist run` — coordinator + subprocess workers — pointed at
        nothing but URLs."""
        out = str(tmp_path / "BENCH_fleet.json")
        assert main(["dist", "run", "--profile", tiny_profile,
                     "--workers", "2", "--queue", broker, "--store", broker,
                     "--out", out, "--timeout", "120"]) == 0
        artifact = json.load(open(out))
        sequential = [run.to_dict() for run in execute_specs(TINY_SPECS)]
        assert results_section(artifact["runs"]) == results_section(sequential)
        assert artifact["config"]["distributed"]["dead_tasks"] == []

    def test_resubmit_recovers_a_dead_lettered_run_over_http(
        self, broker, tmp_path, monkeypatch, capsys
    ):
        """The acceptance scenario, shared-nothing edition: dead-letter a
        run through the broker, `dist resubmit` it, and complete it —
        without ever touching the broker's files from here."""
        bad = ScenarioSpec(family="catalog", shape="treelike",
                           setting="deterministic")
        monkeypatch.setitem(profiles.PROFILES, "tiny-poison", [bad])
        assert main(["dist", "submit", "--queue", broker,
                     "--profile", "tiny-poison", "--max-attempts", "1"]) == 0
        # Dead-letter the run *through the wire*: burn each task's single
        # attempt with an induced failure (max_attempts=1 → dead).
        from repro.net import HttpQueue

        with HttpQueue(broker) as queue:
            for _ in queue.tasks():
                claimed = queue.claim("poisoner", lease_seconds=30)
                queue.fail(claimed.task_id, "poisoner", "induced failure")
        capsys.readouterr()
        assert main(["dist", "gather", "--queue", broker,
                     "--out", str(tmp_path / "stuck.json")]) == 1
        assert "DEAD task" in capsys.readouterr().err
        # The fix arrives: resubmit restores the full retry budget.
        assert main(["dist", "resubmit", "--queue", broker]) == 0
        assert "resubmitted" in capsys.readouterr().out
        assert main(["dist", "worker", "--queue", broker,
                     "--poll", "0.01"]) == 0
        out = str(tmp_path / "BENCH_recovered.json")
        assert main(["dist", "gather", "--queue", broker, "--out", out]) == 0
        artifact = json.load(open(out))
        sequential = [run.to_dict() for run in execute_specs([bad])]
        assert results_section(artifact["runs"]) == results_section(sequential)

    def test_store_prune_over_http(self, broker, capsys):
        from repro.engine import AnalysisRequest, model_fingerprint, run_request
        from repro.attacktree.catalog import factory
        from repro.core.problems import Problem
        from repro.net import HttpStore

        with HttpStore(broker) as store:
            request = AnalysisRequest(Problem.CDPF)
            store.put(model_fingerprint(factory()), request,
                      run_request(factory(), request))
            assert len(store) == 1
        assert main(["store", "prune", broker]) == 0
        assert "pruned 1 results" in capsys.readouterr().out


class TestServeErrors:
    def test_serve_nothing_exits_2(self, capsys):
        assert main(["serve"]) == 2
        assert "nothing to serve" in capsys.readouterr().err

    def test_serve_foreign_database_exits_2(self, tmp_path, capsys):
        import sqlite3

        foreign = str(tmp_path / "other.sqlite")
        with sqlite3.connect(foreign) as connection:
            connection.execute("CREATE TABLE users (id INTEGER)")
        assert main(["serve", "--queue", foreign, "--port", "0"]) == 2
        assert "not a work queue" in capsys.readouterr().err

    def test_worker_against_dead_url_exits_2(self, capsys):
        # Port 9 refuses instantly, so the default retry budget resolves
        # fast; the contract under test is the one-line exit-2 error.
        assert main(["dist", "worker", "--queue", "http://127.0.0.1:9"]) == 2
        assert "unreachable" in capsys.readouterr().err

    def test_token_protected_broker_end_to_end(self, tmp_path, tiny_profile,
                                               monkeypatch, capsys):
        env = dict(os.environ)
        env["PYTHONPATH"] = SRC + os.pathsep + env.get("PYTHONPATH", "")
        process = subprocess.Popen(
            [sys.executable, "-m", "repro.cli", "serve",
             "--queue", str(tmp_path / "broker.queue"),
             "--port", "0", "--token", "hunter2"],
            env=env, stdout=subprocess.PIPE, stderr=subprocess.DEVNULL,
            text=True,
        )
        try:
            line = process.stdout.readline()
            url = next(
                word for word in line.split() if word.startswith("http://")
            )
            assert "token auth" in line
            monkeypatch.delenv("ATCD_BROKER_TOKEN", raising=False)
            assert main(["dist", "status", "--queue", url]) == 2
            assert "unauthorized" in capsys.readouterr().err
            # With the token exported, the full flow works (workers spawned
            # by a fleet inherit the environment, so they authenticate too).
            monkeypatch.setenv("ATCD_BROKER_TOKEN", "hunter2")
            assert main(["dist", "submit", "--queue", url,
                         "--profile", tiny_profile]) == 0
            assert main(["dist", "worker", "--queue", url,
                         "--poll", "0.01"]) == 0
            out = str(tmp_path / "BENCH_auth.json")
            assert main(["dist", "gather", "--queue", url, "--out", out]) == 0
            assert len(json.load(open(out))["runs"]) > 0
        finally:
            process.send_signal(signal.SIGTERM)
            process.wait(timeout=30)
