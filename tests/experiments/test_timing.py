"""Tests for the Table III timing harness (scaled down for CI)."""

import pytest

from repro.experiments.timing import (
    TimingSample,
    measure,
    render_table3,
    run_table3,
)


class TestTimingSample:
    def test_from_durations(self):
        sample = TimingSample.from_durations([1.0, 2.0, 3.0])
        assert sample.mean_seconds == pytest.approx(2.0)
        assert sample.runs == 3
        assert sample.std_seconds > 0

    def test_single_duration_has_zero_std(self):
        sample = TimingSample.from_durations([0.5])
        assert sample.std_seconds == 0.0

    def test_empty_rejected(self):
        with pytest.raises(ValueError):
            TimingSample.from_durations([])


class TestMeasure:
    def test_measure_counts_runs(self):
        calls = []
        sample = measure(lambda: calls.append(1), repeats=3)
        assert sample.runs == 3
        assert len(calls) == 3
        assert sample.mean_seconds >= 0


class TestRunTable3:
    @pytest.fixture(scope="class")
    def rows(self):
        # Scaled-down run: 1 random decoration, no enumerative baseline.
        return run_table3(random_decorations=1, include_enumerative=False)

    def test_row_labels_cover_the_paper_cases(self, rows):
        labels = [row.label for row in rows]
        assert any("Fig.4 deterministic" in label for label in labels)
        assert any("Fig.4 probabilistic" in label for label in labels)
        assert any("Fig.5 deterministic" in label for label in labels)

    def test_inapplicable_cells_are_none(self, rows):
        by_label = {row.label: row for row in rows}
        prob_row = next(row for label, row in by_label.items() if "probabilistic" in label)
        assert prob_row.timings["bilp"] is None
        server_row = next(row for label, row in by_label.items() if "Fig.5" in label)
        assert server_row.timings["bottom-up"] is None

    def test_bottom_up_beats_bilp_on_panda(self, rows):
        """The central Table III observation: BU is faster than BILP."""
        det_row = next(row for row in rows if row.label.startswith("Fig.4 deterministic (true"))
        bottom_up = det_row.timings["bottom-up"].mean_seconds
        bilp = det_row.timings["bilp"].mean_seconds
        assert bottom_up < bilp

    def test_render(self, rows):
        text = render_table3(rows)
        assert "Table III" in text
        assert "bottom-up" in text and "bilp" in text
        assert "n/a" in text

    def test_enumerative_respects_bas_limit(self):
        rows = run_table3(random_decorations=0, include_enumerative=True,
                          enumerative_bas_limit=5)
        # All case-study ATs have more than 5 BASs, so every enumerative cell
        # must be skipped.
        assert all(row.timings.get("enumerative") is None for row in rows)
