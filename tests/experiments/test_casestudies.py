"""Tests for the case-study experiment drivers (Figures 3 and 6)."""


from repro.experiments.casestudies import (
    PAPER_FIG3_FRONT,
    PAPER_FIG6A_FRONT,
    PAPER_FIG6B_PREFIX,
    PAPER_FIG6C_FRONT,
    run_all_case_studies,
    run_fig3_factory,
    run_fig6a_panda_deterministic,
    run_fig6b_panda_probabilistic,
    run_fig6c_data_server,
)


class TestIndividualExperiments:
    def test_fig3_reproduced_exactly(self):
        result = run_fig3_factory()
        assert result.exact_match
        assert result.front.values() == [(0, 0), (1, 200), (3, 210), (5, 310)]

    def test_fig6a_reproduced_exactly(self):
        result = run_fig6a_panda_deterministic()
        assert result.exact_match
        assert result.front.values() == [
            (0, 0), (3, 20), (4, 50), (7, 65), (11, 75), (13, 80),
            (17, 90), (22, 95), (30, 100),
        ]

    def test_fig6a_has_eight_nonzero_attacks(self):
        result = run_fig6a_panda_deterministic()
        assert len([p for p in result.front if p.cost > 0]) == 8

    def test_fig6b_published_prefix_reproduced(self):
        result = run_fig6b_panda_probabilistic()
        assert result.exact_match
        values = {(round(c), round(d, 1)) for c, d in result.front.values()}
        for cost, damage in PAPER_FIG6B_PREFIX:
            assert (cost, damage) in values

    def test_fig6b_front_is_larger_than_deterministic(self):
        """The paper reports 31 probabilistic Pareto attacks vs 8 deterministic."""
        probabilistic = run_fig6b_panda_probabilistic().front
        deterministic = run_fig6a_panda_deterministic().front
        assert len(probabilistic) >= 25
        assert len(probabilistic) > len(deterministic)

    def test_fig6c_reproduced_exactly(self):
        result = run_fig6c_data_server()
        assert result.exact_match
        assert result.front.values() == [
            (0, 0), (250, 24), (568, 60), (976, 70.8), (1131, 75.8), (1281, 82.8),
        ]

    def test_fig6c_only_first_attack_misses_top(self):
        """Fig. 6c: except for A1 all optimal attacks reach the top node."""
        result = run_fig6c_data_server()
        nonzero = [p for p in result.front if p.cost > 0]
        assert nonzero[0].reaches_root is False
        assert all(p.reaches_root for p in nonzero[1:])

    def test_every_optimal_attack_contains_previous_one_fig6c(self):
        """Section X.B: every Pareto-optimal attack contains the previous one."""
        result = run_fig6c_data_server()
        nonzero = [p for p in result.front if p.cost > 0]
        for smaller, larger in zip(nonzero, nonzero[1:]):
            assert smaller.attack <= larger.attack


class TestRunAll:
    def test_all_experiments_match(self):
        results = run_all_case_studies()
        assert set(results) == {"fig3", "fig6a", "fig6b", "fig6c"}
        assert all(result.exact_match for result in results.values())

    def test_render_includes_comparison(self):
        text = run_fig3_factory().render()
        assert "computed front" in text
        assert "paper front" in text

    def test_published_constants_are_self_consistent(self):
        assert PAPER_FIG3_FRONT[0] == (0, 0)
        assert PAPER_FIG6A_FRONT[-1] == (30, 100)
        assert PAPER_FIG6C_FRONT[-1] == (1281, 82.8)
