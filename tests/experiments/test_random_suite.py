"""Tests for the Fig. 7 random-suite scaling harness (scaled down)."""

import pytest

from repro.attacktree.random_gen import RandomSuiteSpec
from repro.experiments.random_suite import (
    SuiteTiming,
    group_means,
    render_fig7_series,
    render_fig7d_statistics,
    run_suite_timings,
    summarize,
)


@pytest.fixture(scope="module")
def small_tree_records():
    spec = RandomSuiteSpec(max_target_size=25, trees_per_size=1, treelike=True, seed=11)
    return run_suite_timings(spec, probabilistic=False, include_enumerative=True,
                             enumerative_bas_limit=10)


@pytest.fixture(scope="module")
def small_dag_records():
    spec = RandomSuiteSpec(max_target_size=20, trees_per_size=1, treelike=False, seed=12)
    return run_suite_timings(spec, probabilistic=False, include_enumerative=False)


class TestRunSuiteTimings:
    def test_treelike_suite_times_bottom_up_and_bilp(self, small_tree_records):
        methods = {record.method for record in small_tree_records}
        assert "bottom-up" in methods
        assert "bilp" in methods

    def test_dag_suite_times_bilp(self, small_dag_records):
        methods = {record.method for record in small_dag_records}
        assert "bilp" in methods

    def test_enumerative_limited_to_small_models(self, small_tree_records):
        # Enumerative records exist only for ATs whose BAS count was within the
        # limit; their node counts are therefore comparatively small.
        enumerative = [r for r in small_tree_records if r.method == "enumerative"]
        assert all(record.nodes <= 25 for record in enumerative)

    def test_probabilistic_suite(self):
        spec = RandomSuiteSpec(max_target_size=12, trees_per_size=1, treelike=True, seed=13)
        records = run_suite_timings(spec, probabilistic=True, include_enumerative=True,
                                    enumerative_bas_limit=8)
        methods = {record.method for record in records}
        assert "bottom-up" in methods
        assert "bilp" not in methods  # not applicable probabilistically

    def test_all_durations_positive(self, small_tree_records):
        assert all(record.seconds >= 0 for record in small_tree_records)


class TestAggregation:
    def test_group_means_structure(self, small_tree_records):
        series = group_means(small_tree_records, group_width=10)
        for points in series.values():
            groups = [group for group, _ in points]
            assert groups == sorted(groups)
            assert all(mean >= 0 for _, mean in points)

    def test_group_means_synthetic(self):
        records = [
            SuiteTiming(nodes=8, method="bu", seconds=1.0),
            SuiteTiming(nodes=9, method="bu", seconds=3.0),
            SuiteTiming(nodes=25, method="bu", seconds=5.0),
        ]
        series = group_means(records)
        assert series["bu"] == [(0, 2.0), (2, 5.0)]

    def test_summary_statistics(self):
        records = [
            SuiteTiming(nodes=8, method="bu", seconds=1.0),
            SuiteTiming(nodes=9, method="bu", seconds=3.0),
        ]
        summaries = summarize(records)
        assert len(summaries) == 1
        assert summaries[0].minimum == 1.0
        assert summaries[0].maximum == 3.0
        assert summaries[0].mean == 2.0
        assert summaries[0].samples == 2

    def test_bottom_up_faster_than_bilp_on_average(self, small_tree_records):
        """The Fig. 7a headline: BU is faster than BILP on treelike ATs."""
        summaries = {s.method: s for s in summarize(small_tree_records)}
        assert summaries["bottom-up"].mean < summaries["bilp"].mean


class TestRendering:
    def test_render_series(self, small_tree_records):
        text = render_fig7_series(small_tree_records, title="Fig. 7a (scaled down)")
        assert "Fig. 7a" in text
        assert "bottom-up" in text

    def test_render_statistics(self, small_tree_records):
        text = render_fig7d_statistics(summarize(small_tree_records), title="Fig. 7d")
        assert "min (s)" in text and "max (s)" in text
