"""Tests for the plain-text report renderers."""

import math

from repro.experiments.report import (
    format_named_attacks,
    format_pareto_front,
    format_scaling_series,
    format_table,
    format_timing_rows,
)
from repro.pareto.front import ParetoFront, ParetoPoint


class TestFormatTable:
    def test_alignment_and_title(self):
        text = format_table(["a", "bbbb"], [[1, 2], [333, 4]], title="T")
        lines = text.splitlines()
        assert lines[0] == "T"
        assert "a" in lines[1] and "bbbb" in lines[1]
        assert set(lines[2]) <= {"-", " "}

    def test_nan_rendered_as_na(self):
        text = format_table(["x"], [[math.nan]])
        assert "n/a" in text

    def test_ragged_rows_padded(self):
        text = format_table(["a", "b"], [[1], [1, 2]])
        assert len(text.splitlines()) == 4


class TestFormatParetoFront:
    def test_front_rendering(self):
        front = ParetoFront([
            ParetoPoint(0, 0, frozenset(), False),
            ParetoPoint(1, 200, frozenset({"ca"}), True),
        ])
        text = format_pareto_front(front, title="front")
        assert "front" in text
        assert "{ca}" in text
        assert " y" in text and " n" in text


class TestOtherRenderers:
    def test_named_attacks(self):
        text = format_named_attacks([("A1", 3, 20, True), ("A2", 4, 50, False)])
        assert "A1" in text and "A2" in text

    def test_timing_rows_with_none(self):
        text = format_timing_rows({"case": {"bu": 0.1, "bilp": None}})
        assert "n/a" in text
        assert "0.1000" in text

    def test_scaling_series(self):
        text = format_scaling_series({"bu": [(0, 0.01), (1, 0.02)], "enum": [(0, 1.0)]})
        assert "bu" in text and "enum" in text
        assert "n/a" in text  # enum has no group-1 entry
