"""Cross-cutting property-based tests of the paper's central invariants.

These hypothesis tests tie the whole library together: independent solvers
must agree, theoretical monotonicity/consistency properties must hold on
arbitrary random models, and the single-objective problems must be
consistent with the Pareto fronts (Equations (1)–(2)).
"""

import math

import pytest
from hypothesis import HealthCheck, given, settings
from hypothesis import strategies as st

from repro.core.bilp import max_damage_given_cost_bilp, pareto_front_bilp
from repro.core.bottom_up import (
    max_damage_given_cost_treelike,
    min_cost_given_damage_treelike,
    pareto_front_treelike,
)
from repro.core.bottom_up_prob import (
    max_expected_damage_given_cost_treelike,
    pareto_front_treelike_probabilistic,
)
from repro.core.enumerative import enumerate_pareto_front
from repro.core.semantics import attack_cost, attack_damage
from repro.probability.actualization import expected_damage

from ..conftest import make_random_tree

COMMON_SETTINGS = {
    "max_examples": 30,
    "deadline": None,
    "suppress_health_check": [HealthCheck.too_slow],
}


class TestSolverAgreement:
    """Theorems 4 and 6 compute the same object; enumeration is the oracle."""

    @settings(**COMMON_SETTINGS)
    @given(seed=st.integers(min_value=0, max_value=5000))
    def test_three_deterministic_solvers_agree_on_trees(self, seed):
        model = make_random_tree(seed, max_bas=5, treelike=True).deterministic()
        bottom_up = pareto_front_treelike(model).values()
        enumerated = enumerate_pareto_front(model).values()
        bilp = pareto_front_bilp(model).values()
        assert bottom_up == enumerated
        assert len(bilp) == len(enumerated)
        for a, b in zip(bilp, enumerated):
            assert a == pytest.approx(b)

    @settings(**COMMON_SETTINGS)
    @given(seed=st.integers(min_value=0, max_value=5000))
    def test_bilp_agrees_with_enumeration_on_dags(self, seed):
        model = make_random_tree(seed, max_bas=5, treelike=False).deterministic()
        bilp = pareto_front_bilp(model).values()
        enumerated = enumerate_pareto_front(model).values()
        assert len(bilp) == len(enumerated)
        for a, b in zip(bilp, enumerated):
            assert a == pytest.approx(b)


class TestFrontInvariants:
    @settings(**COMMON_SETTINGS)
    @given(seed=st.integers(min_value=0, max_value=5000), treelike=st.booleans())
    def test_front_points_are_achievable(self, seed, treelike):
        """Every point of a computed front is realised by its witness attack."""
        model = make_random_tree(seed, max_bas=5, treelike=treelike).deterministic()
        front = (
            pareto_front_treelike(model) if treelike else pareto_front_bilp(model)
        )
        for point in front:
            assert point.attack is not None
            assert attack_cost(model, point.attack) == pytest.approx(point.cost)
            assert attack_damage(model, point.attack) == pytest.approx(point.damage)

    @settings(**COMMON_SETTINGS)
    @given(seed=st.integers(min_value=0, max_value=5000))
    def test_front_contains_empty_and_max_damage_points(self, seed):
        """The empty attack and the damage of the full attack always appear."""
        model = make_random_tree(seed, max_bas=5, treelike=True).deterministic()
        front = pareto_front_treelike(model)
        assert front.values()[0] == (0.0, 0.0) or front.values()[0][1] > 0
        full_damage = attack_damage(model, model.tree.basic_attack_steps)
        assert front.max_damage_given_cost(math.inf) == pytest.approx(full_damage)

    @settings(**COMMON_SETTINGS)
    @given(seed=st.integers(min_value=0, max_value=5000))
    def test_probabilistic_front_below_deterministic(self, seed):
        """Expected damage never exceeds deterministic damage, so for every
        budget the CEDPF value is ≤ the CDPF value."""
        model = make_random_tree(seed, max_bas=5, treelike=True)
        probabilistic = pareto_front_treelike_probabilistic(model)
        deterministic = pareto_front_treelike(model.deterministic())
        for budget in {point.cost for point in probabilistic}:
            assert probabilistic.max_damage_given_cost(budget) <= \
                deterministic.max_damage_given_cost(budget) + 1e-9


class TestSingleObjectiveConsistency:
    @settings(**COMMON_SETTINGS)
    @given(seed=st.integers(min_value=0, max_value=5000),
           budget=st.floats(min_value=0, max_value=25, allow_nan=False))
    def test_equation_1_dgc_from_front(self, seed, budget):
        model = make_random_tree(seed, max_bas=5, treelike=True).deterministic()
        front = pareto_front_treelike(model)
        direct = max_damage_given_cost_treelike(model, budget)[0]
        from_front = front.max_damage_given_cost(budget)
        assert direct == pytest.approx(from_front)

    @settings(**COMMON_SETTINGS)
    @given(seed=st.integers(min_value=0, max_value=5000),
           threshold=st.floats(min_value=0, max_value=30, allow_nan=False))
    def test_equation_2_cgd_from_front(self, seed, threshold):
        model = make_random_tree(seed, max_bas=5, treelike=True).deterministic()
        front = pareto_front_treelike(model)
        direct = min_cost_given_damage_treelike(model, threshold)[0]
        from_front = front.min_cost_given_damage(threshold)
        if from_front is None:
            assert direct is None
        else:
            assert direct == pytest.approx(from_front)

    @settings(**COMMON_SETTINGS)
    @given(seed=st.integers(min_value=0, max_value=5000),
           budgets=st.tuples(st.floats(min_value=0, max_value=25),
                             st.floats(min_value=0, max_value=25)))
    def test_dgc_monotone_in_budget(self, seed, budgets):
        """More budget never hurts (deterministic and probabilistic)."""
        small, large = sorted(budgets)
        model = make_random_tree(seed, max_bas=5, treelike=True)
        deterministic = model.deterministic()
        assert max_damage_given_cost_treelike(deterministic, small)[0] <= \
            max_damage_given_cost_treelike(deterministic, large)[0] + 1e-9
        assert max_expected_damage_given_cost_treelike(model, small)[0] <= \
            max_expected_damage_given_cost_treelike(model, large)[0] + 1e-9

    @settings(**COMMON_SETTINGS)
    @given(seed=st.integers(min_value=0, max_value=5000),
           budget=st.floats(min_value=0, max_value=25, allow_nan=False))
    def test_dgc_bilp_agrees_on_dags(self, seed, budget):
        model = make_random_tree(seed, max_bas=5, treelike=False).deterministic()
        from repro.core.enumerative import enumerate_max_damage_given_cost

        assert max_damage_given_cost_bilp(model, budget)[0] == pytest.approx(
            enumerate_max_damage_given_cost(model, budget)[0]
        )


class TestExpectedDamageProperties:
    @settings(**COMMON_SETTINGS)
    @given(seed=st.integers(min_value=0, max_value=5000))
    def test_expected_damage_between_zero_and_deterministic(self, seed):
        model = make_random_tree(seed, max_bas=5, treelike=True)
        deterministic = model.deterministic()
        full = frozenset(model.tree.basic_attack_steps)
        value = expected_damage(model, full)
        assert 0.0 <= value <= attack_damage(deterministic, full) + 1e-9

    @settings(**COMMON_SETTINGS)
    @given(seed=st.integers(min_value=0, max_value=5000))
    def test_expected_damage_monotone_in_probabilities(self, seed):
        """Raising every success probability cannot decrease expected damage."""
        model = make_random_tree(seed, max_bas=5, treelike=True)
        boosted_probabilities = {
            b: min(1.0, p + 0.1) for b, p in model.probability.items()
        }
        boosted = model.deterministic().with_probabilities(boosted_probabilities)
        full = frozenset(model.tree.basic_attack_steps)
        assert expected_damage(boosted, full) + 1e-9 >= expected_damage(model, full)
