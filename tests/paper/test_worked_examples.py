"""Every worked example and numbered claim of the paper, as executable tests.

These tests are the reproduction oracle: each one cites the example/theorem
it checks.  Where the computed value deviates from a printed value, the test
documents why (see also EXPERIMENTS.md).
"""


import pytest

from repro.attacktree import catalog
from repro.attacktree.node import NodeType
from repro.core.bilp import pareto_front_bilp
from repro.core.bottom_up import (
    max_damage_given_cost_treelike,
    node_pareto_front,
    pareto_front_treelike,
)
from repro.core.bottom_up_prob import (
    node_pareto_front_probabilistic,
    pareto_front_treelike_probabilistic,
)
from repro.core.problems import capability_matrix
from repro.core.semantics import attack_cost, attack_damage
from repro.probability.actualization import actualization_distribution, expected_damage


class TestFigure1AndExample1:
    """Fig. 1 / Example 1: the factory cd-AT and its ĉ / d̂ table."""

    def test_tree_structure(self):
        model = catalog.factory()
        assert model.tree.node_type("ps") is NodeType.OR
        assert model.tree.node_type("dr") is NodeType.AND
        assert set(model.tree.children("dr")) == {"pb", "fd"}
        assert set(model.tree.children("ps")) == {"ca", "dr"}

    @pytest.mark.parametrize(
        "attack,cost,damage",
        [
            (set(), 0, 0),
            ({"fd"}, 2, 10),
            ({"pb"}, 3, 0),
            ({"pb", "fd"}, 5, 310),
            ({"ca"}, 1, 200),
            ({"ca", "fd"}, 3, 210),
            ({"ca", "pb"}, 4, 200),
            ({"ca", "pb", "fd"}, 6, 310),
        ],
    )
    def test_example1_table(self, attack, cost, damage):
        model = catalog.factory()
        assert attack_cost(model, attack) == cost
        assert attack_damage(model, attack) == damage


class TestExample2AndFigure3:
    """Example 2 / Fig. 3: the Pareto front and the DgC query for U = 2."""

    def test_pareto_front(self):
        front = pareto_front_treelike(catalog.factory())
        assert front.values() == [(0, 0), (1, 200), (3, 210), (5, 310)]

    def test_dgc_for_budget_2(self):
        assert max_damage_given_cost_treelike(catalog.factory(), 2)[0] == 200

    def test_introduction_domination_claim(self):
        """Introduction: {ca} does damage 200 for cost 1, which is preferable
        over {fd} which does 10 damage for cost 2."""
        model = catalog.factory()
        assert attack_cost(model, {"ca"}) < attack_cost(model, {"fd"})
        assert attack_damage(model, {"ca"}) > attack_damage(model, {"fd"})


class TestExamples3To5:
    """Examples 3–5: the DTrip fronts propagated bottom-up."""

    def test_example3_bas_and_gate_combination(self):
        model = catalog.factory()
        dr_candidates = {
            (item.cost, item.damage, item.reached)
            for item in node_pareto_front(model, "dr")
        }
        # Example 4 keeps {(0,0,0), (2,10,0), (5,110,1)} and discards (3,0,0).
        assert dr_candidates == {(0, 0, False), (2, 10, False), (5, 110, True)}

    def test_example5_root_set(self):
        model = catalog.factory()
        root_front = {
            (item.cost, item.damage, item.reached)
            for item in node_pareto_front(model, "ps")
        }
        assert root_front == {
            (0, 0, False), (1, 200, True), (3, 210, True), (5, 310, True),
        }


class TestExample6AndTheorem5:
    """Example 6: the OR chain with costs/damages 2^i has a front of size 2^n."""

    @pytest.mark.parametrize("n", [2, 3, 4, 5])
    def test_front_size_is_exponential(self, n):
        front = pareto_front_treelike(catalog.knapsack_like_chain(n))
        assert len(front) == 2 ** n
        assert front.values() == [(float(k), float(k)) for k in range(2 ** n)]


class TestExample7:
    """Example 7: the BILP formulation of the factory AT."""

    def test_bilp_solves_factory(self):
        front = pareto_front_bilp(catalog.factory())
        assert front.values() == [(0, 0), (1, 200), (3, 210), (5, 310)]


class TestExamples8And9:
    """Examples 8–9: actualized attacks and expected damage."""

    def test_example8_distribution(self):
        model = catalog.factory_probabilistic()
        distribution = dict(actualization_distribution(model, {"pb", "fd"}))
        assert distribution[frozenset()] == pytest.approx(0.06)
        assert distribution[frozenset({"fd"})] == pytest.approx(0.54)
        assert distribution[frozenset({"pb"})] == pytest.approx(0.04)
        assert distribution[frozenset({"pb", "fd"})] == pytest.approx(0.36)

    def test_example9_expected_damage(self):
        """The paper prints 112, obtained as 0.06·0 + 0.54·0 + 0.04·10 + 0.36·310;
        with Example 1's damage table the outcome {fd} (probability 0.54) does
        damage 10 and {pb} (probability 0.04) does 0, giving 117.  We reproduce
        the definition, not the printed slip."""
        model = catalog.factory_probabilistic()
        value = expected_damage(model, {"pb", "fd"})
        assert value == pytest.approx(0.54 * 10 + 0.36 * 310)
        assert value == pytest.approx(117.0)


class TestExample10:
    """Example 10: deterministic vs probabilistic fronts of the OR pair."""

    def test_deterministic_table(self):
        model = catalog.example10_or_pair().deterministic()
        w_front = {
            (item.cost, item.damage, item.reached)
            for item in node_pareto_front(model, "w")
        }
        assert w_front == {(0, 0, False), (1, 1, True)}

    def test_probabilistic_table(self):
        model = catalog.example10_or_pair()
        w_front = {
            (item.cost, round(item.expected_damage, 6), round(item.reach_probability, 6))
            for item in node_pareto_front_probabilistic(model, "w")
        }
        assert w_front == {(0, 0.0, 0.0), (1, 0.5, 0.5), (2, 0.75, 0.75)}

    def test_redundant_attempt_is_optimal_only_probabilistically(self):
        model = catalog.example10_or_pair()
        probabilistic = pareto_front_treelike_probabilistic(model)
        deterministic = pareto_front_treelike(model.deterministic())
        assert (2.0, 0.75) in probabilistic.values()
        assert all(cost <= 1 for cost, _ in deterministic.values())


class TestTableI:
    """Table I: the algorithmic coverage matrix."""

    def test_capability_matrix(self):
        matrix = capability_matrix()
        assert matrix[("deterministic", "tree")].startswith("bottom-up")
        assert matrix[("deterministic", "dag")].startswith("BILP")
        assert matrix[("probabilistic", "tree")].startswith("bottom-up")
        assert "open" in matrix[("probabilistic", "dag")]


class TestSectionIVModelChoices:
    """Section IV: damage on internal nodes is essential; Fig. 2's rewrite."""

    def test_attack_not_reaching_top_still_does_damage(self):
        """The ATM-robbery motivation: non-successful attacks damage the system."""
        model = catalog.factory()
        assert not model.tree.is_successful({"fd"})
        assert attack_damage(model, {"fd"}) == 10

    def test_moving_internal_damage_to_dummy_bas_changes_semantics(self):
        """Fig. 2 (right): putting the damage on a dummy BAS would let cost 1
        already cause the damage — unlike the original AND semantics."""
        from repro.attacktree.builder import AttackTreeBuilder

        wrong = AttackTreeBuilder()
        wrong.bas("a", cost=1)
        wrong.bas("b", cost=1)
        wrong.bas("dummy", cost=1, damage=1)
        wrong.and_gate("root", ["a", "b", "dummy"])
        wrong_model = wrong.build_cd(root="root")
        assert attack_damage(wrong_model, {"dummy"}) == 1  # damage for cost 1

        correct = AttackTreeBuilder()
        correct.bas("a", cost=1)
        correct.bas("b", cost=1)
        correct.bas("dummy", cost=1)
        correct.and_gate("root", ["a", "b", "dummy"], damage=1)
        correct_model = correct.build_cd(root="root")
        assert attack_damage(correct_model, {"dummy"}) == 0
        assert attack_damage(correct_model, {"a", "b", "dummy"}) == 1
