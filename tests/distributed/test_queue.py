"""Tests for the durable work queue: state machine, leases, hardening.

The semantic tests run against all three implementations (the in-memory
queue and the HTTP broker client must behave exactly like the sqlite
one); the hardening and cross-process tests target :class:`SqliteQueue`,
mirroring ``tests/engine/test_store.py``.  Lease-timing tests construct
queues with ``grace_seconds=0`` so short leases expire on the dot; the
skew grace itself is covered by :class:`TestClockAndGrace` with an
injected clock.
"""

import json
import os
import signal
import sqlite3
import subprocess
import sys
import time
from pathlib import Path

import pytest

from repro.distributed import (
    InMemoryQueue,
    QueueError,
    SqliteQueue,
    TaskState,
    open_queue,
)

SRC = str(Path(__file__).resolve().parents[2] / "src")


@pytest.fixture
def queue_path(tmp_path):
    return str(tmp_path / "queue.sqlite")


@pytest.fixture(params=["sqlite", "memory", "http"])
def any_queue(request, queue_path):
    if request.param == "memory":
        queue = InMemoryQueue(grace_seconds=0.0)
    elif request.param == "http":
        from repro.net import BrokerServer, HttpQueue

        server = BrokerServer(queue_path=queue_path, grace_seconds=0.0)
        server.start()
        queue = HttpQueue(server.url)
        yield queue
        queue.close()
        server.close()
        return
    else:
        queue = SqliteQueue(queue_path, grace_seconds=0.0)
    yield queue
    queue.close()


def payloads(n):
    return [{"kind": "test", "index": i} for i in range(n)]


class TestSubmitClaim:
    def test_submit_creates_pending_tasks(self, any_queue):
        ids = any_queue.submit(payloads(3))
        assert len(ids) == len(set(ids)) == 3
        assert any_queue.counts() == {
            "pending": 3, "running": 0, "done": 0, "dead": 0, "cancelled": 0,
        }
        assert not any_queue.drained()

    def test_submit_rejects_nonpositive_retry_budget(self, any_queue):
        with pytest.raises(QueueError, match="max_attempts"):
            any_queue.submit(payloads(1), max_attempts=0)

    def test_claim_follows_submission_order(self, any_queue):
        any_queue.submit(payloads(3))
        claimed = [
            any_queue.claim("w", lease_seconds=30).payload["index"]
            for _ in range(3)
        ]
        assert claimed == [0, 1, 2]

    def test_claim_round_trips_payload(self, any_queue):
        payload = {"kind": "test", "nested": {"values": [1, 2.5, "x"]}}
        any_queue.submit([payload])
        task = any_queue.claim("w", lease_seconds=30)
        assert task.payload == payload
        assert task.state is TaskState.RUNNING
        assert task.attempts == 1
        assert task.worker_id == "w"
        assert task.lease_expires_unix is not None

    def test_claim_on_empty_queue_returns_none(self, any_queue):
        assert any_queue.claim("w", lease_seconds=30) is None
        any_queue.submit(payloads(1))
        any_queue.claim("w", lease_seconds=30)
        assert any_queue.claim("w2", lease_seconds=30) is None

    def test_second_submit_continues_sequence(self, any_queue):
        first = any_queue.submit(payloads(2))
        second = any_queue.submit(payloads(2))
        assert len(set(first) | set(second)) == 4
        seqs = [task.seq for task in any_queue.tasks()]
        assert seqs == sorted(seqs) and len(set(seqs)) == 4


class TestCompleteFail:
    def test_complete_stores_result(self, any_queue):
        any_queue.submit(payloads(1))
        task = any_queue.claim("w", lease_seconds=30)
        assert any_queue.complete(task.task_id, "w", {"answer": 42})
        done = any_queue.tasks(TaskState.DONE)
        assert len(done) == 1 and done[0].result == {"answer": 42}
        assert any_queue.drained()

    def test_complete_by_non_owner_is_rejected(self, any_queue):
        any_queue.submit(payloads(1))
        task = any_queue.claim("w", lease_seconds=30)
        assert not any_queue.complete(task.task_id, "impostor", {"answer": 0})
        assert any_queue.counts()["running"] == 1

    def test_fail_returns_task_to_pending_with_error(self, any_queue):
        any_queue.submit(payloads(1), max_attempts=3)
        task = any_queue.claim("w", lease_seconds=30)
        assert any_queue.fail(task.task_id, "w", "boom")
        pending = any_queue.tasks(TaskState.PENDING)
        assert len(pending) == 1
        assert pending[0].error == "boom"
        assert pending[0].attempts == 1

    def test_fail_by_non_owner_is_rejected(self, any_queue):
        any_queue.submit(payloads(1))
        task = any_queue.claim("w", lease_seconds=30)
        assert not any_queue.fail(task.task_id, "impostor", "boom")

    def test_retry_budget_exhaustion_dead_letters(self, any_queue):
        any_queue.submit(payloads(1), max_attempts=2)
        for attempt in (1, 2):
            task = any_queue.claim("w", lease_seconds=30)
            assert task.attempts == attempt
            any_queue.fail(task.task_id, "w", f"boom {attempt}")
        assert any_queue.claim("w", lease_seconds=30) is None
        dead = any_queue.tasks(TaskState.DEAD)
        assert len(dead) == 1 and dead[0].error == "boom 2"
        # Dead is terminal: the queue is drained, not stuck.
        assert any_queue.drained()


class TestCancel:
    def test_cancel_pending_is_terminal_and_not_claimable(self, any_queue):
        ids = any_queue.submit(payloads(3))
        cancelled = any_queue.cancel_pending(ids)
        assert cancelled == ids  # submission (seq) order
        assert any_queue.counts() == {
            "pending": 0, "running": 0, "done": 0, "dead": 0, "cancelled": 3,
        }
        assert any_queue.claim("w", lease_seconds=30) is None
        # Cancelled is terminal: nothing pending or running remains.
        assert any_queue.drained()
        for task in any_queue.tasks(TaskState.CANCELLED):
            assert task.error == "cancelled"

    def test_cancel_skips_running_done_and_dead_tasks(self, any_queue):
        ids = any_queue.submit(payloads(4), max_attempts=1)
        running = any_queue.claim("w", lease_seconds=30)
        done = any_queue.claim("w", lease_seconds=30)
        any_queue.complete(done.task_id, "w", {"ok": True})
        dead = any_queue.claim("w", lease_seconds=30)
        any_queue.fail(dead.task_id, "w", "boom")
        cancelled = any_queue.cancel_pending(ids)
        # Only the one still-pending task was withdrawn.
        assert cancelled == [ids[3]]
        counts = any_queue.counts()
        assert counts["cancelled"] == 1 and counts["running"] == 1
        # The running task's owner can still finish its attempt.
        assert any_queue.complete(running.task_id, "w", {"ok": True})

    def test_cancel_unknown_ids_is_a_noop(self, any_queue):
        any_queue.submit(payloads(1))
        assert any_queue.cancel_pending(["task-999999", "nonsense"]) == []
        assert any_queue.counts()["pending"] == 1

    def test_resubmit_dead_does_not_revive_cancelled(self, any_queue):
        ids = any_queue.submit(payloads(2), max_attempts=1)
        task = any_queue.claim("w", lease_seconds=30)
        any_queue.fail(task.task_id, "w", "boom")  # -> dead
        any_queue.cancel_pending(ids)  # -> the other one cancelled
        revived = any_queue.resubmit_dead()
        assert revived == [task.task_id]
        assert any_queue.counts()["cancelled"] == 1


class TestLeases:
    def test_expired_lease_returns_task_to_pending(self, any_queue):
        any_queue.submit(payloads(1))
        any_queue.claim("crashed", lease_seconds=0.05)
        time.sleep(0.1)
        assert any_queue.expire_leases() == 1
        task = any_queue.claim("survivor", lease_seconds=30)
        assert task is not None
        assert task.attempts == 2
        assert task.worker_id == "survivor"

    def test_claim_sweeps_expired_leases_itself(self, any_queue):
        # No separate janitor needed: a claim alone must recover the task.
        any_queue.submit(payloads(1))
        any_queue.claim("crashed", lease_seconds=0.05)
        time.sleep(0.1)
        assert any_queue.claim("survivor", lease_seconds=30) is not None

    def test_live_lease_is_invisible_to_others(self, any_queue):
        any_queue.submit(payloads(1))
        any_queue.claim("w1", lease_seconds=30)
        assert any_queue.expire_leases() == 0
        assert any_queue.claim("w2", lease_seconds=30) is None

    def test_heartbeat_extends_the_lease(self, any_queue):
        any_queue.submit(payloads(1))
        task = any_queue.claim("w", lease_seconds=0.15)
        for _ in range(4):
            time.sleep(0.05)
            assert any_queue.heartbeat(task.task_id, "w", 0.15)
        # Renewed past several lease intervals, still ours.
        assert any_queue.expire_leases() == 0
        assert any_queue.complete(task.task_id, "w", {"ok": True})

    def test_heartbeat_by_non_owner_is_rejected(self, any_queue):
        any_queue.submit(payloads(1))
        task = any_queue.claim("w", lease_seconds=30)
        assert not any_queue.heartbeat(task.task_id, "impostor", 30)

    def test_stale_owner_cannot_complete_after_reassignment(self, any_queue):
        any_queue.submit(payloads(1))
        task = any_queue.claim("slow", lease_seconds=0.05)
        time.sleep(0.1)
        reclaimed = any_queue.claim("fast", lease_seconds=30)
        assert reclaimed is not None
        # The slow worker finally finishes, but the task is not its anymore.
        assert not any_queue.complete(task.task_id, "slow", {"late": True})
        assert any_queue.complete(reclaimed.task_id, "fast", {"ok": True})
        done = any_queue.tasks(TaskState.DONE)
        assert done[0].result == {"ok": True}

    def test_expiry_at_budget_dead_letters_with_reason(self, any_queue):
        any_queue.submit(payloads(1), max_attempts=1)
        any_queue.claim("crashed", lease_seconds=0.05)
        time.sleep(0.1)
        any_queue.expire_leases()
        dead = any_queue.tasks(TaskState.DEAD)
        assert len(dead) == 1 and dead[0].error == "lease expired"


class TestMetaAndSummary:
    def test_meta_round_trip(self, any_queue):
        assert any_queue.get_meta("run") is None
        any_queue.set_meta("run", json.dumps({"name": "smoke"}))
        assert json.loads(any_queue.get_meta("run")) == {"name": "smoke"}
        any_queue.set_meta("run", "v2")
        assert any_queue.get_meta("run") == "v2"

    def test_set_meta_if_absent_is_first_writer_wins(self, any_queue):
        assert any_queue.set_meta_if_absent("run", "first")
        assert not any_queue.set_meta_if_absent("run", "second")
        assert any_queue.get_meta("run") == "first"

    def test_summary_counts_retries_and_workers(self, any_queue):
        any_queue.submit(payloads(2), max_attempts=3)
        task = any_queue.claim("w1", lease_seconds=30)
        any_queue.fail(task.task_id, "w1", "boom")
        task = any_queue.claim("w2", lease_seconds=30)
        any_queue.complete(task.task_id, "w2", {})
        summary = any_queue.summary()
        assert summary["tasks"] == 2
        assert summary["retries"] == 1
        assert "w2" in summary["workers"]
        assert summary["dead"] == []

    def test_summary_lists_dead_tasks(self, any_queue):
        any_queue.submit(payloads(1), max_attempts=1)
        task = any_queue.claim("w", lease_seconds=30)
        any_queue.fail(task.task_id, "w", "poison")
        summary = any_queue.summary()
        assert summary["dead"] == [
            {"task_id": task.task_id, "attempts": 1, "error": "poison"}
        ]


class TestSqliteHardening:
    def test_corrupted_file_raises_queue_error(self, queue_path):
        Path(queue_path).write_bytes(b"this is not a sqlite database\x00")
        with pytest.raises(QueueError, match="cannot open work queue"):
            SqliteQueue(queue_path)

    def test_stale_schema_version_is_rejected(self, queue_path):
        SqliteQueue(queue_path).close()
        with sqlite3.connect(queue_path) as connection:
            connection.execute(
                "UPDATE queue_meta SET value = '999' WHERE key = 'schema_version'"
            )
        with pytest.raises(QueueError, match="schema version '999'"):
            SqliteQueue(queue_path)

    def test_foreign_database_is_never_blessed(self, tmp_path):
        foreign = str(tmp_path / "myapp.sqlite")
        with sqlite3.connect(foreign) as connection:
            connection.execute("CREATE TABLE users (id INTEGER PRIMARY KEY)")
        with pytest.raises(QueueError, match="not a work queue"):
            SqliteQueue(foreign)
        with sqlite3.connect(foreign) as connection:
            tables = {
                row[0]
                for row in connection.execute(
                    "SELECT name FROM sqlite_master WHERE type = 'table'"
                )
            }
        assert tables == {"users"}

    def test_open_queue_must_exist(self, tmp_path):
        with pytest.raises(QueueError, match="no work queue"):
            open_queue(str(tmp_path / "absent.sqlite"), must_exist=True)

    def test_open_queue_creates_when_allowed(self, queue_path):
        with open_queue(queue_path) as queue:
            assert queue.counts()["pending"] == 0
        assert Path(queue_path).exists()

    def test_closed_queue_refuses_operations(self, queue_path):
        queue = SqliteQueue(queue_path)
        queue.close()
        with pytest.raises(QueueError, match="closed"):
            queue.claim("w", lease_seconds=30)
        queue.close()  # idempotent


_CLAIMER_SCRIPT = """
import json, sys
sys.path.insert(0, {src!r})
from repro.distributed import SqliteQueue

path, worker = sys.argv[1], sys.argv[2]
queue = SqliteQueue(path)
claimed = []
while True:
    task = queue.claim(worker, lease_seconds=60)
    if task is None:
        break
    claimed.append(task.task_id)
    queue.complete(task.task_id, worker, {{"by": worker}})
queue.close()
print(json.dumps(claimed))
"""

_HANG_SCRIPT = """
import sys, time
sys.path.insert(0, {src!r})
from repro.distributed import SqliteQueue

queue = SqliteQueue(sys.argv[1])
task = queue.claim(sys.argv[2], lease_seconds=float(sys.argv[3]))
assert task is not None
print(task.task_id, flush=True)
time.sleep(600)  # hold the claim until killed
"""


class TestCrossProcess:
    def test_two_worker_processes_never_double_claim(self, queue_path):
        """Two OS processes drain one queue; every task is claimed once."""
        queue = SqliteQueue(queue_path, grace_seconds=0.0)
        ids = queue.submit(payloads(40))
        script = _CLAIMER_SCRIPT.format(src=SRC)
        procs = [
            subprocess.Popen(
                [sys.executable, "-c", script, queue_path, worker],
                stdout=subprocess.PIPE, stderr=subprocess.PIPE, text=True,
            )
            for worker in ("w1", "w2")
        ]
        claims = {}
        for worker, proc in zip(("w1", "w2"), procs):
            out, err = proc.communicate(timeout=120)
            assert proc.returncode == 0, err
            claims[worker] = json.loads(out)
        # No overlap, nothing lost, nothing executed twice.
        assert set(claims["w1"]).isdisjoint(claims["w2"])
        assert sorted(claims["w1"] + claims["w2"]) == sorted(ids)
        assert queue.counts()["done"] == 40
        queue.close()

    def test_killed_claimer_releases_task_via_lease_expiry(self, queue_path):
        """SIGKILL mid-claim: the lease lapses and another process recovers."""
        queue = SqliteQueue(queue_path, grace_seconds=0.0)
        queue.submit(payloads(1))
        script = _HANG_SCRIPT.format(src=SRC)
        proc = subprocess.Popen(
            [sys.executable, "-c", script, queue_path, "doomed", "0.5"],
            stdout=subprocess.PIPE, text=True,
        )
        task_id = proc.stdout.readline().strip()
        assert task_id
        os.kill(proc.pid, signal.SIGKILL)
        proc.wait(timeout=30)
        time.sleep(0.7)  # let the lease lapse
        task = queue.claim("survivor", lease_seconds=30)
        assert task is not None and task.task_id == task_id
        assert task.attempts == 2
        queue.close()


class TestResubmitDead:
    def _dead_letter(self, queue, n=1, max_attempts=1):
        queue.submit(payloads(n), max_attempts=max_attempts)
        ids = []
        for _ in range(n):
            task = queue.claim("w", lease_seconds=30)
            queue.fail(task.task_id, "w", "poison")
            ids.append(task.task_id)
        return ids

    def test_resubmit_requeues_dead_tasks_with_fresh_budget(self, any_queue):
        dead_ids = self._dead_letter(any_queue, n=2)
        assert any_queue.counts()["dead"] == 2
        assert any_queue.resubmit_dead() == dead_ids
        pending = any_queue.tasks(TaskState.PENDING)
        assert [task.task_id for task in pending] == dead_ids
        for task in pending:
            assert task.attempts == 0
            assert task.error is None
            assert task.worker_id is None
        # The full retry budget is available again.
        task = any_queue.claim("w2", lease_seconds=30)
        assert task.attempts == 1
        assert any_queue.complete(task.task_id, "w2", {"ok": True})

    def test_resubmit_preserves_submission_order(self, any_queue):
        self._dead_letter(any_queue, n=3)
        ids = any_queue.resubmit_dead()
        claimed = [
            any_queue.claim("w", lease_seconds=30).task_id for _ in range(3)
        ]
        assert claimed == ids

    def test_resubmit_with_no_dead_tasks_is_a_noop(self, any_queue):
        any_queue.submit(payloads(1))
        assert any_queue.resubmit_dead() == []
        assert any_queue.counts()["pending"] == 1

    def test_resubmit_leaves_done_tasks_untouched(self, any_queue):
        any_queue.submit(payloads(1))
        task = any_queue.claim("w", lease_seconds=30)
        any_queue.complete(task.task_id, "w", {"answer": 1})
        self._dead_letter(any_queue)
        any_queue.resubmit_dead()
        (done,) = any_queue.tasks(TaskState.DONE)
        assert done.result == {"answer": 1}


class TestPrune:
    """Retention sweeps (``atcd queue prune``) across all three queues."""

    def _finish(self, queue, task_id, worker="w"):
        queue.complete(task_id, worker, {"ok": True})

    def test_prunes_done_and_cancelled_past_ttl(self, any_queue):
        ids = any_queue.submit(payloads(3))
        task = any_queue.claim("w", lease_seconds=30)
        self._finish(any_queue, task.task_id)
        any_queue.cancel_pending([ids[1]])
        time.sleep(0.01)
        assert any_queue.prune(0.0) == {"tasks": 2, "descriptors": 0}
        assert any_queue.counts() == {
            "pending": 1, "running": 0, "done": 0, "dead": 0, "cancelled": 0,
        }

    def test_generous_ttl_keeps_fresh_finishes(self, any_queue):
        any_queue.submit(payloads(1))
        task = any_queue.claim("w", lease_seconds=30)
        self._finish(any_queue, task.task_id)
        assert any_queue.prune(3600.0) == {"tasks": 0, "descriptors": 0}
        assert any_queue.counts()["done"] == 1

    def test_pending_running_and_dead_tasks_survive(self, any_queue):
        any_queue.submit(payloads(3), max_attempts=1)
        any_queue.claim("w", lease_seconds=30)  # running
        doomed = any_queue.claim("w", lease_seconds=30)
        any_queue.fail(doomed.task_id, "w", "boom")  # dead
        time.sleep(0.01)
        assert any_queue.prune(0.0) == {"tasks": 0, "descriptors": 0}
        counts = any_queue.counts()
        assert counts == {
            "pending": 1, "running": 1, "done": 0, "dead": 1, "cancelled": 0,
        }

    def test_orphaned_job_descriptors_are_collected(self, any_queue):
        ids = any_queue.submit(payloads(2))
        descriptor = {"tenant": "acme", "job_id": "j1", "task_ids": ids}
        any_queue.set_meta("job:acme:j1", json.dumps(descriptor))
        any_queue.set_meta_if_absent(
            "submit-dedupe:job:acme:j1", json.dumps(ids)
        )
        any_queue.set_meta("jobs:acme", json.dumps(["j1"]))
        for _ in ids:
            task = any_queue.claim("w", lease_seconds=30)
            self._finish(any_queue, task.task_id)
        time.sleep(0.01)
        # While any task is alive the descriptor stays; once pruned it goes
        # along with its dedupe record and tenant-index entry.
        assert any_queue.prune(0.0) == {"tasks": 2, "descriptors": 1}
        assert any_queue.get_meta("job:acme:j1") is None
        assert any_queue.get_meta("submit-dedupe:job:acme:j1") is None
        assert json.loads(any_queue.get_meta("jobs:acme")) == []

    def test_descriptor_with_a_live_task_is_kept(self, any_queue):
        ids = any_queue.submit(payloads(2))
        descriptor = {"tenant": "acme", "job_id": "j1", "task_ids": ids}
        any_queue.set_meta("job:acme:j1", json.dumps(descriptor))
        task = any_queue.claim("w", lease_seconds=30)
        self._finish(any_queue, task.task_id)  # the other stays pending
        time.sleep(0.01)
        assert any_queue.prune(0.0) == {"tasks": 1, "descriptors": 0}
        assert any_queue.get_meta("job:acme:j1") is not None

    def test_dead_tasks_keep_their_descriptor_inspectable(self, any_queue):
        ids = any_queue.submit(payloads(1), max_attempts=1)
        descriptor = {"tenant": "acme", "job_id": "j1", "task_ids": ids}
        any_queue.set_meta("job:acme:j1", json.dumps(descriptor))
        task = any_queue.claim("w", lease_seconds=30)
        any_queue.fail(task.task_id, "w", "boom")
        time.sleep(0.01)
        assert any_queue.prune(0.0) == {"tasks": 0, "descriptors": 0}
        assert any_queue.get_meta("job:acme:j1") is not None

    def test_undecodable_descriptors_are_never_deleted(self, any_queue):
        any_queue.set_meta("job:acme:junk", "not json {")
        assert any_queue.prune(0.0) == {"tasks": 0, "descriptors": 0}
        assert any_queue.get_meta("job:acme:junk") == "not json {"

    def test_task_ids_are_not_recycled_after_prune(self, any_queue):
        first = any_queue.submit(payloads(2))
        for _ in first:
            task = any_queue.claim("w", lease_seconds=30)
            self._finish(any_queue, task.task_id)
        time.sleep(0.01)
        any_queue.prune(0.0)
        second = any_queue.submit(payloads(2))
        assert not set(first) & set(second)

    def test_negative_ttl_is_rejected(self, any_queue):
        with pytest.raises(QueueError, match="ttl"):
            any_queue.prune(-1.0)


class TestClockAndGrace:
    """Lease expiry must run on the queue's injected clock, with a skew
    grace — an NTP step on one host must never double-execute a task."""

    @pytest.fixture(params=["sqlite", "memory"])
    def clocked_queue(self, request, queue_path):
        clock = {"now": 1000.0}
        if request.param == "memory":
            queue = InMemoryQueue(
                clock=lambda: clock["now"], grace_seconds=5.0
            )
        else:
            queue = SqliteQueue(
                queue_path, clock=lambda: clock["now"], grace_seconds=5.0
            )
        yield queue, clock
        queue.close()

    def test_expiry_uses_injected_clock_not_wall_time(self, clocked_queue):
        queue, clock = clocked_queue
        queue.submit(payloads(1))
        queue.claim("w", lease_seconds=10)
        # No wall-clock sleep anywhere: only the injected clock moves.
        clock["now"] = 1009.0
        assert queue.expire_leases() == 0
        clock["now"] = 1016.0  # past deadline (1010) + grace (5)
        assert queue.expire_leases() == 1
        assert queue.counts()["pending"] == 1

    def test_lease_within_grace_is_not_expired(self, clocked_queue):
        """Deadline passed, but by less than the grace: the lease holds,
        so a skewed sweeper cannot hand the task to a second worker."""
        queue, clock = clocked_queue
        queue.submit(payloads(1))
        task = queue.claim("w", lease_seconds=10)
        clock["now"] = 1014.0  # 4s past the deadline, inside the 5s grace
        assert queue.expire_leases() == 0
        assert queue.claim("thief", lease_seconds=10) is None
        # The rightful owner can still finish.
        assert queue.complete(task.task_id, "w", {"ok": True})

    def test_backward_clock_step_never_expires_a_live_lease(self, clocked_queue):
        queue, clock = clocked_queue
        queue.submit(payloads(1))
        task = queue.claim("w", lease_seconds=10)
        clock["now"] = 900.0  # NTP stepped the clock backwards
        assert queue.expire_leases() == 0
        assert queue.heartbeat(task.task_id, "w", 10)
        assert queue.complete(task.task_id, "w", {"ok": True})

    def test_negative_grace_is_rejected(self, queue_path):
        with pytest.raises(QueueError, match="grace_seconds"):
            InMemoryQueue(grace_seconds=-1.0)
        with pytest.raises(QueueError, match="grace_seconds"):
            SqliteQueue(queue_path, grace_seconds=-0.5)


class TestReplayIdempotence:
    """Lost-response replays (the HTTP client's retry) must not corrupt
    state or misreport outcomes; see the protocol docstrings."""

    def test_complete_replay_by_owner_is_still_success(self, any_queue):
        any_queue.submit(payloads(1))
        task = any_queue.claim("w", lease_seconds=30)
        assert any_queue.complete(task.task_id, "w", {"answer": 1})
        # The same worker's replayed complete: success, not a lost lease.
        assert any_queue.complete(task.task_id, "w", {"answer": 1})
        # A different worker's complete is still rejected.
        assert not any_queue.complete(task.task_id, "impostor", {"answer": 2})
        (done,) = any_queue.tasks(TaskState.DONE)
        assert done.result == {"answer": 1} and done.worker_id == "w"

    def test_submit_dedupe_key_replay_returns_original_ids(self, any_queue):
        first = any_queue.submit(payloads(2), dedupe_key="batch-1")
        assert any_queue.submit(payloads(2), dedupe_key="batch-1") == first
        assert any_queue.counts()["pending"] == 2
