"""Tests for the coordinator: sharding, waiting, gathering, fault tolerance.

The acceptance bar for the distributed runtime: a distributed profile run's
artifact results are identical to a sequential run of the same profile,
crashed workers lose no cases and duplicate none, and poison tasks are
dead-lettered without sinking the run.
"""

import json
import threading
import time

import pytest

from repro.attacktree import serialization
from repro.attacktree.catalog import factory
from repro.bench.harness import execute_specs
from repro.distributed import Coordinator, InMemoryQueue, QueueError, Worker
from repro.engine import AnalysisRequest, AnalysisSession
from repro.workloads import ScenarioSpec

TINY_SPECS = [
    ScenarioSpec(family="catalog", shape="treelike", setting="deterministic"),
    ScenarioSpec(family="catalog", shape="dag", setting="deterministic"),
]

RESULT_KEYS = ("case_id", "problem", "backend", "result_points", "value")


def results_section(rows):
    """The comparison key the CI gate uses: identity + results, no timings."""
    return json.dumps(
        [{key: row.get(key) for key in RESULT_KEYS} for row in rows],
        sort_keys=True,
    )


def run_workers(queue, count, **kwargs):
    workers = [
        Worker(queue, worker_id=f"w{i}", poll_seconds=0.01, **kwargs)
        for i in range(count)
    ]
    threads = [threading.Thread(target=worker.run) for worker in workers]
    for thread in threads:
        thread.start()
    for thread in threads:
        thread.join()


class TestProfileRuns:
    def test_distributed_results_identical_to_sequential(self):
        queue = InMemoryQueue()
        coordinator = Coordinator(queue, poll_seconds=0.01)
        coordinator.submit_profile("tiny", TINY_SPECS)
        run_workers(queue, 2)
        coordinator.wait(timeout=30)
        report = coordinator.gather(distributed={"workers": 2})
        sequential = [run.to_dict() for run in execute_specs(TINY_SPECS)]
        assert results_section(report.output["runs"]) == \
            results_section(sequential)
        assert report.dead == [] and report.retries == 0
        assert report.output["config"]["distributed"]["workers"] == 2
        assert len(report.workers) >= 1

    def test_artifact_rows_keep_submission_order(self):
        queue = InMemoryQueue()
        coordinator = Coordinator(queue, poll_seconds=0.01)
        coordinator.submit_profile("tiny", TINY_SPECS)
        # Drain in deliberately scrambled order: claim everything, complete
        # newest-first.
        tasks = []
        while True:
            task = queue.claim("w", lease_seconds=30)
            if task is None:
                break
            tasks.append(task)
        from repro.distributed import execute_task_payload
        for task in reversed(tasks):
            queue.complete(task.task_id, "w", execute_task_payload(task.payload))
        report = coordinator.gather()
        sequential = [run.to_dict() for run in execute_specs(TINY_SPECS)]
        assert [row["case_id"] for row in report.output["runs"]] == \
            [row["case_id"] for row in sequential]

    def test_submit_validates_before_queueing(self):
        queue = InMemoryQueue()
        coordinator = Coordinator(queue)
        bad = [ScenarioSpec(family="catalog", shape="treelike",
                            setting="deterministic", backend="nope")]
        with pytest.raises(ValueError):
            coordinator.submit_profile("bad", bad)
        assert queue.counts()["pending"] == 0

    def test_one_queue_holds_one_run(self):
        queue = InMemoryQueue()
        coordinator = Coordinator(queue)
        coordinator.submit_profile("tiny", TINY_SPECS[:1])
        with pytest.raises(QueueError, match="already holds run"):
            coordinator.submit_profile("tiny2", TINY_SPECS[:1])

    def test_rejected_submit_does_not_poison_the_queue(self):
        # A bad retry budget must fail *before* the run descriptor is
        # recorded, so the corrected re-submit succeeds on the same queue.
        queue = InMemoryQueue()
        coordinator = Coordinator(queue)
        with pytest.raises(ValueError, match="max_attempts"):
            coordinator.submit_profile("tiny", TINY_SPECS[:1], max_attempts=0)
        assert queue.get_meta("run") is None
        coordinator.submit_profile("tiny", TINY_SPECS[:1])
        assert queue.counts()["pending"] > 0

    def test_gather_requires_a_drained_queue(self):
        queue = InMemoryQueue()
        coordinator = Coordinator(queue)
        coordinator.submit_profile("tiny", TINY_SPECS[:1])
        with pytest.raises(QueueError, match="not complete"):
            coordinator.gather()

    def test_gather_requires_a_run(self):
        with pytest.raises(QueueError, match="no run"):
            Coordinator(InMemoryQueue()).gather()

    def test_wait_times_out_with_outstanding_work(self):
        queue = InMemoryQueue()
        coordinator = Coordinator(queue, poll_seconds=0.01)
        coordinator.submit_profile("tiny", TINY_SPECS[:1])
        with pytest.raises(QueueError, match="did not drain"):
            coordinator.wait(timeout=0.05)


class TestFaultTolerance:
    def test_killed_worker_mid_task_loses_and_duplicates_nothing(self):
        """A worker that dies holding a lease: the task is retried elsewhere
        and the gathered artifact matches the sequential run exactly."""
        queue = InMemoryQueue(grace_seconds=0.0)
        coordinator = Coordinator(queue, poll_seconds=0.01)
        coordinator.submit_profile("tiny", TINY_SPECS)
        # "Crash" a worker mid-task: claim with a short lease, never finish.
        doomed = queue.claim("doomed", lease_seconds=0.05)
        assert doomed is not None
        time.sleep(0.1)
        run_workers(queue, 2)
        counts = coordinator.wait(timeout=30)
        assert counts["dead"] == 0
        report = coordinator.gather()
        sequential = [run.to_dict() for run in execute_specs(TINY_SPECS)]
        # No lost cases, no duplicated cases, identical results.
        assert results_section(report.output["runs"]) == \
            results_section(sequential)
        assert report.retries == 1
        assert report.output["config"]["distributed"]["retries"] == 1

    def test_poison_task_dead_letters_but_run_completes(self):
        queue = InMemoryQueue()
        coordinator = Coordinator(queue, poll_seconds=0.01)
        coordinator.submit_profile("tiny", TINY_SPECS, max_attempts=2)
        # Corrupt one task's payload after submission: it will fail on
        # every worker, every attempt.
        victim = queue.tasks()[0]
        victim.payload["model"]["nodes"] = "corrupted"
        queue._tasks[victim.task_id] = victim  # in-memory surgery
        run_workers(queue, 2)
        counts = coordinator.wait(timeout=30)
        assert counts["dead"] == 1
        report = coordinator.gather()
        (dead,) = report.dead
        assert dead["attempts"] == 2
        assert dead["case_id"] == victim.payload["identity"]["case_id"]
        # Every other case completed and is present in the artifact.
        sequential = [run.to_dict() for run in execute_specs(TINY_SPECS)]
        survivors = [row for row in sequential
                     if row["case_id"] != dead["case_id"]]
        assert results_section(report.output["runs"]) == \
            results_section(survivors)
        assert report.output["config"]["distributed"]["dead_tasks"] == \
            report.dead

    def test_crash_retry_with_shared_store_is_idempotent(self):
        """First execution persisted to the store before the crash: the
        retry is a store hit with the original result."""
        from repro.engine import InMemoryStore
        from repro.distributed import execute_task_payload

        store = InMemoryStore()
        queue = InMemoryQueue(grace_seconds=0.0)
        coordinator = Coordinator(queue, poll_seconds=0.01)
        coordinator.submit_profile("tiny", TINY_SPECS[:1])
        doomed = queue.claim("doomed", lease_seconds=0.05)
        execute_task_payload(doomed.payload, store=store)  # result persisted
        time.sleep(0.1)
        run_workers(queue, 1, store=store)
        coordinator.wait(timeout=30)
        report = coordinator.gather()
        retried = next(
            row for row in report.output["runs"]
            if row["case_id"] == doomed.payload["identity"]["case_id"]
        )
        assert retried["store_hits"] >= 1
        # The retry recomputed nothing for the crashed case.
        assert store.stats.hits >= 1


class TestBatchRuns:
    def test_batch_results_match_session_run_batch(self):
        model = factory()
        requests = [
            {"problem": "cdpf"},
            {"problem": "dgc", "budget": 2},
            {"problem": "cgd", "threshold": 200},
        ]
        queue = InMemoryQueue()
        coordinator = Coordinator(queue, poll_seconds=0.01)
        coordinator.submit_requests(serialization.to_dict(model), requests)
        run_workers(queue, 2)
        coordinator.wait(timeout=30)
        report = coordinator.gather()
        assert report.kind == "batch"
        session = AnalysisSession(factory())
        expected = session.run_batch(
            [AnalysisRequest.from_dict(entry) for entry in requests]
        )
        assert [row.get("value") for row in report.output] == \
            [result.value for result in expected]
        assert [row["request"]["problem"] for row in report.output] == \
            [entry["problem"] for entry in requests]

    def test_batch_submit_validates_every_request(self):
        queue = InMemoryQueue()
        coordinator = Coordinator(queue)
        with pytest.raises(ValueError, match=r"requests\[1\]"):
            coordinator.submit_requests(
                serialization.to_dict(factory()),
                [{"problem": "cdpf"}, {"problem": "dgc"}],  # missing budget
            )
        assert queue.counts()["pending"] == 0
