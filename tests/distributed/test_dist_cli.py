"""Tests for the ``atcd dist`` CLI verbs and their error contract.

The worker subprocesses spawned by ``dist run`` (and by the kill test) only
need the queue file — task payloads are self-contained — so the tests can
shard a tiny in-test profile in the parent process and still exercise real
multi-process execution.
"""

import json
import os
import signal
import subprocess
import sys
import time
from pathlib import Path

import pytest

from repro.bench import profiles
from repro.bench.harness import execute_specs
from repro.cli import main
from repro.distributed import Coordinator, SqliteQueue
from repro.workloads import ScenarioSpec

SRC = str(Path(__file__).resolve().parents[2] / "src")

TINY_SPECS = [
    ScenarioSpec(family="catalog", shape="treelike", setting="deterministic"),
    ScenarioSpec(family="catalog", shape="dag", setting="deterministic"),
]

RESULT_KEYS = ("case_id", "problem", "backend", "result_points", "value")


def results_section(rows):
    return json.dumps(
        [{key: row.get(key) for key in RESULT_KEYS} for row in rows],
        sort_keys=True,
    )


@pytest.fixture
def tiny_profile(monkeypatch):
    """Register a fast profile; workers never resolve it (payloads are
    self-contained), so patching the parent process suffices."""
    monkeypatch.setitem(profiles.PROFILES, "tiny-cli", list(TINY_SPECS))
    return "tiny-cli"


def worker_env():
    env = dict(os.environ)
    env["PYTHONPATH"] = SRC + os.pathsep + env.get("PYTHONPATH", "")
    return env


class TestDistRun:
    def test_run_matches_sequential_artifact(self, tiny_profile, tmp_path, capsys):
        out = str(tmp_path / "BENCH_dist.json")
        store = str(tmp_path / "store.sqlite")
        assert main([
            "dist", "run", "--profile", tiny_profile, "--workers", "2",
            "--store", store, "--out", out, "--timeout", "120",
        ]) == 0
        artifact = json.load(open(out))
        sequential = [run.to_dict() for run in execute_specs(TINY_SPECS)]
        assert results_section(artifact["runs"]) == results_section(sequential)
        distributed = artifact["config"]["distributed"]
        assert distributed["workers"] == 2
        assert distributed["dead_tasks"] == []
        assert "wrote" in capsys.readouterr().out

    def test_run_keeps_an_explicit_queue_file(self, tiny_profile, tmp_path):
        queue_path = str(tmp_path / "kept.queue")
        out = str(tmp_path / "BENCH_kept.json")
        assert main([
            "dist", "run", "--profile", tiny_profile, "--workers", "1",
            "--queue", queue_path, "--out", out, "--timeout", "120",
        ]) == 0
        with SqliteQueue(queue_path) as queue:
            assert queue.counts()["done"] == len(json.load(open(out))["runs"])


class TestSubmitWorkerStatusGather:
    def test_multi_host_flow_on_one_queue(self, tiny_profile, tmp_path, capsys):
        queue_path = str(tmp_path / "flow.queue")
        out = str(tmp_path / "BENCH_flow.json")
        assert main(["dist", "submit", "--queue", queue_path,
                     "--profile", tiny_profile]) == 0
        assert "submitted" in capsys.readouterr().out
        # Status before any worker ran.
        assert main(["dist", "status", "--queue", queue_path]) == 0
        assert "pending" in capsys.readouterr().out
        # Gathering too early is a user error, not a partial artifact.
        assert main(["dist", "gather", "--queue", queue_path]) == 2
        assert "not complete" in capsys.readouterr().err
        # One in-process worker drains it.
        assert main(["dist", "worker", "--queue", queue_path,
                     "--poll", "0.01"]) == 0
        assert main(["dist", "gather", "--queue", queue_path,
                     "--out", out]) == 0
        artifact = json.load(open(out))
        sequential = [run.to_dict() for run in execute_specs(TINY_SPECS)]
        assert results_section(artifact["runs"]) == results_section(sequential)

    def test_batch_submit_and_gather(self, tmp_path, capsys):
        queue_path = str(tmp_path / "batch.queue")
        model = str(tmp_path / "factory.json")
        requests = str(tmp_path / "requests.json")
        main(["catalog", "factory", "--out", model])
        Path(requests).write_text(
            json.dumps([{"problem": "cdpf"}, {"problem": "dgc", "budget": 2}])
        )
        capsys.readouterr()
        assert main(["dist", "submit", "--queue", queue_path,
                     "--model", model, "--requests", requests]) == 0
        assert main(["dist", "worker", "--queue", queue_path,
                     "--poll", "0.01"]) == 0
        out = str(tmp_path / "results.json")
        assert main(["dist", "gather", "--queue", queue_path,
                     "--out", out]) == 0
        results = json.load(open(out))
        assert len(results) == 2
        assert results[1]["value"] == 200.0


class TestKillOneWorkerMidRun:
    def test_run_completes_via_lease_expiry_retry(self, tiny_profile, tmp_path):
        """The acceptance scenario: two real worker processes, one SIGKILLed
        mid-task; the run still completes with no lost or duplicated cases
        and results identical to the sequential run."""
        queue_path = str(tmp_path / "kill.queue")
        with SqliteQueue(queue_path) as queue:
            coordinator = Coordinator(queue, poll_seconds=0.05)
            coordinator.submit_profile("tiny-cli", TINY_SPECS)
            victim = subprocess.Popen(
                [sys.executable, "-m", "repro.cli", "dist", "worker",
                 "--queue", queue_path, "--lease", "1", "--poll", "0.05",
                 "--inject-delay", "120", "--worker-id", "victim"],
                env=worker_env(),
            )
            try:
                # Wait until the victim holds a claim, then kill it cold.
                deadline = time.time() + 30
                while queue.counts()["running"] == 0:
                    assert time.time() < deadline, "victim never claimed"
                    assert victim.poll() is None, "victim exited prematurely"
                    time.sleep(0.05)
                os.kill(victim.pid, signal.SIGKILL)
                victim.wait(timeout=30)
                survivor = subprocess.Popen(
                    [sys.executable, "-m", "repro.cli", "dist", "worker",
                     "--queue", queue_path, "--lease", "5", "--poll", "0.05",
                     "--worker-id", "survivor"],
                    env=worker_env(),
                )
                try:
                    coordinator.wait(timeout=120)
                finally:
                    survivor.wait(timeout=30)
            finally:
                if victim.poll() is None:
                    victim.kill()
            report = coordinator.gather()
        assert report.dead == []
        assert report.retries >= 1
        rows = report.output["runs"]
        sequential = [run.to_dict() for run in execute_specs(TINY_SPECS)]
        # No lost cases, no duplicates, identical results.
        assert len(rows) == len(sequential)
        assert len({row["case_id"] for row in rows}) == len(rows)
        assert results_section(rows) == results_section(sequential)
        assert all(row_worker == "survivor" for row_worker in (
            task.worker_id
            for task in SqliteQueue(queue_path).tasks()
            if task.result is not None
        ))


class TestPoisonTaskCLI:
    def test_dead_letter_reported_and_exit_1(self, tiny_profile, tmp_path, capsys):
        queue_path = str(tmp_path / "poison.queue")
        out = str(tmp_path / "BENCH_poison.json")
        assert main(["dist", "submit", "--queue", queue_path,
                     "--profile", tiny_profile, "--max-attempts", "2"]) == 0
        # Corrupt one payload on disk: every execution attempt will fail.
        import sqlite3

        with sqlite3.connect(queue_path) as connection:
            connection.execute(
                "UPDATE tasks SET payload = '{\"kind\": \"bench-case\"}' "
                "WHERE seq = 0"
            )
        assert main(["dist", "worker", "--queue", queue_path,
                     "--poll", "0.01"]) == 0
        capsys.readouterr()
        # Partial output: artifact written, dead task reported, exit 1.
        assert main(["dist", "gather", "--queue", queue_path,
                     "--out", out]) == 1
        captured = capsys.readouterr()
        assert "DEAD task" in captured.err
        artifact = json.load(open(out))
        assert len(artifact["config"]["distributed"]["dead_tasks"]) == 1
        sequential = [run.to_dict() for run in execute_specs(TINY_SPECS)]
        assert len(artifact["runs"]) == len(sequential) - 1


class TestDistErrors:
    """User errors exit 2 with one line, per the CLI error contract."""

    def test_zero_workers_exits_2(self, tiny_profile, capsys):
        assert main(["dist", "run", "--profile", tiny_profile,
                     "--workers", "0"]) == 2
        assert "workers must be a positive integer" in capsys.readouterr().err

    def test_unknown_profile_exits_2(self, tmp_path, capsys):
        assert main(["dist", "run", "--profile", "nope",
                     "--queue", str(tmp_path / "q")]) == 2
        assert capsys.readouterr().err.startswith("atcd: ")

    def test_worker_on_missing_queue_exits_2(self, tmp_path, capsys):
        assert main(["dist", "worker",
                     "--queue", str(tmp_path / "absent.queue")]) == 2
        assert "no work queue" in capsys.readouterr().err

    def test_status_on_missing_queue_exits_2(self, tmp_path, capsys):
        assert main(["dist", "status",
                     "--queue", str(tmp_path / "absent.queue")]) == 2

    def test_gather_on_missing_queue_exits_2(self, tmp_path, capsys):
        assert main(["dist", "gather",
                     "--queue", str(tmp_path / "absent.queue")]) == 2

    def test_submit_without_work_exits_2(self, tmp_path, capsys):
        assert main(["dist", "submit",
                     "--queue", str(tmp_path / "q.queue")]) == 2
        assert "nothing to submit" in capsys.readouterr().err

    def test_submit_profile_and_model_exits_2(self, tiny_profile, tmp_path, capsys):
        assert main(["dist", "submit", "--queue", str(tmp_path / "q.queue"),
                     "--profile", tiny_profile, "--model", "m.json",
                     "--requests", "r.json"]) == 2

    def test_double_submit_exits_2(self, tiny_profile, tmp_path, capsys):
        queue_path = str(tmp_path / "q.queue")
        assert main(["dist", "submit", "--queue", queue_path,
                     "--profile", tiny_profile]) == 0
        assert main(["dist", "submit", "--queue", queue_path,
                     "--profile", tiny_profile]) == 2
        assert "already holds run" in capsys.readouterr().err

    def test_worker_on_missing_queue_creates_no_store_file(self, tmp_path, capsys):
        store_path = tmp_path / "stray-store.sqlite"
        assert main(["dist", "worker",
                     "--queue", str(tmp_path / "absent.queue"),
                     "--store", str(store_path)]) == 2
        assert not store_path.exists()

    def test_batch_submit_rejects_profile_only_flags(self, tmp_path, capsys):
        model = str(tmp_path / "factory.json")
        main(["catalog", "factory", "--out", model])
        requests = tmp_path / "requests.json"
        requests.write_text(json.dumps([{"problem": "cdpf"}]))
        capsys.readouterr()
        assert main(["dist", "submit", "--queue", str(tmp_path / "q.queue"),
                     "--model", model, "--requests", str(requests),
                     "--trace-memory"]) == 2
        assert "only apply to profile submissions" in capsys.readouterr().err

    def test_status_on_foreign_database_exits_2(self, tmp_path, capsys):
        import sqlite3

        foreign = str(tmp_path / "other.sqlite")
        with sqlite3.connect(foreign) as connection:
            connection.execute("CREATE TABLE users (id INTEGER)")
        assert main(["dist", "status", "--queue", foreign]) == 2
        assert "not a work queue" in capsys.readouterr().err


class TestResubmitCLI:
    def test_resubmit_recovers_a_dead_lettered_run(self, tiny_profile, tmp_path,
                                                   capsys):
        """The acceptance scenario: a run stuck on dead letters completes
        after `atcd dist resubmit` once the underlying fault is fixed."""
        import sqlite3

        queue_path = str(tmp_path / "recover.queue")
        out = str(tmp_path / "BENCH_recovered.json")
        assert main(["dist", "submit", "--queue", queue_path,
                     "--profile", tiny_profile, "--max-attempts", "1"]) == 0
        # Break one payload on disk (an "environment fault"), remembering
        # the original so the fault can be fixed later.
        with sqlite3.connect(queue_path) as connection:
            (original,) = connection.execute(
                "SELECT payload FROM tasks WHERE seq = 0"
            ).fetchone()
            connection.execute(
                "UPDATE tasks SET payload = '{\"kind\": \"bench-case\"}' "
                "WHERE seq = 0"
            )
        assert main(["dist", "worker", "--queue", queue_path,
                     "--poll", "0.01"]) == 0
        assert main(["dist", "gather", "--queue", queue_path,
                     "--out", out]) == 1  # stuck: dead task, partial output
        # Fix the fault, resubmit the dead task, drain again: complete run.
        with sqlite3.connect(queue_path) as connection:
            connection.execute(
                "UPDATE tasks SET payload = ? WHERE seq = 0", (original,)
            )
        capsys.readouterr()
        assert main(["dist", "resubmit", "--queue", queue_path]) == 0
        assert "resubmitted 1 dead tasks" in capsys.readouterr().out
        assert main(["dist", "worker", "--queue", queue_path,
                     "--poll", "0.01"]) == 0
        assert main(["dist", "gather", "--queue", queue_path,
                     "--out", out]) == 0
        artifact = json.load(open(out))
        sequential = [run.to_dict() for run in execute_specs(TINY_SPECS)]
        assert results_section(artifact["runs"]) == results_section(sequential)
        assert artifact["config"]["distributed"]["dead_tasks"] == []

    def test_resubmit_without_dead_tasks_reports_noop(self, tiny_profile,
                                                      tmp_path, capsys):
        queue_path = str(tmp_path / "clean.queue")
        assert main(["dist", "submit", "--queue", queue_path,
                     "--profile", tiny_profile]) == 0
        capsys.readouterr()
        assert main(["dist", "resubmit", "--queue", queue_path]) == 0
        assert "no dead tasks" in capsys.readouterr().out

    def test_resubmit_on_missing_queue_exits_2(self, tmp_path, capsys):
        assert main(["dist", "resubmit",
                     "--queue", str(tmp_path / "absent.queue")]) == 2
        assert "no work queue" in capsys.readouterr().err


class TestGracefulShutdownCLI:
    def test_sigterm_fails_in_flight_task_back_immediately(
        self, tiny_profile, tmp_path
    ):
        """A SIGTERMed worker must hand its running task straight back to
        the queue (no lease wait) and exit 128+SIGTERM.  The lease here is
        300s: if the task reappears as pending promptly, it was the signal
        handler's fail-back, not lease expiry."""
        from repro.distributed import SqliteQueue as Queue

        queue_path = str(tmp_path / "sigterm.queue")
        assert main(["dist", "submit", "--queue", queue_path,
                     "--profile", tiny_profile]) == 0
        victim = subprocess.Popen(
            [sys.executable, "-m", "repro.cli", "dist", "worker",
             "--queue", queue_path, "--lease", "300", "--poll", "0.05",
             "--inject-delay", "120", "--worker-id", "victim"],
            env=worker_env(),
        )
        with Queue(queue_path, grace_seconds=0.0) as queue:
            try:
                deadline = time.time() + 30
                while queue.counts()["running"] == 0:
                    assert time.time() < deadline, "victim never claimed"
                    assert victim.poll() is None, "victim exited prematurely"
                    time.sleep(0.05)
                victim.send_signal(signal.SIGTERM)
                assert victim.wait(timeout=30) == 128 + signal.SIGTERM
            finally:
                if victim.poll() is None:
                    victim.kill()
            counts = queue.counts()
            assert counts["running"] == 0, "task left invisible under its lease"
            assert counts["pending"] == len(queue.tasks())  # nothing done yet
            failed = [task for task in queue.tasks() if task.attempts == 1]
            assert len(failed) == 1
            assert "signal" in failed[0].error
        # A fresh worker completes the run — nothing was lost.
        assert main(["dist", "worker", "--queue", queue_path,
                     "--poll", "0.01"]) == 0
        out = str(tmp_path / "BENCH_sigterm.json")
        assert main(["dist", "gather", "--queue", queue_path,
                     "--out", out]) == 0
        artifact = json.load(open(out))
        sequential = [run.to_dict() for run in execute_specs(TINY_SPECS)]
        assert results_section(artifact["runs"]) == results_section(sequential)
