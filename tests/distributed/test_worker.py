"""Tests for the worker loop: execution, retries, heartbeats, idempotency."""

import threading
import time

import pytest

from repro.attacktree import serialization
from repro.attacktree.catalog import factory
from repro.core.problems import Problem
from repro.engine import AnalysisRequest, InMemoryStore, run_request
from repro.distributed import (
    InMemoryQueue,
    TaskState,
    Worker,
    execute_task_payload,
)
from repro.bench.harness import case_payload, expand_specs
from repro.workloads import ScenarioSpec


def catalog_payloads(trace_memory=False):
    """The catalog treelike/deterministic cases as bench-case task payloads."""
    spec = ScenarioSpec(
        family="catalog", shape="treelike", setting="deterministic"
    )
    out = []
    for spec_, case in expand_specs([spec]):
        payload = case_payload(spec_, case, repeats=1, trace_memory=trace_memory)
        payload["kind"] = "bench-case"
        out.append(payload)
    return out


def request_payload(budget=2.0):
    return {
        "kind": "request",
        "model": serialization.to_dict(factory()),
        "request": {"problem": "dgc", "budget": budget},
    }


class TestExecution:
    def test_worker_drains_bench_case_tasks(self):
        queue = InMemoryQueue()
        payloads = catalog_payloads()
        queue.submit(payloads)
        report = Worker(queue, worker_id="w", poll_seconds=0.01).run()
        assert report.completed == len(payloads)
        assert report.failed == 0
        done = queue.tasks(TaskState.DONE)
        assert [task.result["case_id"] for task in done] == [
            payload["identity"]["case_id"] for payload in payloads
        ]
        assert all(task.result["wall_time_seconds"] >= 0 for task in done)

    def test_worker_executes_request_tasks(self):
        queue = InMemoryQueue()
        queue.submit([request_payload(budget=2.0)])
        report = Worker(queue, worker_id="w", poll_seconds=0.01).run()
        assert report.completed == 1
        (done,) = queue.tasks(TaskState.DONE)
        expected = run_request(factory(), AnalysisRequest(Problem.DGC, budget=2.0))
        assert done.result["value"] == expected.value

    def test_unknown_kind_is_dead_lettered_not_a_crash(self):
        queue = InMemoryQueue()
        queue.submit([{"kind": "nonsense"}], max_attempts=2)
        queue.submit([request_payload()])
        report = Worker(queue, worker_id="w", poll_seconds=0.01).run()
        # The poison task burned its retries; the good task still completed.
        assert report.completed == 1
        assert report.failed == 2
        (dead,) = queue.tasks(TaskState.DEAD)
        assert "unknown task kind" in dead.error
        assert queue.drained()

    def test_max_tasks_bounds_the_loop(self):
        queue = InMemoryQueue()
        queue.submit(catalog_payloads())
        report = Worker(
            queue, worker_id="w", max_tasks=1, poll_seconds=0.01
        ).run()
        assert report.executed == 1
        assert queue.counts()["pending"] == 1

    def test_execute_task_payload_rejects_unknown_kind(self):
        with pytest.raises(ValueError, match="unknown task kind"):
            execute_task_payload({"kind": "nope"})

    def test_trace_memory_payload_records_peak_kb(self):
        queue = InMemoryQueue()
        queue.submit(catalog_payloads(trace_memory=True))
        Worker(queue, worker_id="w", poll_seconds=0.01).run()
        for task in queue.tasks(TaskState.DONE):
            assert task.result["peak_kb"] > 0


class TestIdempotency:
    def test_store_hit_short_circuits_a_retried_task(self):
        """A task whose first execution persisted its result is answered
        from the store on retry — including the original wall time."""
        store = InMemoryStore()
        queue = InMemoryQueue(grace_seconds=0.0)
        (payload,) = [request_payload(budget=3.0)]
        queue.submit([payload])
        # First attempt: executes for real, writes through, but the worker
        # "crashes" before completing (simulated by abandoning the claim).
        task = queue.claim("crashed", lease_seconds=0.05)
        first = execute_task_payload(task.payload, store=store)
        assert store.stats.writes == 1
        time.sleep(0.1)
        queue.expire_leases()
        # Retry on a healthy worker sharing the store: served, not computed.
        report = Worker(
            queue, worker_id="survivor", store=store, poll_seconds=0.01
        ).run()
        assert report.completed == 1
        (done,) = queue.tasks(TaskState.DONE)
        assert done.result["cache_hit"] is True
        assert done.result["value"] == first["value"]
        assert done.result["wall_time_seconds"] == first["wall_time_seconds"]
        assert store.stats.hits == 1

    def test_bench_case_retry_reports_store_hit(self):
        store = InMemoryStore()
        payloads = catalog_payloads()
        warm = InMemoryQueue()
        warm.submit(payloads)
        Worker(warm, worker_id="first", store=store, poll_seconds=0.01).run()
        retry = InMemoryQueue()
        retry.submit(payloads)
        Worker(retry, worker_id="second", store=store, poll_seconds=0.01).run()
        for task in retry.tasks(TaskState.DONE):
            assert task.result["store_hits"] >= 1


class TestHeartbeats:
    def test_long_task_outlives_its_lease_via_heartbeats(self):
        """A task running far past lease_seconds is never reassigned while
        its worker lives."""
        queue = InMemoryQueue()
        queue.submit([{"kind": "slow"}])

        def slow_executor(payload):
            time.sleep(0.6)  # several times the lease
            return {"ok": True}

        worker = Worker(
            queue, worker_id="slow", lease_seconds=0.2, poll_seconds=0.01,
            executor=slow_executor,
        )
        worker_thread = threading.Thread(target=lambda: reports.append(worker.run()))
        reports = []
        worker_thread.start()
        deadline = time.time() + 5
        while queue.counts()["running"] == 0:
            assert time.time() < deadline, "worker never claimed the task"
            time.sleep(0.01)
        # Only now unleash the thief: the slow worker holds the claim.
        thief_results = []
        thief_deadline = time.time() + 0.8
        while time.time() < thief_deadline:
            task = queue.claim("thief", lease_seconds=30)
            if task is not None:
                thief_results.append(task)
            time.sleep(0.02)
        worker_thread.join()
        (report,) = reports
        assert report.completed == 1
        assert thief_results == []
        (done,) = queue.tasks(TaskState.DONE)
        assert done.worker_id == "slow"

    def test_lost_lease_is_reported_as_failure_not_success(self):
        """A worker stalled past its lease (no heartbeat — executor blocks
        the keeper's renewals from mattering by claiming directly) must not
        count the task as completed once someone else finished it."""
        queue = InMemoryQueue(grace_seconds=0.0)
        queue.submit([{"kind": "x"}])
        task = queue.claim("stalled", lease_seconds=0.05)
        time.sleep(0.1)
        # Another worker picks it up and completes it.
        report = Worker(queue, worker_id="fast", poll_seconds=0.01,
                        executor=lambda payload: {"by": "fast"}).run()
        assert report.completed == 1
        # The stalled worker's attempt to complete is rejected.
        assert not queue.complete(task.task_id, "stalled", {"by": "stalled"})
        (done,) = queue.tasks(TaskState.DONE)
        assert done.result == {"by": "fast"}


class TestGracefulShutdown:
    """WorkerShutdown (what the SIGTERM/SIGINT handler raises) must fail
    the in-flight task back to the queue instead of abandoning it."""

    def test_shutdown_mid_task_fails_the_claim_back(self):
        import signal as signal_module

        from repro.distributed import WorkerShutdown

        queue = InMemoryQueue(grace_seconds=0.0)
        queue.submit([{"kind": "x"}], max_attempts=3)

        def interrupted_executor(payload):
            raise WorkerShutdown(signal_module.SIGTERM)

        report = Worker(
            queue, worker_id="doomed", lease_seconds=300,
            poll_seconds=0.01, executor=interrupted_executor,
        ).run()
        assert report.interrupted == signal_module.SIGTERM
        assert report.failed == 1
        # Back to pending *immediately* — no lease wait — with the signal
        # recorded and the attempt counted.
        (pending,) = queue.tasks(TaskState.PENDING)
        assert pending.attempts == 1
        assert "signal" in pending.error
        assert queue.claim("survivor", lease_seconds=30) is not None

    def test_shutdown_fail_back_is_ownership_checked(self):
        """A task whose lease already moved to another worker must not be
        failed back by the interrupted (former) owner."""
        import signal as signal_module

        from repro.distributed import WorkerShutdown

        queue = InMemoryQueue(grace_seconds=0.0)
        queue.submit([{"kind": "x"}], max_attempts=5)

        def steal_then_shutdown(payload):
            # Simulate a lease lapse mid-run: someone else claims and
            # completes the task while we were stalled.  The sleep lets
            # the 10ms lease expire; it stays under the keeper's first
            # renewal tick (50ms), so the lease genuinely lapses.
            time.sleep(0.03)
            queue.expire_leases()
            stolen = queue.claim("thief", lease_seconds=30)
            assert stolen is not None
            queue.complete(stolen.task_id, "thief", {"by": "thief"})
            raise WorkerShutdown(signal_module.SIGTERM)

        report = Worker(
            queue, worker_id="stalled", lease_seconds=0.01,
            poll_seconds=0.01, executor=steal_then_shutdown,
        ).run()
        assert report.interrupted == signal_module.SIGTERM
        assert report.failed == 0  # nothing was ours to fail back
        (done,) = queue.tasks(TaskState.DONE)
        assert done.result == {"by": "thief"}

    def test_shutdown_between_tasks_exits_cleanly(self):
        import signal as signal_module

        from repro.distributed import WorkerShutdown

        queue = InMemoryQueue(grace_seconds=0.0)
        done_first = []

        def one_then_shutdown(payload):
            if done_first:
                raise WorkerShutdown(signal_module.SIGINT)
            done_first.append(True)
            return {"ok": True}

        queue.submit([{"kind": "a"}, {"kind": "b"}])
        report = Worker(
            queue, worker_id="w", poll_seconds=0.01,
            executor=one_then_shutdown,
        ).run()
        assert report.completed == 1
        assert report.interrupted == signal_module.SIGINT
        assert queue.counts()["pending"] == 1

    def test_shutdown_during_claim_fails_back_the_committed_claim(self):
        """The narrowest race: the signal lands after the queue committed
        our claim but before run() assigned it.  The shutdown path must
        ask the queue what it believes is ours and fail that back."""
        import signal as signal_module

        from repro.distributed import WorkerShutdown

        inner = InMemoryQueue(grace_seconds=0.0)
        inner.submit([{"kind": "x"}], max_attempts=3)

        class ShutdownInsideClaim:
            """Claim commits on the real queue; the 'signal' raises before
            the caller ever sees the task."""

            def claim(self, worker_id, lease_seconds):
                inner.claim(worker_id, lease_seconds)
                raise WorkerShutdown(signal_module.SIGTERM)

            def __getattr__(self, name):
                return getattr(inner, name)

        report = Worker(
            ShutdownInsideClaim(), worker_id="w", lease_seconds=300,
            poll_seconds=0.01,
        ).run()
        assert report.interrupted == signal_module.SIGTERM
        assert report.failed == 1
        (pending,) = inner.tasks(TaskState.PENDING)
        assert pending.attempts == 1 and "signal" in pending.error
        assert inner.claim("survivor", lease_seconds=30) is not None

    def test_second_signal_does_not_interrupt_the_fail_back(self):
        """The installed handler raises once; later signals only confirm
        the stop, so the fail-back (or report printing) is never aborted
        by an impatient second Ctrl-C."""
        import os
        import signal as signal_module

        from repro.distributed import WorkerShutdown, signal_shutdown

        worker = Worker(InMemoryQueue(grace_seconds=0.0), worker_id="w")
        with signal_shutdown(worker):
            with pytest.raises(WorkerShutdown):
                os.kill(os.getpid(), signal_module.SIGTERM)
                time.sleep(0.01)  # bytecode boundary for delivery
            # Second signal: absorbed (stop re-confirmed), no raise.
            os.kill(os.getpid(), signal_module.SIGTERM)
            time.sleep(0.01)
        assert worker._stop_event.is_set()
