"""Tests for the interval-valued (robust) cost-damage extension."""

import pytest

from repro.attacktree.catalog import data_server, factory
from repro.extensions.robust import (
    Interval,
    IntervalCostDamageAT,
    robust_pareto_front,
)


class TestInterval:
    def test_validation(self):
        with pytest.raises(ValueError):
            Interval(2, 1)
        with pytest.raises(ValueError):
            Interval(-1, 2)

    def test_exact_and_width(self):
        interval = Interval.exact(3.0)
        assert interval.lo == interval.hi == 3.0
        assert interval.width == 0.0
        assert Interval(1, 4).width == 3.0


class TestIntervalModel:
    def make_model(self) -> IntervalCostDamageAT:
        base = factory()
        return IntervalCostDamageAT(
            base.tree,
            cost={"ca": (1, 2), "pb": 3, "fd": 2},
            damage={"ps": (150, 250), "dr": 100, "fd": 10},
        )

    def test_scalar_and_tuple_inputs_coerced(self):
        model = self.make_model()
        assert model.cost["pb"].lo == model.cost["pb"].hi == 3
        assert model.cost["ca"].lo == 1 and model.cost["ca"].hi == 2

    def test_missing_cost_rejected(self):
        base = factory()
        with pytest.raises(ValueError, match="missing"):
            IntervalCostDamageAT(base.tree, cost={"ca": 1})

    def test_scenarios(self):
        model = self.make_model()
        attacker = model.scenario(attacker_favourable=True)
        defender = model.scenario(attacker_favourable=False)
        assert attacker.cost_of("ca") == 1 and defender.cost_of("ca") == 2
        assert attacker.damage_of("ps") == 250 and defender.damage_of("ps") == 150


class TestRobustFront:
    def test_exact_intervals_reduce_to_plain_front(self):
        base = factory()
        model = IntervalCostDamageAT(
            base.tree,
            cost={b: base.cost[b] for b in base.basic_attack_steps},
            damage=dict(base.damage),
        )
        robust = robust_pareto_front(model)
        assert robust.pessimistic.values() == robust.optimistic.values()
        assert len(robust.robust_attacks) == len(robust.pessimistic)

    def test_band_ordering(self):
        model = IntervalCostDamageAT(
            factory().tree,
            cost={"ca": (1, 2), "pb": 3, "fd": 2},
            damage={"ps": (150, 250), "dr": 100, "fd": 10},
        )
        robust = robust_pareto_front(model)
        low, high = robust.damage_band(3)
        assert low <= high
        assert high >= 250  # attacker-favourable: ca costs 1 and ps yields 250

    def test_robust_attacks_are_on_both_fronts(self):
        model = IntervalCostDamageAT(
            factory().tree,
            cost={"ca": (1, 2), "pb": 3, "fd": 2},
            damage={"ps": (150, 250), "dr": 100, "fd": 10},
        )
        robust = robust_pareto_front(model)
        pessimistic_attacks = {p.attack for p in robust.pessimistic}
        optimistic_attacks = {p.attack for p in robust.optimistic}
        for attack in robust.robust_attacks:
            assert attack in pessimistic_attacks
            assert attack in optimistic_attacks

    def test_works_on_dag(self):
        base = data_server()
        model = IntervalCostDamageAT(
            base.tree,
            cost={b: (base.cost[b] * 0.9, base.cost[b] * 1.1)
                  for b in base.basic_attack_steps},
            damage=dict(base.damage),
        )
        robust = robust_pareto_front(model)
        low, high = robust.damage_band(300)
        assert low <= 24.0 <= high
