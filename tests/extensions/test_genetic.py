"""Tests for the NSGA-II approximation extension."""

import pytest

from repro.attacktree.catalog import data_server, example10_or_pair, factory, panda_iot
from repro.core.bilp import pareto_front_bilp
from repro.core.bottom_up import pareto_front_treelike
from repro.extensions.genetic import GeneticConfig, approximate_pareto_front


class TestConfig:
    def test_invalid_population(self):
        with pytest.raises(ValueError, match="even number"):
            GeneticConfig(population_size=5)
        with pytest.raises(ValueError, match="even number"):
            GeneticConfig(population_size=2)

    def test_invalid_generations(self):
        with pytest.raises(ValueError, match="generations"):
            GeneticConfig(generations=0)


class TestApproximation:
    def test_recovers_exact_front_on_factory(self):
        """The search space has 8 attacks; NSGA-II must find the whole front."""
        exact = pareto_front_treelike(factory())
        approximate = approximate_pareto_front(factory(), GeneticConfig(seed=1))
        assert approximate.values() == exact.values()

    def test_never_reports_infeasible_points(self):
        """Every approximate point must be dominated-or-equal w.r.t. the exact
        front (the GA can only under-approximate, never invent better points)."""
        exact = pareto_front_treelike(panda_iot().deterministic())
        approximate = approximate_pareto_front(
            panda_iot().deterministic(),
            GeneticConfig(population_size=32, generations=20, seed=2),
        )
        for cost, damage in approximate.values():
            assert exact.dominates_point(cost, damage)

    def test_hypervolume_close_to_exact_on_panda(self):
        model = panda_iot().deterministic()
        exact = pareto_front_treelike(model)
        approximate = approximate_pareto_front(
            model, GeneticConfig(population_size=64, generations=60, seed=3)
        )
        bound = max(exact.costs())
        ratio = approximate.hypervolume(bound) / exact.hypervolume(bound)
        assert 0.85 <= ratio <= 1.0 + 1e-9

    def test_works_on_dag(self):
        model = data_server()
        exact = pareto_front_bilp(model)
        approximate = approximate_pareto_front(
            model, GeneticConfig(population_size=32, generations=30, seed=4)
        )
        for cost, damage in approximate.values():
            assert exact.dominates_point(cost, damage)

    def test_probabilistic_objective(self):
        approximate = approximate_pareto_front(
            example10_or_pair(),
            GeneticConfig(population_size=8, generations=10, seed=5),
            probabilistic=True,
        )
        assert approximate.values() == [(0, 0), (1, 0.5), (2, 0.75)]

    def test_probabilistic_requires_cdp(self):
        with pytest.raises(TypeError, match="cdp-AT"):
            approximate_pareto_front(factory(), probabilistic=True)

    def test_deterministic_given_seed(self):
        first = approximate_pareto_front(factory(), GeneticConfig(seed=9))
        second = approximate_pareto_front(factory(), GeneticConfig(seed=9))
        assert first.values() == second.values()

    def test_witnesses_attached(self):
        approximate = approximate_pareto_front(factory(), GeneticConfig(seed=1))
        assert all(point.attack is not None for point in approximate)
