"""Tests for the defence-hardening extension."""

import math

import pytest

from repro.attacktree.catalog import data_server, factory, panda_iot
from repro.extensions.hardening import (
    Countermeasure,
    apply_countermeasures,
    optimal_hardening,
)


class TestCountermeasure:
    def test_validation(self):
        with pytest.raises(ValueError, match="non-negative"):
            Countermeasure("m", -1, {"ca": 1})
        with pytest.raises(ValueError, match="affects no BAS"):
            Countermeasure("m", 1, {})
        with pytest.raises(ValueError, match="lowers the cost"):
            Countermeasure("m", 1, {"ca": -2})


class TestApplyCountermeasures:
    def test_additive_increase(self):
        hardened = apply_countermeasures(
            factory(), [Countermeasure("patch", 1, {"ca": 4})]
        )
        assert hardened.cost_of("ca") == 5
        assert hardened.cost_of("pb") == 3  # untouched

    def test_disable_bas(self):
        hardened = apply_countermeasures(
            factory(), [Countermeasure("airgap", 1, {"ca": math.inf})]
        )
        assert hardened.cost_of("ca") > 1e5
        assert math.isfinite(hardened.cost_of("ca"))

    def test_unknown_bas_rejected(self):
        with pytest.raises(KeyError, match="unknown BASs"):
            apply_countermeasures(factory(), [Countermeasure("m", 1, {"nope": 1})])

    def test_probabilistic_model_keeps_probabilities(self):
        hardened = apply_countermeasures(
            panda_iot(), [Countermeasure("training", 2, {"b18": 3})]
        )
        assert hardened.cost_of("b18") == 6
        assert hardened.probability_of("b18") == 0.9

    def test_measures_stack(self):
        hardened = apply_countermeasures(
            factory(),
            [Countermeasure("a", 1, {"ca": 2}), Countermeasure("b", 1, {"ca": 3})],
        )
        assert hardened.cost_of("ca") == 6


class TestOptimalHardening:
    def setup_method(self):
        self.measures = [
            Countermeasure("harden_network", 2, {"ca": 4}),
            Countermeasure("guard_door", 1, {"fd": math.inf}),
            Countermeasure("bomb_detector", 3, {"pb": math.inf}),
        ]

    def test_no_budget_choses_nothing(self):
        result = optimal_hardening(factory(), self.measures,
                                   defence_budget=0, attacker_budget=2)
        assert result.chosen == ()
        assert result.residual_damage == 200
        assert result.evaluated_combinations == 1

    def test_small_budget_picks_best_single_measure(self):
        """With attacker budget 2 the threat is {ca}; hardening the network
        pushes its cost beyond the budget, dropping damage to 10 ({fd})."""
        result = optimal_hardening(factory(), self.measures,
                                   defence_budget=2, attacker_budget=2)
        assert result.chosen_names == ("harden_network",)
        assert result.residual_damage == 10

    def test_larger_budget_eliminates_cheap_attacks(self):
        result = optimal_hardening(factory(), self.measures,
                                   defence_budget=3, attacker_budget=2)
        assert set(result.chosen_names) == {"harden_network", "guard_door"}
        assert result.residual_damage == 0

    def test_defence_is_minimal_among_ties(self):
        """If two defences achieve the same residual damage, the cheaper wins."""
        measures = [
            Countermeasure("cheap", 1, {"ca": 10}),
            Countermeasure("expensive", 5, {"ca": 10}),
        ]
        result = optimal_hardening(factory(), measures,
                                   defence_budget=10, attacker_budget=1)
        assert result.chosen_names == ("cheap",)

    def test_probabilistic_objective(self):
        measures = [Countermeasure("leak_policy", 1, {"b18": 10})]
        result = optimal_hardening(panda_iot(), measures, defence_budget=1,
                                   attacker_budget=4, probabilistic=True)
        # Hardening b18 leaves base-station theft (expected damage 10.5) as
        # the best attack within budget 4.
        assert result.chosen_names == ("leak_policy",)
        assert result.residual_damage == pytest.approx(10.5)

    def test_on_dag_model(self):
        measures = [
            Countermeasure("ftp_patch", 100, {"b8": math.inf, "b9": math.inf}),
            Countermeasure("ssh_patch", 80, {"b7": math.inf}),
        ]
        baseline = optimal_hardening(data_server(), measures,
                                     defence_budget=0, attacker_budget=260)
        assert baseline.residual_damage == 24.0
        # Either patch alone leaves an alternative exploit within budget 260
        # (SSH via b6+b7 = 255, or FTP via b6+b8 = 250), so the optimiser
        # correctly refuses to spend money on a defence that does not help.
        partial = optimal_hardening(data_server(), measures,
                                    defence_budget=150, attacker_budget=260)
        assert partial.chosen_names == ()
        assert partial.residual_damage == 24.0
        # Both patches together close every buffer overflow the attacker can
        # afford, driving the residual damage to zero.
        full = optimal_hardening(data_server(), measures,
                                 defence_budget=200, attacker_budget=260)
        assert set(full.chosen_names) == {"ftp_patch", "ssh_patch"}
        assert full.residual_damage == 0.0

    def test_max_countermeasures_cap(self):
        result = optimal_hardening(factory(), self.measures, defence_budget=10,
                                   attacker_budget=6, max_countermeasures=1)
        assert len(result.chosen) <= 1

    def test_duplicate_names_rejected(self):
        with pytest.raises(ValueError, match="unique"):
            optimal_hardening(
                factory(),
                [Countermeasure("m", 1, {"ca": 1}), Countermeasure("m", 2, {"fd": 1})],
                defence_budget=5, attacker_budget=2,
            )

    def test_negative_budget_rejected(self):
        with pytest.raises(ValueError, match="non-negative"):
            optimal_hardening(factory(), self.measures, defence_budget=-1,
                              attacker_budget=2)
