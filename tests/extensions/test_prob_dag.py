"""Tests for the probabilistic-DAG extension (the paper's open problem)."""

import pytest

from repro.attacktree.builder import AttackTreeBuilder
from repro.attacktree.catalog import example10_or_pair, panda_iot
from repro.core.bottom_up_prob import pareto_front_treelike_probabilistic
from repro.extensions.prob_dag import (
    max_expected_damage_exact,
    pareto_front_probabilistic_exact,
    pareto_front_probabilistic_montecarlo,
)


def small_probabilistic_dag():
    """A 4-BAS DAG: the shared BAS ``s`` feeds two AND gates."""
    builder = AttackTreeBuilder()
    builder.bas("s", cost=2, probability=0.5)
    builder.bas("a", cost=1, probability=0.8)
    builder.bas("b", cost=3, probability=0.6)
    builder.bas("c", cost=2, probability=0.9)
    builder.and_gate("g1", ["s", "a"], damage=10)
    builder.and_gate("g2", ["s", "b"], damage=20)
    builder.or_gate("extra", ["c"], damage=5)
    builder.or_gate("root", ["g1", "g2", "extra"], damage=8)
    return builder.build_cdp(root="root")


class TestExactEnumerative:
    def test_agrees_with_bottom_up_on_treelike_models(self):
        model = example10_or_pair()
        exact = pareto_front_probabilistic_exact(model)
        bottom_up = pareto_front_treelike_probabilistic(model)
        assert exact.values() == pytest.approx(bottom_up.values())

    def test_small_dag_front_is_consistent(self):
        model = small_probabilistic_dag()
        front = pareto_front_probabilistic_exact(model)
        assert front.is_consistent()
        assert len(front) >= 3
        # Shared-BAS correlation: the most expensive point attempts everything.
        assert front.values()[-1][0] == pytest.approx(8.0)

    def test_shared_bas_correlation_handled(self):
        """With a shared BAS the naive independence recursion would be wrong;
        the exact enumeration accounts for the correlation.  Attack {s, a, b}
        reaches g1 and g2 only when the *same* s succeeds."""
        from repro.probability.actualization import expected_damage

        model = small_probabilistic_dag()
        # P(g1) = 0.5*0.8 = 0.4, P(g2) = 0.5*0.6 = 0.3,
        # P(root) = P(g1 or g2) with shared s = 0.5*(1 - 0.2*0.4) = 0.46.
        expected = 10 * 0.4 + 20 * 0.3 + 8 * 0.46
        assert expected_damage(model, {"s", "a", "b"}) == pytest.approx(expected)
        # The naive independence formula would instead give
        # P(root) = 1 - (1-0.4)(1-0.3) = 0.58 — strictly larger.
        naive_root = 1 - (1 - 0.4) * (1 - 0.3)
        assert expected < 10 * 0.4 + 20 * 0.3 + 8 * naive_root

    def test_size_guard(self):
        with pytest.raises(ValueError, match="2\\^22"):
            pareto_front_probabilistic_exact(panda_iot(), max_bas=18)

    def test_max_expected_damage_exact(self):
        model = small_probabilistic_dag()
        value, witness = max_expected_damage_exact(model, budget=3)
        # Within budget 3: {s, a} (cost 3) gives 0.4*10 + 0.4*8 = 7.2;
        # {c} (cost 2) gives 0.9*5 + 0.9*8 = 11.7; {a,c} adds nothing to c.
        assert value == pytest.approx(11.7)
        assert witness == frozenset({"c"})

    def test_max_expected_damage_zero_budget(self):
        value, witness = max_expected_damage_exact(small_probabilistic_dag(), budget=0)
        assert value == 0.0
        assert witness == frozenset()


class TestMonteCarloFront:
    def test_approximates_exact_front(self):
        model = small_probabilistic_dag()
        exact = pareto_front_probabilistic_exact(model)
        approximate = pareto_front_probabilistic_montecarlo(
            model, samples_per_attack=4000, seed=3
        )
        exact_by_cost = {p.cost: p.damage for p in exact}
        for point in approximate:
            if point.cost in exact_by_cost:
                assert point.expected_damage == pytest.approx(
                    exact_by_cost[point.cost], abs=3 * point.estimate.standard_error + 0.3
                )

    def test_points_sorted_by_cost(self):
        approximate = pareto_front_probabilistic_montecarlo(
            small_probabilistic_dag(), samples_per_attack=200, seed=1
        )
        costs = [p.cost for p in approximate]
        assert costs == sorted(costs)

    def test_size_guard(self):
        with pytest.raises(ValueError, match="limit"):
            pareto_front_probabilistic_montecarlo(panda_iot(), max_bas=10)

    def test_point_accessor(self):
        approximate = pareto_front_probabilistic_montecarlo(
            small_probabilistic_dag(), samples_per_attack=100, seed=1
        )
        point = approximate[-1]
        assert point.expected_damage == point.estimate.mean
