"""Tests for the multilinear reach-polynomial extension (probabilistic DAGs)."""

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.attacktree.builder import AttackTreeBuilder
from repro.attacktree.catalog import data_server, example10_or_pair, factory_probabilistic
from repro.attacktree.transform import with_unit_probabilities
from repro.core.bottom_up_prob import pareto_front_treelike_probabilistic
from repro.core.semantics import all_attacks
from repro.extensions.polynomial import (
    MultilinearPolynomial,
    expected_damage_polynomial,
    pareto_front_probabilistic_polynomial,
    reach_polynomials,
)
from repro.extensions.prob_dag import pareto_front_probabilistic_exact
from repro.probability.actualization import expected_damage

from ..conftest import make_random_tree


class TestMultilinearPolynomial:
    def test_constant_and_variable(self):
        assert MultilinearPolynomial.constant(3.0).evaluate({}) == 3.0
        x = MultilinearPolynomial.variable("a")
        assert x.evaluate({"a": 0.4}) == pytest.approx(0.4)
        assert x.evaluate({}) == 0.0

    def test_addition_and_subtraction(self):
        a = MultilinearPolynomial.variable("a")
        b = MultilinearPolynomial.variable("b")
        poly = a + b - a
        assert poly == b

    def test_idempotent_multiplication(self):
        a = MultilinearPolynomial.variable("a")
        assert a * a == a  # x² = x

    def test_multiplication_distributes(self):
        a = MultilinearPolynomial.variable("a")
        b = MultilinearPolynomial.variable("b")
        product = (a + b) * (a + b)
        # (a + b)² = a + 2ab + b under idempotence.
        assert product.evaluate({"a": 1.0, "b": 0.0}) == pytest.approx(1.0)
        assert product.evaluate({"a": 1.0, "b": 1.0}) == pytest.approx(4.0)

    def test_complement(self):
        a = MultilinearPolynomial.variable("a")
        complement = a.complement()
        assert complement.evaluate({"a": 0.3}) == pytest.approx(0.7)

    def test_zero_coefficients_dropped(self):
        a = MultilinearPolynomial.variable("a")
        zero = a - a
        assert zero.monomial_count() == 0
        assert zero == MultilinearPolynomial.constant(0.0)

    def test_variables_and_repr(self):
        a = MultilinearPolynomial.variable("a")
        b = MultilinearPolynomial.variable("b")
        poly = a * b + MultilinearPolynomial.constant(2.0)
        assert poly.variables() == frozenset({"a", "b"})
        assert "a·b" in repr(poly)


class TestReachPolynomials:
    def test_or_gate_inclusion_exclusion(self):
        model = example10_or_pair()
        polynomials = reach_polynomials(model.tree)
        w = polynomials["w"]
        # 1 − (1 − v1)(1 − v2) = v1 + v2 − v1·v2.
        assert w.evaluate({"v1": 0.5, "v2": 0.5}) == pytest.approx(0.75)
        assert w.monomial_count() == 3

    def test_and_gate_product(self):
        model = factory_probabilistic()
        polynomials = reach_polynomials(model.tree)
        assert polynomials["dr"].evaluate({"pb": 0.4, "fd": 0.9}) == pytest.approx(0.36)

    def test_shared_bas_idempotence_on_dag(self):
        """The crux of the open problem: with a shared BAS the polynomial
        method must not double-count it."""
        builder = AttackTreeBuilder()
        builder.bas("s", cost=1, probability=0.5)
        builder.bas("a", cost=1, probability=0.8)
        builder.bas("b", cost=1, probability=0.6)
        builder.and_gate("g1", ["s", "a"])
        builder.and_gate("g2", ["s", "b"])
        builder.or_gate("root", ["g1", "g2"])
        model = builder.build_cdp(root="root")
        polynomials = reach_polynomials(model.tree)
        # P(root) = P(s·a ∨ s·b) = p_s(p_a + p_b − p_a·p_b), NOT the naive
        # independent-OR value.
        value = polynomials["root"].evaluate({"s": 0.5, "a": 0.8, "b": 0.6})
        assert value == pytest.approx(0.5 * (0.8 + 0.6 - 0.48))
        naive = 0.4 + 0.3 - 0.4 * 0.3
        assert value != pytest.approx(naive)

    def test_data_server_polynomials_are_small(self):
        polynomials = reach_polynomials(data_server().tree)
        assert max(p.monomial_count() for p in polynomials.values()) <= 64

    def test_size_guard(self):
        with pytest.raises(ValueError, match="monomials"):
            reach_polynomials(data_server().tree, max_monomials=2)


class TestExpectedDamagePolynomial:
    def test_matches_actualization_enumeration_on_dag(self):
        model = with_unit_probabilities(data_server()).deterministic().with_probabilities(
            {b: 0.7 for b in data_server().tree.basic_attack_steps}
        )
        polynomials = reach_polynomials(model.tree)
        for attack in [frozenset({"b6", "b8"}), frozenset({"b6", "b7", "b8"}),
                       frozenset({"b6", "b8", "b11", "b12"})]:
            assert expected_damage_polynomial(model, attack, polynomials) == pytest.approx(
                expected_damage(model, attack)
            )

    def test_matches_treelike_recursion_on_trees(self):
        model = factory_probabilistic()
        for attack in all_attacks(model):
            assert expected_damage_polynomial(model, attack) == pytest.approx(
                expected_damage(model, attack)
            )

    @settings(max_examples=20, deadline=None)
    @given(seed=st.integers(min_value=0, max_value=2000), treelike=st.booleans())
    def test_matches_exact_semantics_on_random_models(self, seed, treelike):
        model = make_random_tree(seed, max_bas=4, treelike=treelike)
        polynomials = reach_polynomials(model.tree)
        for attack in all_attacks(model):
            assert expected_damage_polynomial(model, attack, polynomials) == pytest.approx(
                expected_damage(model, attack)
            )


class TestPolynomialCedpf:
    def test_matches_enumerative_exact_on_small_dag(self):
        builder = AttackTreeBuilder()
        builder.bas("s", cost=2, probability=0.5)
        builder.bas("a", cost=1, probability=0.8)
        builder.bas("b", cost=3, probability=0.6)
        builder.and_gate("g1", ["s", "a"], damage=10)
        builder.and_gate("g2", ["s", "b"], damage=20)
        builder.or_gate("root", ["g1", "g2"], damage=8)
        model = builder.build_cdp(root="root")
        fast = pareto_front_probabilistic_polynomial(model)
        slow = pareto_front_probabilistic_exact(model)
        assert len(fast) == len(slow)
        for a, b in zip(fast.values(), slow.values()):
            assert a == pytest.approx(b)

    def test_matches_bottom_up_on_treelike_models(self):
        model = example10_or_pair()
        assert pareto_front_probabilistic_polynomial(model).values() == pytest.approx(
            pareto_front_treelike_probabilistic(model).values()
        )

    def test_data_server_probabilistic_front(self):
        """The paper's open problem solved exactly on the Fig. 5 DAG with a
        uniform 0.8 success probability: a smoke check that the method scales
        to the case-study size (12 BASs, shared connection step)."""
        base = data_server()
        model = base.with_probabilities({b: 0.8 for b in base.tree.basic_attack_steps})
        front = pareto_front_probabilistic_polynomial(model)
        assert front.is_consistent()
        # The deterministic front dominates the expected-damage front pointwise.
        assert front.max_damage_given_cost(1281) <= 82.8 + 1e-9
        # With an unlimited budget the best attack is to attempt everything.
        total_cost = sum(model.cost.values())
        assert front.max_damage_given_cost(total_cost) == pytest.approx(
            expected_damage(model, frozenset(base.tree.basic_attack_steps)), abs=1e-6
        )

    def test_size_guard(self):
        from repro.attacktree.catalog import panda_iot

        with pytest.raises(ValueError, match="2\\^22"):
            pareto_front_probabilistic_polynomial(panda_iot(), max_bas=20)
