"""Tests for the ``atcd`` command-line interface."""

import json

import pytest

from repro.attacktree import catalog, serialization
from repro.cli import build_parser, main


@pytest.fixture
def factory_json(tmp_path):
    path = tmp_path / "factory.json"
    serialization.save_json(catalog.factory(), str(path))
    return str(path)


@pytest.fixture
def panda_json(tmp_path):
    path = tmp_path / "panda.json"
    serialization.save_json(catalog.panda_iot(), str(path))
    return str(path)


class TestParser:
    def test_all_subcommands_registered(self):
        parser = build_parser()
        args = parser.parse_args(["analyze", "model.json"])
        assert args.command == "analyze"
        args = parser.parse_args(["dgc", "model.json", "--budget", "3"])
        assert args.budget == 3.0

    def test_missing_subcommand_errors(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args([])


class TestCommands:
    def test_analyze(self, factory_json, capsys):
        assert main(["analyze", factory_json]) == 0
        output = capsys.readouterr().out
        assert "Pareto front" in output
        assert "treelike" in output

    def test_pareto(self, factory_json, capsys):
        assert main(["pareto", factory_json]) == 0
        output = capsys.readouterr().out
        assert "200" in output and "310" in output

    def test_pareto_probabilistic(self, panda_json, capsys):
        assert main(["pareto", panda_json, "--probabilistic"]) == 0
        assert "18" in capsys.readouterr().out

    def test_pareto_with_plot(self, factory_json, capsys):
        assert main(["pareto", factory_json, "--plot"]) == 0
        output = capsys.readouterr().out
        assert "●" in output
        assert "cost →" in output

    def test_dgc(self, factory_json, capsys):
        assert main(["dgc", factory_json, "--budget", "2"]) == 0
        output = capsys.readouterr().out
        assert "200" in output and "ca" in output

    def test_cgd(self, factory_json, capsys):
        assert main(["cgd", factory_json, "--threshold", "300"]) == 0
        output = capsys.readouterr().out
        assert "5" in output

    def test_cgd_unachievable_returns_nonzero(self, factory_json, capsys):
        assert main(["cgd", factory_json, "--threshold", "99999"]) == 1
        assert "no attack" in capsys.readouterr().out

    def test_catalog_to_stdout(self, capsys):
        assert main(["catalog", "factory"]) == 0
        parsed = json.loads(capsys.readouterr().out)
        assert parsed["root"] == "ps"

    def test_catalog_to_file(self, tmp_path, capsys):
        out = tmp_path / "ds.json"
        assert main(["catalog", "data-server", "--out", str(out)]) == 0
        restored = serialization.load_json(str(out))
        assert not restored.tree.is_treelike

    def test_experiments(self, capsys):
        assert main(["experiments"]) == 0
        output = capsys.readouterr().out
        assert "all published points reproduced: True" in output

    def test_bare_tree_model_rejected(self, tmp_path):
        path = tmp_path / "bare.json"
        serialization.save_json(catalog.factory().tree, str(path))
        with pytest.raises(SystemExit, match="without cost/damage"):
            main(["analyze", str(path)])
