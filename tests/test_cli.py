"""Tests for the ``atcd`` command-line interface."""

import json

import pytest

from repro.attacktree import catalog, serialization
from repro.cli import build_parser, main


@pytest.fixture
def factory_json(tmp_path):
    path = tmp_path / "factory.json"
    serialization.save_json(catalog.factory(), str(path))
    return str(path)


@pytest.fixture
def panda_json(tmp_path):
    path = tmp_path / "panda.json"
    serialization.save_json(catalog.panda_iot(), str(path))
    return str(path)


class TestParser:
    def test_all_subcommands_registered(self):
        parser = build_parser()
        args = parser.parse_args(["analyze", "model.json"])
        assert args.command == "analyze"
        args = parser.parse_args(["dgc", "model.json", "--budget", "3"])
        assert args.budget == 3.0

    def test_missing_subcommand_errors(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args([])


class TestCommands:
    def test_analyze(self, factory_json, capsys):
        assert main(["analyze", factory_json]) == 0
        output = capsys.readouterr().out
        assert "Pareto front" in output
        assert "treelike" in output

    def test_pareto(self, factory_json, capsys):
        assert main(["pareto", factory_json]) == 0
        output = capsys.readouterr().out
        assert "200" in output and "310" in output

    def test_pareto_probabilistic(self, panda_json, capsys):
        assert main(["pareto", panda_json, "--probabilistic"]) == 0
        assert "18" in capsys.readouterr().out

    def test_pareto_with_plot(self, factory_json, capsys):
        assert main(["pareto", factory_json, "--plot"]) == 0
        output = capsys.readouterr().out
        assert "●" in output
        assert "cost →" in output

    def test_dgc(self, factory_json, capsys):
        assert main(["dgc", factory_json, "--budget", "2"]) == 0
        output = capsys.readouterr().out
        assert "200" in output and "ca" in output

    def test_cgd(self, factory_json, capsys):
        assert main(["cgd", factory_json, "--threshold", "300"]) == 0
        output = capsys.readouterr().out
        assert "5" in output

    def test_cgd_unachievable_returns_nonzero(self, factory_json, capsys):
        assert main(["cgd", factory_json, "--threshold", "99999"]) == 1
        assert "no attack" in capsys.readouterr().out

    def test_catalog_to_stdout(self, capsys):
        assert main(["catalog", "factory"]) == 0
        parsed = json.loads(capsys.readouterr().out)
        assert parsed["root"] == "ps"

    def test_catalog_to_file(self, tmp_path, capsys):
        out = tmp_path / "ds.json"
        assert main(["catalog", "data-server", "--out", str(out)]) == 0
        restored = serialization.load_json(str(out))
        assert not restored.tree.is_treelike

    def test_experiments(self, capsys):
        assert main(["experiments"]) == 0
        output = capsys.readouterr().out
        assert "all published points reproduced: True" in output

    def test_bare_tree_model_rejected(self, tmp_path, capsys):
        path = tmp_path / "bare.json"
        serialization.save_json(catalog.factory().tree, str(path))
        # User error: one `atcd:` line on stderr and exit 2, per the CLI
        # exit-code contract (CLI001) — not a SystemExit masquerading as 1.
        assert main(["analyze", str(path)]) == 2
        err = capsys.readouterr().err
        assert err.startswith("atcd: ") and "without cost/damage" in err


class TestBench:
    def test_bench_subcommands_registered(self):
        parser = build_parser()
        args = parser.parse_args(["bench", "run", "--profile", "smoke"])
        assert args.command == "bench" and args.bench_command == "run"
        args = parser.parse_args(["bench", "compare", "a.json", "b.json"])
        assert args.threshold == 0.25
        args = parser.parse_args(["bench", "list"])
        assert args.bench_command == "list"

    def test_bench_list(self, capsys):
        assert main(["bench", "list"]) == 0
        output = capsys.readouterr().out
        assert "workload families:" in output
        assert "random" in output and "shared-bas" in output
        assert "smoke" in output and "full" in output

    def test_bench_run_and_compare(self, tmp_path, capsys):
        out = str(tmp_path / "BENCH_smoke.json")
        assert main(["bench", "run", "--profile", "smoke", "--out", out]) == 0
        stdout = capsys.readouterr().out
        assert "wrote" in stdout and "families" in stdout

        artifact = json.loads(open(out).read())
        assert artifact["schema"] == "atcd-bench"
        assert len(artifact["totals"]["families"]) >= 4
        assert sorted(artifact["totals"]["shapes"]) == ["dag", "treelike"]
        assert sorted(artifact["totals"]["settings"]) == [
            "deterministic", "probabilistic"
        ]

        # Acceptance criterion: compare against a copy of itself passes.
        assert main(["bench", "compare", out, out]) == 0
        assert "PASS: no regressions" in capsys.readouterr().out

    def test_bench_compare_detects_regression(self, tmp_path, capsys):
        from repro.bench import build_artifact, execute_specs, write_artifact
        from repro.workloads import ScenarioSpec

        specs = [ScenarioSpec(family="wide-fan", sizes=(6,))]
        runs = execute_specs(specs)
        base = str(tmp_path / "base.json")
        write_artifact(build_artifact("base", specs, runs), base)
        slow = json.loads(open(base).read())
        for run in slow["runs"]:
            run["wall_time_seconds"] = run["wall_time_seconds"] * 10 + 1.0
        slow_path = str(tmp_path / "slow.json")
        open(slow_path, "w").write(json.dumps(slow))
        assert main(["bench", "compare", base, slow_path]) == 1
        assert "REGRESSION" in capsys.readouterr().out


class TestStore:
    def test_store_subcommands_registered(self):
        parser = build_parser()
        args = parser.parse_args(["store", "stats", "db.sqlite"])
        assert args.command == "store" and args.store_command == "stats"
        args = parser.parse_args(
            ["store", "prune", "db.sqlite", "--fingerprint", "abc123"]
        )
        assert args.store_command == "prune" and args.fingerprint == "abc123"
        args = parser.parse_args(
            ["batch", "m.json", "r.json", "--store", "db.sqlite"]
        )
        assert args.store == "db.sqlite"
        args = parser.parse_args(["bench", "run", "--store", "db.sqlite"])
        assert args.store == "db.sqlite"

    def test_batch_reads_through_shared_store(self, factory_json, tmp_path, capsys):
        store = str(tmp_path / "results.sqlite")
        requests = tmp_path / "requests.json"
        requests.write_text(json.dumps(
            [{"problem": "cdpf"}, {"problem": "dgc", "budget": 2}]
        ))
        assert main(["batch", factory_json, str(requests), "--store", store]) == 0
        cold = json.loads(capsys.readouterr().out)
        assert [r["cache_hit"] for r in cold] == [False, False]

        assert main(["batch", factory_json, str(requests), "--store", store]) == 0
        warm = json.loads(capsys.readouterr().out)
        assert [r["cache_hit"] for r in warm] == [True, True]
        assert [r["backend"] for r in warm] == [r["backend"] for r in cold]

    def test_store_stats_and_prune(self, factory_json, tmp_path, capsys):
        store = str(tmp_path / "results.sqlite")
        requests = tmp_path / "requests.json"
        requests.write_text(json.dumps([{"problem": "cdpf"}]))
        assert main(["batch", factory_json, str(requests), "--store", store]) == 0
        capsys.readouterr()

        assert main(["store", "stats", store]) == 0
        output = capsys.readouterr().out
        assert "entries        : 1" in output
        assert "cdpf/bottom-up" in output

        assert main(["store", "prune", store]) == 0
        assert "pruned 1 results" in capsys.readouterr().out
        assert main(["store", "stats", store]) == 0
        assert "entries        : 0" in capsys.readouterr().out

    def test_prune_by_fingerprint_keeps_other_models(self, tmp_path, capsys):
        from repro.core.problems import Problem
        from repro.engine import AnalysisRequest, SqliteStore, run_request

        store_path = str(tmp_path / "results.sqlite")
        request = AnalysisRequest(Problem.CDPF)
        result = run_request(catalog.factory(), request)
        with SqliteStore(store_path) as store:
            store.put("a" * 64, request, result)
            store.put("b" * 64, request, result)
        assert main(["store", "prune", store_path, "--fingerprint", "a" * 64]) == 0
        assert "pruned 1 results" in capsys.readouterr().out
        with SqliteStore(store_path) as store:
            assert len(store) == 1

    def test_bench_run_twice_against_one_store(self, tmp_path, capsys):
        store = str(tmp_path / "results.sqlite")
        cold_path = str(tmp_path / "BENCH_cold.json")
        warm_path = str(tmp_path / "BENCH_warm.json")
        argv = ["bench", "run", "--profile", "smoke", "--store", store]
        assert main(argv + ["--out", cold_path]) == 0
        assert main(argv + ["--out", warm_path]) == 0
        capsys.readouterr()

        cold = json.loads(open(cold_path).read())
        warm = json.loads(open(warm_path).read())
        totals = warm["totals"]
        # Acceptance criterion: the warm run serves >= 90% from the store...
        hit_rate = totals["cache_hits"] / (
            totals["cache_hits"] + totals["cache_misses"]
        )
        assert hit_rate >= 0.9
        assert totals["store_hits"] == totals["cache_hits"]
        assert warm["config"]["store"] == store

        # ...with a byte-identical results section...
        def results_section(artifact):
            return json.dumps(
                [
                    {key: run.get(key) for key in
                     ("case_id", "problem", "backend", "result_points", "value")}
                    for run in artifact["runs"]
                ],
                sort_keys=True,
            ).encode()

        assert results_section(cold) == results_section(warm)

        # ...and zero mismatches under bench compare.
        assert main(["bench", "compare", cold_path, warm_path]) == 0
        assert "PASS: no regressions" in capsys.readouterr().out


class TestErrorPaths:
    """User errors exit 2 with a one-line atcd: message, never a traceback."""

    def _assert_one_line_error(self, capsys):
        captured = capsys.readouterr()
        error_lines = [line for line in captured.err.splitlines() if line]
        assert len(error_lines) == 1
        assert error_lines[0].startswith("atcd: ")
        assert "Traceback" not in captured.err

    def test_unknown_backend_exits_2(self, factory_json, capsys):
        assert main(["pareto", factory_json, "--backend", "nope"]) == 2
        self._assert_one_line_error(capsys)

    def test_uncovered_capability_exits_2(self, factory_json, capsys):
        # prob-dag cannot answer deterministic problems: capability error.
        assert main(["pareto", factory_json, "--backend", "prob-dag"]) == 2
        self._assert_one_line_error(capsys)

    def test_malformed_batch_json_exits_2(self, factory_json, tmp_path, capsys):
        requests = tmp_path / "requests.json"
        requests.write_text("{not valid json")
        assert main(["batch", factory_json, str(requests)]) == 2
        self._assert_one_line_error(capsys)

    def test_batch_entry_error_names_index(self, factory_json, tmp_path, capsys):
        requests = tmp_path / "requests.json"
        requests.write_text(json.dumps([{"problem": "cdpf"}, {"problem": "dgc"}]))
        assert main(["batch", factory_json, str(requests)]) == 2
        captured = capsys.readouterr()
        assert "[1]" in captured.err
        assert "Traceback" not in captured.err

    def test_bench_unknown_profile_exits_2(self, capsys):
        assert main(["bench", "run", "--profile", "nope"]) == 2
        self._assert_one_line_error(capsys)

    def test_bench_unknown_executor_exits_2(self, capsys):
        assert main(["bench", "run", "--executor", "warp"]) == 2
        self._assert_one_line_error(capsys)

    def test_bench_missing_artifact_exits_2(self, tmp_path, capsys):
        missing = str(tmp_path / "missing.json")
        other = str(tmp_path / "other.json")
        assert main(["bench", "compare", missing, other]) == 2
        self._assert_one_line_error(capsys)

    def test_bench_invalid_artifact_exits_2(self, tmp_path, capsys):
        bad = tmp_path / "bad.json"
        bad.write_text(json.dumps({"schema": "something-else"}))
        assert main(["bench", "compare", str(bad), str(bad)]) == 2
        self._assert_one_line_error(capsys)

    def test_bench_bad_repeats_exits_2(self, capsys):
        assert main(["bench", "run", "--repeats", "0"]) == 2
        self._assert_one_line_error(capsys)

    def test_store_stats_missing_file_exits_2(self, tmp_path, capsys):
        assert main(["store", "stats", str(tmp_path / "absent.sqlite")]) == 2
        self._assert_one_line_error(capsys)

    def test_store_prune_missing_file_exits_2(self, tmp_path, capsys):
        assert main(["store", "prune", str(tmp_path / "absent.sqlite")]) == 2
        self._assert_one_line_error(capsys)

    def test_corrupt_store_on_batch_exits_2(self, factory_json, tmp_path, capsys):
        bad = tmp_path / "corrupt.sqlite"
        bad.write_bytes(b"not a database")
        requests = tmp_path / "requests.json"
        requests.write_text(json.dumps([{"problem": "cdpf"}]))
        assert main(
            ["batch", factory_json, str(requests), "--store", str(bad)]
        ) == 2
        self._assert_one_line_error(capsys)

    def test_corrupt_store_on_bench_run_exits_2(self, tmp_path, capsys):
        bad = tmp_path / "corrupt.sqlite"
        bad.write_bytes(b"not a database")
        assert main(
            ["bench", "run", "--profile", "smoke", "--store", str(bad)]
        ) == 2
        self._assert_one_line_error(capsys)

    def test_bench_zero_max_workers_exits_2(self, capsys):
        assert main(["bench", "run", "--profile", "smoke",
                     "--executor", "process", "--max-workers", "0"]) == 2
        self._assert_one_line_error(capsys)

    def test_dist_zero_workers_exits_2(self, capsys):
        assert main(["dist", "run", "--profile", "smoke",
                     "--workers", "0"]) == 2
        self._assert_one_line_error(capsys)

    def test_dist_bad_queue_path_exits_2(self, tmp_path, capsys):
        assert main(["dist", "worker",
                     "--queue", str(tmp_path / "absent.queue")]) == 2
        self._assert_one_line_error(capsys)

    def test_dist_unknown_profile_exits_2(self, tmp_path, capsys):
        assert main(["dist", "submit", "--queue", str(tmp_path / "q.queue"),
                     "--profile", "nope"]) == 2
        self._assert_one_line_error(capsys)

    def test_queue_prune_reports_deletions(self, tmp_path, capsys):
        from repro.distributed import SqliteQueue

        path = str(tmp_path / "queue.sqlite")
        with SqliteQueue(path) as queue:
            queue.submit([{"kind": "test"}])
            task = queue.claim("w", lease_seconds=30)
            queue.complete(task.task_id, "w", {"ok": True})
        assert main(["queue", "prune", path, "--ttl", "0"]) == 0
        out = capsys.readouterr().out
        assert "pruned 1 finished tasks" in out

    def test_queue_prune_negative_ttl_exits_2(self, tmp_path, capsys):
        from repro.distributed import SqliteQueue

        path = str(tmp_path / "queue.sqlite")
        SqliteQueue(path).close()
        assert main(["queue", "prune", path, "--ttl", "-1"]) == 2
        self._assert_one_line_error(capsys)

    def test_obs_dump_non_http_url_exits_2(self, capsys):
        assert main(["obs", "dump", "not-a-url"]) == 2
        self._assert_one_line_error(capsys)

    def test_store_prune_ttl_with_fingerprint_exits_2(self, tmp_path, capsys):
        from repro.engine import SqliteStore

        path = str(tmp_path / "store.sqlite")
        SqliteStore(path).close()
        assert main(["store", "prune", path, "--ttl", "60",
                     "--fingerprint", "a" * 64]) == 2
        self._assert_one_line_error(capsys)

    def test_store_prune_negative_ttl_exits_2(self, tmp_path, capsys):
        from repro.engine import SqliteStore

        path = str(tmp_path / "store.sqlite")
        SqliteStore(path).close()
        assert main(["store", "prune", path, "--ttl", "-5"]) == 2
        self._assert_one_line_error(capsys)


class TestStoreEvictionCLI:
    def _seeded_store(self, tmp_path):
        from repro.attacktree.catalog import factory
        from repro.core.problems import Problem
        from repro.engine import (
            AnalysisRequest, SqliteStore, model_fingerprint, run_request,
        )

        path = str(tmp_path / "store.sqlite")
        store = SqliteStore(path)
        fingerprint = model_fingerprint(factory())
        for budget in (1, 2, 3):
            request = AnalysisRequest(Problem.DGC, budget=budget)
            store.put(fingerprint, request, run_request(factory(), request))
        store.close()
        return path

    def test_prune_ttl_reports_evictions(self, tmp_path, capsys):
        path = self._seeded_store(tmp_path)
        assert main(["store", "prune", path, "--ttl", "3600"]) == 0
        out = capsys.readouterr().out
        assert "evicted 0 results" in out and "ttl 3600s" in out

    def test_prune_max_bytes_evicts_until_fit(self, tmp_path, capsys):

        path = self._seeded_store(tmp_path)
        assert main(["store", "prune", path, "--max-bytes", "1"]) == 0
        assert "evicted 3 results" in capsys.readouterr().out
        assert main(["store", "stats", path]) == 0
        assert "entries        : 0" in capsys.readouterr().out
