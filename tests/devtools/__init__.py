"""Tests for the ``atcd check`` static analyzer."""
