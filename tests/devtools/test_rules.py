"""Golden-fixture tests: every rule proves it detects its violation.

Each rule gets (at least) one known-bad snippet that must produce a
finding and one known-good snippet that must stay clean.  Snippets are
inline strings parsed into :class:`SourceModule` directly — checked-in
bad ``.py`` files would trip the very linters they exist to test.
"""

import pytest

from repro.devtools.staticcheck import (
    Project,
    SourceModule,
    StaticCheckError,
    apply_baseline,
    default_rules,
    run_check,
)
from repro.devtools.staticcheck.rules import (
    BroadExceptRule,
    CliExitRule,
    DeterminismRule,
    LockRule,
    MetricsCatalogRule,
    TransactionRule,
    select_rules,
)


def findings_of(rule, *modules):
    return list(rule.check(Project(list(modules))))


# --------------------------------------------------------------------- #
# DET001
# --------------------------------------------------------------------- #
class TestDeterminism:
    def test_bad_kernel_calls_flagged(self):
        bad = SourceModule("repro/core/bad.py", (
            "import time\n"
            "import random\n"
            "import uuid\n"
            "from datetime import datetime\n"
            "def f():\n"
            "    a = time.time()\n"
            "    b = random.random()\n"
            "    c = datetime.now()\n"
            "    d = uuid.uuid4()\n"
            "    e = random.Random()\n"
        ))
        found = findings_of(DeterminismRule(), bad)
        assert len(found) == 5
        assert all(f.rule == "DET001" for f in found)
        assert {f.line for f in found} == {6, 7, 8, 9, 10}

    def test_good_kernel_stays_clean(self):
        good = SourceModule("repro/core/good.py", (
            "import random\n"
            "import time\n"
            "def f(seed):\n"
            "    rng = random.Random(seed)\n"      # seeded: sanctioned
            "    started = time.perf_counter()\n"  # relative timing: legal
            "    return rng.random(), started\n"
        ))
        assert findings_of(DeterminismRule(), good) == []

    def test_non_kernel_module_out_of_scope(self):
        elsewhere = SourceModule("repro/cli.py", (
            "import time\n"
            "def f():\n"
            "    return time.time()\n"
        ))
        assert findings_of(DeterminismRule(), elsewhere) == []

    def test_import_aliases_resolved(self):
        bad = SourceModule("repro/pareto/bad.py", (
            "from time import time as now\n"
            "def f():\n"
            "    return now()\n"
        ))
        found = findings_of(DeterminismRule(), bad)
        assert len(found) == 1 and "time.time" in found[0].message


# --------------------------------------------------------------------- #
# MET001
# --------------------------------------------------------------------- #
CATALOG = SourceModule("repro/obs/families.py", (
    "def queue_ops_total(registry=None):\n"
    "    return registry.counter(\n"
    "        'atcd_queue_ops_total', 'ops', labelnames=('op',))\n"
))


class TestMetricsCatalog:
    def test_rogue_registration_flagged(self):
        bad = SourceModule("repro/distributed/bad.py", (
            "def f(registry):\n"
            "    registry.counter('atcd_rogue_total', 'oops')\n"
        ))
        found = findings_of(MetricsCatalogRule(), CATALOG, bad)
        assert len(found) == 1
        assert "registered outside the catalog" in found[0].message

    def test_wrong_label_keys_flagged(self):
        bad = SourceModule("repro/distributed/bad.py", (
            "from ..obs import families as obs_families\n"
            "def f():\n"
            "    obs_families.queue_ops_total().inc(operation='claim')\n"
        ))
        found = findings_of(MetricsCatalogRule(), CATALOG, bad)
        assert len(found) == 1
        assert "('operation',)" in found[0].message
        assert "('op',)" in found[0].message

    def test_assigned_local_receiver_checked(self):
        bad = SourceModule("repro/obs/bad.py", (
            "from . import families\n"
            "def f(registry):\n"
            "    counter = families.queue_ops_total(registry)\n"
            "    counter.inc(task_id='t-1')\n"
        ))
        found = findings_of(MetricsCatalogRule(), CATALOG, bad)
        assert len(found) == 1 and found[0].line == 4

    def test_correct_usage_stays_clean(self):
        good = SourceModule("repro/distributed/good.py", (
            "from ..obs import families as obs_families\n"
            "def f():\n"
            "    obs_families.queue_ops_total().inc(op='claim')\n"
        ))
        assert findings_of(MetricsCatalogRule(), CATALOG, good) == []

    def test_no_catalog_in_project_is_a_noop(self):
        lone = SourceModule("scratch/tool.py", (
            "def f(registry):\n"
            "    registry.counter('atcd_whatever_total', 'x')\n"
        ))
        assert findings_of(MetricsCatalogRule(), lone) == []


# --------------------------------------------------------------------- #
# TXN001
# --------------------------------------------------------------------- #
class TestTransactions:
    def test_undisciplined_mutation_flagged(self):
        bad = SourceModule("repro/distributed/queue.py", (
            "class Q:\n"
            "    def renew(self):\n"
            "        self._connection.execute('UPDATE tasks SET x = 1')\n"
        ))
        found = findings_of(TransactionRule(), bad)
        assert len(found) == 1
        assert "UPDATE" in found[0].message

    def test_transaction_context_is_clean(self):
        good = SourceModule("repro/distributed/queue.py", (
            "class Q:\n"
            "    def renew(self):\n"
            "        with self._transaction() as connection:\n"
            "            connection.execute('UPDATE tasks SET x = 1')\n"
            "    def _vacuum(self):\n"
            "        self._connection.execute('VACUUM')\n"
            "    def _expire_sql(self, connection, now):\n"
            "        connection.execute('DELETE FROM tasks')\n"
        ))
        assert findings_of(TransactionRule(), good) == []

    def test_sql_outside_storage_layer_flagged(self):
        rogue = SourceModule("repro/service/api.py", (
            "def f(conn):\n"
            "    conn.execute('DELETE FROM tasks')\n"
        ))
        found = findings_of(TransactionRule(), rogue)
        assert len(found) == 1
        assert "outside the storage layer" in found[0].message

    def test_reads_are_not_mutations(self):
        good = SourceModule("repro/distributed/queue.py", (
            "class Q:\n"
            "    def peek(self):\n"
            "        return self._connection.execute(\n"
            "            'SELECT * FROM tasks').fetchall()\n"
        ))
        assert findings_of(TransactionRule(), good) == []


# --------------------------------------------------------------------- #
# LCK001
# --------------------------------------------------------------------- #
class TestLocks:
    def test_unguarded_global_mutation_flagged(self):
        bad = SourceModule("repro/obs/bad.py", (
            "import threading\n"
            "_lock = threading.Lock()\n"
            "_state = {}\n"
            "def f():\n"
            "    _state['k'] = 1\n"
        ))
        found = findings_of(LockRule(), bad)
        assert len(found) == 1
        assert "_state" in found[0].message and found[0].line == 5

    def test_guarded_mutation_is_clean(self):
        good = SourceModule("repro/obs/good.py", (
            "import threading\n"
            "_lock = threading.Lock()\n"
            "_state = {}\n"
            "def f():\n"
            "    with _lock:\n"
            "        _state['k'] = 1\n"
        ))
        assert findings_of(LockRule(), good) == []

    def test_abba_cycle_flagged(self):
        bad = SourceModule("repro/x.py", (
            "import threading\n"
            "_a = threading.Lock()\n"
            "_b = threading.Lock()\n"
            "def one():\n"
            "    with _a:\n"
            "        with _b:\n"
            "            pass\n"
            "def two():\n"
            "    with _b:\n"
            "        with _a:\n"
            "            pass\n"
        ))
        found = findings_of(LockRule(), bad)
        assert len(found) == 1
        assert "lock-order cycle" in found[0].message

    def test_consistent_order_is_clean(self):
        good = SourceModule("repro/x.py", (
            "import threading\n"
            "_a = threading.Lock()\n"
            "_b = threading.Lock()\n"
            "def one():\n"
            "    with _a:\n"
            "        with _b:\n"
            "            pass\n"
            "def two():\n"
            "    with _a, _b:\n"
            "        pass\n"
        ))
        assert findings_of(LockRule(), good) == []

    def test_cross_module_instance_lock_cycle(self):
        # `with self._lock:` nesting inside one class still canonicalizes
        # to a project-wide lock identity, so a self-nesting is a cycle.
        bad = SourceModule("repro/y.py", (
            "import threading\n"
            "class C:\n"
            "    def __init__(self):\n"
            "        self._lock = threading.Lock()\n"
            "    def f(self):\n"
            "        with self._lock:\n"
            "            with self._lock:\n"
            "                pass\n"
        ))
        found = findings_of(LockRule(), bad)
        assert len(found) == 1
        assert "y.C._lock" in found[0].message


# --------------------------------------------------------------------- #
# CLI001
# --------------------------------------------------------------------- #
class TestCliExits:
    def test_string_systemexit_flagged(self):
        bad = SourceModule("repro/cli.py", (
            "def f(path):\n"
            "    raise SystemExit(f'{path} is bad')\n"
        ))
        found = findings_of(CliExitRule(), bad)
        assert len(found) == 1
        assert "exits 1" in found[0].message

    def test_exit_one_and_naked_raise_flagged(self):
        bad = SourceModule("repro/cli.py", (
            "import sys\n"
            "def f():\n"
            "    sys.exit(1)\n"
            "def g():\n"
            "    raise SystemExit\n"
        ))
        found = findings_of(CliExitRule(), bad)
        assert len(found) == 2

    def test_sanctioned_patterns_stay_clean(self):
        good = SourceModule("repro/cli.py", (
            "import sys\n"
            "def f():\n"
            "    raise ValueError('user error for main() to format')\n"
            "def g():\n"
            "    return 2\n"
            "def h():\n"
            "    raise SystemExit(2)\n"
            "sys.exit(0)\n"
        ))
        assert findings_of(CliExitRule(), good) == []

    def test_other_modules_out_of_scope(self):
        elsewhere = SourceModule("repro/engine/session.py", (
            "def f():\n"
            "    raise SystemExit('fine here, not a CLI module')\n"
        ))
        assert findings_of(CliExitRule(), elsewhere) == []


# --------------------------------------------------------------------- #
# EXC001
# --------------------------------------------------------------------- #
class TestBroadExcept:
    def test_unjustified_broad_handler_flagged(self):
        bad = SourceModule("repro/anywhere.py", (
            "def f():\n"
            "    try:\n"
            "        work()\n"
            "    except Exception:\n"
            "        pass\n"
        ))
        found = findings_of(BroadExceptRule(), bad)
        assert len(found) == 1 and found[0].rule == "EXC001"

    def test_bare_except_flagged(self):
        bad = SourceModule("repro/anywhere.py", (
            "def f():\n"
            "    try:\n"
            "        work()\n"
            "    except:\n"
            "        pass\n"
        ))
        assert len(findings_of(BroadExceptRule(), bad)) == 1

    def test_marker_allows(self):
        good = SourceModule("repro/anywhere.py", (
            "def f():\n"
            "    try:\n"
            "        work()\n"
            "    # staticcheck: allow-broad-except(telemetry must not"
            " take down the operation)\n"
            "    except Exception:\n"
            "        pass\n"
        ))
        assert findings_of(BroadExceptRule(), good) == []

    def test_reraise_allows(self):
        good = SourceModule("repro/anywhere.py", (
            "def f():\n"
            "    try:\n"
            "        work()\n"
            "    except Exception:\n"
            "        cleanup()\n"
            "        raise\n"
        ))
        assert findings_of(BroadExceptRule(), good) == []

    def test_narrow_handlers_out_of_scope(self):
        good = SourceModule("repro/anywhere.py", (
            "def f():\n"
            "    try:\n"
            "        work()\n"
            "    except (ValueError, KeyError):\n"
            "        pass\n"
        ))
        assert findings_of(BroadExceptRule(), good) == []


# --------------------------------------------------------------------- #
# engine behaviors
# --------------------------------------------------------------------- #
class TestEngine:
    def test_disable_marker_suppresses(self):
        module = SourceModule("repro/core/bad.py", (
            "import time\n"
            "def f():\n"
            "    return time.time()"
            "  # staticcheck: disable=DET001(clock only feeds a log line)\n"
        ))
        report = run_check(Project([module]), [DeterminismRule()])
        assert report.findings == [] and report.suppressed == 1

    def test_syntax_error_is_user_error(self):
        with pytest.raises(StaticCheckError, match="does not parse"):
            SourceModule("repro/broken.py", "def f(:\n")

    def test_select_rules_rejects_unknown_id(self):
        with pytest.raises(StaticCheckError, match="unknown rule"):
            select_rules(["NOPE999"])

    def test_default_rules_cover_all_six(self):
        ids = {rule.rule_id for rule in default_rules()}
        assert ids == {
            "DET001", "MET001", "TXN001", "LCK001", "CLI001", "EXC001",
        }

    def test_baseline_grandfathers_and_reports_stale(self):
        module = SourceModule("repro/core/bad.py", (
            "import time\n"
            "def f():\n"
            "    return time.time()\n"
        ))
        report = run_check(Project([module]), [DeterminismRule()])
        assert len(report.findings) == 1
        stale_entry = ("DET001", "repro/core/bad.py", "fixed long ago")
        baseline = [report.findings[0].fingerprint(), stale_entry]
        new, grandfathered, stale = apply_baseline(report.findings, baseline)
        assert new == [] and grandfathered == 1 and stale == [stale_entry]

    def test_fingerprint_ignores_line_numbers(self):
        shifted = SourceModule("repro/core/bad.py", (
            "import time\n"
            "\n"
            "\n"
            "def f():\n"
            "    return time.time()\n"
        ))
        original = SourceModule("repro/core/bad.py", (
            "import time\n"
            "def f():\n"
            "    return time.time()\n"
        ))
        a = run_check(Project([original]), [DeterminismRule()]).findings[0]
        b = run_check(Project([shifted]), [DeterminismRule()]).findings[0]
        assert a.line != b.line and a.fingerprint() == b.fingerprint()
