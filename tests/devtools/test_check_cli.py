"""`atcd check` CLI contract: output modes, baseline flags, exit codes.

Exit codes follow the CLI001 contract the analyzer itself enforces:
0 = clean, 1 = findings (the negative domain answer), 2 = user error.
"""

import json
import os

import pytest

from repro.cli import main

BAD_KERNEL = (
    "import time\n"
    "def f():\n"
    "    return time.time()\n"
)

GOOD_KERNEL = (
    "import time\n"
    "def f():\n"
    "    return time.perf_counter()\n"
)


@pytest.fixture
def kernel_dir(tmp_path):
    """A fake checkout containing one violating kernel module."""
    core = tmp_path / "repro" / "core"
    core.mkdir(parents=True)
    (core / "bad.py").write_text(BAD_KERNEL)
    return tmp_path


class TestExitCodes:
    def test_findings_exit_1(self, kernel_dir, capsys):
        assert main(["check", str(kernel_dir)]) == 1
        out = capsys.readouterr().out
        assert "DET001" in out and "bad.py:3:" in out
        assert "1 finding(s)" in out

    def test_clean_tree_exit_0(self, tmp_path, capsys):
        core = tmp_path / "repro" / "core"
        core.mkdir(parents=True)
        (core / "good.py").write_text(GOOD_KERNEL)
        assert main(["check", str(tmp_path)]) == 0
        assert "0 finding(s)" in capsys.readouterr().out

    def test_unknown_rule_exit_2(self, kernel_dir, capsys):
        assert main(["check", str(kernel_dir), "--rule", "NOPE"]) == 2
        err = capsys.readouterr().err
        assert err.startswith("atcd: ") and "unknown rule" in err

    def test_missing_path_exit_2(self, tmp_path, capsys):
        assert main(["check", str(tmp_path / "absent")]) == 2
        assert "no such file" in capsys.readouterr().err

    def test_syntax_error_exit_2(self, tmp_path, capsys):
        bad = tmp_path / "broken.py"
        bad.write_text("def f(:\n")
        assert main(["check", str(bad)]) == 2
        assert "does not parse" in capsys.readouterr().err


class TestRuleSelection:
    def test_rule_filter_restricts(self, kernel_dir, capsys):
        # The violation is DET001; running only EXC001 must come up clean.
        assert main(["check", str(kernel_dir), "--rule", "EXC001"]) == 0
        assert main(["check", str(kernel_dir), "--rule", "DET001"]) == 1

    def test_rule_filter_is_case_insensitive(self, kernel_dir):
        assert main(["check", str(kernel_dir), "--rule", "det001"]) == 1


class TestJsonOutput:
    def test_json_document_shape(self, kernel_dir, capsys):
        assert main(["check", str(kernel_dir), "--json"]) == 1
        document = json.loads(capsys.readouterr().out)
        assert document["files_checked"] == 1
        assert len(document["rules_run"]) == 6
        assert document["grandfathered"] == 0
        (finding,) = document["findings"]
        assert finding["rule"] == "DET001"
        assert finding["path"].endswith("bad.py")
        assert finding["line"] == 3

    def test_json_clean_exit_0(self, tmp_path, capsys):
        (tmp_path / "ok.py").write_text("x = 1\n")
        assert main(["check", str(tmp_path), "--json"]) == 0
        assert json.loads(capsys.readouterr().out)["findings"] == []


class TestBaseline:
    def test_write_then_apply_grandfathers(self, kernel_dir, capsys):
        baseline = kernel_dir / "baseline.json"
        assert main([
            "check", str(kernel_dir), "--write-baseline", str(baseline),
        ]) == 0
        assert "1 grandfathered finding(s)" in capsys.readouterr().out
        assert main([
            "check", str(kernel_dir), "--baseline", str(baseline),
        ]) == 0
        out = capsys.readouterr().out
        assert "0 finding(s), 1 grandfathered" in out

    def test_new_violation_escapes_baseline(self, kernel_dir, capsys):
        baseline = kernel_dir / "baseline.json"
        main(["check", str(kernel_dir), "--write-baseline", str(baseline)])
        worse = kernel_dir / "repro" / "core" / "worse.py"
        worse.write_text("import uuid\n\ndef g():\n    return uuid.uuid4()\n")
        assert main([
            "check", str(kernel_dir), "--baseline", str(baseline),
        ]) == 1
        out = capsys.readouterr().out
        assert "worse.py" in out

    def test_stale_entries_reported(self, kernel_dir, capsys):
        baseline = kernel_dir / "baseline.json"
        main(["check", str(kernel_dir), "--write-baseline", str(baseline)])
        capsys.readouterr()
        (kernel_dir / "repro" / "core" / "bad.py").write_text(GOOD_KERNEL)
        assert main([
            "check", str(kernel_dir), "--baseline", str(baseline),
        ]) == 0
        assert "stale baseline entry" in capsys.readouterr().err

    def test_malformed_baseline_exit_2(self, kernel_dir, tmp_path, capsys):
        baseline = tmp_path / "garbage.json"
        baseline.write_text("{\"version\": 99}\n")
        assert main([
            "check", str(kernel_dir), "--baseline", str(baseline),
        ]) == 2
        assert "baseline" in capsys.readouterr().err

    def test_default_baseline_picked_up_from_cwd(
        self, kernel_dir, monkeypatch, capsys
    ):
        # The committed staticcheck-baseline.json is found without flags.
        monkeypatch.chdir(kernel_dir)
        main(["check", os.curdir, "--write-baseline",
              "staticcheck-baseline.json"])
        capsys.readouterr()
        assert main(["check", os.curdir]) == 0
        assert "1 grandfathered" in capsys.readouterr().out


class TestRepoIsClean:
    def test_shipped_package_has_no_findings(self, capsys):
        """The acceptance gate: `atcd check` on the real package is clean
        even without the baseline (which is committed empty)."""
        import repro

        package_dir = os.path.dirname(os.path.abspath(repro.__file__))
        assert main(["check", package_dir]) == 0
        assert "0 finding(s)" in capsys.readouterr().out
