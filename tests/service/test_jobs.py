"""Tests for the job layer: validation, the state machine, tenancy keys."""

import pytest

from repro.attacktree import serialization
from repro.attacktree.catalog import factory
from repro.distributed import InMemoryQueue, TaskState, Worker
from repro.service import JobManager, JobValidationError, validate_batch

MODEL = serialization.to_dict(factory())


@pytest.fixture
def queue():
    with InMemoryQueue() as q:
        yield q


@pytest.fixture
def jobs(queue):
    return JobManager(queue)


def good_requests():
    return [{"problem": "cdpf"}, {"problem": "dgc", "budget": 2.0}]


class TestValidation:
    def test_good_batch_passes(self):
        validate_batch(MODEL, good_requests(), max_requests=10)

    def test_model_must_be_a_serialized_tree(self):
        for bad in (None, 7, [], "factory"):
            with pytest.raises(JobValidationError) as excinfo:
                validate_batch(bad, good_requests(), max_requests=10)
            assert excinfo.value.field == "model"

    def test_model_must_carry_cost_damage_attributes(self):
        # A structurally valid tree without cost/damage decorations
        # deserializes to a bare AttackTree — unanalyzable, rejected.
        bare = {"root": "a", "nodes": [{"name": "a", "type": "BAS"}]}
        with pytest.raises(JobValidationError) as excinfo:
            validate_batch(bare, good_requests(), max_requests=10)
        assert excinfo.value.field == "model"
        assert "cost/damage" in str(excinfo.value)

    def test_requests_must_be_a_nonempty_bounded_list(self):
        for bad in (None, {}, []):
            with pytest.raises(JobValidationError) as excinfo:
                validate_batch(MODEL, bad, max_requests=10)
            assert excinfo.value.field == "requests"
        with pytest.raises(JobValidationError, match="at most 1 per job"):
            validate_batch(MODEL, good_requests(), max_requests=1)

    def test_offending_request_is_named_by_index(self):
        requests = [{"problem": "cdpf"}, {"problem": "dgc"}]  # missing budget
        with pytest.raises(JobValidationError) as excinfo:
            validate_batch(MODEL, requests, max_requests=10)
        assert excinfo.value.index == 1
        assert "budget" in str(excinfo.value)

    def test_unknown_problem_and_backend_fail_fast(self):
        with pytest.raises(JobValidationError):
            validate_batch(MODEL, [{"problem": "nonsense"}], max_requests=10)
        with pytest.raises(JobValidationError):
            validate_batch(
                MODEL, [{"problem": "cdpf", "backend": "nonsense"}],
                max_requests=10,
            )


class TestStateMachine:
    def test_fresh_job_is_queued(self, jobs):
        status = jobs.submit("acme", MODEL, good_requests())
        assert status["state"] == "queued"
        assert status["count"] == 2
        assert status["completed"] == 0

    def test_claim_moves_the_job_to_running(self, queue, jobs):
        status = jobs.submit("acme", MODEL, good_requests())
        queue.claim("w", lease_seconds=30)
        assert jobs.status("acme", status["job_id"])["state"] == "running"

    def test_worker_drives_the_job_to_done(self, queue, jobs):
        status = jobs.submit("acme", MODEL, good_requests())
        Worker(queue, worker_id="w", poll_seconds=0.01).run()
        final = jobs.status("acme", status["job_id"])
        assert final["state"] == "done"
        assert final["completed"] == 2
        rows = jobs.results("acme", status["job_id"])
        assert [row["index"] for row in rows] == [0, 1]
        assert all(row["result"] is not None for row in rows)
        # Results carry the engine's document shape (the worker computed).
        assert rows[1]["result"]["value"] == 200.0

    def test_dead_task_fails_the_job_but_keeps_results(self, queue, jobs):
        status = jobs.submit("acme", MODEL, good_requests())
        # Poison the second task by exhausting its retries manually.
        first = queue.claim("w", lease_seconds=30)
        queue.complete(first.task_id, "w", {"ok": True})
        for _ in range(3):
            task = queue.claim("w", lease_seconds=30)
            queue.fail(task.task_id, "w", "boom")
        final = jobs.status("acme", status["job_id"])
        assert final["state"] == "failed"
        rows = jobs.results("acme", status["job_id"])
        assert rows[0]["state"] == "done"
        assert rows[1]["state"] == "dead" and rows[1]["error"] == "boom"

    def test_cancel_withdraws_pending_and_is_idempotent(self, queue, jobs):
        status = jobs.submit("acme", MODEL, good_requests())
        cancelled = jobs.cancel("acme", status["job_id"])
        assert cancelled["state"] == "cancelled"
        assert queue.counts()["cancelled"] == 2
        # Terminal: a second cancel (and new claims) change nothing.
        assert jobs.cancel("acme", status["job_id"])["state"] == "cancelled"
        assert queue.claim("w", lease_seconds=30) is None

    def test_cancel_lets_running_tasks_finish(self, queue, jobs):
        status = jobs.submit("acme", MODEL, good_requests())
        running = queue.claim("w", lease_seconds=30)
        jobs.cancel("acme", status["job_id"])
        # The worker's lease is honored; its result is kept.
        assert queue.complete(running.task_id, "w", {"ok": True})
        rows = jobs.results("acme", status["job_id"])
        assert rows[0]["state"] == "done"
        assert rows[1]["state"] == "cancelled"
        assert jobs.status("acme", status["job_id"])["state"] == "cancelled"

    def test_cancel_after_done_stays_done(self, queue, jobs):
        status = jobs.submit("acme", MODEL, good_requests())
        Worker(queue, worker_id="w", poll_seconds=0.01).run()
        assert jobs.cancel("acme", status["job_id"])["state"] == "done"


class TestTenancy:
    def test_lookups_embed_the_tenant(self, jobs):
        status = jobs.submit("acme", MODEL, good_requests())
        job_id = status["job_id"]
        assert jobs.status("acme", job_id) is not None
        # The same id under another tenant simply does not exist.
        assert jobs.status("globex", job_id) is None
        assert jobs.results("globex", job_id) is None
        assert jobs.cancel("globex", job_id) is None
        assert jobs.list_jobs("globex") == []

    def test_payloads_carry_namespace_and_job_stanza(self, queue, jobs):
        status = jobs.submit("acme", MODEL, good_requests())
        tasks = queue.tasks(TaskState.PENDING)
        for index, task in enumerate(tasks):
            assert task.payload["store_namespace"] == "acme"
            assert task.payload["job"] == {
                "id": status["job_id"], "tenant": "acme", "index": index,
            }

    def test_in_flight_counts_only_live_tasks(self, queue, jobs):
        first = jobs.submit("acme", MODEL, good_requests())
        jobs.submit("globex", MODEL, good_requests())
        assert jobs.in_flight("acme") == 2
        assert jobs.in_flight("globex") == 2
        jobs.cancel("acme", first["job_id"])
        assert jobs.in_flight("acme") == 0
        assert jobs.in_flight("globex") == 2

    def test_list_jobs_preserves_submission_order(self, jobs):
        ids = [
            jobs.submit("acme", MODEL, good_requests(), name=f"j{i}")["job_id"]
            for i in range(3)
        ]
        listed = jobs.list_jobs("acme")
        assert [status["job_id"] for status in listed] == ids
        assert [status["name"] for status in listed] == ["j0", "j1", "j2"]

    def test_rejected_batch_leaves_no_trace(self, queue, jobs):
        with pytest.raises(JobValidationError):
            jobs.submit("acme", MODEL, [{"problem": "nonsense"}])
        assert queue.counts()["pending"] == 0
        assert jobs.list_jobs("acme") == []
