"""Tests for admission control: token buckets and in-flight caps.

Every timing-sensitive case drives an injected clock — no sleeps.
"""

import pytest

from repro.service import QuotaExceeded, QuotaManager, Tenant, TokenBucket


class FakeClock:
    def __init__(self, now=0.0):
        self.now = now

    def __call__(self):
        return self.now

    def advance(self, seconds):
        self.now += seconds


class TestTokenBucket:
    def test_starts_full_and_spends_down(self):
        clock = FakeClock()
        bucket = TokenBucket(rate_per_second=1.0, burst=3.0, clock=clock)
        assert bucket.try_acquire(3.0) is None
        retry = bucket.try_acquire(1.0)
        assert retry == pytest.approx(1.0)

    def test_refills_continuously_up_to_burst(self):
        clock = FakeClock()
        bucket = TokenBucket(rate_per_second=2.0, burst=4.0, clock=clock)
        bucket.try_acquire(4.0)
        clock.advance(1.0)  # +2 tokens
        assert bucket.try_acquire(2.0) is None
        clock.advance(100.0)  # caps at burst, not 200 tokens
        assert bucket.tokens == pytest.approx(4.0)

    def test_requests_over_burst_report_full_refill(self):
        clock = FakeClock()
        bucket = TokenBucket(rate_per_second=1.0, burst=2.0, clock=clock)
        # 5 tokens can never fit in a burst-2 bucket; the hint is the
        # full-refill time, not infinity.
        assert bucket.try_acquire(5.0) == pytest.approx(2.0)


class TestQuotaManager:
    def tenant(self, **kwargs):
        return Tenant(name="acme", key="acme-key-12345678", **kwargs)

    def test_unthrottled_tenant_is_always_admitted(self):
        manager = QuotaManager(clock=FakeClock())
        manager.admit(self.tenant(), batch_size=10_000, in_flight=10_000)

    def test_in_flight_cap_rejects_whole_batches(self):
        manager = QuotaManager(clock=FakeClock())
        tenant = self.tenant(max_in_flight=4)
        manager.admit(tenant, batch_size=4, in_flight=0)
        with pytest.raises(QuotaExceeded) as excinfo:
            manager.admit(tenant, batch_size=2, in_flight=3)
        assert excinfo.value.kind == "quota"
        assert excinfo.value.retry_after_seconds is not None

    def test_rate_limit_charges_per_request(self):
        clock = FakeClock()
        manager = QuotaManager(clock=clock)
        tenant = self.tenant(rate_per_second=1.0, burst=3.0)
        manager.admit(tenant, batch_size=3, in_flight=0)
        with pytest.raises(QuotaExceeded) as excinfo:
            manager.admit(tenant, batch_size=1, in_flight=0)
        assert excinfo.value.kind == "rate-limit"
        clock.advance(1.0)
        manager.admit(tenant, batch_size=1, in_flight=0)  # refilled

    def test_capped_batch_does_not_drain_the_bucket(self):
        # The cap check runs first: a tenant hammering an over-cap batch
        # must not starve itself of rate tokens for when the cap frees up.
        clock = FakeClock()
        manager = QuotaManager(clock=clock)
        tenant = self.tenant(max_in_flight=2, rate_per_second=1.0, burst=2.0)
        for _ in range(5):
            with pytest.raises(QuotaExceeded):
                manager.admit(tenant, batch_size=2, in_flight=2)
        manager.admit(tenant, batch_size=2, in_flight=0)  # bucket still full

    def test_default_burst_is_one_second_of_rate(self):
        clock = FakeClock()
        manager = QuotaManager(clock=clock)
        tenant = self.tenant(rate_per_second=5.0)  # no burst configured
        manager.admit(tenant, batch_size=5, in_flight=0)
        with pytest.raises(QuotaExceeded):
            manager.admit(tenant, batch_size=1, in_flight=0)
