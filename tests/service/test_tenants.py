"""Tests for tenant identity: key validation, registry, authentication."""

import json

import pytest

from repro.service import MIN_KEY_LENGTH, Tenant, TenantRegistry


def tenant(name="acme", key="acme-key-12345678", **kwargs):
    return Tenant(name=name, key=key, **kwargs)


class TestTenant:
    def test_minimal_tenant_is_unthrottled(self):
        t = tenant()
        assert t.max_in_flight is None
        assert t.rate_per_second is None

    def test_bad_names_are_rejected(self):
        for bad in ("", "a/b", "../up", ".dot", "-dash", "x" * 65, "sp ace",
                    None, 7):
            with pytest.raises(ValueError, match="tenant name"):
                tenant(name=bad)

    def test_short_keys_are_rejected(self):
        with pytest.raises(ValueError, match="api key"):
            tenant(key="x" * (MIN_KEY_LENGTH - 1))

    def test_bad_quota_values_are_rejected(self):
        for field, bad in (
            ("max_in_flight", 0), ("max_in_flight", -1),
            ("max_in_flight", 2.5), ("max_in_flight", True),
            ("rate_per_second", 0), ("rate_per_second", -1.0),
            ("burst", 0), ("burst", False),
        ):
            with pytest.raises(ValueError):
                tenant(**{field: bad})

    def test_from_dict_rejects_unknown_fields(self):
        with pytest.raises(ValueError, match="unknown tenant fields"):
            Tenant.from_dict({"name": "a1", "key": "k" * 8, "admin": True})
        with pytest.raises(ValueError, match="'name' and 'key'"):
            Tenant.from_dict({"name": "a1"})


class TestRegistry:
    def test_duplicate_names_and_keys_are_rejected(self):
        with pytest.raises(ValueError, match="duplicate tenant names"):
            TenantRegistry([tenant(), tenant(key="other-key-12345678")])
        with pytest.raises(ValueError, match="duplicate tenant api keys"):
            TenantRegistry([tenant(), tenant(name="globex")])

    def test_empty_registry_is_rejected(self):
        with pytest.raises(ValueError, match="empty"):
            TenantRegistry([])

    def test_authenticate_maps_key_to_tenant(self):
        registry = TenantRegistry([
            tenant(), tenant(name="globex", key="globex-key-12345678"),
        ])
        assert registry.authenticate("acme-key-12345678").name == "acme"
        assert registry.authenticate("globex-key-12345678").name == "globex"
        assert registry.authenticate("unknown-key-12345") is None
        assert registry.authenticate("") is None
        assert registry.authenticate(None) is None
        # A prefix of a real key is not a match.
        assert registry.authenticate("acme-key-1234567") is None

    def test_from_file_round_trip(self, tmp_path):
        path = tmp_path / "keys.json"
        path.write_text(json.dumps({"tenants": [
            {"name": "acme", "key": "acme-key-12345678", "max_in_flight": 4},
        ]}))
        registry = TenantRegistry.from_file(str(path))
        assert registry.names() == ["acme"]
        assert registry.get("acme").max_in_flight == 4

    def test_from_file_failures_are_one_line_errors(self, tmp_path):
        with pytest.raises(ValueError, match="cannot read"):
            TenantRegistry.from_file(str(tmp_path / "absent.json"))
        bad = tmp_path / "bad.json"
        bad.write_text("{not json")
        with pytest.raises(ValueError, match="not valid JSON"):
            TenantRegistry.from_file(str(bad))
        wrong = tmp_path / "wrong.json"
        wrong.write_text(json.dumps(["not", "an", "object"]))
        with pytest.raises(ValueError, match="'tenants' list"):
            TenantRegistry.from_file(str(wrong))
