"""Tests for the HTTP surface of the analysis service.

Every test drives a real :class:`ServiceServer` over an in-memory queue
with plain ``urllib`` — the same path an external client walks.  Where a
job must make progress, a background :class:`Worker` thread drains the
queue exactly as ``atcd dist worker`` would.
"""

import json
import threading
import urllib.error
import urllib.request

import pytest

from repro.attacktree import serialization
from repro.attacktree.catalog import factory
from repro.distributed import InMemoryQueue, Worker
from repro.service import (
    API_KEY_HEADER,
    SERVICE_NAME,
    SERVICE_VERSION,
    ServiceServer,
    Tenant,
    TenantRegistry,
)

MODEL = serialization.to_dict(factory())

ACME_KEY = "acme-key-12345678"
GLOBEX_KEY = "globex-key-12345678"


@pytest.fixture
def server():
    registry = TenantRegistry([
        Tenant(name="acme", key=ACME_KEY),
        Tenant(name="globex", key=GLOBEX_KEY, max_in_flight=2),
    ])
    with ServiceServer(
        InMemoryQueue(), registry, poll_seconds=0.01,
    ) as service:
        service.start()
        yield service


@pytest.fixture
def worker(server):
    """A live worker attached to the server's queue, like a fleet member."""
    runner = Worker(
        server.queue, worker_id="w", poll_seconds=0.01,
        exit_when_drained=False,
    )
    thread = threading.Thread(target=runner.run, daemon=True)
    thread.start()
    yield runner
    runner.stop()
    thread.join(timeout=10.0)


def call(server, route, method="GET", key=ACME_KEY, body=None, raw=None):
    """One HTTP round trip; returns (status, headers, parsed body)."""
    data = raw
    if body is not None:
        data = json.dumps(body).encode("utf-8")
    if data is not None and method == "GET":
        method = "POST"
    request = urllib.request.Request(
        server.url + route, data=data, method=method,
    )
    if key is not None:
        request.add_header(API_KEY_HEADER, key)
    try:
        with urllib.request.urlopen(request, timeout=30) as response:
            return (
                response.status,
                dict(response.headers),
                json.loads(response.read().decode("utf-8")),
            )
    except urllib.error.HTTPError as error:
        payload = error.read().decode("utf-8")
        return error.code, dict(error.headers), json.loads(payload)


def submit(server, key=ACME_KEY, requests=None, **fields):
    body = {
        "model": MODEL,
        "requests": requests
        if requests is not None
        else [{"problem": "cdpf"}, {"problem": "dgc", "budget": 2.0}],
    }
    body.update(fields)
    return call(server, "/v1/jobs", method="POST", key=key, body=body)


def await_state(server, job_id, want, key=ACME_KEY, tries=500):
    for _ in range(tries):
        status, _, doc = call(server, f"/v1/jobs/{job_id}", key=key)
        assert status == 200
        if doc["job"]["state"] == want:
            return doc["job"]
    raise AssertionError(f"job never reached {want!r}: {doc}")


class TestAuth:
    def test_ping_needs_no_key(self, server):
        status, _, doc = call(server, "/ping", key=None)
        assert status == 200
        assert doc["server"] == SERVICE_NAME
        assert doc["service_version"] == SERVICE_VERSION

    def test_missing_key_is_401(self, server):
        status, _, doc = call(server, "/v1/jobs", key=None)
        assert status == 401
        assert doc["kind"] == "unauthorized"
        assert API_KEY_HEADER in doc["error"]

    def test_unknown_key_is_403(self, server):
        status, _, doc = call(server, "/v1/jobs", key="wrong-key-12345678")
        assert status == 403
        assert doc["kind"] == "forbidden"

    def test_prefix_of_a_real_key_is_403(self, server):
        status, _, doc = call(server, "/v1/jobs", key=ACME_KEY[:-1])
        assert status == 403


class TestValidationAtTheEdge:
    def test_non_json_body_is_400(self, server):
        status, _, doc = call(
            server, "/v1/jobs", method="POST", raw=b"{not json",
        )
        assert status == 400
        assert doc["kind"] == "bad-request"

    def test_non_object_body_is_400(self, server):
        status, _, doc = call(server, "/v1/jobs", method="POST", body=[1, 2])
        assert status == 400
        assert "JSON object" in doc["error"]

    def test_unknown_job_fields_are_400(self, server):
        status, _, doc = submit(server, priority="high")
        assert status == 400
        assert doc["kind"] == "validation"
        assert "priority" in doc["error"]

    def test_bad_request_in_batch_names_the_index(self, server):
        status, _, doc = submit(
            server, requests=[{"problem": "cdpf"}, {"problem": "dgc"}],
        )
        assert status == 400
        assert doc["kind"] == "validation"
        assert doc["index"] == 1
        assert "budget" in doc["error"]

    def test_bad_model_is_400_with_field(self, server):
        status, _, doc = call(
            server, "/v1/jobs", method="POST",
            body={"model": 7, "requests": [{"problem": "cdpf"}]},
        )
        assert status == 400
        assert doc["field"] == "model"

    def test_rejected_batch_leaves_no_job_behind(self, server):
        submit(server, requests=[{"problem": "nonsense"}])
        status, _, doc = call(server, "/v1/jobs")
        assert status == 200
        assert doc["jobs"] == []

    def test_unknown_endpoint_is_404(self, server):
        for route, method in (
            ("/v1/nonsense", "GET"),
            ("/v1/jobs/x/nonsense", "GET"),
            ("/v1/jobs/x/results/extra", "GET"),
            ("/v1/nonsense", "POST"),
        ):
            status, _, doc = call(server, route, method=method)
            assert status == 404
            assert doc["kind"] == "not-found"


class TestJobLifecycle:
    def test_submit_poll_results(self, server, worker):
        status, _, doc = submit(server)
        assert status == 202
        assert doc["ok"] is True
        job = doc["job"]
        assert job["state"] in ("queued", "running", "done")
        assert job["count"] == 2

        final = await_state(server, job["job_id"], "done")
        assert final["completed"] == 2

        status, _, doc = call(server, f"/v1/jobs/{job['job_id']}/results")
        assert status == 200
        rows = doc["results"]
        assert [row["index"] for row in rows] == [0, 1]
        assert all(row["state"] == "done" for row in rows)
        assert rows[1]["result"]["value"] == 200.0

    def test_jobs_are_listed_in_submission_order(self, server):
        ids = [submit(server, name=f"j{i}")[2]["job"]["job_id"]
               for i in range(3)]
        status, _, doc = call(server, "/v1/jobs")
        assert status == 200
        assert [job["job_id"] for job in doc["jobs"]] == ids
        assert [job["name"] for job in doc["jobs"]] == ["j0", "j1", "j2"]

    def test_cancel_is_effective_and_idempotent(self, server):
        _, _, doc = submit(server)
        job_id = doc["job"]["job_id"]
        status, _, doc = call(
            server, f"/v1/jobs/{job_id}/cancel", method="POST",
        )
        assert status == 200
        assert doc["job"]["state"] == "cancelled"
        status, _, doc = call(
            server, f"/v1/jobs/{job_id}/cancel", method="POST",
        )
        assert status == 200
        assert doc["job"]["state"] == "cancelled"

    def test_stream_emits_results_then_an_end_line(self, server, worker):
        _, _, doc = submit(server)
        job_id = doc["job"]["job_id"]
        request = urllib.request.Request(
            f"{server.url}/v1/jobs/{job_id}/stream",
        )
        request.add_header(API_KEY_HEADER, ACME_KEY)
        with urllib.request.urlopen(request, timeout=30) as response:
            assert response.status == 200
            assert response.headers["Content-Type"] == "application/x-ndjson"
            lines = [
                json.loads(line)
                for line in response.read().decode("utf-8").splitlines()
            ]
        assert lines[-1]["event"] == "end"
        assert lines[-1]["state"] == "done"
        results = [line for line in lines if line["event"] == "result"]
        assert sorted(line["index"] for line in results) == [0, 1]

    def test_stream_of_unknown_job_is_404(self, server):
        status, _, doc = call(server, "/v1/jobs/nope/stream")
        assert status == 404


class TestTenancyOverHttp:
    def test_foreign_job_ids_do_not_exist(self, server):
        _, _, doc = submit(server, key=ACME_KEY)
        job_id = doc["job"]["job_id"]
        for route, method in (
            (f"/v1/jobs/{job_id}", "GET"),
            (f"/v1/jobs/{job_id}/results", "GET"),
            (f"/v1/jobs/{job_id}/stream", "GET"),
            (f"/v1/jobs/{job_id}/cancel", "POST"),
        ):
            status, _, doc = call(server, route, method=method,
                                  key=GLOBEX_KEY)
            assert status == 404, route
            assert doc["kind"] == "not-found"
        status, _, doc = call(server, "/v1/jobs", key=GLOBEX_KEY)
        assert doc["jobs"] == []

    def test_in_flight_cap_answers_429_with_retry_after(self, server):
        # globex is capped at 2 in-flight requests.
        status, _, _ = submit(
            server, key=GLOBEX_KEY,
            requests=[{"problem": "cdpf"}, {"problem": "cdpf"}],
        )
        assert status == 202
        status, headers, doc = submit(
            server, key=GLOBEX_KEY, requests=[{"problem": "cdpf"}],
        )
        assert status == 429
        assert doc["kind"] == "quota"
        assert int(headers["Retry-After"]) >= 1
        assert doc["retry_after_seconds"] > 0
        # acme is unaffected by globex's cap.
        assert submit(server, key=ACME_KEY)[0] == 202

    def test_cancelling_frees_the_cap(self, server):
        _, _, doc = submit(
            server, key=GLOBEX_KEY,
            requests=[{"problem": "cdpf"}, {"problem": "cdpf"}],
        )
        call(server, f"/v1/jobs/{doc['job']['job_id']}/cancel",
             method="POST", key=GLOBEX_KEY)
        status, _, _ = submit(
            server, key=GLOBEX_KEY, requests=[{"problem": "cdpf"}],
        )
        assert status == 202

    def test_rate_limited_tenant_gets_429(self):
        registry = TenantRegistry([
            Tenant(name="acme", key=ACME_KEY, rate_per_second=0.001,
                   burst=2.0),
        ])
        with ServiceServer(InMemoryQueue(), registry) as service:
            service.start()
            assert submit(service, requests=[{"problem": "cdpf"}] * 2)[0] \
                == 202
            status, headers, doc = submit(
                service, requests=[{"problem": "cdpf"}],
            )
            assert status == 429
            assert doc["kind"] == "rate-limit"
            assert "Retry-After" in headers
