"""Unit and property tests for the partial orders and Pareto filters."""

from hypothesis import given, settings
from hypothesis import strategies as st

from repro.pareto.poset import (
    dominates_pair,
    dominates_triple,
    is_antichain_pairs,
    merge_pair_sets,
    min_with_budget,
    pareto_minimal_pairs,
    pareto_minimal_triples,
    strictly_dominates_pair,
    strictly_dominates_triple,
)

from ..conftest import cost_damage_pairs


class TestPairOrder:
    def test_cheaper_and_more_damaging_dominates(self):
        assert dominates_pair((1, 200), (2, 10))
        assert strictly_dominates_pair((1, 200), (2, 10))

    def test_equal_points_weakly_dominate_both_ways(self):
        assert dominates_pair((3, 5), (3, 5))
        assert not strictly_dominates_pair((3, 5), (3, 5))

    def test_incomparable_points(self):
        assert not dominates_pair((1, 10), (2, 20))
        assert not dominates_pair((2, 20), (1, 10))

    def test_example2_dominations(self):
        """The dominations listed in Example 2 of the paper."""
        assert strictly_dominates_pair((1, 200), (2, 10))
        assert strictly_dominates_pair((1, 200), (3, 0))
        assert strictly_dominates_pair((1, 200), (4, 200))
        assert strictly_dominates_pair((5, 310), (6, 310))


class TestTripleOrder:
    def test_third_component_matters(self):
        # (3, 0, 1) is NOT dominated by (0, 0, 0): it reaches the node.
        assert not dominates_triple((0, 0, 0), (3, 0, 1))
        # But (3, 0, 0) IS dominated by (0, 0, 0) (Example 4).
        assert dominates_triple((0, 0, 0), (3, 0, 0))

    def test_strict_vs_weak(self):
        assert dominates_triple((1, 5, 1), (1, 5, 1))
        assert not strictly_dominates_triple((1, 5, 1), (1, 5, 1))
        assert strictly_dominates_triple((1, 5, 1), (2, 5, 1))

    def test_probability_component(self):
        assert dominates_triple((1, 0.5, 0.75), (1, 0.5, 0.5))
        assert not dominates_triple((1, 0.5, 0.5), (1, 0.5, 0.75))


class TestParetoMinimalPairs:
    def test_example2_front(self):
        values = [(0, 0), (2, 10), (3, 0), (5, 310), (1, 200), (3, 210), (4, 200), (6, 310)]
        front = pareto_minimal_pairs(values, key=lambda v: v)
        assert sorted(front) == [(0, 0), (1, 200), (3, 210), (5, 310)]

    def test_duplicates_collapsed(self):
        front = pareto_minimal_pairs([(1, 5), (1, 5), (2, 7)], key=lambda v: v)
        assert sorted(front) == [(1, 5), (2, 7)]

    def test_empty_input(self):
        assert pareto_minimal_pairs([], key=lambda v: v) == []

    def test_single_point(self):
        assert pareto_minimal_pairs([(4, 4)], key=lambda v: v) == [(4, 4)]

    def test_key_function_respected(self):
        items = [{"c": 1, "d": 10}, {"c": 2, "d": 5}]
        front = pareto_minimal_pairs(items, key=lambda i: (i["c"], i["d"]))
        assert front == [items[0]]

    @settings(max_examples=100, deadline=None)
    @given(points=cost_damage_pairs())
    def test_result_is_antichain(self, points):
        front = pareto_minimal_pairs(points, key=lambda v: v)
        assert is_antichain_pairs(front)

    @settings(max_examples=100, deadline=None)
    @given(points=cost_damage_pairs())
    def test_front_is_exactly_the_undominated_inputs(self, points):
        """The paper's ``min X = {x | ∀x' ∈ X. x' ⊄ x}``: no front member is
        strictly dominated by *any* input, and every undominated input is
        represented on the front (up to ε-equality dedup).  The older claim
        "every input is weakly dominated by the front" is unattainable:
        ε-dominance is not transitive, so a dropped chain can end further
        than ε from its surviving dominator."""
        front = pareto_minimal_pairs(points, key=lambda v: v)
        for member in front:
            assert not any(strictly_dominates_pair(p, member) for p in points)
        for point in points:
            if not any(strictly_dominates_pair(p, point) for p in points):
                assert any(dominates_pair(f, point) for f in front)

    def test_epsilon_chain_regression(self):
        """A chain of points pairwise within ε used to leave a dominated
        point on the front: (0.2, …8) strictly dominates (2.0, …15) but was
        itself dropped as an ε-duplicate of (0.0, 5.0)."""
        points = [(0.0, 5.0), (0.2, 5.0 + 0.8e-9), (2.0, 5.0 + 1.5e-9)]
        front = pareto_minimal_pairs(points, key=lambda v: v)
        assert front == [(0.0, 5.0)]

    @settings(max_examples=200, deadline=None, derandomize=True)
    @given(data=st.data())
    def test_no_front_member_dominated_with_epsilon_spaced_costs(self, data):
        """Regression for the ε-chain sweep bug: costs and damages spaced in
        sub-ε increments must never leave a strictly dominated point kept."""
        from repro.pareto.poset import EPSILON

        count = data.draw(st.integers(2, 8), label="count")
        base_cost = data.draw(st.floats(0, 10, allow_nan=False), label="base_cost")
        base_damage = data.draw(
            st.floats(0, 10, allow_nan=False), label="base_damage"
        )
        points = []
        for _ in range(count):
            cost_steps = data.draw(st.integers(0, 40), label="cost_steps")
            damage_steps = data.draw(st.integers(0, 40), label="damage_steps")
            points.append(
                (
                    base_cost + cost_steps * (EPSILON / 10),
                    base_damage + damage_steps * (EPSILON / 10),
                )
            )
        front = pareto_minimal_pairs(points, key=lambda v: v)
        assert front, "front of a nonempty set is nonempty"
        for member in front:
            assert not any(strictly_dominates_pair(p, member) for p in points)
        assert is_antichain_pairs(front)

    @settings(max_examples=50, deadline=None)
    @given(points=cost_damage_pairs())
    def test_idempotent(self, points):
        once = pareto_minimal_pairs(points, key=lambda v: v)
        twice = pareto_minimal_pairs(once, key=lambda v: v)
        assert sorted(once) == sorted(twice)


class TestParetoMinimalTriples:
    def test_example4_keeps_reaching_attack(self):
        """From Example 4: (3, 0, 1) must survive at node pb even though
        (0, 0, 0) is cheaper, because it reaches the node."""
        values = [(0, 0, 0), (3, 0, 1)]
        front = pareto_minimal_triples(values, key=lambda v: v)
        assert sorted(front) == [(0, 0, 0), (3, 0, 1)]

    def test_example4_discards_non_reaching_expensive(self):
        """At node dr, (3, 0, 0) is dominated by (0, 0, 0) and discarded."""
        values = [(0, 0, 0), (3, 0, 0), (2, 10, 0), (5, 110, 1)]
        front = pareto_minimal_triples(values, key=lambda v: v)
        assert sorted(front) == [(0, 0, 0), (2, 10, 0), (5, 110, 1)]

    def test_antichain_property(self):
        values = [(1, 1, 0.5), (2, 2, 0.7), (1, 3, 0.2), (3, 1, 1.0)]
        front = pareto_minimal_triples(values, key=lambda v: v)
        for a in front:
            for b in front:
                if a != b:
                    assert not strictly_dominates_triple(a, b)


class TestMinWithBudget:
    def test_budget_filter(self):
        values = [(0, 0, 0), (2, 10, 1), (5, 110, 1)]
        front = min_with_budget(values, key=lambda v: v, budget=3)
        assert sorted(front) == [(0, 0, 0), (2, 10, 1)]

    def test_infinite_budget_keeps_all_optimal(self):
        values = [(0, 0, 0), (2, 10, 1), (5, 110, 1)]
        front = min_with_budget(values, key=lambda v: v)
        assert sorted(front) == values


class TestHelpers:
    def test_is_antichain_detects_domination(self):
        assert is_antichain_pairs([(1, 10), (2, 20)])
        assert not is_antichain_pairs([(1, 10), (2, 5)])

    def test_merge_pair_sets(self):
        merged = merge_pair_sets([(0, 0), (1, 10)], [(1, 20), (2, 5)])
        assert sorted(merged) == [(0, 0), (1, 20)]
