"""Tests for the ASCII Pareto-front renderer."""

import pytest

from repro.pareto.front import ParetoFront
from repro.pareto.plot import ascii_front, compare_fronts


@pytest.fixture
def factory_front():
    return ParetoFront.from_values([(0, 0), (1, 200), (3, 210), (5, 310)])


class TestAsciiFront:
    def test_contains_markers_and_axes(self, factory_front):
        plot = ascii_front(factory_front, title="factory")
        assert "factory" in plot
        assert "●" in plot
        assert "cost →" in plot

    def test_marker_count_at_least_distinct_cells(self, factory_front):
        plot = ascii_front(factory_front, width=40, height=12)
        assert plot.count("●") >= 3  # distinct grid cells for 4 points

    def test_axis_labels_show_extremes(self, factory_front):
        plot = ascii_front(factory_front)
        assert "310" in plot
        assert "5" in plot

    def test_staircase_shading_present(self, factory_front):
        assert "·" in ascii_front(factory_front)

    def test_empty_front(self):
        assert "(empty front)" in ascii_front(ParetoFront([]))

    def test_single_point_front(self):
        plot = ascii_front(ParetoFront.from_values([(0, 0)]))
        assert "●" in plot

    def test_dimensions_respected(self, factory_front):
        plot = ascii_front(factory_front, width=30, height=8, title="")
        rows = [line for line in plot.splitlines() if "|" in line]
        assert len(rows) == 8

    def test_custom_marker(self, factory_front):
        plot = ascii_front(factory_front, marker="X")
        assert "X" in plot and "●" not in plot


class TestCompareFronts:
    def test_overlay_markers(self, factory_front):
        approximate = ParetoFront.from_values([(0, 0), (3, 180)])
        plot = compare_fronts(factory_front, approximate, title="cmp")
        assert "●" in plot and "○" in plot
        assert "cmp" in plot
        assert "exact" in plot

    def test_empty_inputs(self):
        assert "(empty fronts)" in compare_fronts(ParetoFront([]), ParetoFront([]))
