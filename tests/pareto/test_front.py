"""Unit and property tests for the ParetoFront object."""

import pytest
from hypothesis import given, settings

from repro.pareto.front import ParetoFront, ParetoPoint
from repro.pareto.poset import strictly_dominates_pair

from ..conftest import cost_damage_pairs


def example_front() -> ParetoFront:
    """The Fig. 3 front of the factory example."""
    return ParetoFront.from_values([(0, 0), (1, 200), (3, 210), (5, 310)])


class TestConstruction:
    def test_dominated_points_dropped(self):
        front = ParetoFront.from_values([(0, 0), (1, 200), (2, 10), (4, 200)])
        assert front.values() == [(0, 0), (1, 200)]

    def test_duplicates_collapsed(self):
        front = ParetoFront.from_values([(1, 10), (1, 10), (0, 0)])
        assert len(front) == 2

    def test_points_sorted_by_cost(self):
        front = ParetoFront.from_values([(5, 310), (0, 0), (3, 210)])
        assert front.costs() == [0, 3, 5]
        assert front.damages() == [0, 210, 310]

    def test_from_attacks_carries_witnesses(self):
        front = ParetoFront.from_attacks(
            [(frozenset({"ca"}), 1.0, 200.0), (frozenset(), 0.0, 0.0)]
        )
        assert front[1].attack == frozenset({"ca"})

    def test_empty_front(self):
        front = ParetoFront([])
        assert len(front) == 0
        assert front.values() == []
        assert front.max_damage_given_cost(10) is None
        assert front.min_cost_given_damage(1) is None


class TestQueries:
    def test_max_damage_given_cost_matches_example2(self):
        """Example 2: the solution to DgC for U = 2 is 200."""
        assert example_front().max_damage_given_cost(2) == 200

    def test_max_damage_given_cost_boundaries(self):
        front = example_front()
        assert front.max_damage_given_cost(0) == 0
        assert front.max_damage_given_cost(5) == 310
        assert front.max_damage_given_cost(100) == 310
        assert front.max_damage_given_cost(4.99) == 210

    def test_min_cost_given_damage(self):
        front = example_front()
        assert front.min_cost_given_damage(200) == 1
        assert front.min_cost_given_damage(201) == 3
        assert front.min_cost_given_damage(310) == 5
        assert front.min_cost_given_damage(311) is None
        assert front.min_cost_given_damage(0) == 0

    def test_best_attack_given_cost(self):
        front = ParetoFront.from_attacks([(frozenset({"ca"}), 1.0, 200.0)])
        point = front.best_attack_given_cost(2)
        assert point is not None and point.attack == frozenset({"ca"})
        assert front.best_attack_given_cost(0.5) is None

    def test_cheapest_attack_given_damage(self):
        front = example_front()
        point = front.cheapest_attack_given_damage(205)
        assert point is not None and point.cost == 3
        assert front.cheapest_attack_given_damage(1000) is None

    def test_dominates_point(self):
        front = example_front()
        assert front.dominates_point(2, 150)
        assert not front.dominates_point(0.5, 100)


class TestSetOperations:
    def test_merge(self):
        left = ParetoFront.from_values([(0, 0), (2, 100)])
        right = ParetoFront.from_values([(1, 150), (3, 120)])
        merged = left.merge(right)
        assert merged.values() == [(0, 0), (1, 150)]

    def test_restrict_to_budget(self):
        restricted = example_front().restrict_to_budget(3)
        assert restricted.values() == [(0, 0), (1, 200), (3, 210)]

    def test_equality_and_hash(self):
        assert example_front() == ParetoFront.from_values(
            [(5, 310), (3, 210), (1, 200), (0, 0)]
        )
        assert hash(example_front()) == hash(example_front())
        assert example_front() != ParetoFront.from_values([(0, 0)])

    def test_values_equal_with_tolerance(self):
        left = ParetoFront.from_values([(1, 200.0000001)])
        right = ParetoFront.from_values([(1, 200)])
        assert left.values_equal(right)


class TestIndicatorsAndDisplay:
    def test_hypervolume_monotone_in_points(self):
        small = ParetoFront.from_values([(0, 0), (5, 100)])
        large = ParetoFront.from_values([(0, 0), (1, 80), (5, 100)])
        bound = 10
        assert large.hypervolume(bound) >= small.hypervolume(bound)

    def test_hypervolume_simple_rectangle(self):
        front = ParetoFront.from_values([(0, 0), (2, 10)])
        # Damage 10 is available on [2, 4]: area 2 * 10 = 20.
        assert front.hypervolume(4) == pytest.approx(20)

    def test_hypervolume_empty(self):
        assert ParetoFront([]).hypervolume(10) == 0.0

    def test_table_rendering(self):
        front = ParetoFront.from_attacks([(frozenset({"ca"}), 1.0, 200.0)])
        text = front.table()
        assert "cost" in text and "ca" in text

    def test_repr(self):
        assert "ParetoFront" in repr(example_front())

    def test_consistency_check(self):
        assert example_front().is_consistent()

    def test_two_equal_cost_points_are_inconsistent(self):
        # Constructors always collapse equal-cost points, so build the
        # degenerate front by hand: two points at the same cost whose damages
        # are within tolerance slip past the antichain check, and only the
        # strict-separation clause of ``is_consistent`` can reject them.
        front = ParetoFront([])
        front._points = (
            ParetoPoint(cost=1.0, damage=5.0),
            ParetoPoint(cost=1.0, damage=5.0 + 0.5e-9),
        )
        assert not front.is_consistent()

    def test_point_str(self):
        point = ParetoPoint(cost=1, damage=200, attack=frozenset({"ca"}))
        assert "ca" in str(point)


class TestProperties:
    @settings(max_examples=100, deadline=None)
    @given(points=cost_damage_pairs(size=10))
    def test_front_is_always_consistent(self, points):
        front = ParetoFront.from_values(points)
        assert front.is_consistent()

    @settings(max_examples=100, deadline=None)
    @given(points=cost_damage_pairs(size=10))
    def test_front_is_the_undominated_inputs(self, points):
        """The front is the paper's ``min``: exactly the inputs that no
        input strictly dominates (ε-dominance is not transitive, so
        "every input is dominated *by the front*" is not attainable)."""
        front = ParetoFront.from_values(points)
        for value in front.values():
            assert not any(strictly_dominates_pair(p, value) for p in points)
        for point in points:
            if not any(strictly_dominates_pair(p, point) for p in points):
                assert front.dominates_point(*point)

    @settings(max_examples=50, deadline=None)
    @given(points=cost_damage_pairs(size=10))
    def test_dgc_cgd_consistency(self, points):
        """Equations (1) and (2) are mutually consistent on any front."""
        front = ParetoFront.from_values(points)
        for cost, _damage in points:
            best = front.max_damage_given_cost(cost)
            if best is None or best == 0:
                continue
            cheapest = front.min_cost_given_damage(best)
            assert cheapest is not None
            assert cheapest <= cost + 1e-9
