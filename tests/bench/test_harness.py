"""Tests for the benchmark harness: expansion, execution, executors."""

import pytest

from repro.bench import BenchRun, build_request, execute_specs, expand_specs
from repro.core.problems import Problem
from repro.workloads import ScenarioSpec

TINY = [
    ScenarioSpec(family="catalog", shape="treelike", setting="deterministic"),
    ScenarioSpec(family="random", shape="treelike", setting="deterministic",
                 sizes=(6,), cases_per_size=2),
    ScenarioSpec(family="wide-fan", shape="dag", setting="deterministic",
                 sizes=(6,)),
]


class TestBuildRequest:
    def test_defaults_follow_setting(self):
        det = build_request(ScenarioSpec(family="random"))
        prob = build_request(ScenarioSpec(family="random", setting="probabilistic"))
        assert det.problem is Problem.CDPF
        assert prob.problem is Problem.CEDPF

    def test_scalar_params_flow_through(self):
        spec = ScenarioSpec(family="random", problem="dgc", params={"budget": 5})
        request = build_request(spec)
        assert request.problem is Problem.DGC
        assert request.budget == 5

    def test_backend_forced(self):
        spec = ScenarioSpec(family="random", backend="enumerative")
        assert build_request(spec).backend == "enumerative"


class TestExecution:
    def test_expand_specs_keeps_spec_with_case(self):
        items = expand_specs(TINY)
        assert len(items) == 5  # 2 catalog + 2 random + 1 wide-fan
        assert all(spec.family == case.family for spec, case in items)

    def test_sequential_run_records_rows(self):
        runs = execute_specs(TINY)
        assert len(runs) == 5
        for run in runs:
            assert isinstance(run, BenchRun)
            assert run.wall_time_seconds >= 0
            assert run.result_points > 0
            assert run.nodes > 0 and run.bas > 0
            assert run.backend in {"bottom-up", "bilp"}

    def test_rows_round_trip(self):
        run = execute_specs(TINY[:1])[0]
        assert BenchRun.from_dict(run.to_dict()) == run

    def test_repeats_recorded(self):
        runs = execute_specs(TINY[:1], repeats=3)
        assert all(run.repeats == 3 for run in runs)
        # Repeats clear the session cache, so every repeat really computed.
        assert all(run.cache_hits == 0 for run in runs)
        assert all(run.cache_misses == 3 for run in runs)

    def test_thread_executor_matches_sequential(self):
        sequential = execute_specs(TINY)
        threaded = execute_specs(TINY, executor="thread", max_workers=4)
        assert [(r.case_id, r.result_points, r.value, r.backend)
                for r in sequential] == \
               [(r.case_id, r.result_points, r.value, r.backend)
                for r in threaded]

    def test_process_executor_matches_sequential_on_random_suite(self):
        # Acceptance criterion: process-pool execution of a random-suite
        # workload returns results equal to sequential execution.
        specs = [
            ScenarioSpec(family="random", shape="treelike",
                         setting="deterministic", sizes=(6, 10), cases_per_size=2),
            ScenarioSpec(family="random", shape="dag",
                         setting="probabilistic", sizes=(5,)),
        ]
        sequential = execute_specs(specs)
        processed = execute_specs(specs, executor="process", max_workers=2)
        assert [(r.case_id, r.result_points, r.value, r.backend, r.model_shape)
                for r in sequential] == \
               [(r.case_id, r.result_points, r.value, r.backend, r.model_shape)
                for r in processed]

    def test_unknown_executor_rejected(self):
        with pytest.raises(ValueError, match="unknown executor"):
            execute_specs(TINY, executor="gpu")

    def test_bad_repeats_rejected(self):
        with pytest.raises(ValueError, match="repeats"):
            execute_specs(TINY, repeats=0)

    def test_invalid_request_fails_before_any_execution(self):
        # The missing budget must surface during pre-flight, not mid-run.
        specs = [ScenarioSpec(family="random", sizes=(6,), problem="dgc")]
        with pytest.raises(ValueError, match="budget"):
            execute_specs(specs)

    def test_unknown_backend_fails_preflight(self):
        specs = [ScenarioSpec(family="random", sizes=(6,), backend="nope")]
        with pytest.raises(ValueError, match="unknown backend"):
            execute_specs(specs)

    def test_zero_max_workers_rejected(self):
        # `--max-workers 0` must be a user error, not silently the default
        # pool size (0 is falsy, so `max_workers or ...` would mask it).
        with pytest.raises(ValueError, match="max_workers"):
            execute_specs(TINY, executor="thread", max_workers=0)
        with pytest.raises(ValueError, match="max_workers"):
            execute_specs(TINY, executor="process", max_workers=-1)


class TestTraceMemory:
    def test_untraced_rows_omit_peak_kb(self):
        runs = execute_specs(TINY[:1])
        assert all(run.peak_kb is None for run in runs)
        assert all("peak_kb" not in run.to_dict() for run in runs)

    def test_traced_rows_record_positive_peaks(self):
        runs = execute_specs(TINY[:1], trace_memory=True)
        assert all(run.peak_kb is not None and run.peak_kb > 0 for run in runs)
        for run in runs:
            round_tripped = BenchRun.from_dict(run.to_dict())
            assert round_tripped.peak_kb == run.peak_kb

    def test_traced_results_identical_to_untraced(self):
        traced = execute_specs(TINY, trace_memory=True)
        plain = execute_specs(TINY)
        key = lambda run: (run.case_id, run.result_points, run.value)
        assert [key(run) for run in traced] == [key(run) for run in plain]

    def test_process_executor_propagates_peaks(self):
        runs = execute_specs(TINY[:1], executor="process", max_workers=2,
                             trace_memory=True)
        assert all(run.peak_kb is not None and run.peak_kb > 0 for run in runs)

    def test_malformed_traced_payload_does_not_leak_the_tracer(self):
        # A long-lived worker catches the failure and keeps executing: the
        # tracer this call started must not stay on and slow everything.
        import tracemalloc

        from repro.bench.harness import execute_serialized_case

        assert not tracemalloc.is_tracing()
        with pytest.raises(ValueError, match="nodes"):
            execute_serialized_case(
                {"trace_memory": True, "model": {"broken": True},
                 "request": {"problem": "cdpf"}, "repeats": 1}
            )
        assert not tracemalloc.is_tracing()


class TestSharedStore:
    def _results(self, runs):
        return [(r.case_id, r.result_points, r.value, r.backend) for r in runs]

    def test_warm_run_is_served_from_the_store(self, tmp_path):
        store_path = str(tmp_path / "bench.sqlite")
        cold = execute_specs(TINY, store_path=store_path)
        warm = execute_specs(TINY, store_path=store_path)
        assert self._results(cold) == self._results(warm)
        assert all(run.cache_misses == 0 for run in warm)
        assert all(run.cache_hits == 1 for run in warm)
        assert all(run.store_hits == 1 for run in warm)
        # Store hits report the original computation's wall time, so warm
        # artifacts stay comparable against cold ones.
        assert [r.wall_time_seconds for r in warm] == \
               [r.wall_time_seconds for r in cold]

    def test_cold_run_records_misses_and_populates(self, tmp_path):
        from repro.engine import SqliteStore

        store_path = str(tmp_path / "bench.sqlite")
        cold = execute_specs(TINY, store_path=store_path)
        assert all(run.cache_misses == 1 and run.store_hits == 0 for run in cold)
        with SqliteStore(store_path) as store:
            assert len(store) == len(cold)

    def test_process_executor_shares_one_store(self, tmp_path):
        store_path = str(tmp_path / "bench.sqlite")
        cold = execute_specs(TINY, executor="process", max_workers=2,
                             store_path=store_path)
        warm = execute_specs(TINY, executor="process", max_workers=2,
                             store_path=store_path)
        assert self._results(cold) == self._results(warm)
        assert all(run.store_hits == 1 for run in warm)

    def test_unusable_store_fails_before_any_execution(self, tmp_path):
        from repro.engine import StoreError

        bad = tmp_path / "corrupt.sqlite"
        bad.write_bytes(b"not a database")
        with pytest.raises(StoreError, match="cannot open result store"):
            execute_specs(TINY, store_path=str(bad))
