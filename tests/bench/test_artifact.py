"""Tests for BENCH artifact building, validation and comparison."""

import json

import pytest

from repro.bench import (
    SCHEMA_VERSION,
    artifact_runs,
    build_artifact,
    compare_artifacts,
    execute_specs,
    load_artifact,
    validate_artifact,
    write_artifact,
)
from repro.workloads import ScenarioSpec

SPECS = [
    ScenarioSpec(family="catalog", shape="treelike", setting="deterministic"),
    ScenarioSpec(family="wide-fan", shape="treelike", setting="deterministic",
                 sizes=(6,)),
]


@pytest.fixture(scope="module")
def runs():
    return execute_specs(SPECS)


@pytest.fixture(scope="module")
def artifact(runs):
    return build_artifact("unit", SPECS, runs, config={"executor": "sequential"})


class TestArtifact:
    def test_build_is_schema_valid(self, artifact):
        assert validate_artifact(artifact) is artifact
        assert artifact["schema_version"] == SCHEMA_VERSION
        assert artifact["totals"]["cases"] == 3
        assert artifact["environment"]["cpu_count"] >= 1

    def test_runs_round_trip(self, artifact, runs):
        assert artifact_runs(artifact) == list(runs)

    def test_untraced_totals_omit_peak_columns(self, artifact):
        assert "peak_kb_max" not in artifact["totals"]

    def test_traced_totals_aggregate_peak_kb(self):
        runs = execute_specs(SPECS[:1], trace_memory=True)
        traced = build_artifact("traced", SPECS[:1], runs)
        assert traced["totals"]["peak_kb_max"] == max(r.peak_kb for r in runs)
        assert traced["totals"]["peak_kb_sum"] == pytest.approx(
            sum(r.peak_kb for r in runs)
        )

    def test_write_and_load(self, artifact, tmp_path):
        path = str(tmp_path / "BENCH_unit.json")
        write_artifact(artifact, path)
        loaded = load_artifact(path)
        assert loaded["name"] == "unit"
        assert artifact_runs(loaded) == artifact_runs(artifact)
        # Embedded specs regenerate: the artifact is self-describing.
        assert [ScenarioSpec.from_dict(s) for s in loaded["specs"]] == SPECS

    def test_load_missing_file_is_value_error(self, tmp_path):
        with pytest.raises(ValueError, match="cannot read artifact"):
            load_artifact(str(tmp_path / "nope.json"))

    def test_load_invalid_json_is_value_error(self, tmp_path):
        path = tmp_path / "bad.json"
        path.write_text("{not json")
        with pytest.raises(ValueError, match="not valid JSON"):
            load_artifact(str(path))

    @pytest.mark.parametrize("mutate,match", [
        (lambda a: a.pop("runs"), "missing the 'runs'"),
        (lambda a: a.__setitem__("schema", "other"), "schema is"),
        (lambda a: a.__setitem__("schema_version", 999), "schema_version"),
        (lambda a: a["runs"][0].pop("case_id"), "missing the 'case_id'"),
        (lambda a: a["runs"][0].__setitem__("wall_time_seconds", "fast"),
         "must be a number"),
        (lambda a: a["specs"].append({"family": "nope", "shape": "cyclic"}),
         "not a valid scenario"),
    ])
    def test_validation_failures(self, artifact, mutate, match):
        broken = json.loads(json.dumps(artifact))
        mutate(broken)
        with pytest.raises(ValueError, match=match):
            validate_artifact(broken)


class TestComparison:
    def test_self_comparison_passes(self, artifact):
        report = compare_artifacts(artifact, artifact)
        assert report.ok
        assert report.compared == 3
        assert "PASS" in report.render()

    def test_slowdown_flagged(self, artifact):
        slower = json.loads(json.dumps(artifact))
        for run in slower["runs"]:
            run["wall_time_seconds"] = run["wall_time_seconds"] * 10 + 1.0
        report = compare_artifacts(artifact, slower, threshold=0.25)
        assert not report.ok
        assert len(report.regressions) == 3
        assert "REGRESSION" in report.render()

    def test_speedup_reported_not_failed(self, artifact):
        slower = json.loads(json.dumps(artifact))
        for run in slower["runs"]:
            run["wall_time_seconds"] = run["wall_time_seconds"] * 10 + 1.0
        report = compare_artifacts(slower, artifact, threshold=0.25)
        assert report.ok
        assert len(report.improvements) == 3

    def test_sub_resolution_noise_ignored(self, artifact):
        noisy = json.loads(json.dumps(artifact))
        for run in noisy["runs"]:
            run["wall_time_seconds"] = 0.004  # below the 5 ms floor
        fast = json.loads(json.dumps(noisy))
        for run in fast["runs"]:
            run["wall_time_seconds"] = 0.001
        assert compare_artifacts(fast, noisy).ok

    def test_result_mismatch_always_fails(self, artifact):
        wrong = json.loads(json.dumps(artifact))
        wrong["runs"][0]["result_points"] += 1
        report = compare_artifacts(artifact, wrong)
        assert not report.ok
        assert len(report.mismatches) == 1
        assert "RESULT MISMATCH" in report.render()

    def test_missing_and_added_runs_reported(self, artifact):
        smaller = json.loads(json.dumps(artifact))
        smaller["runs"].pop()
        report = compare_artifacts(artifact, smaller)
        assert report.ok  # informational, not a failure
        assert len(report.missing) == 1
        renamed = json.loads(json.dumps(artifact))
        renamed["runs"][0]["case_id"] = "brand-new"
        report = compare_artifacts(artifact, renamed)
        assert len(report.added) == 1

    def test_negative_threshold_rejected(self, artifact):
        with pytest.raises(ValueError, match="threshold"):
            compare_artifacts(artifact, artifact, threshold=-0.1)

    def test_minimal_schema_valid_runs_load_and_compare(self, artifact):
        # An artifact carrying only the fields validate_artifact requires
        # (e.g. produced by an external tool) must load and compare without
        # a KeyError.
        minimal = json.loads(json.dumps(artifact))
        minimal["runs"] = [
            {key: run[key] for key in ("case_id", "family", "shape", "setting",
                                       "problem", "backend", "wall_time_seconds")}
            for run in minimal["runs"]
        ]
        validate_artifact(minimal)
        assert artifact_runs(minimal)
        report = compare_artifacts(minimal, minimal)
        assert report.ok and report.compared == 3

    def test_zero_overlap_is_a_failure_not_a_vacuous_pass(self, artifact):
        renamed = json.loads(json.dumps(artifact))
        for run in renamed["runs"]:
            run["case_id"] = "other-" + run["case_id"]
        report = compare_artifacts(artifact, renamed)
        assert report.compared == 0
        assert not report.ok
        assert "no overlapping runs" in report.render()
