"""Tests for the named benchmark profiles."""

import pytest

from repro.bench import describe_profiles, profile, profile_names
from repro.bench.harness import build_request, expand_specs
from repro.engine import AnalysisSession
from repro.workloads import ScenarioSpec


class TestProfiles:
    def test_known_profiles(self):
        assert {"smoke", "full", "scale"} <= set(profile_names())

    def test_unknown_profile_lists_known(self):
        with pytest.raises(ValueError, match="available profiles"):
            profile("nope")

    def test_profile_returns_fresh_list(self):
        first = profile("smoke")
        first.clear()
        assert profile("smoke")

    def test_describe_mentions_every_profile(self):
        text = describe_profiles()
        for name in profile_names():
            assert name in text

    def test_smoke_covers_families_shapes_settings(self):
        # Acceptance criterion: >= 4 workload families across both shapes
        # and both settings.
        specs = profile("smoke")
        assert len({spec.family for spec in specs}) >= 4
        assert {spec.shape for spec in specs} == {"treelike", "dag"}
        assert {spec.setting for spec in specs} == {"deterministic", "probabilistic"}

    @pytest.mark.parametrize("name", ["smoke", "full", "scale"])
    def test_profiles_are_valid_specs(self, name):
        for spec in profile(name):
            assert isinstance(spec, ScenarioSpec)
            assert ScenarioSpec.from_dict(spec.to_dict()) == spec

    def test_smoke_requests_resolve(self):
        # Every smoke case must resolve to a backend without executing it —
        # an uncovered capability cell would only fail at bench time.
        for spec, case in expand_specs(profile("smoke")):
            request = build_request(spec)
            request.validate()
            AnalysisSession(case.model).resolve(request.problem,
                                               backend=request.backend)
