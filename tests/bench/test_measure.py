"""Tests for the shared timing primitives."""

import pytest

from repro.bench import TimingSample, measure, timed


class TestTimed:
    def test_returns_result_and_duration(self):
        result, seconds = timed(lambda: 42)
        assert result == 42
        assert seconds >= 0

    def test_measure_counts_runs(self):
        calls = []
        sample = measure(lambda: calls.append(1), repeats=4)
        assert sample.runs == 4
        assert len(calls) == 4

    def test_experiments_reexport_is_the_same_object(self):
        # The experiments keep their historical import path; both must be
        # the bench implementation so there is exactly one timing path.
        from repro.experiments import timing

        assert timing.TimingSample is TimingSample
        assert timing.measure is measure

    def test_empty_durations_rejected(self):
        with pytest.raises(ValueError):
            TimingSample.from_durations([])

    def test_experiments_import_does_not_load_the_harness_stack(self):
        # The experiments only need the timing primitives; the bench
        # package re-exports lazily so importing them must not drag in the
        # harness, artifacts, profiles or the workload generator.
        import pathlib
        import subprocess
        import sys

        src = str(pathlib.Path(__file__).resolve().parents[2] / "src")
        probe = (
            "import sys\n"
            "import repro.experiments.timing\n"
            "heavy = [m for m in sys.modules if m.startswith('repro.bench.')"
            " and m != 'repro.bench.measure']\n"
            "heavy += [m for m in sys.modules if m.startswith('repro.workloads')]\n"
            "assert not heavy, heavy\n"
        )
        subprocess.run([sys.executable, "-c", probe], check=True,
                       env={"PYTHONPATH": src})
