"""Tests for the BILP translation (Section VII, Theorems 6–7)."""

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.attacktree.catalog import data_server, factory, panda_iot
from repro.core.bilp import (
    build_structure_program,
    cost_objective,
    damage_objective,
    max_damage_given_cost_bilp,
    min_cost_given_damage_bilp,
    pareto_front_bilp,
)
from repro.core.bottom_up import pareto_front_treelike
from repro.core.enumerative import (
    enumerate_max_damage_given_cost,
    enumerate_min_cost_given_damage,
    enumerate_pareto_front,
)
from repro.core.semantics import attack_cost, attack_damage
from repro.milp.branch_bound import BranchAndBoundSolver
from repro.milp.model import ConstraintSense

from ..conftest import make_random_tree


class TestProgramConstruction:
    def test_one_variable_per_node(self):
        model = factory()
        program = build_structure_program(model)
        assert len(program.variables) == len(model.tree)

    def test_example7_constraint_counts(self):
        """Example 7: the factory AT yields two AND constraints (one per
        child of dr) and one OR constraint (for ps)."""
        program = build_structure_program(factory())
        and_constraints = [c for c in program.constraints if c.name.startswith("and:")]
        or_constraints = [c for c in program.constraints if c.name.startswith("or:")]
        assert len(and_constraints) == 2
        assert len(or_constraints) == 1

    def test_all_constraints_are_less_equal_zero(self):
        program = build_structure_program(data_server())
        assert all(c.sense is ConstraintSense.LESS_EQUAL and c.rhs == 0.0
                   for c in program.constraints)

    def test_objective_coefficients(self):
        model = factory()
        cost = cost_objective(model)
        damage = damage_objective(model)
        assert cost.expression.coefficients == {"y:ca": 1.0, "y:pb": 3.0, "y:fd": 2.0}
        assert damage.expression.coefficients == {
            "y:fd": 10.0, "y:dr": 100.0, "y:ps": 200.0,
        }

    def test_structure_function_is_feasible_assignment(self):
        """Setting y_v = S(x, v) satisfies every constraint (Theorem 6 proof)."""
        model = data_server()
        program = build_structure_program(model)
        attack = {"b6", "b8", "b11", "b12"}
        reached = model.tree.structure_function(attack)
        assignment = {f"y:{node}": (1.0 if hit else 0.0) for node, hit in reached.items()}
        assert program.is_feasible(assignment)


class TestParetoFrontBilp:
    def test_factory_matches_bottom_up(self):
        assert pareto_front_bilp(factory()).values() == \
            pareto_front_treelike(factory()).values()

    def test_data_server_matches_enumeration(self):
        assert pareto_front_bilp(data_server()).values() == \
            enumerate_pareto_front(data_server()).values()

    def test_panda_matches_bottom_up(self):
        model = panda_iot().deterministic()
        assert pareto_front_bilp(model).values() == \
            pareto_front_treelike(model).values()

    def test_witnesses_achieve_reported_values(self):
        model = data_server()
        for point in pareto_front_bilp(model):
            if point.attack is None:
                continue
            assert attack_cost(model, point.attack) == pytest.approx(point.cost)
            assert attack_damage(model, point.attack) == pytest.approx(point.damage)

    def test_branch_and_bound_backend(self):
        solver = BranchAndBoundSolver()
        assert pareto_front_bilp(factory(), solver=solver).values() == \
            pareto_front_treelike(factory()).values()

    def test_branch_and_bound_with_pure_simplex_backend(self):
        solver = BranchAndBoundSolver(lp_engine="simplex")
        assert pareto_front_bilp(factory(), solver=solver).values() == \
            pareto_front_treelike(factory()).values()

    @staticmethod
    def _assert_fronts_close(mine, oracle):
        assert len(mine) == len(oracle)
        for a, b in zip(mine, oracle):
            assert a == pytest.approx(b)

    @pytest.mark.parametrize("seed", range(8))
    def test_agreement_with_enumeration_on_random_dags(self, seed):
        model = make_random_tree(seed, max_bas=5, treelike=False).deterministic()
        self._assert_fronts_close(
            pareto_front_bilp(model).values(), enumerate_pareto_front(model).values()
        )

    @pytest.mark.parametrize("seed", range(8))
    def test_agreement_with_bottom_up_on_random_trees(self, seed):
        model = make_random_tree(seed, max_bas=5, treelike=True).deterministic()
        self._assert_fronts_close(
            pareto_front_bilp(model).values(), pareto_front_treelike(model).values()
        )


class TestSingleObjectiveBilp:
    def test_dgc_factory(self):
        value, witness = max_damage_given_cost_bilp(factory(), 2)
        assert value == 200 and witness == frozenset({"ca"})

    def test_dgc_negative_budget(self):
        value, witness = max_damage_given_cost_bilp(factory(), -1)
        assert value == 0.0 and witness is None

    def test_dgc_data_server(self):
        value, witness = max_damage_given_cost_bilp(data_server(), 600)
        assert value == pytest.approx(60.0)
        assert witness == frozenset({"b6", "b8", "b11", "b12"})

    def test_cgd_factory(self):
        cost, witness = min_cost_given_damage_bilp(factory(), 300)
        assert cost == 5 and witness == frozenset({"pb", "fd"})

    def test_cgd_unachievable(self):
        cost, witness = min_cost_given_damage_bilp(factory(), 10_000)
        assert cost is None and witness is None

    def test_cgd_zero_threshold(self):
        cost, witness = min_cost_given_damage_bilp(factory(), 0)
        assert cost == 0 and witness == frozenset()

    @settings(max_examples=20, deadline=None)
    @given(seed=st.integers(min_value=0, max_value=1000),
           budget=st.floats(min_value=0, max_value=30, allow_nan=False))
    def test_dgc_matches_enumeration_on_random_dags(self, seed, budget):
        model = make_random_tree(seed, max_bas=5, treelike=False).deterministic()
        assert max_damage_given_cost_bilp(model, budget)[0] == pytest.approx(
            enumerate_max_damage_given_cost(model, budget)[0]
        )

    @settings(max_examples=20, deadline=None)
    @given(seed=st.integers(min_value=0, max_value=1000),
           threshold=st.floats(min_value=0, max_value=40, allow_nan=False))
    def test_cgd_matches_enumeration_on_random_dags(self, seed, threshold):
        model = make_random_tree(seed, max_bas=5, treelike=False).deterministic()
        mine = min_cost_given_damage_bilp(model, threshold)[0]
        oracle = enumerate_min_cost_given_damage(model, threshold)[0]
        if oracle is None:
            assert mine is None
        else:
            assert mine == pytest.approx(oracle)
