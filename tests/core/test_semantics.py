"""Unit tests for the deterministic attack semantics (Definitions 2–4)."""

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.attacktree.catalog import factory, data_server
from repro.core.semantics import (
    all_attacks,
    attack_cost,
    attack_damage,
    attacks_within_budget,
    dominated_by,
    evaluate_attack,
    is_nondecreasing_damage,
    normalize_attack,
    successful_attacks,
)

from ..conftest import make_random_tree

#: The complete ĉ / d̂ table of Example 1, keyed by the activated BASs.
EXAMPLE1_TABLE = {
    frozenset(): (0, 0),
    frozenset({"fd"}): (2, 10),
    frozenset({"pb"}): (3, 0),
    frozenset({"pb", "fd"}): (5, 310),
    frozenset({"ca"}): (1, 200),
    frozenset({"ca", "fd"}): (3, 210),
    frozenset({"ca", "pb"}): (4, 200),
    frozenset({"ca", "pb", "fd"}): (6, 310),
}


class TestExample1:
    def test_costs_and_damages_match_paper_table(self):
        model = factory()
        for attack, (expected_cost, expected_damage) in EXAMPLE1_TABLE.items():
            assert attack_cost(model, attack) == expected_cost
            assert attack_damage(model, attack) == expected_damage

    def test_evaluate_attack_bundles_all_three(self):
        model = factory()
        cost, damage, success = evaluate_attack(model, {"pb", "fd"})
        assert (cost, damage) == (5, 310)
        assert success is True
        cost, damage, success = evaluate_attack(model, {"pb"})
        assert (cost, damage) == (3, 0)
        assert success is False


class TestNormalization:
    def test_unknown_bas_rejected(self):
        with pytest.raises(KeyError, match="not BASs"):
            normalize_attack(factory(), {"dr"})

    def test_accepts_any_iterable(self):
        assert normalize_attack(factory(), ["ca", "ca"]) == frozenset({"ca"})

    def test_works_on_bare_tree(self):
        assert normalize_attack(factory().tree, {"ca"}) == frozenset({"ca"})


class TestEnumerationHelpers:
    def test_all_attacks_count(self):
        assert len(list(all_attacks(factory()))) == 8

    def test_all_attacks_orders_by_size(self):
        attacks = list(all_attacks(factory()))
        sizes = [len(a) for a in attacks]
        assert sizes == sorted(sizes)
        assert attacks[0] == frozenset()

    def test_attacks_within_budget(self):
        model = factory()
        affordable = list(attacks_within_budget(model, 2))
        assert frozenset({"ca"}) in affordable
        assert frozenset({"fd"}) in affordable
        assert frozenset({"pb"}) not in affordable
        assert all(attack_cost(model, a) <= 2 for a in affordable)

    def test_successful_attacks(self):
        successful = set(successful_attacks(factory()))
        assert frozenset({"ca"}) in successful
        assert frozenset({"pb", "fd"}) in successful
        assert frozenset({"pb"}) not in successful
        assert frozenset() not in successful


class TestDomination:
    def test_dominated_by(self):
        model = factory()
        assert dominated_by(model, {"pb"}, {"ca"})           # (3,0) vs (1,200)
        assert not dominated_by(model, {"ca"}, {"pb"})
        assert not dominated_by(model, {"ca"}, {"ca"})        # equal values

    def test_domination_on_dag(self):
        model = data_server()
        assert dominated_by(model, {"b7"}, set())  # paying 155 for zero damage


class TestMonotonicity:
    def test_factory_damage_is_nondecreasing(self):
        assert is_nondecreasing_damage(factory())

    def test_data_server_damage_is_nondecreasing(self):
        assert is_nondecreasing_damage(data_server())

    @settings(max_examples=40, deadline=None)
    @given(seed=st.integers(min_value=0, max_value=1000), treelike=st.booleans())
    def test_random_models_have_nondecreasing_damage(self, seed, treelike):
        """The 'easy direction' of Theorem 2: every cd-AT damage function is
        nondecreasing with respect to attack inclusion."""
        model = make_random_tree(seed, max_bas=5, treelike=treelike).deterministic()
        assert is_nondecreasing_damage(model)

    def test_empty_attack_has_zero_cost_and_damage(self):
        model = factory()
        assert attack_cost(model, set()) == 0
        assert attack_damage(model, set()) == 0
