"""Tests for the deterministic bottom-up solver (Section VI, Theorems 3–5)."""


import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.attacktree.binarize import binarize_cd
from repro.attacktree.catalog import data_server, factory, knapsack_like_chain, panda_iot
from repro.core.bottom_up import (
    AttributedAttack,
    max_damage_given_cost_treelike,
    min_cost_given_damage_treelike,
    node_pareto_front,
    pareto_front_treelike,
)
from repro.core.enumerative import (
    enumerate_max_damage_given_cost,
    enumerate_min_cost_given_damage,
    enumerate_pareto_front,
)
from repro.core.semantics import attack_cost, attack_damage

from ..conftest import make_random_tree


def triples(front):
    """Project AttributedAttack lists to sorted (cost, damage, bit) triples."""
    return sorted((item.cost, item.damage, 1.0 if item.reached else 0.0) for item in front)


class TestExample3To5:
    """The incomplete fronts computed in Examples 3–5 of the paper."""

    def test_bas_fronts(self):
        model = factory()
        assert triples(node_pareto_front(model, "pb")) == [(0, 0, 0), (3, 0, 1)]
        assert triples(node_pareto_front(model, "fd")) == [(0, 0, 0), (2, 10, 1)]
        assert triples(node_pareto_front(model, "ca")) == [(0, 0, 0), (1, 0, 1)]

    def test_dr_front_example4(self):
        """At dr the triple (3, 0, 0) is infeasible and discarded."""
        model = factory()
        assert triples(node_pareto_front(model, "dr")) == [
            (0, 0, 0), (2, 10, 0), (5, 110, 1),
        ]

    def test_root_front_example5(self):
        """Example 5: at the root, (2, 10, 0) and (6, 310, 1) are infeasible
        (dominated) and are not part of C^D_∞(ps)."""
        model = factory()
        front = triples(node_pareto_front(model, "ps"))
        assert front == [(0, 0, 0), (1, 200, 1), (3, 210, 1), (5, 310, 1)]

    def test_cdpf_projection_example5(self):
        front = pareto_front_treelike(factory())
        assert front.values() == [(0, 0), (1, 200), (3, 210), (5, 310)]


class TestWitnesses:
    def test_witness_attacks_achieve_reported_values(self):
        model = panda_iot().deterministic()
        for point in pareto_front_treelike(model):
            assert attack_cost(model, point.attack) == pytest.approx(point.cost)
            assert attack_damage(model, point.attack) == pytest.approx(point.damage)

    def test_dgc_witness(self):
        model = factory()
        value, witness = max_damage_given_cost_treelike(model, 2)
        assert value == 200
        assert witness == frozenset({"ca"})

    def test_cgd_witness(self):
        model = factory()
        cost, witness = min_cost_given_damage_treelike(model, 300)
        assert cost == 5
        assert attack_damage(model, witness) >= 300


class TestDgCTieBreak:
    """Damage ties must break towards the least-cost (then smallest) witness."""

    @staticmethod
    def _tied_model():
        """AND root: {a} and {a, b} both deal damage 10, at costs 1 and 3."""
        from repro.attacktree.builder import AttackTreeBuilder

        builder = AttackTreeBuilder()
        builder.bas("a", cost=1.0, damage=10.0)
        builder.bas("b", cost=2.0, damage=0.0)
        builder.and_gate("root", ["a", "b"], damage=0.0)
        return builder.build_cd(root="root")

    def test_tie_broken_towards_cheapest_witness(self):
        model = self._tied_model()
        # The root front holds (1, 10, not-reached) and (3, 10, reached);
        # DgC must not return the needlessly expensive reached witness.
        assert max_damage_given_cost_treelike(model, 5) == (10.0, frozenset({"a"}))

    def test_tie_break_stable_under_tight_budget(self):
        model = self._tied_model()
        assert max_damage_given_cost_treelike(model, 1) == (10.0, frozenset({"a"}))


class TestBudgetPruning:
    def test_budget_zero(self):
        value, witness = max_damage_given_cost_treelike(factory(), 0)
        assert value == 0 and witness == frozenset()

    def test_negative_budget(self):
        value, witness = max_damage_given_cost_treelike(factory(), -1)
        assert value == 0 and witness is None

    def test_budget_restricts_front(self):
        front = pareto_front_treelike(factory(), budget=3)
        assert front.values() == [(0, 0), (1, 200), (3, 210)]

    def test_unachievable_threshold(self):
        cost, witness = min_cost_given_damage_treelike(factory(), 10_000)
        assert cost is None and witness is None

    @pytest.mark.parametrize("budget", [0, 1, 2, 3, 4, 5, 6, 10])
    def test_dgc_agrees_with_enumeration_on_factory(self, budget):
        assert max_damage_given_cost_treelike(factory(), budget)[0] == \
            enumerate_max_damage_given_cost(factory(), budget)[0]


class TestErrorsAndEdgeCases:
    def test_dag_rejected(self):
        with pytest.raises(ValueError, match="treelike"):
            pareto_front_treelike(data_server())

    def test_unknown_node_rejected(self):
        with pytest.raises(KeyError):
            node_pareto_front(factory(), "nope")

    def test_negative_budget_rejected_in_node_front(self):
        with pytest.raises(ValueError, match="non-negative"):
            node_pareto_front(factory(), budget=-2)

    def test_attributed_attack_triple_property(self):
        item = AttributedAttack(cost=2, damage=10, reached=True, attack=frozenset({"x"}))
        assert item.triple == (2, 10, 1.0)

    def test_exponential_front_of_example6(self):
        """Example 6 / Theorem 5: the front of the 2^i chain has 2^n points."""
        model = knapsack_like_chain(4)
        front = pareto_front_treelike(model)
        assert len(front) == 2 ** 4
        assert front.values()[:4] == [(0, 0), (1, 1), (2, 2), (3, 3)]


class TestAblationTrackReachability:
    def test_naive_two_dimensional_propagation_underestimates(self):
        """Without the third dimension the bottom-up pass loses the optimal
        attack {pb, fd} (Example 4's warning)."""
        model = factory()
        naive = pareto_front_treelike(model, track_reachability=False)
        correct = pareto_front_treelike(model)
        assert naive.max_damage_given_cost(5) < correct.max_damage_given_cost(5)


class TestAgreementWithEnumeration:
    @pytest.mark.parametrize("seed", range(10))
    def test_front_matches_enumeration_on_random_trees(self, seed):
        model = make_random_tree(seed, treelike=True).deterministic()
        assert pareto_front_treelike(model).values() == \
            enumerate_pareto_front(model).values()

    @settings(max_examples=30, deadline=None)
    @given(seed=st.integers(min_value=0, max_value=2000),
           budget=st.floats(min_value=0, max_value=30, allow_nan=False))
    def test_dgc_matches_enumeration(self, seed, budget):
        model = make_random_tree(seed, max_bas=5, treelike=True).deterministic()
        assert max_damage_given_cost_treelike(model, budget)[0] == pytest.approx(
            enumerate_max_damage_given_cost(model, budget)[0]
        )

    @settings(max_examples=30, deadline=None)
    @given(seed=st.integers(min_value=0, max_value=2000),
           threshold=st.floats(min_value=0, max_value=40, allow_nan=False))
    def test_cgd_matches_enumeration(self, seed, threshold):
        model = make_random_tree(seed, max_bas=5, treelike=True).deterministic()
        mine = min_cost_given_damage_treelike(model, threshold)[0]
        oracle = enumerate_min_cost_given_damage(model, threshold)[0]
        if oracle is None:
            assert mine is None
        else:
            assert mine == pytest.approx(oracle)

    @pytest.mark.parametrize("seed", range(5))
    def test_binarised_tree_gives_same_front(self, seed):
        model = make_random_tree(seed, treelike=True).deterministic()
        binary, _ = binarize_cd(model)
        assert pareto_front_treelike(model).values() == \
            pareto_front_treelike(binary).values()

    def test_panda_front_monotone(self):
        front = pareto_front_treelike(panda_iot().deterministic())
        damages = front.damages()
        assert damages == sorted(damages)
