"""Unit tests for the enumerative baseline (the paper's comparison method)."""

import pytest

from repro.attacktree.catalog import factory, factory_probabilistic, example10_or_pair
from repro.core.enumerative import (
    enumerate_max_damage_given_cost,
    enumerate_max_expected_damage_given_cost,
    enumerate_min_cost_given_damage,
    enumerate_min_cost_given_expected_damage,
    enumerate_pareto_front,
    enumerate_pareto_front_probabilistic,
)


class TestDeterministicFront:
    def test_factory_front_matches_example2(self):
        front = enumerate_pareto_front(factory())
        assert front.values() == [(0, 0), (1, 200), (3, 210), (5, 310)]

    def test_front_carries_witness_attacks(self):
        front = enumerate_pareto_front(factory())
        witnesses = {point.attack for point in front}
        assert frozenset({"ca"}) in witnesses
        assert frozenset({"pb", "fd"}) in witnesses

    def test_front_records_top_reachability(self):
        front = enumerate_pareto_front(factory())
        by_cost = {point.cost: point for point in front}
        assert by_cost[0].reaches_root is False
        assert by_cost[1].reaches_root is True


class TestDeterministicSingleObjective:
    def test_dgc_example2(self):
        value, witness = enumerate_max_damage_given_cost(factory(), 2)
        assert value == 200
        assert witness == frozenset({"ca"})

    def test_dgc_zero_budget(self):
        value, witness = enumerate_max_damage_given_cost(factory(), 0)
        assert value == 0
        assert witness == frozenset()

    def test_dgc_negative_budget(self):
        value, witness = enumerate_max_damage_given_cost(factory(), -1)
        assert value == 0 and witness is None

    def test_cgd(self):
        cost, witness = enumerate_min_cost_given_damage(factory(), 300)
        assert cost == 5
        assert witness == frozenset({"pb", "fd"})

    def test_cgd_unachievable(self):
        cost, witness = enumerate_min_cost_given_damage(factory(), 1000)
        assert cost is None and witness is None

    def test_cgd_zero_threshold(self):
        cost, witness = enumerate_min_cost_given_damage(factory(), 0)
        assert cost == 0 and witness == frozenset()


class TestProbabilistic:
    def test_example10_front(self):
        front = enumerate_pareto_front_probabilistic(example10_or_pair())
        assert front.values() == [(0, 0), (1, 0.5), (2, 0.75)]

    def test_factory_probabilistic_front_contains_known_point(self):
        """Example 9: d̂_E(0,1,1) = 112 — that attack costs 5."""
        front = enumerate_pareto_front_probabilistic(factory_probabilistic())
        assert any(
            point.cost == 5 and point.damage == pytest.approx(112.0)
            for point in front
        ) or front.max_damage_given_cost(5) >= 112

    def test_edgc(self):
        value, witness = enumerate_max_expected_damage_given_cost(example10_or_pair(), 1)
        assert value == pytest.approx(0.5)
        assert witness in {frozenset({"v1"}), frozenset({"v2"})}

    def test_edgc_prefers_both_children(self):
        value, witness = enumerate_max_expected_damage_given_cost(example10_or_pair(), 2)
        assert value == pytest.approx(0.75)
        assert witness == frozenset({"v1", "v2"})

    def test_cged(self):
        cost, witness = enumerate_min_cost_given_expected_damage(example10_or_pair(), 0.6)
        assert cost == 2
        assert witness == frozenset({"v1", "v2"})

    def test_cged_unachievable(self):
        cost, witness = enumerate_min_cost_given_expected_damage(example10_or_pair(), 0.9)
        assert cost is None and witness is None
