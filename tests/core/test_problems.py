"""Tests for the problem taxonomy and the uniform solve() dispatch."""

import pytest

from repro.attacktree.catalog import (
    data_server,
    example10_or_pair,
    factory,
    factory_probabilistic,
    panda_iot,
)
from repro.core.problems import Method, Problem, SolveResult, capability_matrix, solve


class TestProblemEnum:
    def test_probabilistic_classification(self):
        assert Problem.CEDPF.is_probabilistic
        assert Problem.EDGC.is_probabilistic
        assert Problem.CGED.is_probabilistic
        assert not Problem.CDPF.is_probabilistic
        assert not Problem.DGC.is_probabilistic

    def test_front_classification(self):
        assert Problem.CDPF.is_front and Problem.CEDPF.is_front
        assert not Problem.DGC.is_front


class TestDispatchAuto:
    def test_treelike_deterministic_uses_bottom_up(self):
        result = solve(factory(), Problem.CDPF)
        assert result.method is Method.BOTTOM_UP
        assert result.front.values() == [(0, 0), (1, 200), (3, 210), (5, 310)]

    def test_dag_deterministic_uses_bilp(self):
        result = solve(data_server(), Problem.CDPF)
        assert result.method is Method.BILP
        assert len(result.front) == 6

    def test_treelike_probabilistic_uses_bottom_up(self):
        result = solve(example10_or_pair(), Problem.CEDPF)
        assert result.method is Method.BOTTOM_UP

    def test_dag_probabilistic_falls_back_to_enumeration(self):
        from repro.attacktree.transform import with_unit_probabilities

        model = with_unit_probabilities(data_server())
        result = solve(model, Problem.EDGC, budget=300)
        assert result.method is Method.ENUMERATIVE
        assert result.value == pytest.approx(24.0)


class TestDispatchForced:
    def test_forced_enumerative(self):
        result = solve(factory(), Problem.CDPF, method=Method.ENUMERATIVE)
        assert result.method is Method.ENUMERATIVE
        assert result.front.values() == [(0, 0), (1, 200), (3, 210), (5, 310)]

    def test_forced_bilp_on_tree(self):
        result = solve(factory(), Problem.DGC, method=Method.BILP, budget=2)
        assert result.value == 200

    def test_bilp_rejected_for_probabilistic_problems(self):
        with pytest.raises(ValueError, match="no BILP"):
            solve(factory_probabilistic(), Problem.CEDPF, method=Method.BILP)
        with pytest.raises(ValueError, match="no BILP"):
            solve(factory_probabilistic(), Problem.EDGC, method=Method.BILP, budget=2)
        with pytest.raises(ValueError, match="no BILP"):
            solve(factory_probabilistic(), Problem.CGED, method=Method.BILP, threshold=2)


class TestParameterValidation:
    def test_budget_required(self):
        with pytest.raises(ValueError, match="budget"):
            solve(factory(), Problem.DGC)

    def test_threshold_required(self):
        with pytest.raises(ValueError, match="threshold"):
            solve(factory(), Problem.CGD)

    def test_probabilistic_problem_requires_cdp(self):
        with pytest.raises(TypeError, match="cdp-AT"):
            solve(factory(), Problem.CEDPF)

    def test_front_result_requires_front(self):
        with pytest.raises(ValueError, match="Pareto front"):
            SolveResult(problem=Problem.CDPF, method=Method.AUTO, front=None)


class TestAllProblemsOnCaseStudies:
    def test_all_six_problems_on_panda(self):
        model = panda_iot()
        cdpf = solve(model, Problem.CDPF)
        dgc = solve(model, Problem.DGC, budget=7)
        cgd = solve(model, Problem.CGD, threshold=60)
        cedpf = solve(model, Problem.CEDPF)
        edgc = solve(model, Problem.EDGC, budget=7)
        cged = solve(model, Problem.CGED, threshold=25)
        assert cdpf.front.max_damage_given_cost(7) == 65
        assert dgc.value == 65
        assert cgd.value == 7
        assert cedpf.front.max_damage_given_cost(3) == pytest.approx(18.0)
        assert edgc.value == pytest.approx(27.555)
        assert cged.value == 7

    def test_deterministic_problems_accept_cdp_models(self):
        """A cdp-AT can be used for deterministic problems (probabilities ignored)."""
        result = solve(factory_probabilistic(), Problem.CDPF)
        assert result.front.values() == [(0, 0), (1, 200), (3, 210), (5, 310)]


class TestCapabilityMatrix:
    def test_matches_table1(self):
        matrix = capability_matrix()
        assert "bottom-up" in matrix[("deterministic", "tree")]
        assert "BILP" in matrix[("deterministic", "dag")]
        assert "bottom-up" in matrix[("probabilistic", "tree")]
        assert "open problem" in matrix[("probabilistic", "dag")]
        assert len(matrix) == 4
