"""Tests for the CostDamageAnalyzer facade."""

import pytest

from repro.attacktree.catalog import data_server, factory, panda_iot
from repro.core.analysis import CostDamageAnalyzer
from repro.core.problems import Method


class TestBasics:
    def test_model_facts(self):
        analyzer = CostDamageAnalyzer(panda_iot())
        assert analyzer.is_treelike
        assert analyzer.is_probabilistic
        dag_analyzer = CostDamageAnalyzer(data_server())
        assert not dag_analyzer.is_treelike
        assert not dag_analyzer.is_probabilistic

    def test_describe_mentions_method(self):
        assert "bottom-up" in CostDamageAnalyzer(factory()).describe()
        assert "integer linear" in CostDamageAnalyzer(data_server()).describe()

    def test_pareto_front_cached(self):
        analyzer = CostDamageAnalyzer(factory())
        assert analyzer.pareto_front() is analyzer.pareto_front()

    def test_single_objective_queries_cached_by_session(self):
        analyzer = CostDamageAnalyzer(factory())
        analyzer.max_damage(2)
        analyzer.max_damage(2)
        analyzer.min_cost(300)
        assert analyzer.session.stats.hits == 1
        assert analyzer.session.stats.misses == 2

    def test_method_override_bypasses_cache(self):
        analyzer = CostDamageAnalyzer(factory())
        default = analyzer.pareto_front()
        enumerated = analyzer.pareto_front(method=Method.ENUMERATIVE)
        assert default.values() == enumerated.values()
        # Two distinct computations must actually have run: a broken
        # Method->backend mapping would collapse both onto one cache key.
        assert analyzer.session.stats.misses == 2


class TestQueries:
    def test_max_damage(self):
        analyzer = CostDamageAnalyzer(factory())
        assert analyzer.max_damage(2).value == 200
        assert analyzer.min_cost(300).value == 5

    def test_probabilistic_queries(self):
        analyzer = CostDamageAnalyzer(panda_iot())
        assert analyzer.expected_pareto_front().max_damage_given_cost(3) == pytest.approx(18.0)
        assert analyzer.max_expected_damage(3).value == pytest.approx(18.0)
        assert analyzer.min_cost_expected(18.0).value == 3

    def test_damage_budget_curve(self):
        analyzer = CostDamageAnalyzer(factory())
        curve = analyzer.damage_budget_curve([0, 1, 3, 5, 10])
        assert [(p.budget, p.damage) for p in curve] == [
            (0, 0), (1, 200), (3, 210), (5, 310), (10, 310)
        ]
        assert all(p.reachable for p in curve)

    def test_damage_budget_curve_unreachable_budget_is_explicit(self):
        """A budget below every front point must not masquerade as 0 damage."""
        analyzer = CostDamageAnalyzer(factory())
        (point,) = analyzer.damage_budget_curve([-1])
        assert point.damage is None
        assert not point.reachable

    def test_damage_budget_curve_probabilistic(self):
        analyzer = CostDamageAnalyzer(panda_iot())
        curve = analyzer.damage_budget_curve([3], probabilistic=True)
        assert curve[0].damage == pytest.approx(18.0)
        assert curve[0].reachable


class TestCriticalBasReport:
    def test_panda_deterministic_criticality(self):
        """Section X.A: every optimal attack contains at least one of the
        three cheap minimal attacks; b18 appears in A1, A3..A8 but not A2."""
        analyzer = CostDamageAnalyzer(panda_iot())
        report = analyzer.critical_basic_attack_steps()
        assert "b18" in report.in_some_optimal_attack
        # Base-station compromise via physical theft or code theft (the two
        # cost-4 minimal attacks) appears among the optimal witnesses.
        assert {"b19", "b20"} <= report.in_some_optimal_attack or \
            {"b21", "b22"} <= report.in_some_optimal_attack
        # BAS b17 (purchase from 3rd party) and b2 (analytical reasoning) are
        # never Pareto-optimal choices.
        assert "b17" in report.unused
        assert "b2" in report.unused

    def test_panda_probabilistic_b18_in_every_attack(self):
        """Section X.A: in the probabilistic setting internal leakage (b18)
        is part of every Pareto-optimal attack."""
        analyzer = CostDamageAnalyzer(panda_iot())
        report = analyzer.critical_basic_attack_steps(probabilistic=True)
        assert "b18" in report.in_every_optimal_attack

    def test_data_server_criticality(self):
        """Section X.B: the FTP buffer overflow BASs (b6, b8) appear in every
        Pareto-optimal attack."""
        analyzer = CostDamageAnalyzer(data_server())
        report = analyzer.critical_basic_attack_steps()
        assert {"b6", "b8"} <= report.in_every_optimal_attack
        assert {"b7", "b9", "b10"} <= report.unused

    def test_empty_front_report(self):
        """A model where no nonzero attack is ever optimal (all damage zero)."""
        from repro.attacktree.builder import AttackTreeBuilder

        builder = AttackTreeBuilder()
        builder.bas("a", cost=1)
        builder.or_gate("g", ["a"])
        analyzer = CostDamageAnalyzer(builder.build_cd(root="g"))
        report = analyzer.critical_basic_attack_steps()
        assert report.in_every_optimal_attack == frozenset()
        assert report.unused == frozenset({"a"})


class TestReport:
    def test_report_contains_sections(self):
        text = CostDamageAnalyzer(factory()).report()
        assert "Pareto front" in text
        assert "BASs in every optimal attack" in text

    def test_probabilistic_report(self):
        text = CostDamageAnalyzer(panda_iot()).report(probabilistic=True)
        assert "b18" in text
