"""Tests for the probabilistic bottom-up solver (Section IX, Theorems 8–9)."""


import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.attacktree.binarize import binarize_cdp
from repro.attacktree.catalog import (
    example10_or_pair,
    factory,
    factory_probabilistic,
    panda_iot,
)
from repro.attacktree.transform import with_unit_probabilities
from repro.core.bottom_up import pareto_front_treelike
from repro.core.bottom_up_prob import (
    max_expected_damage_given_cost_treelike,
    min_cost_given_expected_damage_treelike,
    node_pareto_front_probabilistic,
    pareto_front_treelike_probabilistic,
    probabilistic_or,
)
from repro.core.enumerative import (
    enumerate_max_expected_damage_given_cost,
    enumerate_pareto_front_probabilistic,
)
from repro.core.semantics import attack_cost
from repro.probability.actualization import expected_damage

from ..conftest import make_random_tree


class TestStarOperator:
    def test_basic_values(self):
        assert probabilistic_or(0.0, 0.0) == 0.0
        assert probabilistic_or(1.0, 0.3) == 1.0
        assert probabilistic_or(0.5, 0.5) == 0.75

    def test_commutative_and_associative(self):
        a, b, c = 0.3, 0.6, 0.9
        assert probabilistic_or(a, b) == pytest.approx(probabilistic_or(b, a))
        assert probabilistic_or(a, probabilistic_or(b, c)) == pytest.approx(
            probabilistic_or(probabilistic_or(a, b), c)
        )


class TestExample10:
    def test_node_fronts_match_paper_table(self):
        model = example10_or_pair()
        v1 = node_pareto_front_probabilistic(model, "v1")
        assert sorted(item.triple for item in v1) == [(0, 0, 0), (1, 0, 0.5)]
        w = node_pareto_front_probabilistic(model, "w")
        assert sorted(item.triple for item in w) == [
            (0, 0, 0), (1, 0.5, 0.5), (2, 0.75, 0.75),
        ]

    def test_cedpf_contains_redundant_attempt(self):
        """Probabilistically, attempting both children of the OR gate is
        Pareto-optimal even though deterministically it is not."""
        front = pareto_front_treelike_probabilistic(example10_or_pair())
        assert front.values() == [(0, 0), (1, 0.5), (2, 0.75)]
        deterministic_front = pareto_front_treelike(example10_or_pair().deterministic())
        assert len(front) > len(deterministic_front) or \
            front.values() != deterministic_front.values()


class TestFactoryProbabilistic:
    def test_example9_expected_damage_reachable(self):
        """The attack (0,1,1) = {pb, fd} has cost 5 and expected damage 112."""
        model = factory_probabilistic()
        front = pareto_front_treelike_probabilistic(model)
        assert front.max_damage_given_cost(5) >= 112 - 1e-9

    def test_front_matches_enumeration(self):
        model = factory_probabilistic()
        mine = pareto_front_treelike_probabilistic(model).values()
        oracle = enumerate_pareto_front_probabilistic(model).values()
        assert len(mine) == len(oracle)
        for (c1, d1), (c2, d2) in zip(mine, oracle):
            assert c1 == pytest.approx(c2)
            assert d1 == pytest.approx(d2)

    def test_witnesses_achieve_reported_values(self):
        model = factory_probabilistic()
        for point in pareto_front_treelike_probabilistic(model):
            assert attack_cost(model, point.attack) == pytest.approx(point.cost)
            assert expected_damage(model, point.attack) == pytest.approx(point.damage)


class TestSingleObjective:
    def test_edgc_example10(self):
        value, witness = max_expected_damage_given_cost_treelike(example10_or_pair(), 2)
        assert value == pytest.approx(0.75)
        assert witness == frozenset({"v1", "v2"})

    def test_edgc_budget_zero(self):
        value, witness = max_expected_damage_given_cost_treelike(example10_or_pair(), 0)
        assert value == 0.0 and witness == frozenset()

    def test_edgc_negative_budget(self):
        value, witness = max_expected_damage_given_cost_treelike(example10_or_pair(), -3)
        assert value == 0.0 and witness is None

    def test_cged(self):
        cost, witness = min_cost_given_expected_damage_treelike(example10_or_pair(), 0.7)
        assert cost == 2 and witness == frozenset({"v1", "v2"})

    def test_cged_unachievable(self):
        cost, witness = min_cost_given_expected_damage_treelike(example10_or_pair(), 2.0)
        assert cost is None and witness is None


class TestReductionToDeterministic:
    """With unit probabilities the probabilistic solver must reproduce the
    deterministic one — the paper's appendix derives Theorems 3–4 from 8–9
    exactly this way."""

    @pytest.mark.parametrize("seed", range(8))
    def test_unit_probability_reduction(self, seed):
        deterministic = make_random_tree(seed, treelike=True).deterministic()
        probabilistic = with_unit_probabilities(deterministic)
        mine = pareto_front_treelike_probabilistic(probabilistic).values()
        oracle = pareto_front_treelike(deterministic).values()
        assert len(mine) == len(oracle)
        for a, b in zip(mine, oracle):
            assert a == pytest.approx(b)

    def test_unit_probability_reduction_factory(self):
        probabilistic = with_unit_probabilities(factory())
        assert pareto_front_treelike_probabilistic(probabilistic).values() == \
            pareto_front_treelike(factory()).values()


class TestAgreementWithEnumeration:
    @pytest.mark.parametrize("seed", range(8))
    def test_front_matches_enumeration_on_random_trees(self, seed):
        model = make_random_tree(seed, max_bas=5, treelike=True)
        mine = pareto_front_treelike_probabilistic(model).values()
        oracle = enumerate_pareto_front_probabilistic(model).values()
        assert len(mine) == len(oracle)
        for a, b in zip(mine, oracle):
            assert a == pytest.approx(b)

    @settings(max_examples=20, deadline=None)
    @given(seed=st.integers(min_value=0, max_value=2000),
           budget=st.floats(min_value=0, max_value=20, allow_nan=False))
    def test_edgc_matches_enumeration(self, seed, budget):
        model = make_random_tree(seed, max_bas=4, treelike=True)
        mine = max_expected_damage_given_cost_treelike(model, budget)[0]
        oracle = enumerate_max_expected_damage_given_cost(model, budget)[0]
        assert mine == pytest.approx(oracle)

    @pytest.mark.parametrize("seed", range(5))
    def test_binarisation_preserves_probabilistic_front(self, seed):
        model = make_random_tree(seed, max_bas=5, treelike=True)
        binary, _ = binarize_cdp(model)
        mine = pareto_front_treelike_probabilistic(model).values()
        other = pareto_front_treelike_probabilistic(binary).values()
        assert len(mine) == len(other)
        for a, b in zip(mine, other):
            assert a == pytest.approx(b)


class TestPandaProbabilistic:
    def test_dag_rejected(self):
        from repro.attacktree.catalog import data_server
        from repro.attacktree.transform import with_unit_probabilities as unit

        with pytest.raises(ValueError, match="treelike"):
            pareto_front_treelike_probabilistic(unit(data_server()))

    def test_front_larger_than_deterministic(self):
        """Fig. 6: the probabilistic panda front has more points (31) than
        the deterministic one (8) because redundant attempts pay off."""
        model = panda_iot()
        probabilistic = pareto_front_treelike_probabilistic(model)
        deterministic = pareto_front_treelike(model.deterministic())
        assert len(probabilistic) > len(deterministic)

    def test_first_point_is_internal_leakage(self):
        """Fig. 6b: {b18} at (3, 18.0) is the first nonzero Pareto point."""
        front = pareto_front_treelike_probabilistic(panda_iot())
        nonzero = [p for p in front if p.cost > 0]
        assert nonzero[0].cost == 3
        assert nonzero[0].damage == pytest.approx(18.0)
        assert nonzero[0].attack == frozenset({"b18"})
