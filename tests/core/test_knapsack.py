"""Tests for the Section V constructions (Theorems 1 and 2)."""

import itertools

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core.knapsack import (
    KnapsackInstance,
    cost_damage_decision,
    knapsack_to_cdat,
    nondecreasing_function_to_cdat,
    solve_knapsack_via_cdat,
)
from repro.core.semantics import attack_damage


def brute_force_knapsack(instance: KnapsackInstance) -> float:
    """Direct optimal knapsack value for cross-checking."""
    best = 0.0
    n = instance.size
    for mask in range(2 ** n):
        weight = sum(instance.weights[i] for i in range(n) if mask >> i & 1)
        if weight > instance.capacity:
            continue
        value = sum(instance.values[i] for i in range(n) if mask >> i & 1)
        best = max(best, value)
    return best


class TestKnapsackInstance:
    def test_validation(self):
        with pytest.raises(ValueError, match="same length"):
            KnapsackInstance(values=(1,), weights=(1, 2), capacity=3)
        with pytest.raises(ValueError, match="non-negative"):
            KnapsackInstance(values=(-1,), weights=(1,), capacity=3)

    def test_size(self):
        assert KnapsackInstance(values=(1, 2), weights=(1, 1), capacity=2).size == 2


class TestTheorem1Reduction:
    def test_reduction_structure(self):
        instance = KnapsackInstance(values=(10, 7), weights=(4, 3), capacity=5)
        cdat = knapsack_to_cdat(instance)
        assert cdat.tree.is_treelike
        assert len(cdat.tree.basic_attack_steps) == 2
        assert cdat.damage_of("root") == 0.0
        assert cdat.cost_of("item_0") == 4
        assert cdat.damage_of("item_0") == 10

    def test_empty_instance_rejected(self):
        with pytest.raises(ValueError, match="at least one item"):
            knapsack_to_cdat(KnapsackInstance(values=(), weights=(), capacity=1))

    def test_decision_problem_yes_instance(self):
        instance = KnapsackInstance(values=(10, 7, 5), weights=(4, 3, 2), capacity=5)
        cdat = knapsack_to_cdat(instance)
        feasible, witness = cost_damage_decision(cdat, cost_bound=5, damage_bound=12)
        assert feasible
        assert witness is not None and attack_damage(cdat, witness) >= 12

    def test_decision_problem_no_instance(self):
        instance = KnapsackInstance(values=(10, 7, 5), weights=(4, 3, 2), capacity=5)
        cdat = knapsack_to_cdat(instance)
        feasible, witness = cost_damage_decision(cdat, cost_bound=5, damage_bound=13)
        assert not feasible and witness is None

    def test_decision_problem_on_dag(self):
        """The decision helper also works for DAG-like ATs (via BILP)."""
        from repro.attacktree.catalog import data_server

        feasible, witness = cost_damage_decision(data_server(), 600, 60)
        assert feasible
        feasible, _ = cost_damage_decision(data_server(), 600, 61)
        assert not feasible

    def test_optimisation_matches_brute_force(self):
        instance = KnapsackInstance(values=(10, 7, 5, 9), weights=(4, 3, 2, 5),
                                    capacity=8)
        value, chosen = solve_knapsack_via_cdat(instance)
        assert value == brute_force_knapsack(instance)
        assert sum(instance.weights[i] for i in chosen) <= instance.capacity
        assert sum(instance.values[i] for i in chosen) == value

    @settings(max_examples=25, deadline=None)
    @given(
        values=st.lists(st.integers(min_value=0, max_value=20), min_size=1, max_size=6),
        weights=st.lists(st.integers(min_value=1, max_value=10), min_size=1, max_size=6),
        capacity=st.integers(min_value=0, max_value=25),
    )
    def test_random_instances_match_brute_force(self, values, weights, capacity):
        size = min(len(values), len(weights))
        instance = KnapsackInstance(
            values=tuple(float(v) for v in values[:size]),
            weights=tuple(float(w) for w in weights[:size]),
            capacity=float(capacity),
        )
        value, _ = solve_knapsack_via_cdat(instance)
        assert value == pytest.approx(brute_force_knapsack(instance))


class TestDecisionPredicate:
    """The CDDP predicate: one shared-EPSILON comparison, evaluated once."""

    @staticmethod
    def _cdat():
        instance = KnapsackInstance(values=(10, 7), weights=(4, 3), capacity=7)
        return knapsack_to_cdat(instance)

    def test_bound_within_epsilon_is_feasible(self):
        from repro.pareto.poset import EPSILON

        cdat = self._cdat()
        # Best damage at cost bound 7 is exactly 17; a bound within EPSILON
        # above it must still be declared feasible (ε-tolerance, applied once).
        feasible, witness = cost_damage_decision(cdat, 7, 17 + EPSILON / 2)
        assert feasible and witness == frozenset({"item_0", "item_1"})

    def test_bound_beyond_epsilon_is_infeasible(self):
        cdat = self._cdat()
        feasible, witness = cost_damage_decision(cdat, 7, 17 + 1e-6)
        assert not feasible and witness is None

    def test_zero_damage_bound_always_feasible(self):
        feasible, witness = cost_damage_decision(self._cdat(), 0, 0)
        assert feasible and witness == frozenset()

    def test_witness_respects_cost_bound(self):
        from repro.core.semantics import attack_cost

        cdat = self._cdat()
        feasible, witness = cost_damage_decision(cdat, 4, 10)
        assert feasible
        assert attack_cost(cdat, witness) <= 4
        assert attack_damage(cdat, witness) >= 10


class TestTheorem2Construction:
    def evaluate_everywhere(self, cdat, ground_set, function):
        for size in range(len(ground_set) + 1):
            for combo in itertools.combinations(ground_set, size):
                attack = frozenset(combo)
                assert attack_damage(cdat, attack) == pytest.approx(function(attack)), combo

    def test_cardinality_function(self):
        ground = ["a", "b", "c"]
        cdat = nondecreasing_function_to_cdat(ground, lambda s: float(len(s)))
        self.evaluate_everywhere(cdat, ground, lambda s: float(len(s)))

    def test_threshold_function(self):
        """A non-submodular, non-modular monotone function."""
        ground = ["a", "b", "c"]
        function = lambda s: 5.0 if len(s) >= 2 else 0.0
        cdat = nondecreasing_function_to_cdat(ground, function)
        self.evaluate_everywhere(cdat, ground, function)

    def test_specific_element_weighting(self):
        ground = ["a", "b"]
        weights = {"a": 2.0, "b": 7.0}
        function = lambda s: sum(weights[e] for e in s) ** 1.0
        cdat = nondecreasing_function_to_cdat(ground, function)
        self.evaluate_everywhere(cdat, ground, function)

    def test_bas_set_is_ground_set(self):
        ground = ["x", "y", "z"]
        cdat = nondecreasing_function_to_cdat(ground, lambda s: float(len(s)))
        assert cdat.tree.basic_attack_steps == frozenset(ground)
        assert all(cdat.cost[b] == 0.0 for b in ground)

    def test_decreasing_function_rejected(self):
        with pytest.raises(ValueError, match="nondecreasing"):
            nondecreasing_function_to_cdat(["a", "b"], lambda s: 2.0 - len(s))

    def test_negative_function_rejected(self):
        with pytest.raises(ValueError, match="negative"):
            nondecreasing_function_to_cdat(["a"], lambda s: -1.0 if not s else 1.0)

    def test_nonzero_empty_value_rejected(self):
        with pytest.raises(ValueError, match="empty attack"):
            nondecreasing_function_to_cdat(["a"], lambda s: 1.0)

    def test_large_ground_set_rejected(self):
        with pytest.raises(ValueError, match="exponential"):
            nondecreasing_function_to_cdat([f"e{i}" for i in range(13)], lambda s: 0.0)

    def test_duplicate_ground_set_rejected(self):
        with pytest.raises(ValueError, match="duplicates"):
            nondecreasing_function_to_cdat(["a", "a"], lambda s: 0.0)

    @settings(max_examples=15, deadline=None)
    @given(weights=st.lists(st.integers(min_value=0, max_value=9), min_size=2, max_size=4),
           offset=st.integers(min_value=0, max_value=3))
    def test_random_monotone_functions(self, weights, offset):
        """Random coverage-style monotone functions are represented exactly."""
        ground = [f"e{i}" for i in range(len(weights))]
        table = dict(zip(ground, weights))

        def function(subset):
            if not subset:
                return 0.0
            return float(sum(table[e] for e in subset) + offset)

        cdat = nondecreasing_function_to_cdat(ground, function)
        self.evaluate_everywhere(cdat, ground, function)
