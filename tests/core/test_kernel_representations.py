"""Tests for the compact kernel representations.

The bottom-up solver stores fronts as parallel lists, witnesses as integer
bitsets and memoises structurally identical subtrees; an optional numpy
path vectorises the gate-fold inner loops.  These tests pin the contracts
those representations must keep: witnesses materialise back to attacks that
actually have the claimed attributes, memo hits never change results, the
numpy path is bit-identical to the pure-Python fold, and accelerator
selection fails loudly on bad input.
"""

import pytest

import repro.core.bottom_up as bottom_up
from repro.attacktree.builder import AttackTreeBuilder
from repro.core.bottom_up import (
    _TripleKernel,
    max_damage_given_cost_treelike,
    node_pareto_front,
    numpy_available,
    pareto_front_treelike,
)
from repro.core.enumerative import enumerate_pareto_front
from repro.core.semantics import evaluate_attack

from ..conftest import make_random_tree

needs_numpy = pytest.mark.skipif(
    not numpy_available(), reason="numpy accelerator not installed"
)


def _twin_subtree_model():
    """An OR root over two decoration-identical AND subtrees."""
    builder = AttackTreeBuilder()
    for suffix in ("1", "2"):
        builder.bas(f"a{suffix}", cost=1.0, damage=2.0)
        builder.bas(f"b{suffix}", cost=3.0, damage=4.0)
        builder.and_gate(f"g{suffix}", [f"a{suffix}", f"b{suffix}"], damage=5.0)
    builder.or_gate("root", ["g1", "g2"], damage=0.0)
    return builder.build_cd(root="root")


class TestAcceleratorValidation:
    def test_unknown_accelerator_rejected(self):
        model = make_random_tree(0, treelike=True).deterministic()
        with pytest.raises(ValueError, match="unknown accelerator"):
            node_pareto_front(model, accelerator="cuda")

    def test_numpy_requested_without_numpy(self, monkeypatch):
        model = make_random_tree(0, treelike=True).deterministic()
        monkeypatch.setattr(bottom_up, "_np", None)
        with pytest.raises(ValueError, match="numpy is not installed"):
            node_pareto_front(model, accelerator="numpy")

    def test_accelerator_none_never_touches_numpy(self, monkeypatch):
        monkeypatch.setattr(bottom_up, "_np", None)
        model = make_random_tree(1, treelike=True).deterministic()
        assert pareto_front_treelike(model).values() == \
            enumerate_pareto_front(model).values()


class TestBitsetWitnesses:
    @pytest.mark.parametrize("seed", range(10))
    def test_root_witnesses_evaluate_to_their_triples(self, seed):
        model = make_random_tree(seed, treelike=True).deterministic()
        for item in node_pareto_front(model):
            cost, damage, reached = evaluate_attack(model, item.attack)
            assert cost == pytest.approx(item.cost)
            assert damage == pytest.approx(item.damage)
            assert reached is item.reached

    def test_witnesses_are_frozensets_of_bas_names(self):
        model = _twin_subtree_model()
        universe = model.tree.basic_attack_steps
        for item in node_pareto_front(model):
            assert isinstance(item.attack, frozenset)
            assert item.attack <= set(universe)


class TestStructuralMemoization:
    def test_twin_subtrees_fold_once(self):
        model = _twin_subtree_model()
        kernel = _TripleKernel(model, limit=float("inf"), use_numpy=False)
        kernel.compute(model.tree.root)
        # 7 nodes, but only 4 distinct structures: the two BAS decorations,
        # the AND subtree and the OR root.
        assert len(kernel.memo) == 4

    def test_memo_hits_do_not_change_results(self):
        model = _twin_subtree_model()
        assert pareto_front_treelike(model).values() == \
            enumerate_pareto_front(model).values()

    @pytest.mark.parametrize("seed", range(5))
    def test_memoised_front_matches_enumeration(self, seed):
        model = make_random_tree(seed, max_bas=5, treelike=True).deterministic()
        assert pareto_front_treelike(model).values() == \
            enumerate_pareto_front(model).values()


@needs_numpy
class TestNumpyPathIdentity:
    """The numpy fold must be bit-identical to the pure-Python fold —
    values *and* witnesses — so the backends are interchangeable."""

    @pytest.fixture(autouse=True)
    def _force_numpy_path(self, monkeypatch):
        # Small trees rarely cross the size cutoff; drop it so the numpy
        # code path actually runs for every fold in these tests.
        monkeypatch.setattr(bottom_up, "_NUMPY_CUTOFF", 1)

    @pytest.mark.parametrize("seed", range(15))
    def test_front_identical(self, seed):
        model = make_random_tree(seed, treelike=True).deterministic()
        python = node_pareto_front(model)
        numpy = node_pareto_front(model, accelerator="numpy")
        assert [item.triple for item in python] == [item.triple for item in numpy]
        assert [item.attack for item in python] == [item.attack for item in numpy]

    @pytest.mark.parametrize("seed", range(10))
    def test_dgc_identical_across_budgets(self, seed):
        model = make_random_tree(seed, treelike=True).deterministic()
        for budget in (0.0, 3.0, 7.0, 15.0, float("inf")):
            assert max_damage_given_cost_treelike(model, budget) == \
                max_damage_given_cost_treelike(model, budget, accelerator="numpy")

    def test_budget_pruning_identical(self):
        model = make_random_tree(7, treelike=True).deterministic()
        for budget in (0.0, 2.0, 5.0, 9.0):
            python = pareto_front_treelike(model, budget=budget)
            numpy = pareto_front_treelike(model, budget=budget, accelerator="numpy")
            assert python.values() == numpy.values()
