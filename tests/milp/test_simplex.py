"""Tests for the pure-Python two-phase simplex LP solver."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st
from scipy.optimize import linprog

from repro.milp.simplex import solve_linear_program
from repro.milp.solution import SolveStatus


def solve(c, a_ub, b_ub, lower, upper):
    return solve_linear_program(
        np.asarray(c, dtype=float),
        np.asarray(a_ub, dtype=float).reshape(len(b_ub), len(c)) if len(b_ub) else np.zeros((0, len(c))),
        np.asarray(b_ub, dtype=float),
        np.asarray(lower, dtype=float),
        np.asarray(upper, dtype=float),
    )


class TestBasicProblems:
    def test_unconstrained_box_minimum(self):
        result = solve([1.0, -1.0], [], [], [0, 0], [1, 1])
        assert result.status is SolveStatus.OPTIMAL
        assert result.objective_value == pytest.approx(-1.0)
        assert result.x[0] == pytest.approx(0.0)
        assert result.x[1] == pytest.approx(1.0)

    def test_single_constraint(self):
        # min -x - y s.t. x + y <= 1, 0 <= x, y <= 1
        result = solve([-1.0, -1.0], [[1.0, 1.0]], [1.0], [0, 0], [1, 1])
        assert result.status is SolveStatus.OPTIMAL
        assert result.objective_value == pytest.approx(-1.0)
        assert sum(result.x) == pytest.approx(1.0)

    def test_infeasible(self):
        # x <= -1 with x in [0, 1] is infeasible.
        result = solve([1.0], [[1.0]], [-1.0], [0], [1])
        assert result.status is SolveStatus.INFEASIBLE

    def test_nonzero_lower_bounds(self):
        # min x with 2 <= x <= 5
        result = solve([1.0], [], [], [2], [5])
        assert result.objective_value == pytest.approx(2.0)

    def test_negative_lower_bounds(self):
        # min x with -3 <= x <= 5
        result = solve([1.0], [], [], [-3], [5])
        assert result.objective_value == pytest.approx(-3.0)

    def test_degenerate_constraints(self):
        # Redundant constraints should not break phase 1.
        result = solve(
            [-1.0, -2.0],
            [[1.0, 0.0], [1.0, 0.0], [0.0, 1.0]],
            [0.5, 0.5, 0.5],
            [0, 0],
            [1, 1],
        )
        assert result.status is SolveStatus.OPTIMAL
        assert result.objective_value == pytest.approx(-1.5)

    def test_infinite_bounds_rejected(self):
        with pytest.raises(ValueError, match="finite"):
            solve([1.0], [], [], [0], [np.inf])

    def test_inverted_bounds_infeasible(self):
        result = solve([1.0], [], [], [2], [1])
        assert result.status is SolveStatus.INFEASIBLE


class TestAgreementWithScipy:
    @settings(max_examples=60, deadline=None)
    @given(data=st.data())
    def test_matches_highs_on_random_lps(self, data):
        """On random bounded LPs the simplex and HiGHS agree on the optimum."""
        n = data.draw(st.integers(min_value=1, max_value=4), label="n")
        m = data.draw(st.integers(min_value=0, max_value=4), label="m")
        c = [data.draw(st.integers(min_value=-5, max_value=5)) for _ in range(n)]
        a = [[data.draw(st.integers(min_value=-3, max_value=3)) for _ in range(n)]
             for _ in range(m)]
        b = [data.draw(st.integers(min_value=-2, max_value=6)) for _ in range(m)]
        lower = [0.0] * n
        upper = [1.0] * n

        mine = solve(c, a, b, lower, upper)
        reference = linprog(
            c, A_ub=np.asarray(a, dtype=float).reshape(m, n) if m else None,
            b_ub=b if m else None, bounds=list(zip(lower, upper)), method="highs",
        )
        if reference.status == 2:
            assert mine.status is SolveStatus.INFEASIBLE
        else:
            assert reference.status == 0
            assert mine.status is SolveStatus.OPTIMAL
            assert mine.objective_value == pytest.approx(reference.fun, abs=1e-6)

    def test_attack_tree_relaxation(self):
        """The LP relaxation of the factory DgC program (budget 2)."""
        from repro.attacktree.catalog import factory
        from repro.core.bilp import build_structure_program, cost_objective, damage_objective

        model = factory()
        program = build_structure_program(model)
        program.add_less_equal(cost_objective(model).expression, 2.0)
        c, a_ub, b_ub, lower, upper, _ = program.dense_arrays(damage_objective(model))
        mine = solve_linear_program(c, a_ub, b_ub, lower, upper)
        reference = linprog(c, A_ub=a_ub, b_ub=b_ub, bounds=list(zip(lower, upper)),
                            method="highs")
        assert mine.status is SolveStatus.OPTIMAL
        assert mine.objective_value == pytest.approx(reference.fun, abs=1e-6)
