"""Unit tests for the ILP model layer."""

import pytest

from repro.milp.model import (
    Constraint,
    ConstraintSense,
    IntegerProgram,
    LinearExpression,
    ModelError,
    Objective,
    ObjectiveSense,
    Variable,
    VariableKind,
)


class TestVariable:
    def test_binary_bounds_clamped(self):
        variable = Variable("x", VariableKind.BINARY, lower=-5, upper=10)
        assert variable.bounds == (0.0, 1.0)

    def test_continuous_bounds_kept(self):
        variable = Variable("x", VariableKind.CONTINUOUS, lower=-2, upper=3)
        assert variable.bounds == (-2, 3)

    def test_integrality_flag(self):
        assert Variable("x", VariableKind.INTEGER, 0, 5).is_integral
        assert not Variable("x", VariableKind.CONTINUOUS, 0, 5).is_integral

    def test_empty_domain_rejected(self):
        with pytest.raises(ModelError):
            Variable("x", VariableKind.CONTINUOUS, lower=2, upper=1)

    def test_empty_name_rejected(self):
        with pytest.raises(ModelError):
            Variable("", VariableKind.BINARY)


class TestLinearExpression:
    def test_term_and_sum(self):
        expr = LinearExpression.term("x", 2.0) + LinearExpression.term("y", 3.0)
        assert expr.coefficients == {"x": 2.0, "y": 3.0}

    def test_zero_coefficients_dropped(self):
        expr = LinearExpression({"x": 0.0, "y": 1.0})
        assert expr.coefficients == {"y": 1.0}

    def test_scalar_arithmetic(self):
        expr = (LinearExpression.term("x") + 1.0) * 2.0
        assert expr.coefficients == {"x": 2.0}
        assert expr.constant == 2.0

    def test_subtraction(self):
        expr = LinearExpression.term("x", 5.0) - LinearExpression.term("x", 2.0)
        assert expr.coefficients == {"x": 3.0}

    def test_evaluate(self):
        expr = LinearExpression({"x": 2.0, "y": -1.0}, constant=4.0)
        assert expr.evaluate({"x": 3.0, "y": 1.0}) == 9.0
        assert expr.evaluate({}) == 4.0  # missing variables count as zero

    def test_repr_mentions_terms(self):
        assert "x" in repr(LinearExpression.term("x", 1.5))


class TestConstraint:
    def test_less_equal_normalisation(self):
        constraint = Constraint(LinearExpression.term("x"), ConstraintSense.GREATER_EQUAL, 2.0)
        rows = constraint.as_less_equal()
        assert len(rows) == 1
        expr, rhs = rows[0]
        assert expr.coefficients == {"x": -1.0}
        assert rhs == -2.0

    def test_equality_gives_two_rows(self):
        constraint = Constraint(LinearExpression.term("x"), ConstraintSense.EQUAL, 1.0)
        assert len(constraint.as_less_equal()) == 2

    def test_is_satisfied(self):
        constraint = Constraint(LinearExpression.term("x"), ConstraintSense.LESS_EQUAL, 2.0)
        assert constraint.is_satisfied({"x": 2.0})
        assert not constraint.is_satisfied({"x": 3.0})


class TestObjective:
    def test_maximisation_negated_for_minimisation(self):
        objective = Objective(LinearExpression.term("x", 2.0), ObjectiveSense.MAXIMIZE)
        assert objective.as_minimization().coefficients == {"x": -2.0}
        assert objective.value({"x": 3.0}) == 6.0


class TestIntegerProgram:
    def build_simple(self) -> IntegerProgram:
        program = IntegerProgram("test")
        program.add_binary("x")
        program.add_binary("y")
        program.add_less_equal(LinearExpression({"x": 1.0, "y": 1.0}), 1.0)
        program.add_objective(LinearExpression({"x": 3.0, "y": 2.0}), ObjectiveSense.MAXIMIZE)
        return program

    def test_duplicate_variable_rejected(self):
        program = IntegerProgram()
        program.add_binary("x")
        with pytest.raises(ModelError, match="already declared"):
            program.add_binary("x")

    def test_unknown_variable_in_constraint_rejected(self):
        program = IntegerProgram()
        program.add_binary("x")
        with pytest.raises(ModelError, match="unknown variables"):
            program.add_less_equal(LinearExpression.term("z"), 1.0)

    def test_unknown_variable_in_objective_rejected(self):
        program = IntegerProgram()
        with pytest.raises(ModelError, match="unknown variables"):
            program.add_objective(LinearExpression.term("z"))

    def test_unique_objective_accessor(self):
        program = IntegerProgram()
        program.add_binary("x")
        with pytest.raises(ModelError, match="exactly one objective"):
            _ = program.objective
        program.add_objective(LinearExpression.term("x"))
        assert program.objective.expression.coefficients == {"x": 1.0}

    def test_is_feasible(self):
        program = self.build_simple()
        assert program.is_feasible({"x": 1.0, "y": 0.0})
        assert not program.is_feasible({"x": 1.0, "y": 1.0})   # violates constraint
        assert not program.is_feasible({"x": 0.5, "y": 0.0})   # non-integral
        assert not program.is_feasible({"x": 2.0, "y": 0.0})   # out of bounds

    def test_dense_arrays_shapes_and_signs(self):
        program = self.build_simple()
        c, a_ub, b_ub, lower, upper, integrality = program.dense_arrays()
        assert c.tolist() == [-3.0, -2.0]   # maximisation negated
        assert a_ub.shape == (1, 2)
        assert b_ub.tolist() == [1.0]
        assert lower.tolist() == [0.0, 0.0]
        assert upper.tolist() == [1.0, 1.0]
        assert integrality.tolist() == [1.0, 1.0]

    def test_summary(self):
        assert "2 variables" in self.build_simple().summary()
