"""Tests for the ε-constraint bi-objective ILP driver."""

import pytest

from repro.milp.biobjective import EpsilonConstraintSolver, infer_step
from repro.milp.branch_bound import BranchAndBoundSolver
from repro.milp.model import (
    IntegerProgram,
    LinearExpression,
    Objective,
    ObjectiveSense,
)


def biobjective_knapsack() -> tuple[IntegerProgram, Objective, Objective]:
    """Three items; maximise value, minimise weight — every single-item and
    combined choice is a candidate point."""
    program = IntegerProgram("bi-knapsack")
    values = {"x0": 6.0, "x1": 5.0, "x2": 2.0}
    weights = {"x0": 4.0, "x1": 3.0, "x2": 1.0}
    for name in values:
        program.add_binary(name)
    value_objective = Objective(LinearExpression(values), ObjectiveSense.MAXIMIZE, "value")
    weight_objective = Objective(LinearExpression(weights), ObjectiveSense.MINIMIZE, "weight")
    return program, value_objective, weight_objective


def brute_force_front() -> set:
    values = [6.0, 5.0, 2.0]
    weights = [4.0, 3.0, 1.0]
    points = []
    for mask in range(8):
        value = sum(values[i] for i in range(3) if mask >> i & 1)
        weight = sum(weights[i] for i in range(3) if mask >> i & 1)
        points.append((value, weight))
    front = set()
    for value, weight in points:
        dominated = any(
            (other_value >= value and other_weight <= weight)
            and (other_value, other_weight) != (value, weight)
            and (other_value > value or other_weight < weight)
            for other_value, other_weight in points
        )
        if not dominated:
            front.add((value, weight))
    return front


class TestInferStep:
    def test_integer_coefficients(self):
        assert infer_step([[1.0, 3.0], [2.0, 10.0]]) == pytest.approx(0.5)

    def test_one_decimal_coefficients(self):
        assert infer_step([[10.8, 13.5], [100.0]]) == pytest.approx(0.05)

    def test_irrational_fallback(self):
        assert infer_step([[0.1234567891]], fallback=1e-6) == pytest.approx(1e-6)

    def test_empty_groups(self):
        assert infer_step([[], []]) == 1.0


class TestEpsilonConstraint:
    def test_full_non_dominated_set(self):
        program, value_obj, weight_obj = biobjective_knapsack()
        result = EpsilonConstraintSolver().solve(program, value_obj, weight_obj)
        assert set(result.values()) == brute_force_front()

    def test_points_sorted_by_secondary(self):
        program, value_obj, weight_obj = biobjective_knapsack()
        result = EpsilonConstraintSolver().solve(program, value_obj, weight_obj)
        secondaries = [point.secondary for point in result.points]
        assert secondaries == sorted(secondaries)

    def test_subproblem_count_reported(self):
        program, value_obj, weight_obj = biobjective_knapsack()
        result = EpsilonConstraintSolver().solve(program, value_obj, weight_obj)
        assert result.subproblems_solved >= 2 * len(result.points)

    def test_branch_and_bound_backend(self):
        program, value_obj, weight_obj = biobjective_knapsack()
        result = EpsilonConstraintSolver(solver=BranchAndBoundSolver()).solve(
            program, value_obj, weight_obj
        )
        assert set(result.values()) == brute_force_front()

    def test_max_points_cap(self):
        program, value_obj, weight_obj = biobjective_knapsack()
        result = EpsilonConstraintSolver(max_points=2).solve(program, value_obj, weight_obj)
        assert len(result.points) == 2

    def test_explicit_step_override(self):
        program, value_obj, weight_obj = biobjective_knapsack()
        result = EpsilonConstraintSolver(step=0.5).solve(program, value_obj, weight_obj)
        assert set(result.values()) == brute_force_front()

    def test_single_point_problem(self):
        """With a single variable and zero weight, the front is one point
        plus the empty choice collapsed by domination."""
        program = IntegerProgram()
        program.add_binary("x")
        value = Objective(LinearExpression({"x": 5.0}), ObjectiveSense.MAXIMIZE)
        weight = Objective(LinearExpression({"x": 0.0}), ObjectiveSense.MINIMIZE)
        result = EpsilonConstraintSolver().solve(program, value, weight)
        assert (5.0, 0.0) in set(result.values())
