"""Tests for the pure-Python branch-and-bound ILP solver."""

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.milp.branch_bound import BranchAndBoundSolver
from repro.milp.highs import HighsSolver
from repro.milp.model import (
    ConstraintSense,
    IntegerProgram,
    LinearExpression,
    ObjectiveSense,
    VariableKind,
)
from repro.milp.solution import SolveStatus


def knapsack_program(values, weights, capacity) -> IntegerProgram:
    program = IntegerProgram("knapsack")
    for index in range(len(values)):
        program.add_binary(f"x{index}")
    program.add_less_equal(
        LinearExpression({f"x{i}": float(w) for i, w in enumerate(weights)}), capacity
    )
    program.add_objective(
        LinearExpression({f"x{i}": float(v) for i, v in enumerate(values)}),
        ObjectiveSense.MAXIMIZE,
    )
    return program


def brute_force_knapsack(values, weights, capacity) -> float:
    best = 0.0
    n = len(values)
    for mask in range(2 ** n):
        weight = sum(weights[i] for i in range(n) if mask >> i & 1)
        if weight <= capacity:
            best = max(best, sum(values[i] for i in range(n) if mask >> i & 1))
    return best


class TestBranchAndBound:
    def test_invalid_engine_rejected(self):
        with pytest.raises(ValueError, match="scipy.*simplex|'scipy' or 'simplex'"):
            BranchAndBoundSolver(lp_engine="gurobi")

    def test_small_knapsack(self):
        program = knapsack_program([10, 7, 5], [4, 3, 2], 5)
        solution = BranchAndBoundSolver().solve(program)
        assert solution.status is SolveStatus.OPTIMAL
        assert solution.objective_value == pytest.approx(12.0)
        chosen = solution.rounded_assignment()
        assert chosen == {"x0": 0, "x1": 1, "x2": 1}

    def test_simplex_engine_agrees(self):
        program = knapsack_program([10, 7, 5, 9], [4, 3, 2, 5], 8)
        fast = BranchAndBoundSolver(lp_engine="scipy").solve(program)
        pure = BranchAndBoundSolver(lp_engine="simplex").solve(program)
        assert fast.objective_value == pytest.approx(pure.objective_value)

    def test_infeasible_program(self):
        program = IntegerProgram()
        program.add_binary("x")
        program.add_constraint(LinearExpression.term("x"), ConstraintSense.GREATER_EQUAL, 2.0)
        program.add_objective(LinearExpression.term("x"))
        solution = BranchAndBoundSolver().solve(program)
        assert solution.status is SolveStatus.INFEASIBLE

    def test_reports_nodes_explored(self):
        program = knapsack_program([3, 5, 7, 9, 11], [2, 3, 4, 5, 6], 9)
        solution = BranchAndBoundSolver().solve(program)
        assert solution.nodes_explored >= 1
        assert "branch-and-bound" in solution.backend

    def test_integer_variables_beyond_binary(self):
        # max x + y s.t. x + y <= 3.5 with x integer in [0, 3], y continuous in [0, 1].
        program = IntegerProgram()
        program.add_variable("x", VariableKind.INTEGER, 0, 3)
        program.add_variable("y", VariableKind.CONTINUOUS, 0, 1)
        program.add_less_equal(LinearExpression({"x": 1.0, "y": 1.0}), 3.5)
        program.add_objective(LinearExpression({"x": 1.0, "y": 1.0}), ObjectiveSense.MAXIMIZE)
        solution = BranchAndBoundSolver().solve(program)
        assert solution.objective_value == pytest.approx(3.5)
        assert solution.value("x") == pytest.approx(3.0)

    def test_agreement_with_highs_on_factory_program(self):
        from repro.attacktree.catalog import factory
        from repro.core.bilp import build_structure_program, cost_objective, damage_objective

        model = factory()
        program = build_structure_program(model)
        program.add_less_equal(cost_objective(model).expression, 2.0)
        objective = damage_objective(model)
        mine = BranchAndBoundSolver().solve(program, objective)
        reference = HighsSolver().solve(program, objective)
        assert mine.objective_value == pytest.approx(reference.objective_value)

    @settings(max_examples=25, deadline=None)
    @given(
        values=st.lists(st.integers(min_value=0, max_value=15), min_size=1, max_size=6),
        weights=st.lists(st.integers(min_value=1, max_value=8), min_size=1, max_size=6),
        capacity=st.integers(min_value=0, max_value=20),
    )
    def test_random_knapsacks_optimal(self, values, weights, capacity):
        size = min(len(values), len(weights))
        values, weights = values[:size], weights[:size]
        program = knapsack_program(values, weights, capacity)
        solution = BranchAndBoundSolver().solve(program)
        assert solution.status is SolveStatus.OPTIMAL
        assert solution.objective_value == pytest.approx(
            brute_force_knapsack(values, weights, capacity)
        )

    def test_rounded_assignment_rejects_fractional(self):
        from repro.milp.solution import MilpSolution

        solution = MilpSolution(status=SolveStatus.OPTIMAL, objective_value=1.0,
                                assignment={"x": 0.4})
        with pytest.raises(ValueError, match="non-integral"):
            solution.rounded_assignment()
