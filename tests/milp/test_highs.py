"""Tests for the HiGHS (scipy.optimize.milp) backend."""

import pytest

from repro.milp.branch_bound import BranchAndBoundSolver
from repro.milp.highs import HighsSolver, default_solver
from repro.milp.model import (
    ConstraintSense,
    IntegerProgram,
    LinearExpression,
    ObjectiveSense,
)
from repro.milp.solution import SolveStatus


def simple_program() -> IntegerProgram:
    program = IntegerProgram()
    program.add_binary("x")
    program.add_binary("y")
    program.add_less_equal(LinearExpression({"x": 2.0, "y": 3.0}), 4.0)
    program.add_objective(LinearExpression({"x": 3.0, "y": 5.0}), ObjectiveSense.MAXIMIZE)
    return program


class TestHighsSolver:
    def test_optimal_solution(self):
        solution = HighsSolver().solve(simple_program())
        assert solution.status is SolveStatus.OPTIMAL
        assert solution.objective_value == pytest.approx(5.0)
        assert solution.rounded_assignment() == {"x": 0, "y": 1}
        assert solution.backend == "highs"

    def test_infeasible(self):
        program = IntegerProgram()
        program.add_binary("x")
        program.add_constraint(LinearExpression.term("x"), ConstraintSense.GREATER_EQUAL, 2.0)
        program.add_objective(LinearExpression.term("x"))
        assert HighsSolver().solve(program).status is SolveStatus.INFEASIBLE

    def test_explicit_objective_choice(self):
        program = simple_program()
        extra = program.add_objective(
            LinearExpression({"x": 1.0, "y": 1.0}), ObjectiveSense.MINIMIZE, name="count"
        )
        solution = HighsSolver().solve(program, extra)
        assert solution.objective_value == pytest.approx(0.0)

    def test_agreement_with_branch_and_bound(self):
        program = simple_program()
        highs = HighsSolver().solve(program)
        bnb = BranchAndBoundSolver().solve(program)
        assert highs.objective_value == pytest.approx(bnb.objective_value)

    def test_program_without_constraints(self):
        program = IntegerProgram()
        program.add_binary("x")
        program.add_objective(LinearExpression.term("x"), ObjectiveSense.MAXIMIZE)
        solution = HighsSolver().solve(program)
        assert solution.objective_value == pytest.approx(1.0)


class TestSolverSilence:
    """The BILP path must not leak HiGHS's native-stdout diagnostics."""

    @staticmethod
    def _noisy_model():
        """A model known to make HiGHS print its stray diagnostic line.

        The smoke-profile case ``random-dag-deterministic-s2023-n20-i1``,
        after the JSON round-trip every harness worker performs (which turns
        the integer decorations into floats), used to emit
        ``HighsMipSolverData::transformNewIntegerFeasibleSolution …``
        straight to OS-level stdout during the BILP front sweep.
        """
        from repro.attacktree import serialization
        from repro.workloads import ScenarioSpec, expand

        spec = ScenarioSpec(
            family="random",
            shape="dag",
            setting="deterministic",
            sizes=(20,),
            cases_per_size=2,
        )
        case = expand(spec)[1]
        return serialization.from_dict(serialization.to_dict(case.model))

    def test_direct_solve_is_silent_by_default(self, capfd):
        solution = HighsSolver().solve(simple_program())
        assert solution.status is SolveStatus.OPTIMAL
        out, err = capfd.readouterr()
        assert out == "" and err == ""

    def test_noisy_bilp_instance_is_silent_by_default(self, capfd):
        from repro.core.problems import Problem
        from repro.engine import AnalysisRequest, AnalysisSession

        result = AnalysisSession(self._noisy_model()).run(
            AnalysisRequest(Problem.CDPF, backend="bilp")
        )
        assert result.front is not None and len(result.front) > 0
        out, err = capfd.readouterr()
        assert out == "" and err == ""

    def test_verbose_flag_enables_the_solver_log(self, capfd):
        solution = HighsSolver(verbose=True).solve(simple_program())
        assert solution.status is SolveStatus.OPTIMAL
        out, _ = capfd.readouterr()
        assert "HiGHS" in out

    def test_python_stdout_survives_the_gag(self, capsys):
        # The fd redirect must only cover the native call: Python-level
        # prints before and after the solve reach the caller untouched.
        print("before")
        HighsSolver().solve(simple_program())
        print("after")
        assert capsys.readouterr().out == "before\nafter\n"

    def test_overlapping_solves_restore_stdout(self, capfd):
        # The fd gag is process-global: interleaved save/restore from
        # concurrent solves must not leave fd 1 pointing at /dev/null.
        import os
        from concurrent.futures import ThreadPoolExecutor

        def solve(_):
            return HighsSolver().solve(simple_program()).status

        with ThreadPoolExecutor(max_workers=4) as pool:
            statuses = list(pool.map(solve, range(16)))
        assert all(status is SolveStatus.OPTIMAL for status in statuses)
        assert os.fstat(1).st_ino != os.stat(os.devnull).st_ino
        print("still here")
        assert "still here" in capfd.readouterr().out


class TestDefaultSolver:
    def test_prefers_highs(self):
        assert isinstance(default_solver(), HighsSolver)

    def test_can_request_branch_and_bound(self):
        assert isinstance(default_solver(prefer="branch-and-bound"), BranchAndBoundSolver)


class TestSolveStatus:
    def test_is_optimal_flag(self):
        assert SolveStatus.OPTIMAL.is_optimal
        assert not SolveStatus.INFEASIBLE.is_optimal
