"""Tests for the HiGHS (scipy.optimize.milp) backend."""

import pytest

from repro.milp.branch_bound import BranchAndBoundSolver
from repro.milp.highs import HighsSolver, default_solver
from repro.milp.model import (
    ConstraintSense,
    IntegerProgram,
    LinearExpression,
    ObjectiveSense,
)
from repro.milp.solution import SolveStatus


def simple_program() -> IntegerProgram:
    program = IntegerProgram()
    program.add_binary("x")
    program.add_binary("y")
    program.add_less_equal(LinearExpression({"x": 2.0, "y": 3.0}), 4.0)
    program.add_objective(LinearExpression({"x": 3.0, "y": 5.0}), ObjectiveSense.MAXIMIZE)
    return program


class TestHighsSolver:
    def test_optimal_solution(self):
        solution = HighsSolver().solve(simple_program())
        assert solution.status is SolveStatus.OPTIMAL
        assert solution.objective_value == pytest.approx(5.0)
        assert solution.rounded_assignment() == {"x": 0, "y": 1}
        assert solution.backend == "highs"

    def test_infeasible(self):
        program = IntegerProgram()
        program.add_binary("x")
        program.add_constraint(LinearExpression.term("x"), ConstraintSense.GREATER_EQUAL, 2.0)
        program.add_objective(LinearExpression.term("x"))
        assert HighsSolver().solve(program).status is SolveStatus.INFEASIBLE

    def test_explicit_objective_choice(self):
        program = simple_program()
        extra = program.add_objective(
            LinearExpression({"x": 1.0, "y": 1.0}), ObjectiveSense.MINIMIZE, name="count"
        )
        solution = HighsSolver().solve(program, extra)
        assert solution.objective_value == pytest.approx(0.0)

    def test_agreement_with_branch_and_bound(self):
        program = simple_program()
        highs = HighsSolver().solve(program)
        bnb = BranchAndBoundSolver().solve(program)
        assert highs.objective_value == pytest.approx(bnb.objective_value)

    def test_program_without_constraints(self):
        program = IntegerProgram()
        program.add_binary("x")
        program.add_objective(LinearExpression.term("x"), ObjectiveSense.MAXIMIZE)
        solution = HighsSolver().solve(program)
        assert solution.objective_value == pytest.approx(1.0)


class TestDefaultSolver:
    def test_prefers_highs(self):
        assert isinstance(default_solver(), HighsSolver)

    def test_can_request_branch_and_bound(self):
        assert isinstance(default_solver(prefer="branch-and-bound"), BranchAndBoundSolver)


class TestSolveStatus:
    def test_is_optimal_flag(self):
        assert SolveStatus.OPTIMAL.is_optimal
        assert not SolveStatus.INFEASIBLE.is_optimal
