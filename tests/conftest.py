"""Shared fixtures and hypothesis strategies for the test-suite.

The strategies build *small* random attack trees (both treelike and
DAG-like) with random decorations; property-based tests use them to check
that independent solvers (bottom-up, BILP, enumerative) agree, that the
paper's worked examples hold, and that structural invariants are preserved
by every transformation.
"""

from __future__ import annotations

import random
from typing import Dict, List, Tuple

import pytest
from hypothesis import strategies as st

from repro.attacktree import catalog
from repro.attacktree.attributes import CostDamageAT, CostDamageProbAT
from repro.attacktree.node import Node, NodeType
from repro.attacktree.tree import AttackTree


# --------------------------------------------------------------------------- #
# fixtures: the paper's models
# --------------------------------------------------------------------------- #
@pytest.fixture
def factory() -> CostDamageAT:
    """The Fig. 1 running example."""
    return catalog.factory()


@pytest.fixture
def factory_probabilistic() -> CostDamageProbAT:
    """The Fig. 1 example with the probabilities of Example 8."""
    return catalog.factory_probabilistic()


@pytest.fixture(scope="session")
def panda() -> CostDamageProbAT:
    """The Fig. 4 panda-IoT case study (treelike, 22 BASs)."""
    return catalog.panda_iot()


@pytest.fixture(scope="session")
def data_server() -> CostDamageAT:
    """The Fig. 5 data-server case study (DAG-like, 12 BASs)."""
    return catalog.data_server()


@pytest.fixture
def example10() -> CostDamageProbAT:
    """The Example 10 OR pair used to contrast deterministic/probabilistic."""
    return catalog.example10_or_pair()


# --------------------------------------------------------------------------- #
# random model generation (plain `random`, used by seeded deterministic tests)
# --------------------------------------------------------------------------- #
def make_random_tree(
    seed: int,
    max_bas: int = 6,
    treelike: bool = True,
    max_damage: int = 10,
    max_cost: int = 8,
) -> CostDamageProbAT:
    """Build a small random decorated AT, deterministically from ``seed``.

    Trees are grown top-down; when ``treelike`` is ``False`` one extra edge
    to an existing BAS is added to create sharing.
    """
    rng = random.Random(seed)
    bas_count = rng.randint(2, max_bas)
    bas_names = [f"b{i}" for i in range(bas_count)]
    nodes: Dict[str, Node] = {
        name: Node(name=name, type=NodeType.BAS) for name in bas_names
    }
    gate_index = 0
    available = list(bas_names)
    # Repeatedly combine 2-3 available roots under a new gate until one root
    # remains; this always yields a treelike AT over all BASs.
    while len(available) > 1:
        arity = min(len(available), rng.choice([2, 2, 3]))
        children = [available.pop(rng.randrange(len(available))) for _ in range(arity)]
        gate_name = f"g{gate_index}"
        gate_index += 1
        gate_type = rng.choice([NodeType.OR, NodeType.AND])
        nodes[gate_name] = Node(name=gate_name, type=gate_type, children=tuple(children))
        available.append(gate_name)
    root = available[0]
    if root in bas_names:
        # Degenerate single-BAS tree: wrap it in an OR gate for a proper root.
        nodes["g_root"] = Node(name="g_root", type=NodeType.OR, children=(root,))
        root = "g_root"

    if not treelike:
        gates = [n for n in nodes.values() if n.is_gate]
        target_gate = rng.choice(gates)
        shared_bas = rng.choice(bas_names)
        if shared_bas not in target_gate.children:
            nodes[target_gate.name] = target_gate.with_children(
                target_gate.children + (shared_bas,)
            )

    tree = AttackTree(nodes.values(), root=root)
    cost = {b: float(rng.randint(1, max_cost)) for b in tree.basic_attack_steps}
    damage = {n: float(rng.randint(0, max_damage)) for n in tree.node_names}
    probability = {b: rng.choice([0.1, 0.25, 0.5, 0.75, 0.9, 1.0])
                   for b in tree.basic_attack_steps}
    return CostDamageProbAT(tree, cost, damage, probability)


@pytest.fixture
def random_treelike_models() -> List[CostDamageProbAT]:
    """Twelve small seeded treelike cdp-ATs for agreement tests."""
    return [make_random_tree(seed, treelike=True) for seed in range(12)]


@pytest.fixture
def random_dag_models() -> List[CostDamageProbAT]:
    """Twelve small seeded DAG-like cdp-ATs for agreement tests."""
    return [make_random_tree(seed, treelike=False) for seed in range(100, 112)]


# --------------------------------------------------------------------------- #
# hypothesis strategies
# --------------------------------------------------------------------------- #
@st.composite
def small_cdp_ats(draw, max_bas: int = 5, treelike: bool = True) -> CostDamageProbAT:
    """Hypothesis strategy producing small decorated ATs."""
    seed = draw(st.integers(min_value=0, max_value=10_000))
    return make_random_tree(seed, max_bas=max_bas, treelike=treelike)


@st.composite
def cost_damage_pairs(draw, size: int = 6) -> List[Tuple[float, float]]:
    """Hypothesis strategy producing lists of (cost, damage) points."""
    count = draw(st.integers(min_value=0, max_value=size))
    points = []
    for _ in range(count):
        cost = draw(st.floats(min_value=0, max_value=100, allow_nan=False))
        damage = draw(st.floats(min_value=0, max_value=100, allow_nan=False))
        points.append((cost, damage))
    return points
