"""Tests for the networkx interoperability layer."""

import networkx as nx
import pytest

from repro.attacktree.attributes import CostDamageAT, CostDamageProbAT
from repro.attacktree.catalog import data_server, factory, factory_probabilistic
from repro.attacktree.interop import from_networkx, to_networkx
from repro.attacktree.tree import AttackTree, AttackTreeError
from repro.core.bottom_up import pareto_front_treelike


class TestToNetworkx:
    def test_nodes_edges_and_root(self):
        graph = to_networkx(factory())
        assert set(graph.nodes) == {"ca", "pb", "fd", "dr", "ps"}
        assert ("dr", "pb") in graph.edges
        assert graph.graph["root"] == "ps"

    def test_attributes(self):
        graph = to_networkx(factory_probabilistic())
        assert graph.nodes["fd"]["cost"] == 2
        assert graph.nodes["fd"]["probability"] == 0.9
        assert graph.nodes["ps"]["damage"] == 200
        assert graph.nodes["dr"]["type"] == "AND"
        assert graph.nodes["fd"]["label"] == "force door"

    def test_bare_tree(self):
        graph = to_networkx(factory().tree)
        assert "cost" not in graph.nodes["ca"]

    def test_is_dag(self):
        graph = to_networkx(data_server())
        assert nx.is_directed_acyclic_graph(graph)

    def test_unsupported_type(self):
        with pytest.raises(TypeError):
            to_networkx(42)


class TestFromNetworkx:
    def test_round_trip_cd(self):
        model = factory()
        restored = from_networkx(to_networkx(model))
        assert isinstance(restored, CostDamageAT)
        assert restored.tree.structurally_equal(model.tree)
        assert restored.cost == model.cost
        assert restored.damage == model.damage

    def test_round_trip_cdp(self):
        model = factory_probabilistic()
        restored = from_networkx(to_networkx(model))
        assert isinstance(restored, CostDamageProbAT)
        assert restored.probability == model.probability

    def test_round_trip_bare_tree(self):
        tree = factory().tree
        restored = from_networkx(to_networkx(tree))
        assert isinstance(restored, AttackTree)
        assert restored.structurally_equal(tree)

    def test_round_trip_preserves_analysis(self):
        model = factory()
        restored = from_networkx(to_networkx(model))
        assert pareto_front_treelike(restored).values() == \
            pareto_front_treelike(model).values()

    def test_explicit_root_override(self):
        graph = to_networkx(factory().tree)
        del graph.graph["root"]
        restored = from_networkx(graph, root="ps")
        assert restored.root == "ps"

    def test_missing_type_rejected(self):
        graph = nx.DiGraph(root="a")
        graph.add_node("a")
        with pytest.raises(AttackTreeError, match="type"):
            from_networkx(graph)

    def test_hand_built_graph(self):
        graph = nx.DiGraph(root="top")
        graph.add_node("x", type="BAS", cost=2.0)
        graph.add_node("y", type="BAS", cost=3.0)
        graph.add_node("top", type="OR", damage=7.0)
        graph.add_edge("top", "x")
        graph.add_edge("top", "y")
        model = from_networkx(graph)
        assert isinstance(model, CostDamageAT)
        front = pareto_front_treelike(model)
        assert front.values() == [(0.0, 0.0), (2.0, 7.0)]
