"""Unit and property tests for binarisation.

Key invariant: binarisation must not change ĉ, d̂ or d̂_E of any attack —
the paper uses the binary assumption "purely to simplify notation", so the
rewrite must be semantics-preserving.
"""

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.attacktree.binarize import binarize_cd, binarize_cdp, binarize_tree, is_binary
from repro.attacktree.builder import AttackTreeBuilder
from repro.attacktree.catalog import panda_iot
from repro.core.semantics import all_attacks, attack_cost, attack_damage
from repro.probability.actualization import expected_damage

from ..conftest import make_random_tree


def wide_model():
    """A gate with four children and one with three."""
    builder = AttackTreeBuilder()
    for index in range(4):
        builder.bas(f"a{index}", cost=index + 1, damage=index)
    builder.bas("b0", cost=2)
    builder.bas("b1", cost=3)
    builder.bas("b2", cost=4)
    builder.or_gate("wide_or", ["a0", "a1", "a2", "a3"], damage=7)
    builder.and_gate("wide_and", ["b0", "b1", "b2"], damage=11)
    builder.and_gate("root", ["wide_or", "wide_and"], damage=13)
    return builder.build_cd(root="root")


class TestIsBinary:
    def test_wide_tree_is_not_binary(self):
        assert not is_binary(wide_model().tree)

    def test_factory_is_binary(self):
        from repro.attacktree.catalog import factory

        assert is_binary(factory().tree)


class TestBinarizeTree:
    def test_result_is_binary(self):
        binary, _ = binarize_tree(wide_model().tree)
        assert is_binary(binary)

    def test_original_nodes_preserved(self):
        original = wide_model().tree
        binary, helpers = binarize_tree(original)
        assert set(original.nodes) <= set(binary.nodes)
        assert set(helpers) == set(binary.nodes) - set(original.nodes)

    def test_helper_origin_points_to_split_gate(self):
        _, helpers = binarize_tree(wide_model().tree)
        assert all(origin in {"wide_or", "wide_and"} for origin in helpers.values())

    def test_bas_set_unchanged(self):
        original = wide_model().tree
        binary, _ = binarize_tree(original)
        assert binary.basic_attack_steps == original.basic_attack_steps

    def test_already_binary_tree_unchanged(self):
        from repro.attacktree.catalog import factory

        tree = factory().tree
        binary, helpers = binarize_tree(tree)
        assert helpers == {}
        assert set(binary.nodes) == set(tree.nodes)


class TestSemanticsPreservation:
    def test_cd_semantics_preserved_on_wide_model(self):
        model = wide_model()
        binary, _ = binarize_cd(model)
        for attack in all_attacks(model):
            assert attack_cost(model, attack) == attack_cost(binary, attack)
            assert attack_damage(model, attack) == pytest.approx(
                attack_damage(binary, attack)
            )

    def test_cdp_semantics_preserved(self):
        model = make_random_tree(3, max_bas=5)
        binary, _ = binarize_cdp(model)
        for attack in all_attacks(model):
            assert expected_damage(model, attack) == pytest.approx(
                expected_damage(binary, attack)
            )

    def test_panda_binarisation_preserves_structure_function(self):
        model = panda_iot().deterministic()
        binary, _ = binarize_cd(model)
        attack = frozenset({"b18", "b19", "b20"})
        assert attack_damage(model, attack) == attack_damage(binary, attack)

    @settings(max_examples=25, deadline=None)
    @given(seed=st.integers(min_value=0, max_value=500))
    def test_binarisation_preserves_damage_random(self, seed):
        model = make_random_tree(seed, max_bas=5).deterministic()
        binary, _ = binarize_cd(model)
        for attack in all_attacks(model):
            assert attack_damage(model, attack) == pytest.approx(
                attack_damage(binary, attack)
            )
