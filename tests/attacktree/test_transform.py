"""Unit tests for decorated-tree transformations (Fig. 2 rewrite and helpers)."""

import pytest

from repro.attacktree.attributes import CostDamageAT
from repro.attacktree.builder import AttackTreeBuilder
from repro.attacktree.catalog import factory
from repro.attacktree.transform import (
    push_internal_costs,
    relabel,
    replace_bas_with_tree,
    strip_probabilities,
    with_unit_probabilities,
)
from repro.attacktree.tree import AttackTreeError
from repro.core.bottom_up import pareto_front_treelike
from repro.core.semantics import attack_cost, attack_damage


def internal_cost_model():
    """The Fig. 2 left AT: root AND over two BASs, with cost 1 on the root."""
    builder = AttackTreeBuilder()
    builder.bas("a", cost=1)
    builder.bas("b", cost=1)
    builder.and_gate("root", ["a", "b"], damage=1)
    tree = builder.build_tree(root="root")
    cost = {"a": 1.0, "b": 1.0, "root": 1.0}
    damage = {"root": 1.0}
    return tree, cost, damage


class TestPushInternalCosts:
    def test_and_gate_gets_dummy_conjunct(self):
        tree, cost, damage = internal_cost_model()
        rewritten = push_internal_costs(tree, cost, damage)
        # Only BASs carry costs afterwards.
        assert set(rewritten.cost) == rewritten.tree.basic_attack_steps
        dummy = [b for b in rewritten.tree.basic_attack_steps if b.startswith("root__cost")]
        assert len(dummy) == 1
        assert rewritten.cost_of(dummy[0]) == 1.0

    def test_fig2_equivalence_cost_2_for_damage_1(self):
        """Both the original (internal cost) and the rewrite need cost 2+1
        to do 1 damage: the dummy BAS must be paid in addition to a child."""
        tree, cost, damage = internal_cost_model()
        rewritten = push_internal_costs(tree, cost, damage).deterministic()
        front = pareto_front_treelike(rewritten)
        # Reaching the root (damage 1) requires a and b and the payment: cost 3.
        assert front.min_cost_given_damage(1.0) == 3.0

    def test_or_gate_is_wrapped_in_and(self):
        builder = AttackTreeBuilder()
        builder.bas("a", cost=1)
        builder.bas("b", cost=2)
        builder.or_gate("root", ["a", "b"], damage=5)
        tree = builder.build_tree(root="root")
        rewritten = push_internal_costs(tree, {"a": 1, "b": 2, "root": 4}, {"root": 5})
        det = rewritten.deterministic()
        # Cheapest way to do the 5 damage: a (1) + the payment (4) = 5.
        front = pareto_front_treelike(det)
        assert front.min_cost_given_damage(5.0) == 5.0
        # Without paying, no damage at all.
        assert attack_damage(det, {"a"}) == 0.0

    def test_no_internal_costs_is_identity_up_to_type(self):
        model = factory()
        rewritten = push_internal_costs(model.tree, dict(model.cost), dict(model.damage))
        assert rewritten.tree.basic_attack_steps == model.tree.basic_attack_steps
        assert rewritten.cost == model.cost

    def test_unknown_node_rejected(self):
        tree, cost, damage = internal_cost_model()
        cost["ghost"] = 3.0
        with pytest.raises(AttackTreeError, match="unknown nodes"):
            push_internal_costs(tree, cost, damage)


class TestRelabel:
    def test_relabel_preserves_semantics(self):
        model = factory()
        renamed = relabel(model, {"ca": "cyber", "ps": "shutdown"})
        assert "cyber" in renamed.tree.basic_attack_steps
        assert renamed.tree.root == "shutdown"
        assert attack_cost(renamed, {"cyber"}) == 1
        assert attack_damage(renamed, {"cyber"}) == 200

    def test_non_injective_relabel_rejected(self):
        model = factory()
        with pytest.raises(AttackTreeError, match="injective"):
            relabel(model, {"ca": "pb"})


class TestReplaceBasWithTree:
    def test_graft_replaces_bas(self):
        host = factory().tree
        guest = factory().tree
        combined = replace_bas_with_tree(host, "ca", guest, prefix="g_")
        assert "ca" not in combined.nodes
        assert "g_ps" in combined.nodes
        assert combined.root == "ps"
        # The guest root took ca's place as a child of ps.
        assert "g_ps" in combined.children("ps")

    def test_graft_rejects_non_bas(self):
        host = factory().tree
        with pytest.raises(AttackTreeError, match="not a BAS"):
            replace_bas_with_tree(host, "dr", factory().tree, prefix="g_")

    def test_graft_rejects_name_clash(self):
        host = factory().tree
        with pytest.raises(AttackTreeError, match="clash"):
            replace_bas_with_tree(host, "ca", factory().tree, prefix="")


class TestProbabilityViews:
    def test_unit_probabilities_round_trip(self):
        model = factory()
        probabilistic = with_unit_probabilities(model)
        assert probabilistic.is_effectively_deterministic()
        back = strip_probabilities(probabilistic)
        assert isinstance(back, CostDamageAT)
        assert back.cost == model.cost
        assert back.damage == model.damage
