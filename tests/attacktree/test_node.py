"""Unit tests for the node vocabulary."""

import pytest

from repro.attacktree.node import Node, NodeType


class TestNodeType:
    def test_bas_is_not_gate(self):
        assert not NodeType.BAS.is_gate

    def test_or_and_are_gates(self):
        assert NodeType.OR.is_gate
        assert NodeType.AND.is_gate

    def test_str_is_value(self):
        assert str(NodeType.AND) == "AND"


class TestNodeConstruction:
    def test_bas_without_children(self):
        node = Node(name="a", type=NodeType.BAS)
        assert node.is_bas
        assert not node.is_gate
        assert node.arity == 0

    def test_gate_with_children(self):
        node = Node(name="g", type=NodeType.OR, children=("a", "b"))
        assert node.is_gate
        assert node.arity == 2
        assert node.children == ("a", "b")

    def test_bas_with_children_rejected(self):
        with pytest.raises(ValueError, match="cannot have children"):
            Node(name="a", type=NodeType.BAS, children=("b",))

    def test_gate_without_children_rejected(self):
        with pytest.raises(ValueError, match="at least one child"):
            Node(name="g", type=NodeType.AND, children=())

    def test_duplicate_children_rejected(self):
        with pytest.raises(ValueError, match="duplicate children"):
            Node(name="g", type=NodeType.OR, children=("a", "a"))

    def test_self_child_rejected(self):
        with pytest.raises(ValueError, match="own child"):
            Node(name="g", type=NodeType.OR, children=("g", "a"))

    def test_empty_name_rejected(self):
        with pytest.raises(ValueError, match="non-empty"):
            Node(name="", type=NodeType.BAS)

    def test_wrong_type_rejected(self):
        with pytest.raises(TypeError):
            Node(name="a", type="BAS")  # type: ignore[arg-type]


class TestNodeBehaviour:
    def test_with_children_returns_new_node(self):
        original = Node(name="g", type=NodeType.AND, children=("a", "b"))
        updated = original.with_children(("a", "b", "c"))
        assert updated.children == ("a", "b", "c")
        assert original.children == ("a", "b")
        assert updated.name == original.name
        assert updated.type == original.type

    def test_describe_bas(self):
        node = Node(name="fd", type=NodeType.BAS, label="force door")
        assert "BAS fd" in node.describe()
        assert "force door" in node.describe()

    def test_describe_gate(self):
        node = Node(name="dr", type=NodeType.AND, children=("pb", "fd"))
        description = node.describe()
        assert "AND" in description
        assert "pb" in description and "fd" in description

    def test_nodes_are_hashable_and_comparable(self):
        a = Node(name="a", type=NodeType.BAS)
        b = Node(name="a", type=NodeType.BAS)
        assert a == b
        assert hash(a) == hash(b)
        assert a != Node(name="c", type=NodeType.BAS)
