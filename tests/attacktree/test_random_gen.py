"""Unit tests for the random AT generator (Section X.D workloads)."""

import random

import pytest

from repro.attacktree import catalog, serialization
from repro.attacktree.random_gen import (
    RandomSuiteSpec,
    combine_common_parent,
    combine_replace_bas,
    combine_shared_bas,
    generate_suite,
    random_attack_tree,
    random_cd_at,
    random_cdp_at,
    random_decoration,
)


class TestCombinationOperations:
    def setup_method(self):
        self.first = catalog.factory().tree
        self.second = catalog.factory().tree
        self.rng = random.Random(0)

    def test_replace_bas_keeps_root(self):
        combined = combine_replace_bas(self.first, self.second, self.rng, prefix="x_")
        assert combined.root == self.first.root
        assert len(combined) == len(self.first) + len(self.second) - 1

    def test_common_parent_adds_fresh_root(self):
        combined = combine_common_parent(self.first, self.second, self.rng, prefix="x_")
        assert combined.root == "x_root"
        assert len(combined) == len(self.first) + len(self.second) + 1

    def test_common_parent_keeps_treelike(self):
        combined = combine_common_parent(self.first, self.second, self.rng, prefix="x_")
        assert combined.is_treelike

    def test_shared_bas_creates_dag(self):
        combined = combine_shared_bas(self.first, self.second, self.rng, prefix="x_")
        assert not combined.is_treelike
        assert combined.shared_nodes()

    def test_replace_bas_preserves_treelike_for_treelike_inputs(self):
        combined = combine_replace_bas(self.first, self.second, self.rng, prefix="x_")
        assert combined.is_treelike


class TestRandomAttackTree:
    def test_reaches_requested_size(self):
        rng = random.Random(1)
        tree = random_attack_tree(60, rng)
        assert len(tree) >= 60

    def test_treelike_flag_respected(self):
        rng = random.Random(2)
        for _ in range(5):
            tree = random_attack_tree(40, rng, treelike=True)
            assert tree.is_treelike

    def test_deterministic_in_seed(self):
        first = random_attack_tree(30, random.Random(7))
        second = random_attack_tree(30, random.Random(7))
        assert first.structurally_equal(second)

    def test_invalid_size_rejected(self):
        with pytest.raises(ValueError):
            random_attack_tree(0, random.Random(0))

    def test_empty_blocks_rejected(self):
        with pytest.raises(ValueError):
            random_attack_tree(5, random.Random(0), blocks=[])


class TestRandomDecoration:
    def test_ranges_follow_paper(self):
        tree = catalog.panda_iot().tree
        cost, damage, probability = random_decoration(tree, random.Random(3))
        assert all(1 <= c <= 10 for c in cost.values())
        assert all(0 <= d <= 10 for d in damage.values())
        assert all(0.1 <= p <= 1.0 for p in probability.values())
        assert set(cost) == set(tree.basic_attack_steps)
        assert set(damage) == set(tree.nodes)

    def test_random_cd_and_cdp_wrappers(self):
        tree = catalog.factory().tree
        cd = random_cd_at(tree, random.Random(4))
        cdp = random_cdp_at(tree, random.Random(4))
        assert cd.tree is tree
        assert set(cdp.probability) == set(tree.basic_attack_steps)

    def test_decoration_deterministic_in_seed(self):
        tree = catalog.factory().tree
        first = random_decoration(tree, random.Random(9))
        second = random_decoration(tree, random.Random(9))
        assert first == second


class TestSuiteGeneration:
    def test_suite_size(self):
        spec = RandomSuiteSpec(max_target_size=6, trees_per_size=2, treelike=True, seed=1)
        suite = generate_suite(spec)
        assert len(suite) == 12

    def test_treelike_suite_is_treelike(self):
        spec = RandomSuiteSpec(max_target_size=5, trees_per_size=1, treelike=True, seed=2)
        assert all(model.tree.is_treelike for model in generate_suite(spec))

    def test_dag_suite_contains_dags(self):
        spec = RandomSuiteSpec(max_target_size=40, trees_per_size=1, treelike=False, seed=3)
        suite = generate_suite(spec)
        assert any(not model.tree.is_treelike for model in suite)

    def test_suite_reproducible(self):
        spec = RandomSuiteSpec(max_target_size=4, trees_per_size=1, treelike=True, seed=5)
        first = generate_suite(spec)
        second = generate_suite(spec)
        assert [m.cost for m in first] == [m.cost for m in second]


class TestSeedDeterminism:
    """Same seed ⇒ byte-identical tree, decoration and suite.

    Stronger than structural equality: the serialized JSON must match, so
    benchmark artifacts that embed a seed regenerate the exact workload.
    """

    def test_random_attack_tree_identical_serialization(self):
        for treelike in (True, False):
            first = random_attack_tree(25, random.Random(11), treelike=treelike)
            second = random_attack_tree(25, random.Random(11), treelike=treelike)
            assert serialization.to_json(first) == serialization.to_json(second)

    def test_random_attack_tree_seed_changes_output(self):
        # Large enough that several combination steps must happen, so two
        # seeds cannot collapse to the same single building block.
        first = random_attack_tree(80, random.Random(11))
        second = random_attack_tree(80, random.Random(12))
        assert serialization.to_json(first) != serialization.to_json(second)

    def test_random_decoration_identical_maps(self):
        tree = random_attack_tree(20, random.Random(1))
        first = random_decoration(tree, random.Random(21))
        second = random_decoration(tree, random.Random(21))
        assert first == second
        third = random_decoration(tree, random.Random(22))
        assert first != third

    def test_decoration_choices_respected(self):
        tree = catalog.factory().tree
        cost, damage, probability = random_decoration(
            tree, random.Random(5),
            cost_choices=(3,), damage_choices=(7,), probability_choices=(0.5,),
        )
        assert set(cost.values()) == {3.0}
        assert set(damage.values()) == {7.0}
        assert set(probability.values()) == {0.5}

    def test_generate_suite_identical_models(self):
        spec = RandomSuiteSpec(max_target_size=5, trees_per_size=2, seed=31)
        first = generate_suite(spec)
        second = generate_suite(spec)
        assert [serialization.to_json(m) for m in first] == \
               [serialization.to_json(m) for m in second]

    def test_generate_suite_explicit_sizes(self):
        spec = RandomSuiteSpec(sizes=(5, 10, 15), trees_per_size=2, seed=31)
        assert spec.target_sizes() == (5, 10, 15)
        suite = generate_suite(spec)
        assert len(suite) == 6
        assert all(len(m.tree) >= 5 for m in suite)
        assert [serialization.to_json(m) for m in suite] == \
               [serialization.to_json(m) for m in generate_suite(spec)]

    def test_generate_suite_custom_decoration_choices(self):
        spec = RandomSuiteSpec(
            sizes=(6,), trees_per_size=1, seed=2,
            cost_choices=(4,), damage_choices=(1,), probability_choices=(0.3,),
        )
        model = generate_suite(spec)[0]
        assert set(model.cost.values()) == {4.0}
        assert set(model.damage.values()) == {1.0}
        assert set(model.probability.values()) == {0.3}
