"""Unit tests for the AttackTree data structure."""

import pytest

from repro.attacktree.node import Node, NodeType
from repro.attacktree.tree import AttackTree, AttackTreeError


def simple_tree() -> AttackTree:
    """ps = OR(ca, dr), dr = AND(pb, fd) — the Fig. 1 shape."""
    return AttackTree(
        [
            Node("ca", NodeType.BAS),
            Node("pb", NodeType.BAS),
            Node("fd", NodeType.BAS),
            Node("dr", NodeType.AND, ("pb", "fd")),
            Node("ps", NodeType.OR, ("ca", "dr")),
        ]
    )


def shared_dag() -> AttackTree:
    """root = AND(g1, g2) where both gates share BAS ``s``."""
    return AttackTree(
        [
            Node("s", NodeType.BAS),
            Node("a", NodeType.BAS),
            Node("b", NodeType.BAS),
            Node("g1", NodeType.OR, ("s", "a")),
            Node("g2", NodeType.AND, ("s", "b")),
            Node("root", NodeType.AND, ("g1", "g2")),
        ]
    )


class TestConstruction:
    def test_root_inferred(self):
        tree = simple_tree()
        assert tree.root == "ps"

    def test_explicit_root(self):
        tree = AttackTree(
            [Node("a", NodeType.BAS), Node("g", NodeType.OR, ("a",))], root="g"
        )
        assert tree.root == "g"

    def test_unknown_child_rejected(self):
        with pytest.raises(AttackTreeError, match="unknown child"):
            AttackTree([Node("g", NodeType.OR, ("missing",))])

    def test_duplicate_names_rejected(self):
        with pytest.raises(AttackTreeError, match="duplicate node name"):
            AttackTree([Node("a", NodeType.BAS), Node("a", NodeType.BAS),
                        Node("g", NodeType.OR, ("a",))])

    def test_cycle_rejected(self):
        with pytest.raises(AttackTreeError, match="cycle"):
            AttackTree(
                [
                    Node("a", NodeType.BAS),
                    Node("g1", NodeType.OR, ("g2", "a")),
                    Node("g2", NodeType.OR, ("g1", "a")),
                ],
                root="g1",
            )

    def test_unreachable_node_rejected(self):
        with pytest.raises(AttackTreeError, match="not reachable"):
            AttackTree(
                [
                    Node("a", NodeType.BAS),
                    Node("b", NodeType.BAS),
                    Node("g", NodeType.OR, ("a",)),
                    Node("h", NodeType.OR, ("b",)),
                ],
                root="g",
            )

    def test_ambiguous_root_rejected(self):
        with pytest.raises(AttackTreeError, match="ambiguous"):
            AttackTree(
                [
                    Node("a", NodeType.BAS),
                    Node("b", NodeType.BAS),
                    Node("g", NodeType.OR, ("a", "b")),
                    Node("h", NodeType.OR, ("a", "b")),
                ]
            )

    def test_empty_tree_rejected(self):
        with pytest.raises(AttackTreeError, match="at least one node"):
            AttackTree([])

    def test_single_bas_tree(self):
        tree = AttackTree([Node("a", NodeType.BAS)])
        assert tree.root == "a"
        assert tree.basic_attack_steps == frozenset({"a"})


class TestAccessors:
    def test_len_contains_iter(self):
        tree = simple_tree()
        assert len(tree) == 5
        assert "dr" in tree
        assert "nope" not in tree
        assert set(iter(tree)) == {"ca", "pb", "fd", "dr", "ps"}

    def test_children_and_parents(self):
        tree = simple_tree()
        assert tree.children("dr") == ("pb", "fd")
        assert tree.parents("pb") == ("dr",)
        assert tree.parents("ps") == ()

    def test_unknown_node_raises_keyerror(self):
        tree = simple_tree()
        with pytest.raises(KeyError):
            tree.node("nope")
        with pytest.raises(KeyError):
            tree.children("nope")
        with pytest.raises(KeyError):
            tree.parents("nope")

    def test_edges(self):
        tree = simple_tree()
        assert set(tree.edges()) == {
            ("dr", "pb"), ("dr", "fd"), ("ps", "ca"), ("ps", "dr"),
        }

    def test_bas_set_and_gates(self):
        tree = simple_tree()
        assert tree.basic_attack_steps == frozenset({"ca", "pb", "fd"})
        assert set(tree.gates) == {"dr", "ps"}

    def test_max_arity_and_depth(self):
        tree = simple_tree()
        assert tree.max_arity() == 2
        assert tree.depth() == 2


class TestTreelikeDetection:
    def test_tree_is_treelike(self):
        assert simple_tree().is_treelike

    def test_shared_bas_is_dag(self):
        dag = shared_dag()
        assert not dag.is_treelike
        assert dag.shared_nodes() == frozenset({"s"})

    def test_treelike_has_no_shared_nodes(self):
        assert simple_tree().shared_nodes() == frozenset()


class TestTopologyQueries:
    def test_topological_order_children_first(self):
        tree = simple_tree()
        order = tree.topological_order()
        assert order.index("pb") < order.index("dr")
        assert order.index("dr") < order.index("ps")
        assert order.index("ca") < order.index("ps")

    def test_reverse_topological_order(self):
        tree = simple_tree()
        assert tree.topological_order(reverse=True)[0] == "ps"

    def test_descendants_and_ancestors(self):
        tree = simple_tree()
        assert tree.descendants("dr") == frozenset({"pb", "fd"})
        assert tree.descendants("ps") == frozenset({"ca", "pb", "fd", "dr"})
        assert tree.ancestors("pb") == frozenset({"dr", "ps"})
        assert tree.ancestors("ps") == frozenset()

    def test_bas_descendants(self):
        tree = simple_tree()
        assert tree.bas_descendants("dr") == frozenset({"pb", "fd"})
        assert tree.bas_descendants("ca") == frozenset({"ca"})

    def test_subtree(self):
        tree = simple_tree()
        sub = tree.subtree("dr")
        assert sub.root == "dr"
        assert set(sub.nodes) == {"dr", "pb", "fd"}
        assert sub.is_treelike

    def test_subtree_of_dag_keeps_sharing_below(self):
        dag = shared_dag()
        sub = dag.subtree("g1")
        assert set(sub.nodes) == {"g1", "s", "a"}


class TestStructureFunction:
    def test_empty_attack_reaches_nothing(self):
        tree = simple_tree()
        reached = tree.structure_function([])
        assert not any(reached.values())

    def test_or_gate_any_child(self):
        tree = simple_tree()
        assert tree.structure_function(["ca"])["ps"] is True

    def test_and_gate_needs_all_children(self):
        tree = simple_tree()
        assert tree.structure_function(["pb"])["dr"] is False
        assert tree.structure_function(["pb", "fd"])["dr"] is True

    def test_full_attack_reaches_everything(self):
        tree = simple_tree()
        reached = tree.structure_function(["ca", "pb", "fd"])
        assert all(reached.values())

    def test_is_successful(self):
        tree = simple_tree()
        assert tree.is_successful(["ca"])
        assert not tree.is_successful(["pb"])

    def test_unknown_bas_rejected(self):
        tree = simple_tree()
        with pytest.raises(KeyError, match="non-BAS"):
            tree.structure_function(["dr"])

    def test_dag_structure_function(self):
        dag = shared_dag()
        reached = dag.structure_function(["s", "b"])
        assert reached["g1"] and reached["g2"] and reached["root"]
        reached = dag.structure_function(["a", "b"])
        assert reached["g1"] and not reached["g2"] and not reached["root"]


class TestDisplay:
    def test_repr_mentions_shape(self):
        assert "treelike" in repr(simple_tree())
        assert "DAG" in repr(shared_dag())

    def test_pretty_contains_every_node(self):
        rendered = simple_tree().pretty()
        for name in ["ca", "pb", "fd", "dr", "ps"]:
            assert name in rendered

    def test_structurally_equal(self):
        assert simple_tree().structurally_equal(simple_tree())
        assert not simple_tree().structurally_equal(shared_dag())
