"""Unit tests for cd-AT / cdp-AT decorations and their validation."""

import pytest

from repro.attacktree.attributes import (
    AttributeError_,
    CostDamageAT,
    CostDamageProbAT,
    validate_cost_map,
    validate_damage_map,
    validate_probability_map,
)
from repro.attacktree.builder import AttackTreeBuilder
from repro.attacktree.catalog import factory, factory_probabilistic


def bare_tree():
    builder = AttackTreeBuilder()
    builder.bas("a")
    builder.bas("b")
    builder.and_gate("g", ["a", "b"])
    return builder.build_tree(root="g")


class TestValidation:
    def test_cost_map_requires_every_bas(self):
        tree = bare_tree()
        with pytest.raises(AttributeError_, match="missing BASs"):
            validate_cost_map(tree, {"a": 1.0})

    def test_cost_map_rejects_internal_nodes(self):
        tree = bare_tree()
        with pytest.raises(AttributeError_, match="non-BAS"):
            validate_cost_map(tree, {"a": 1.0, "b": 1.0, "g": 2.0})

    def test_cost_map_rejects_negative(self):
        tree = bare_tree()
        with pytest.raises(AttributeError_, match="non-negative"):
            validate_cost_map(tree, {"a": -1.0, "b": 1.0})

    def test_cost_map_rejects_nan(self):
        tree = bare_tree()
        with pytest.raises(AttributeError_):
            validate_cost_map(tree, {"a": float("nan"), "b": 1.0})

    def test_damage_map_defaults_missing_to_zero(self):
        tree = bare_tree()
        damage = validate_damage_map(tree, {"g": 5.0})
        assert damage["a"] == 0.0
        assert damage["g"] == 5.0

    def test_damage_map_rejects_unknown_nodes(self):
        tree = bare_tree()
        with pytest.raises(AttributeError_, match="unknown nodes"):
            validate_damage_map(tree, {"nope": 1.0})

    def test_damage_map_rejects_negative(self):
        tree = bare_tree()
        with pytest.raises(AttributeError_):
            validate_damage_map(tree, {"g": -0.5})

    def test_probability_map_bounds(self):
        tree = bare_tree()
        with pytest.raises(AttributeError_, match=r"\[0, 1\]"):
            validate_probability_map(tree, {"a": 1.5, "b": 0.5})

    def test_probability_map_requires_every_bas(self):
        tree = bare_tree()
        with pytest.raises(AttributeError_, match="missing BASs"):
            validate_probability_map(tree, {"a": 0.5})


class TestCostDamageAT:
    def test_factory_values(self):
        model = factory()
        assert model.cost_of("ca") == 1
        assert model.cost_of("pb") == 3
        assert model.damage_of("ps") == 200
        assert model.damage_of("ca") == 0  # defaulted
        assert model.root == "ps"
        assert model.basic_attack_steps == frozenset({"ca", "pb", "fd"})

    def test_unknown_lookups_raise(self):
        model = factory()
        with pytest.raises(KeyError):
            model.cost_of("ps")  # not a BAS
        with pytest.raises(KeyError):
            model.damage_of("nope")

    def test_upper_bounds(self):
        model = factory()
        assert model.total_cost_upper_bound() == 6
        assert model.total_damage_upper_bound() == 310

    def test_with_probabilities(self):
        model = factory().with_probabilities({"ca": 0.2, "pb": 0.4, "fd": 0.9})
        assert isinstance(model, CostDamageProbAT)
        assert model.probability_of("fd") == 0.9

    def test_restricted_to_subtree(self):
        model = factory()
        sub = model.restricted_to("dr")
        assert sub.root == "dr"
        assert sub.basic_attack_steps == frozenset({"pb", "fd"})
        assert sub.damage_of("dr") == 100
        assert sub.cost_of("fd") == 2

    def test_describe_lists_every_node(self):
        text = factory().describe()
        for name in ["ca", "pb", "fd", "dr", "ps"]:
            assert name in text

    def test_immutability(self):
        model = factory()
        with pytest.raises(AttributeError):
            model.cost = {}  # type: ignore[misc]


class TestCostDamageProbAT:
    def test_probability_defaults_to_one(self):
        builder = AttackTreeBuilder()
        builder.bas("a", cost=1)
        builder.bas("b", cost=1)
        builder.or_gate("g", ["a", "b"], damage=1)
        model = builder.build_cdp(root="g")
        assert model.probability_of("a") == 1.0
        assert model.is_effectively_deterministic()

    def test_example8_probabilities(self):
        model = factory_probabilistic()
        assert model.probability_of("ca") == 0.2
        assert model.probability_of("pb") == 0.4
        assert model.probability_of("fd") == 0.9
        assert not model.is_effectively_deterministic()

    def test_deterministic_projection(self):
        model = factory_probabilistic()
        projected = model.deterministic()
        assert isinstance(projected, CostDamageAT)
        assert projected.cost == model.cost
        assert projected.damage == model.damage

    def test_restricted_to_keeps_probabilities(self):
        model = factory_probabilistic()
        sub = model.restricted_to("dr")
        assert sub.probability_of("pb") == 0.4
        assert "ca" not in sub.basic_attack_steps

    def test_describe_mentions_probabilities(self):
        assert "p=0.9" in factory_probabilistic().describe()

    def test_unknown_probability_lookup(self):
        with pytest.raises(KeyError):
            factory_probabilistic().probability_of("dr")
