"""Unit tests for the fluent attack-tree builder."""

import pytest

from repro.attacktree.builder import AttackTreeBuilder
from repro.attacktree.node import NodeType
from repro.attacktree.tree import AttackTreeError


class TestBuilder:
    def test_builds_factory_shape(self):
        builder = AttackTreeBuilder()
        builder.bas("ca", cost=1)
        builder.bas("pb", cost=3)
        builder.bas("fd", cost=2, damage=10)
        builder.and_gate("dr", ["pb", "fd"], damage=100)
        builder.or_gate("ps", ["ca", "dr"], damage=200)
        model = builder.build_cd(root="ps")
        assert model.tree.root == "ps"
        assert model.tree.node_type("dr") is NodeType.AND
        assert model.damage_of("dr") == 100
        assert model.cost_of("fd") == 2

    def test_declaration_order_is_free(self):
        builder = AttackTreeBuilder()
        builder.or_gate("root", ["x", "y"])
        builder.bas("x")
        builder.bas("y")
        tree = builder.build_tree(root="root")
        assert set(tree.basic_attack_steps) == {"x", "y"}

    def test_duplicate_declaration_rejected(self):
        builder = AttackTreeBuilder()
        builder.bas("a")
        with pytest.raises(AttackTreeError, match="declared twice"):
            builder.bas("a")

    def test_generic_gate_dispatch(self):
        builder = AttackTreeBuilder()
        builder.bas("a")
        builder.bas("b")
        builder.gate("g", NodeType.AND, ["a", "b"])
        assert builder.build_tree(root="g").node_type("g") is NodeType.AND

    def test_generic_gate_rejects_bas_type(self):
        builder = AttackTreeBuilder()
        with pytest.raises(ValueError, match="OR or AND"):
            builder.gate("g", NodeType.BAS, ["a"])

    def test_set_damage_and_cost_overwrite(self):
        builder = AttackTreeBuilder()
        builder.bas("a", cost=1)
        builder.or_gate("g", ["a"], damage=5)
        builder.set_damage("g", 7)
        builder.set_cost("a", 4)
        model = builder.build_cd(root="g")
        assert model.damage_of("g") == 7
        assert model.cost_of("a") == 4

    def test_set_cost_rejects_gate(self):
        builder = AttackTreeBuilder()
        builder.bas("a")
        builder.or_gate("g", ["a"])
        with pytest.raises(ValueError, match="not a BAS"):
            builder.set_cost("g", 1)

    def test_set_probability_rejects_gate(self):
        builder = AttackTreeBuilder()
        builder.bas("a")
        builder.or_gate("g", ["a"])
        with pytest.raises(ValueError, match="not a BAS"):
            builder.set_probability("g", 0.5)

    def test_set_on_undeclared_node(self):
        builder = AttackTreeBuilder()
        with pytest.raises(KeyError):
            builder.set_damage("nope", 1)
        with pytest.raises(KeyError):
            builder.set_cost("nope", 1)
        with pytest.raises(KeyError):
            builder.set_probability("nope", 0.5)

    def test_build_cdp_defaults_probability(self):
        builder = AttackTreeBuilder()
        builder.bas("a", cost=1, probability=0.3)
        builder.bas("b", cost=1)
        builder.or_gate("g", ["a", "b"])
        model = builder.build_cdp(root="g")
        assert model.probability_of("a") == 0.3
        assert model.probability_of("b") == 1.0

    def test_declared_nodes_lists_in_order(self):
        builder = AttackTreeBuilder()
        builder.bas("a")
        builder.bas("b")
        builder.or_gate("g", ["a", "b"])
        assert builder.declared_nodes == ["a", "b", "g"]

    def test_chaining_returns_builder(self):
        builder = AttackTreeBuilder()
        result = builder.bas("a").bas("b").or_gate("g", ["a", "b"])
        assert result is builder
