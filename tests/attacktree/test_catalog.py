"""Unit tests for the literature catalogue.

These check the structural facts the paper states about its case-study ATs
(size, shape, decoration ranges); the reproduction of the published Pareto
fronts themselves is covered by ``tests/paper`` and
``tests/experiments/test_casestudies.py``.
"""

import pytest

from repro.attacktree import catalog
from repro.attacktree.tree import AttackTree


class TestFactory:
    def test_shape(self):
        model = catalog.factory()
        assert len(model.tree) == 5
        assert model.tree.is_treelike
        assert model.tree.root == "ps"

    def test_example1_costs_and_damages(self):
        model = catalog.factory()
        assert model.cost == {"ca": 1, "pb": 3, "fd": 2}
        assert model.damage_of("ps") == 200
        assert model.damage_of("dr") == 100
        assert model.damage_of("fd") == 10

    def test_probabilistic_variant(self):
        model = catalog.factory_probabilistic()
        assert model.probability == {"ca": 0.2, "pb": 0.4, "fd": 0.9}


class TestPandaIot:
    def test_size_and_shape(self):
        model = catalog.panda_iot()
        assert len(model.tree.basic_attack_steps) == 22
        assert model.tree.is_treelike
        # The paper's case study has |N| = 38 nodes.
        assert len(model.tree) == 38

    def test_costs_in_paper_range(self):
        model = catalog.panda_iot()
        assert all(1 <= model.cost[b] <= 5 for b in model.basic_attack_steps)

    def test_probabilities_in_paper_range(self):
        model = catalog.panda_iot()
        assert all(0.1 <= model.probability[b] <= 0.9 for b in model.basic_attack_steps)

    def test_total_damage_is_100(self):
        model = catalog.panda_iot()
        assert sum(model.damage.values()) == pytest.approx(100.0)

    def test_top_event_carries_minor_damage(self):
        """The paper stresses that the top event does minor damage compared
        to internal nodes such as the base station."""
        model = catalog.panda_iot()
        top_damage = model.damage_of(model.root)
        assert top_damage == 5
        assert model.damage_of("base_station_compromised") > top_damage

    def test_internal_leakage_decoration(self):
        model = catalog.panda_iot()
        assert model.cost_of("b18") == 3
        assert model.probability_of("b18") == 0.9


class TestDataServer:
    def test_size_and_shape(self):
        model = catalog.data_server()
        assert len(model.tree.basic_attack_steps) == 12
        assert not model.tree.is_treelike

    def test_shared_node_is_ftp_connection(self):
        model = catalog.data_server()
        assert "b6" in model.tree.shared_nodes()

    def test_damage_values_from_paper(self):
        model = catalog.data_server()
        assert model.damage_of("root_access_data_server") == 36.0
        assert model.damage_of("user_access_ftp") == 13.5
        assert model.damage_of("user_access_smtp") == 10.8

    def test_total_damage(self):
        model = catalog.data_server()
        assert sum(model.damage.values()) == pytest.approx(82.8)


class TestAuxiliaryModels:
    def test_example10_or_pair(self):
        model = catalog.example10_or_pair()
        assert model.damage_of("w") == 1
        assert model.probability_of("v1") == 0.5

    def test_knapsack_like_chain_sizes(self):
        model = catalog.knapsack_like_chain(4)
        assert len(model.tree.basic_attack_steps) == 4
        assert model.cost_of("v3") == 8
        assert model.damage_of("v3") == 8

    def test_knapsack_like_chain_rejects_zero(self):
        with pytest.raises(ValueError):
            catalog.knapsack_like_chain(0)


class TestBuildingBlocks:
    def test_all_blocks_are_valid_trees(self):
        blocks = catalog.building_blocks()
        assert len(blocks) == 9
        for block in blocks:
            assert isinstance(block, AttackTree)
            assert len(block) >= 5

    def test_treelike_only_filter(self):
        blocks = catalog.building_blocks(treelike_only=True)
        assert len(blocks) == 5
        assert all(block.is_treelike for block in blocks)

    def test_non_treelike_blocks_are_dags(self):
        dag_blocks = [b for b in catalog.building_blocks() if not b.is_treelike]
        assert dag_blocks, "the catalogue must contain DAG building blocks"

    def test_blocks_are_deterministic(self):
        first = catalog.building_blocks()
        second = catalog.building_blocks()
        for a, b in zip(first, second):
            assert a.structurally_equal(b)
