"""Unit tests for JSON / DOT serialization."""

import json

import pytest

from repro.attacktree.attributes import CostDamageAT, CostDamageProbAT
from repro.attacktree.catalog import data_server, factory, factory_probabilistic, panda_iot
from repro.attacktree.serialization import (
    from_dict,
    from_json,
    load_json,
    save_json,
    to_dict,
    to_dot,
    to_json,
)
from repro.attacktree.tree import AttackTree, AttackTreeError
from repro.core.bottom_up import pareto_front_treelike


class TestJsonRoundTrip:
    def test_cd_at_round_trip(self):
        model = factory()
        restored = from_json(to_json(model))
        assert isinstance(restored, CostDamageAT)
        assert restored.tree.structurally_equal(model.tree)
        assert restored.cost == model.cost
        assert restored.damage == model.damage

    def test_cdp_at_round_trip(self):
        model = factory_probabilistic()
        restored = from_json(to_json(model))
        assert isinstance(restored, CostDamageProbAT)
        assert restored.probability == model.probability

    def test_bare_tree_round_trip(self):
        tree = factory().tree
        restored = from_json(to_json(tree))
        assert isinstance(restored, AttackTree)
        assert restored.structurally_equal(tree)

    def test_dag_round_trip(self):
        model = data_server()
        restored = from_json(to_json(model))
        assert not restored.tree.is_treelike
        assert restored.damage == model.damage

    def test_round_trip_preserves_analysis_result(self):
        model = panda_iot().deterministic()
        restored = from_json(to_json(model))
        assert pareto_front_treelike(restored).values() == pareto_front_treelike(model).values()

    def test_file_round_trip(self, tmp_path):
        path = tmp_path / "factory.json"
        save_json(factory(), str(path))
        restored = load_json(str(path))
        assert isinstance(restored, CostDamageAT)
        assert restored.cost_of("pb") == 3

    def test_labels_preserved(self):
        model = factory()
        restored = from_json(to_json(model))
        assert restored.tree.node("fd").label == "force door"


class TestJsonFormat:
    def test_zero_damage_omitted(self):
        data = to_dict(factory())
        ca_entry = next(n for n in data["nodes"] if n["name"] == "ca")
        assert "damage" not in ca_entry
        assert ca_entry["cost"] == 1.0

    def test_json_is_valid(self):
        parsed = json.loads(to_json(factory()))
        assert parsed["root"] == "ps"

    def test_missing_nodes_key_rejected(self):
        with pytest.raises(AttackTreeError, match="'nodes'"):
            from_dict({"root": "x"})

    def test_malformed_node_rejected(self):
        with pytest.raises(AttackTreeError, match="malformed"):
            from_dict({"root": "x", "nodes": [{"name": "x", "type": "NOPE"}]})

    def test_unsupported_object_rejected(self):
        with pytest.raises(TypeError):
            to_dict(42)  # type: ignore[arg-type]


class TestDot:
    def test_dot_contains_every_node_and_edge(self):
        model = factory()
        dot = to_dot(model)
        assert dot.startswith("digraph")
        for name in model.tree.nodes:
            assert f'"{name}"' in dot
        assert '"dr" -> "pb"' in dot

    def test_dot_mentions_costs_and_damages(self):
        dot = to_dot(factory())
        assert "c=3" in dot
        assert "d=200" in dot

    def test_dot_for_probabilistic_model(self):
        dot = to_dot(factory_probabilistic())
        assert "p=0.4" in dot
