"""Tests for the classic single-metric AT analyses."""


import pytest

from repro.attacktree.catalog import data_server, factory, factory_probabilistic, panda_iot
from repro.attacktree.metrics import (
    count_successful_attacks,
    is_minimal_attack,
    max_probability_of_success,
    min_cost_of_successful_attack,
    minimal_attacks,
    success_probability_all_attempted,
)


class TestMinimalAttacks:
    def test_factory_minimal_attacks(self):
        attacks = minimal_attacks(factory().tree)
        assert attacks == [frozenset({"ca"}), frozenset({"pb", "fd"})]

    def test_panda_minimal_attacks_include_known_ones(self):
        attacks = set(minimal_attacks(panda_iot().tree))
        assert frozenset({"b18"}) in attacks
        assert frozenset({"b17"}) in attacks
        assert frozenset({"b19", "b20"}) in attacks
        assert frozenset({"b21", "b22"}) in attacks

    def test_data_server_minimal_attacks_are_minimal_and_successful(self):
        tree = data_server().tree
        attacks = minimal_attacks(tree)
        assert attacks
        for attack in attacks:
            assert is_minimal_attack(tree, attack)

    def test_section_xb_claim_a2_is_minimal_like(self):
        """Section X.B: of the Pareto-optimal attacks only A2 would have been
        found by a minimal attack analysis — i.e. A2 = {b6,b8,b11,b12} is a
        minimal successful attack and the other optimal attacks are not."""
        tree = data_server().tree
        attacks = set(minimal_attacks(tree))
        assert frozenset({"b6", "b8", "b11", "b12"}) in attacks
        # A3 adds the SMTP chain: not minimal.
        assert frozenset({"b6", "b8", "b11", "b12", "b1", "b2", "b3"}) not in attacks

    def test_max_count_guard(self):
        with pytest.raises(ValueError, match="more than"):
            minimal_attacks(panda_iot().tree, max_count=2)

    def test_is_minimal_attack_rejects_unsuccessful_and_redundant(self):
        tree = factory().tree
        assert not is_minimal_attack(tree, frozenset({"pb"}))           # unsuccessful
        assert not is_minimal_attack(tree, frozenset({"ca", "fd"}))      # redundant
        assert is_minimal_attack(tree, frozenset({"ca"}))


class TestMinCostOfSuccess:
    def test_factory(self):
        cost, attack = min_cost_of_successful_attack(factory())
        assert cost == 1
        assert attack == frozenset({"ca"})

    def test_data_server(self):
        cost, attack = min_cost_of_successful_attack(data_server())
        # Cheapest path to the data server: FTP buffer overflow + LICQ + suid.
        assert cost == 568
        assert attack == frozenset({"b6", "b8", "b11", "b12"})

    def test_panda(self):
        cost, attack = min_cost_of_successful_attack(panda_iot())
        assert cost == 3
        assert attack == frozenset({"b18"})

    def test_agrees_with_minimal_attack_enumeration(self):
        model = panda_iot().deterministic()
        cost, _ = min_cost_of_successful_attack(model)
        cheapest_by_enumeration = min(
            sum(model.cost[b] for b in attack)
            for attack in minimal_attacks(model.tree)
        )
        assert cost == cheapest_by_enumeration


class TestSuccessProbability:
    def test_factory_all_attempted(self):
        model = factory_probabilistic()
        # P(ps) = p(ca) ⋆ (p(pb)·p(fd)) = 0.2 + 0.36 − 0.072.
        assert success_probability_all_attempted(model) == pytest.approx(0.488)

    def test_unit_probabilities_give_certainty(self):
        from repro.attacktree.transform import with_unit_probabilities

        assert success_probability_all_attempted(
            with_unit_probabilities(factory())
        ) == pytest.approx(1.0)

    def test_max_probability_unbounded_budget(self):
        model = factory_probabilistic()
        probability, attack = max_probability_of_success(model)
        assert probability == pytest.approx(0.488)
        assert attack == frozenset({"ca", "pb", "fd"})

    def test_max_probability_with_budget(self):
        model = factory_probabilistic()
        probability, attack = max_probability_of_success(model, budget=1)
        assert probability == pytest.approx(0.2)
        assert attack == frozenset({"ca"})
        probability, attack = max_probability_of_success(model, budget=5)
        # Budget 5 allows {pb, fd} (0.36) or {ca, fd} (0.2): best is 0.36.
        assert probability == pytest.approx(0.36)

    def test_max_probability_on_small_dag(self):
        from repro.attacktree.builder import AttackTreeBuilder

        builder = AttackTreeBuilder()
        builder.bas("s", cost=1, probability=0.5)
        builder.bas("a", cost=1, probability=0.8)
        builder.bas("b", cost=1, probability=0.5)
        builder.and_gate("g1", ["s", "a"])
        builder.and_gate("g2", ["s", "b"])
        builder.or_gate("root", ["g1", "g2"])
        model = builder.build_cdp(root="root")
        probability, _ = max_probability_of_success(model, budget=3)
        # Correlated via the shared s: P = 0.5·(1 − 0.2·0.5) = 0.45.
        assert probability == pytest.approx(0.45)


class TestCounting:
    def test_factory_successful_attack_count(self):
        # Successful: any superset of {ca} (4) plus {pb,fd} and {pb,fd,ca}
        # (already counted) -> {ca},{ca,pb},{ca,fd},{ca,pb,fd},{pb,fd} = 5.
        assert count_successful_attacks(factory().tree) == 5

    def test_size_guard(self):
        with pytest.raises(ValueError, match="2\\^22"):
            count_successful_attacks(panda_iot().tree, max_bas=20)
