"""Tests for the probabilistic semantics (Definitions 5–6, Equations (8)–(10))."""


import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.attacktree.catalog import data_server, factory_probabilistic, panda_iot
from repro.attacktree.transform import with_unit_probabilities
from repro.core.semantics import all_attacks, attack_damage
from repro.probability.actualization import (
    actualization_distribution,
    expected_damage,
    expected_damage_via_enumeration,
    reach_probabilities,
    reach_probabilities_exact,
    reach_probabilities_treelike,
)

from ..conftest import make_random_tree


class TestActualizationDistribution:
    def test_example8_distribution(self):
        """Example 8: the distribution of Y_{(0,1,1)} for the factory AT."""
        model = factory_probabilistic()
        distribution = dict(actualization_distribution(model, {"pb", "fd"}))
        assert distribution[frozenset()] == pytest.approx(0.06)
        assert distribution[frozenset({"fd"})] == pytest.approx(0.54)
        assert distribution[frozenset({"pb"})] == pytest.approx(0.04)
        assert distribution[frozenset({"pb", "fd"})] == pytest.approx(0.36)

    def test_distribution_sums_to_one(self):
        model = factory_probabilistic()
        total = sum(p for _, p in actualization_distribution(model, {"ca", "pb", "fd"}))
        assert total == pytest.approx(1.0)

    def test_outcomes_are_subsets_of_attempt(self):
        model = factory_probabilistic()
        for outcome, _ in actualization_distribution(model, {"ca", "fd"}):
            assert outcome <= frozenset({"ca", "fd"})

    def test_empty_attack_has_single_outcome(self):
        model = factory_probabilistic()
        distribution = list(actualization_distribution(model, set()))
        assert distribution == [(frozenset(), 1.0)]


class TestReachProbabilities:
    def test_treelike_matches_exact(self):
        model = factory_probabilistic()
        for attack in all_attacks(model):
            fast = reach_probabilities_treelike(model, attack)
            exact = reach_probabilities_exact(model, attack)
            for node in model.tree.node_names:
                assert fast[node] == pytest.approx(exact[node])

    def test_treelike_rejected_on_dag(self):
        model = with_unit_probabilities(data_server())
        with pytest.raises(ValueError, match="treelike"):
            reach_probabilities_treelike(model, set())

    def test_dispatch_uses_exact_for_dag(self):
        model = with_unit_probabilities(data_server())
        probabilities = reach_probabilities(model, {"b6", "b8"})
        assert probabilities["ftp_buffer_overflow"] == pytest.approx(1.0)
        assert probabilities["root_access_data_server"] == pytest.approx(0.0)

    def test_and_gate_multiplies(self):
        model = factory_probabilistic()
        probabilities = reach_probabilities(model, {"pb", "fd"})
        assert probabilities["dr"] == pytest.approx(0.4 * 0.9)

    def test_or_gate_star(self):
        model = factory_probabilistic()
        probabilities = reach_probabilities(model, {"ca", "pb", "fd"})
        expected = 0.2 + 0.36 - 0.2 * 0.36
        assert probabilities["ps"] == pytest.approx(expected)


class TestExpectedDamage:
    def test_example9_corrected_value(self):
        """Example 9 computes d̂_E(0,1,1); with the Example 1 damage table the
        value is 0.54·10 + 0.36·310 = 117 (the paper's printed 112 swaps two
        outcome damages — see EXPERIMENTS.md)."""
        model = factory_probabilistic()
        assert expected_damage(model, {"pb", "fd"}) == pytest.approx(117.0)
        assert expected_damage_via_enumeration(model, {"pb", "fd"}) == pytest.approx(117.0)

    def test_expected_damage_matches_enumeration_oracle(self):
        model = factory_probabilistic()
        for attack in all_attacks(model):
            assert expected_damage(model, attack) == pytest.approx(
                expected_damage_via_enumeration(model, attack)
            )

    def test_unit_probabilities_reduce_to_deterministic_damage(self):
        model = with_unit_probabilities(factory_probabilistic().deterministic())
        for attack in all_attacks(model):
            assert expected_damage(model, attack) == pytest.approx(
                attack_damage(model.deterministic(), attack)
            )

    def test_expected_damage_monotone_in_attack(self):
        model = panda_iot()
        small = expected_damage(model, {"b18"})
        large = expected_damage(model, {"b18", "b19", "b20"})
        assert large >= small

    def test_zero_probability_bas_contributes_nothing(self):
        model = factory_probabilistic().deterministic().with_probabilities(
            {"ca": 0.0, "pb": 0.4, "fd": 0.9}
        )
        assert expected_damage(model, {"ca"}) == pytest.approx(0.0)

    @settings(max_examples=25, deadline=None)
    @given(seed=st.integers(min_value=0, max_value=1000), treelike=st.booleans())
    def test_bottom_up_and_enumeration_agree_on_random_models(self, seed, treelike):
        model = make_random_tree(seed, max_bas=4, treelike=treelike)
        for attack in all_attacks(model):
            assert expected_damage(model, attack) == pytest.approx(
                expected_damage_via_enumeration(model, attack)
            )

    def test_expected_damage_bounded_by_deterministic(self):
        model = panda_iot()
        deterministic = model.deterministic()
        for attack in [frozenset({"b18"}), frozenset({"b19", "b20"}),
                       frozenset({"b18", "b21", "b22"})]:
            assert expected_damage(model, attack) <= attack_damage(deterministic, attack) + 1e-9
