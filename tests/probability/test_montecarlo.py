"""Tests for the Monte-Carlo expected-damage estimator."""

import random

import pytest

from repro.attacktree.catalog import data_server, factory_probabilistic, panda_iot
from repro.attacktree.transform import with_unit_probabilities
from repro.probability.actualization import expected_damage
from repro.probability.montecarlo import (
    MonteCarloEstimate,
    estimate_expected_damage,
    sample_actualization,
)


class TestSampling:
    def test_sample_is_subset_of_attempt(self):
        model = factory_probabilistic()
        rng = random.Random(1)
        for _ in range(50):
            sample = sample_actualization(model, {"ca", "pb"}, rng)
            assert sample <= frozenset({"ca", "pb"})

    def test_unit_probability_always_succeeds(self):
        model = with_unit_probabilities(factory_probabilistic().deterministic())
        sample = sample_actualization(model, {"ca", "pb", "fd"}, random.Random(0))
        assert sample == frozenset({"ca", "pb", "fd"})

    def test_zero_probability_never_succeeds(self):
        model = factory_probabilistic().deterministic().with_probabilities(
            {"ca": 0.0, "pb": 0.0, "fd": 0.0}
        )
        sample = sample_actualization(model, {"ca", "pb", "fd"}, random.Random(0))
        assert sample == frozenset()


class TestEstimator:
    def test_estimate_close_to_exact_on_factory(self):
        model = factory_probabilistic()
        estimate = estimate_expected_damage(model, {"pb", "fd"}, samples=20_000)
        assert estimate.within(expected_damage(model, {"pb", "fd"}), z=4.0)

    def test_estimate_close_to_exact_on_panda(self):
        model = panda_iot()
        attack = frozenset({"b18", "b19", "b20"})
        estimate = estimate_expected_damage(model, attack, samples=20_000)
        assert estimate.within(expected_damage(model, attack), z=4.0)

    def test_estimate_on_dag_close_to_exact_enumeration(self):
        """On a DAG the estimator validates the exact (enumerative) value."""
        model = with_unit_probabilities(data_server()).deterministic().with_probabilities(
            {b: 0.8 for b in data_server().tree.basic_attack_steps}
        )
        attack = frozenset({"b6", "b8", "b11", "b12"})
        estimate = estimate_expected_damage(model, attack, samples=20_000)
        assert estimate.within(expected_damage(model, attack), z=4.0)

    def test_deterministic_attack_has_zero_error(self):
        model = with_unit_probabilities(factory_probabilistic().deterministic())
        estimate = estimate_expected_damage(model, {"ca"}, samples=100)
        assert estimate.standard_error == 0.0
        assert estimate.mean == pytest.approx(200.0)

    def test_reproducible_with_default_seed(self):
        model = factory_probabilistic()
        first = estimate_expected_damage(model, {"pb", "fd"}, samples=500)
        second = estimate_expected_damage(model, {"pb", "fd"}, samples=500)
        assert first.mean == second.mean

    def test_invalid_sample_count(self):
        with pytest.raises(ValueError):
            estimate_expected_damage(factory_probabilistic(), {"ca"}, samples=0)

    def test_confidence_interval_contains_mean(self):
        estimate = MonteCarloEstimate(mean=10.0, standard_error=1.0, samples=100)
        low, high = estimate.confidence_interval()
        assert low < 10.0 < high
        assert estimate.within(11.0, z=2.0)
        assert not estimate.within(20.0, z=2.0)
