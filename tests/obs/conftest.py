"""Observability tests run against a fresh process-global registry.

The metrics registry and the span-exporter list are process-global by
design (instrumented code must not thread a handle through every layer),
which makes them shared mutable state between tests — so every test in
this package gets both reset before and after it runs.
"""

import pytest

from repro.obs.metrics import reset_registry
from repro.obs.trace import clear_exporters


@pytest.fixture(autouse=True)
def fresh_observability():
    reset_registry()
    clear_exporters()
    yield
    reset_registry()
    clear_exporters()
