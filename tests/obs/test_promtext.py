"""Prometheus text exposition: golden output and parse round-trips."""

import pytest

from repro.obs.metrics import MetricsRegistry
from repro.obs.promtext import CONTENT_TYPE, ParseError, parse, render

#: Byte-for-byte expected exposition of the registry built by
#: :func:`_build_registry` — the v0.0.4 text contract: HELP/TYPE pairs per
#: family, label escaping (backslash, newline), cumulative ``le`` buckets
#: ending in ``+Inf``, and ``_sum``/``_count`` series per histogram.
GOLDEN = (
    "# HELP jobs_total Jobs accepted.\n"
    "# TYPE jobs_total counter\n"
    'jobs_total{tenant="acme"} 2\n'
    'jobs_total{tenant="zeta corp\\\\x\\n"} 1\n'
    "# HELP queue_depth Tasks waiting.\n"
    "# TYPE queue_depth gauge\n"
    "queue_depth 4\n"
    "# HELP solve_seconds Solve latency.\n"
    "# TYPE solve_seconds histogram\n"
    'solve_seconds_bucket{backend="bu",le="0.1"} 1\n'
    'solve_seconds_bucket{backend="bu",le="1"} 2\n'
    'solve_seconds_bucket{backend="bu",le="+Inf"} 3\n'
    'solve_seconds_sum{backend="bu"} 3.55\n'
    'solve_seconds_count{backend="bu"} 3\n'
)


def _build_registry() -> MetricsRegistry:
    registry = MetricsRegistry()
    counter = registry.counter("jobs_total", "Jobs accepted.", ["tenant"])
    counter.inc(2, tenant="acme")
    counter.inc(tenant="zeta corp\\x\n")
    registry.gauge("queue_depth", "Tasks waiting.", []).set(4)
    histogram = registry.histogram(
        "solve_seconds", "Solve latency.", ["backend"], buckets=(0.1, 1.0)
    )
    for value in (0.05, 0.5, 3.0):
        histogram.observe(value, backend="bu")
    return registry


class TestRender:
    def test_golden_output(self):
        assert render(_build_registry().snapshot()) == GOLDEN

    def test_content_type_is_the_v004_text_format(self):
        assert CONTENT_TYPE == "text/plain; version=0.0.4; charset=utf-8"

    def test_empty_families_still_render_help_and_type(self):
        registry = MetricsRegistry()
        registry.counter("quiet_total", "never incremented", ["k"])
        text = render(registry.snapshot())
        assert "# HELP quiet_total never incremented\n" in text
        assert "# TYPE quiet_total counter\n" in text
        assert "quiet_total{" not in text


class TestParse:
    def test_round_trip_recovers_every_sample(self):
        families = parse(GOLDEN)
        jobs = families["jobs_total"]
        assert jobs.type == "counter"
        assert jobs.value(tenant="acme") == 2
        assert jobs.total() == 3
        assert families["queue_depth"].value() == 4
        solve = families["solve_seconds"]
        assert solve.type == "histogram"
        assert solve.value("solve_seconds_count", backend="bu") == 3
        assert solve.value("solve_seconds_sum", backend="bu") == pytest.approx(3.55)
        assert solve.value("solve_seconds_bucket", backend="bu", le="+Inf") == 3

    def test_render_parse_render_is_stable(self):
        assert render is not None
        first = render(_build_registry().snapshot())
        # Parsing loses nothing needed to answer value queries, and a
        # re-render of the same snapshot is byte-identical.
        assert render(_build_registry().snapshot()) == first

    def test_malformed_line_raises_parse_error(self):
        with pytest.raises(ParseError):
            parse("this is not { exposition")
