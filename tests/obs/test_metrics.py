"""Metrics registry semantics: types, labels, thread-safety, merging."""

import threading

import pytest

from repro.obs.metrics import (
    MetricsRegistry,
    get_registry,
    merge_snapshots,
    reset_registry,
)


class TestRegistryBasics:
    def test_counter_accumulates_per_label_set(self):
        registry = MetricsRegistry()
        counter = registry.counter("events_total", "events", ["kind"])
        counter.inc(kind="a")
        counter.inc(2, kind="a")
        counter.inc(kind="b")
        assert counter.value(kind="a") == 3
        assert counter.value(kind="b") == 1
        assert counter.value(kind="absent") == 0

    def test_counter_rejects_negative_increment(self):
        registry = MetricsRegistry()
        counter = registry.counter("events_total", "events", [])
        with pytest.raises(ValueError):
            counter.inc(-1)

    def test_gauge_sets_and_moves(self):
        registry = MetricsRegistry()
        gauge = registry.gauge("depth", "depth", ["state"])
        gauge.set(5, state="pending")
        gauge.dec(2, state="pending")
        gauge.inc(1, state="pending")
        assert gauge.value(state="pending") == 4

    def test_histogram_buckets_and_sum(self):
        registry = MetricsRegistry()
        histogram = registry.histogram(
            "latency_seconds", "latency", [], buckets=(0.1, 1.0)
        )
        for value in (0.05, 0.5, 5.0):
            histogram.observe(value)
        assert histogram.count() == 3
        samples = registry.snapshot()["latency_seconds"]["samples"]
        assert samples[0]["sum"] == pytest.approx(5.55)
        # Per-bucket (non-cumulative) counts: one observation each in
        # (<=0.1], (0.1, 1.0], and the overflow bucket.
        assert samples[0]["counts"] == [1, 1, 1]

    def test_get_or_create_returns_same_metric(self):
        registry = MetricsRegistry()
        first = registry.counter("x_total", "x", ["k"])
        second = registry.counter("x_total", "x", ["k"])
        assert first is second

    def test_type_mismatch_is_an_error(self):
        registry = MetricsRegistry()
        registry.counter("x_total", "x", [])
        with pytest.raises(ValueError):
            registry.gauge("x_total", "x", [])

    def test_invalid_names_and_labels_are_rejected(self):
        registry = MetricsRegistry()
        with pytest.raises(ValueError):
            registry.counter("bad-name", "x", [])
        with pytest.raises(ValueError):
            registry.counter("ok_total", "x", ["bad-label"])
        counter = registry.counter("ok_total", "x", ["k"])
        with pytest.raises(ValueError):
            counter.inc(unknown="v")

    def test_reset_registry_replaces_the_global(self):
        before = get_registry()
        before.counter("stale_total", "stale", []).inc()
        after = reset_registry()
        assert get_registry() is after
        assert after is not before
        assert "stale_total" not in after.snapshot()


class TestThreadSafety:
    def test_concurrent_counter_and_histogram_updates_are_lossless(self):
        registry = MetricsRegistry()
        counter = registry.counter("hits_total", "hits", ["worker"])
        histogram = registry.histogram(
            "work_seconds", "work", [], buckets=(0.5,)
        )
        threads_n, increments = 8, 2000
        barrier = threading.Barrier(threads_n)

        def hammer(worker_index):
            barrier.wait()
            for _ in range(increments):
                counter.inc(worker=f"w{worker_index % 2}")
                histogram.observe(0.25)

        threads = [
            threading.Thread(target=hammer, args=(i,))
            for i in range(threads_n)
        ]
        for thread in threads:
            thread.start()
        for thread in threads:
            thread.join()
        total = counter.value(worker="w0") + counter.value(worker="w1")
        assert total == threads_n * increments
        assert histogram.count() == threads_n * increments


class TestMergeSnapshots:
    def _snap(self, build):
        registry = MetricsRegistry()
        build(registry)
        return registry.snapshot()

    def test_counters_add_and_gauges_take_last_writer(self):
        first = self._snap(lambda r: (
            r.counter("c_total", "c", ["k"]).inc(2, k="a"),
            r.gauge("g", "g", []).set(1),
        ))
        second = self._snap(lambda r: (
            r.counter("c_total", "c", ["k"]).inc(3, k="a"),
            r.gauge("g", "g", []).set(7),
        ))
        merged = merge_snapshots(first, second)
        (counter_sample,) = merged["c_total"]["samples"]
        assert counter_sample["value"] == 5
        (gauge_sample,) = merged["g"]["samples"]
        assert gauge_sample["value"] == 7

    def test_histograms_merge_elementwise(self):
        def build(observations):
            def inner(registry):
                histogram = registry.histogram(
                    "h_seconds", "h", [], buckets=(1.0, 2.0)
                )
                for value in observations:
                    histogram.observe(value)
            return inner

        merged = merge_snapshots(
            self._snap(build([0.5, 1.5])), self._snap(build([1.5, 5.0]))
        )
        (sample,) = merged["h_seconds"]["samples"]
        assert sample["counts"] == [1, 2, 1]
        assert sample["count"] == 4
        assert sample["sum"] == pytest.approx(8.5)

    def test_conflicting_types_keep_the_first_definition(self):
        first = self._snap(lambda r: r.counter("m", "m", []).inc())
        second = self._snap(lambda r: r.gauge("m", "m", []).set(9))
        merged = merge_snapshots(first, second)
        assert merged["m"]["type"] == "counter"
        (sample,) = merged["m"]["samples"]
        assert sample["value"] == 1

    def test_snapshot_is_json_compatible(self):
        import json

        snapshot = self._snap(lambda r: (
            r.counter("c_total", "c", ["k"]).inc(k="x"),
            r.histogram("h_seconds", "h", [], buckets=(1.0,)).observe(2.0),
        ))
        assert json.loads(json.dumps(snapshot)) == snapshot
