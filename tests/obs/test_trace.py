"""Tracing: span nesting, context propagation, and the cross-host e2e.

The e2e test is the PR's acceptance path: a coordinator submits over a
live HTTP broker, two workers execute over the same broker, and every
span any of them exports carries the coordinator's trace id.
"""

import io
import json
import threading

from repro.attacktree import serialization
from repro.attacktree.catalog import factory
from repro.distributed import Coordinator, Worker
from repro.net import BrokerServer, HttpQueue
from repro.obs.trace import (
    NdjsonSpanExporter,
    TraceContext,
    activate_context,
    add_exporter,
    current_context,
    extract_context,
    inject_context,
    normalize_trace_id,
    parse_traceparent,
    span,
    traceparent_header,
)


class TestSpans:
    def test_spans_nest_under_the_ambient_trace(self):
        finished = []
        add_exporter(finished.append)
        with span("outer") as outer:
            with span("inner") as inner:
                pass
        assert [s.name for s in finished] == ["inner", "outer"]
        assert inner.trace_id == outer.trace_id
        assert inner.parent_id == outer.span_id
        assert outer.parent_id is None
        assert current_context() is None

    def test_exception_marks_error_and_reraises(self):
        finished = []
        add_exporter(finished.append)
        try:
            with span("doomed"):
                raise RuntimeError("boom")
        except RuntimeError:
            pass
        (exported,) = finished
        assert exported.status == "error"
        assert exported.attrs["error"] == "RuntimeError"

    def test_broken_exporter_does_not_break_the_operation(self):
        def explode(_span):
            raise RuntimeError("exporter bug")

        add_exporter(explode)
        with span("survives"):
            pass  # must not raise

    def test_without_ambient_context_nothing_is_injected(self):
        assert inject_context() is None
        assert traceparent_header() is None


class TestPropagation:
    def test_payload_carrier_round_trip(self):
        with span("submit"):
            carrier = inject_context()
            ambient = current_context()
        restored = extract_context(carrier)
        assert restored == ambient

    def test_extract_tolerates_junk(self):
        for junk in (None, "x", 42, [], {"trace_id": "ZZZ"}, {}):
            assert extract_context(junk) is None

    def test_header_round_trip(self):
        context = TraceContext(trace_id="a" * 32, span_id="b" * 16)
        with activate_context(context):
            header = traceparent_header()
        assert parse_traceparent(header) == context
        assert parse_traceparent("garbage") is None
        assert parse_traceparent("zz-yy") is None

    def test_request_ids_normalize_to_trace_seeds(self):
        assert normalize_trace_id("A1B2C3D4E5F6") == "a1b2c3d4e5f6"
        assert normalize_trace_id("not hex!") is None
        assert normalize_trace_id("abc") is None  # too short
        assert normalize_trace_id(123) is None

    def test_ndjson_exporter_writes_one_line_per_span(self):
        stream = io.StringIO()
        add_exporter(NdjsonSpanExporter(stream))
        with span("a", attrs={"k": "v"}):
            pass
        with span("b"):
            pass
        lines = [json.loads(l) for l in stream.getvalue().splitlines()]
        assert [line["name"] for line in lines] == ["a", "b"]
        assert lines[0]["attrs"] == {"k": "v"}


class TestEndToEndOverBroker:
    def test_worker_spans_share_the_coordinator_trace_id(self, tmp_path):
        stream = io.StringIO()
        add_exporter(NdjsonSpanExporter(stream))
        model = serialization.to_dict(factory())
        requests = [{"problem": "cdpf"}, {"problem": "dgc", "budget": 2.0},
                    {"problem": "cdpf"}, {"problem": "dgc", "budget": 3.0}]
        with BrokerServer(
            queue_path=str(tmp_path / "queue.sqlite"), grace_seconds=0.0
        ) as server:
            server.start()
            with HttpQueue(server.url) as queue:
                Coordinator(queue).submit_requests(model, requests)

                def run_worker(worker_id):
                    with HttpQueue(server.url) as worker_queue:
                        Worker(worker_queue, worker_id=worker_id,
                               poll_seconds=0.01).run()

                threads = [
                    threading.Thread(target=run_worker, args=(f"w{i}",))
                    for i in range(2)
                ]
                for thread in threads:
                    thread.start()
                for thread in threads:
                    thread.join(timeout=60)
                assert queue.drained()
        spans = [json.loads(l) for l in stream.getvalue().splitlines()]
        submits = [s for s in spans if s["name"] == "coordinator.submit"]
        assert len(submits) == 1
        trace_id = submits[0]["trace_id"]
        worker_spans = [s for s in spans if s["name"] == "worker.task"]
        assert len(worker_spans) == len(requests)
        assert {s["trace_id"] for s in worker_spans} == {trace_id}
        # Both workers contributed, and the solve spans nested beneath
        # the worker spans stay on the same trace.
        assert {s["attrs"]["worker_id"] for s in worker_spans} == {"w0", "w1"}
        solves = [s for s in spans if s["name"] == "solve"]
        assert solves and {s["trace_id"] for s in solves} == {trace_id}
