"""``GET /metrics`` on both servers, trace seeding, and ``atcd obs dump``.

In-process caveat: the worker thread in these tests shares the process
registry with the server, so counter *values* on /metrics may include
both the live registry and the worker's published snapshot — assertions
here check presence and non-zeroness, never exact fleet totals (those
are covered per-layer in test_metrics.py and the queue/store suites).
"""

import io
import json
import threading
import time
import urllib.error
import urllib.request

import pytest

from repro.attacktree import serialization
from repro.attacktree.catalog import factory
from repro.cli import main
from repro.distributed import InMemoryQueue, Worker
from repro.net import BrokerServer
from repro.net.accesslog import AccessLog
from repro.obs.promtext import CONTENT_TYPE, parse
from repro.service import ServiceServer, Tenant, TenantRegistry

MODEL = serialization.to_dict(factory())
ACME_KEY = "acme-key-12345678"


def fetch(url, headers=None):
    request = urllib.request.Request(url, headers=headers or {})
    with urllib.request.urlopen(request, timeout=30) as response:
        return response.status, dict(response.headers), response.read().decode()


@pytest.fixture
def broker(tmp_path):
    with BrokerServer(
        queue_path=str(tmp_path / "queue.sqlite"),
        store_path=str(tmp_path / "store.sqlite"),
    ) as server:
        server.start()
        yield server


@pytest.fixture
def service():
    registry = TenantRegistry([Tenant(name="acme", key=ACME_KEY)])
    log_stream = io.StringIO()
    with ServiceServer(
        InMemoryQueue(), registry, poll_seconds=0.01,
        access_log=AccessLog(log_stream),
    ) as server:
        server.log_stream = log_stream
        server.start()
        yield server


class TestBrokerMetrics:
    def test_metrics_endpoint_serves_prometheus_text(self, broker):
        status, headers, body = fetch(broker.url + "/metrics")
        assert status == 200
        assert headers["Content-Type"] == CONTENT_TYPE
        families = parse(body)
        # The full catalog is present even before any traffic...
        for name in ("atcd_queue_ops_total", "atcd_store_lookups_total",
                     "atcd_solve_seconds", "atcd_http_requests_total"):
            assert name in families, name
        # ...and the scrape-time gauges carry the (empty) queue state.
        assert families["atcd_queue_tasks"].value(state="pending") == 0

    def test_requests_and_queue_ops_are_counted(self, broker):
        from repro.net import HttpQueue

        with HttpQueue(broker.url) as queue:
            queue.submit([{"kind": "noop"}])
        _, _, body = fetch(broker.url + "/metrics")
        families = parse(body)
        assert families["atcd_queue_ops_total"].value(op="submit") >= 1
        assert families["atcd_http_requests_total"].value(
            server="broker", route="/queue/submit", status="200"
        ) >= 1
        assert families["atcd_queue_tasks"].value(state="pending") == 1
        assert families["atcd_http_request_seconds"].value(
            "atcd_http_request_seconds_count",
            server="broker", route="/queue/submit",
        ) >= 1

    def test_token_protected_broker_protects_metrics(self, tmp_path):
        with BrokerServer(
            queue_path=str(tmp_path / "q.sqlite"), token="sesame"
        ) as server:
            server.start()
            with pytest.raises(urllib.error.HTTPError) as excinfo:
                fetch(server.url + "/metrics")
            assert excinfo.value.code == 401
            status, _, body = fetch(
                server.url + "/metrics",
                headers={"Authorization": "Bearer sesame"},
            )
            assert status == 200 and "atcd_queue_ops_total" in body

    def test_obs_dump_cli_prints_the_scrape(self, broker, capsys):
        assert main(["obs", "dump", broker.url]) == 0
        assert "# TYPE atcd_queue_ops_total counter" in capsys.readouterr().out
        assert main(["obs", "dump", broker.url, "--json"]) == 0
        document = json.loads(capsys.readouterr().out)
        assert document["atcd_queue_tasks"]["type"] == "gauge"



class TestServiceMetrics:
    def _submit(self, service, n=2):
        body = json.dumps({
            "model": MODEL,
            "requests": [{"problem": "cdpf"}] * n,
        }).encode()
        request = urllib.request.Request(
            service.url + "/v1/jobs", data=body,
            headers={"X-Api-Key": ACME_KEY, "Content-Type": "application/json"},
        )
        with urllib.request.urlopen(request, timeout=30) as response:
            return json.loads(response.read())["job"]

    def test_metrics_is_open_like_ping_and_counts_jobs(self, service):
        self._submit(service)
        status, headers, body = fetch(service.url + "/metrics")
        assert status == 200
        assert headers["Content-Type"] == CONTENT_TYPE
        families = parse(body)
        assert families["atcd_service_jobs_total"].value(tenant="acme") == 1
        assert families["atcd_service_requests_total"].value(tenant="acme") == 2
        assert families["atcd_http_requests_total"].value(
            server="service", route="/v1/jobs", status="202"
        ) == 1
        assert families["atcd_queue_tasks"].value(state="pending") == 2

    def test_worker_executed_solves_reach_the_service_scrape(self, service):
        job = self._submit(service)
        worker = Worker(service.queue, worker_id="w", poll_seconds=0.01)
        thread = threading.Thread(target=worker.run)
        thread.start()
        thread.join(timeout=60)
        assert service.queue.drained()
        _, _, body = fetch(service.url + "/metrics")
        families = parse(body)
        # The solves happened in the worker, not the server: they are
        # visible here through the worker's published snapshot.
        assert families["atcd_solve_seconds"].value(
            "atcd_solve_seconds_count", backend="bottom-up", problem="cdpf"
        ) >= 2
        assert families["atcd_worker_tasks_total"].value(
            outcome="completed"
        ) >= 2
        assert job["job_id"]

    def test_quota_rejections_are_counted_by_tenant(self):
        registry = TenantRegistry([
            Tenant(name="tiny", key="tiny-key-12345678", max_in_flight=1),
        ])
        with ServiceServer(
            InMemoryQueue(), registry, poll_seconds=0.01
        ) as service:
            service.start()
            body = json.dumps({
                "model": MODEL, "requests": [{"problem": "cdpf"}],
            }).encode()

            def submit():
                request = urllib.request.Request(
                    service.url + "/v1/jobs", data=body,
                    headers={"X-Api-Key": "tiny-key-12345678"},
                )
                return urllib.request.urlopen(request, timeout=30)

            submit()  # fills the single in-flight slot
            with pytest.raises(urllib.error.HTTPError) as excinfo:
                submit()
            assert excinfo.value.code == 429
            _, _, text = fetch(service.url + "/metrics")
            assert parse(text)["atcd_service_rejections_total"].value(
                tenant="tiny", kind="quota"
            ) == 1


class TestTraceSeeding:
    def test_client_request_id_seeds_the_trace_and_access_log(self, service):
        status, headers, _ = fetch(
            service.url + "/ping",
            headers={"X-Request-Id": "feedfacefeed"},
        )
        assert status == 200
        # The client's id is honoured (echoed, not replaced)...
        assert headers["X-Request-Id"] == "feedfacefeed"
        time.sleep(0.05)
        lines = [json.loads(l)
                 for l in service.log_stream.getvalue().splitlines()]
        entry = [l for l in lines if l["route"] == "/ping"][-1]
        # ...and doubles as the trace id in the access log.
        assert entry["request_id"] == "feedfacefeed"
        assert entry["trace_id"] == "feedfacefeed"

    def test_trace_context_header_wins_over_request_id(self, service):
        fetch(
            service.url + "/ping",
            headers={"X-Trace-Context": f"{'a' * 32}-{'b' * 16}"},
        )
        time.sleep(0.05)
        lines = [json.loads(l)
                 for l in service.log_stream.getvalue().splitlines()]
        assert [l for l in lines if l["route"] == "/ping"][-1]["trace_id"] == "a" * 32

    def test_untraced_requests_log_no_trace_id(self, service):
        fetch(service.url + "/ping")
        time.sleep(0.05)
        lines = [json.loads(l)
                 for l in service.log_stream.getvalue().splitlines()]
        assert "trace_id" not in [
            l for l in lines if l["route"] == "/ping"
        ][-1]
