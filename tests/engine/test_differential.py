"""Cross-backend differential suite over random workload models.

The paper's exact methods — bottom-up propagation (treelike), BILP
(deterministic, DAGs included) and exhaustive enumeration (every cell) —
must agree wherever their capabilities overlap.  This suite generates
random decorated trees through the :mod:`repro.workloads` families
(property-based, via Hypothesis) and asserts that every *capable* exact
backend returns identical results for each supported problem.

It doubles as the regression net for the shared result store (a result
that survives the store's JSON round-trip must still equal the live one)
and for any future exact probabilistic-DAG method: register it as an exact
backend and this suite starts differential-testing it for free.

Sizes are capped so the enumerative baseline stays tractable; Hypothesis
settings are derandomized for CI stability.
"""

import pytest

hypothesis = pytest.importorskip("hypothesis")
from hypothesis import HealthCheck, given, settings, strategies as st  # noqa: E402

from repro.core.problems import Problem  # noqa: E402
from repro.engine import (  # noqa: E402
    AnalysisRequest,
    InMemoryStore,
    model_fingerprint,
    run_request,
)
from repro.workloads import ScenarioSpec, expand  # noqa: E402

#: (family, shape) cells and the size range keeping enumeration tractable.
_DETERMINISTIC_CELLS = [
    ("random", "treelike", (4, 12)),
    ("random", "dag", (4, 12)),
    ("deep-chain", "treelike", (2, 6)),
    ("deep-chain", "dag", (2, 6)),
    ("wide-fan", "treelike", (2, 8)),
    ("wide-fan", "dag", (2, 8)),
    ("shared-bas", "dag", (4, 8)),
]
#: Probabilistic enumeration also sums over actualizations, so smaller.
_PROBABILISTIC_CELLS = [
    ("random", "treelike", (4, 9)),
    ("random", "dag", (4, 9)),
    ("deep-chain", "treelike", (2, 5)),
    ("deep-chain", "dag", (2, 5)),
    ("wide-fan", "treelike", (2, 6)),
    ("wide-fan", "dag", (2, 6)),
    ("shared-bas", "dag", (4, 7)),
]

_SETTINGS = settings(
    max_examples=20,
    deadline=None,
    derandomize=True,
    suppress_health_check=[HealthCheck.too_slow],
)


def _workload_model(setting, cells, data):
    """Draw one decorated model from the registered workload families."""
    family, shape, (low, high) = data.draw(st.sampled_from(cells), label="cell")
    size = data.draw(st.integers(low, high), label="size")
    seed = data.draw(st.integers(0, 999_999), label="seed")
    spec = ScenarioSpec(
        family=family, shape=shape, setting=setting, sizes=(size,), seed=seed
    )
    return expand(spec)[0].model


def _front_values(result):
    assert result.front is not None
    return result.front.values()


def _assert_fronts_equal(reference, candidate, context):
    ref, cand = _front_values(reference), _front_values(candidate)
    assert len(ref) == len(cand), context
    for (ref_cost, ref_damage), (cand_cost, cand_damage) in zip(ref, cand):
        assert cand_cost == pytest.approx(ref_cost, abs=1e-9), context
        assert cand_damage == pytest.approx(ref_damage, abs=1e-9), context


def _assert_values_equal(reference, candidate, context):
    if reference.value is None:
        assert candidate.value is None, context
    else:
        assert candidate.value == pytest.approx(reference.value, abs=1e-9), context


def _scalar_parameters(front_values):
    """Budgets/thresholds probing below, on and beyond the front."""
    costs = sorted({cost for cost, _ in front_values})
    damages = sorted({damage for _, damage in front_values})
    budgets = {0.0, costs[len(costs) // 2], costs[-1], costs[-1] + 1.0}
    thresholds = {0.0, damages[len(damages) // 2], damages[-1], damages[-1] + 1.0}
    return sorted(budgets), sorted(thresholds)


def _capable_exact_backends(model, probabilistic):
    """The exact backends covering this model, per Table I capabilities."""
    from repro.core.bottom_up import numpy_available

    if probabilistic:
        backends = ["enumerative", "prob-dag"]
        if model.tree.is_treelike:
            backends.append("bottom-up")
    else:
        backends = ["enumerative", "bilp"]
        if model.tree.is_treelike:
            backends.append("bottom-up")
            if numpy_available():
                backends.append("bottom-up-numpy")
    return backends


class TestDeterministicBackendsAgree:
    @_SETTINGS
    @given(data=st.data())
    def test_cdpf_dgc_cgd_agree(self, data):
        model = _workload_model("deterministic", _DETERMINISTIC_CELLS, data)
        backends = _capable_exact_backends(model, probabilistic=False)

        reference = run_request(model, AnalysisRequest(Problem.CDPF, backend="enumerative"))
        fronts = {
            backend: run_request(model, AnalysisRequest(Problem.CDPF, backend=backend))
            for backend in backends
        }
        for backend, result in fronts.items():
            _assert_fronts_equal(reference, result, f"cdpf via {backend}")

        budgets, thresholds = _scalar_parameters(_front_values(reference))
        for budget in budgets:
            expected = run_request(
                model,
                AnalysisRequest(Problem.DGC, budget=budget, backend="enumerative"),
            )
            for backend in backends:
                got = run_request(
                    model, AnalysisRequest(Problem.DGC, budget=budget, backend=backend)
                )
                _assert_values_equal(expected, got, f"dgc({budget}) via {backend}")
        for threshold in thresholds:
            expected = run_request(
                model,
                AnalysisRequest(Problem.CGD, threshold=threshold, backend="enumerative"),
            )
            for backend in backends:
                got = run_request(
                    model,
                    AnalysisRequest(Problem.CGD, threshold=threshold, backend=backend),
                )
                _assert_values_equal(expected, got, f"cgd({threshold}) via {backend}")


class TestProbabilisticBackendsAgree:
    @_SETTINGS
    @given(data=st.data())
    def test_cedpf_edgc_cged_agree(self, data):
        model = _workload_model("probabilistic", _PROBABILISTIC_CELLS, data)
        backends = _capable_exact_backends(model, probabilistic=True)

        reference = run_request(
            model, AnalysisRequest(Problem.CEDPF, backend="enumerative")
        )
        for backend in backends:
            result = run_request(model, AnalysisRequest(Problem.CEDPF, backend=backend))
            _assert_fronts_equal(reference, result, f"cedpf via {backend}")

        budgets, thresholds = _scalar_parameters(_front_values(reference))
        for budget in budgets:
            expected = run_request(
                model,
                AnalysisRequest(Problem.EDGC, budget=budget, backend="enumerative"),
            )
            for backend in backends:
                got = run_request(
                    model, AnalysisRequest(Problem.EDGC, budget=budget, backend=backend)
                )
                _assert_values_equal(expected, got, f"edgc({budget}) via {backend}")
        for threshold in thresholds:
            expected = run_request(
                model,
                AnalysisRequest(
                    Problem.CGED, threshold=threshold, backend="enumerative"
                ),
            )
            for backend in backends:
                got = run_request(
                    model,
                    AnalysisRequest(
                        Problem.CGED, threshold=threshold, backend=backend
                    ),
                )
                _assert_values_equal(expected, got, f"cged({threshold}) via {backend}")


@pytest.fixture(scope="module")
def broker_store(tmp_path_factory):
    """An :class:`HttpStore` against a live broker (module-scoped: one
    server serves every Hypothesis example; keys never collide because
    each drawn model has its own fingerprint)."""
    from repro.net import BrokerServer, HttpStore

    store_path = str(tmp_path_factory.mktemp("broker") / "results.sqlite")
    with BrokerServer(store_path=store_path) as server:
        server.start()
        store = HttpStore(server.url)
        yield store
        store.close()


class TestStoreRoundTripFidelity:
    """A result served from the store must equal the freshly computed one.

    Runs against the in-memory store and — the full network path: JSON
    over the wire, sqlite persistence on the broker, identity-verified
    read back — against an ``HttpStore``.
    """

    @_SETTINGS
    @given(data=st.data())
    def test_deterministic_results_survive_the_store(self, data):
        self._assert_round_trip(
            InMemoryStore(), "deterministic", _DETERMINISTIC_CELLS,
            Problem.CDPF, data,
        )

    @_SETTINGS
    @given(data=st.data())
    def test_probabilistic_results_survive_the_store(self, data):
        self._assert_round_trip(
            InMemoryStore(), "probabilistic", _PROBABILISTIC_CELLS,
            Problem.CEDPF, data,
        )

    @_SETTINGS
    @given(data=st.data())
    def test_deterministic_results_survive_the_http_store(
        self, broker_store, data
    ):
        self._assert_round_trip(
            broker_store, "deterministic", _DETERMINISTIC_CELLS,
            Problem.CDPF, data,
        )

    @_SETTINGS
    @given(data=st.data())
    def test_probabilistic_results_survive_the_http_store(
        self, broker_store, data
    ):
        self._assert_round_trip(
            broker_store, "probabilistic", _PROBABILISTIC_CELLS,
            Problem.CEDPF, data,
        )

    @staticmethod
    def _assert_round_trip(store, setting, cells, problem, data):
        model = _workload_model(setting, cells, data)
        fingerprint = model_fingerprint(model)
        request = AnalysisRequest(problem)
        live = run_request(model, request)
        store.put(fingerprint, request, live)
        loaded = store.get(fingerprint, request)
        assert loaded is not None
        assert loaded.to_dict() == live.to_dict()
        _assert_fronts_equal(live, loaded, "store round-trip")
