"""Tests for the session's process-pool batch executor."""

import pytest

from repro.attacktree import catalog
from repro.core.problems import Problem
from repro.engine import (
    AnalysisRequest,
    AnalysisSession,
    default_registry,
    run_serialized_request,
)
from repro.attacktree import serialization

REQUESTS = [
    AnalysisRequest(Problem.CDPF),
    AnalysisRequest(Problem.CEDPF),
    AnalysisRequest(Problem.DGC, budget=10),
    AnalysisRequest(Problem.CGD, threshold=20),
]


class TestProcessExecutor:
    def test_results_equal_sequential(self):
        sequential = AnalysisSession(catalog.panda_iot()).run_batch(REQUESTS)
        processed = AnalysisSession(catalog.panda_iot()).run_batch(
            REQUESTS, executor="process", max_workers=2
        )
        for a, b in zip(sequential, processed):
            assert a.front == b.front
            assert a.value == b.value
            assert a.witness == b.witness
            assert a.backend == b.backend

    def test_results_populate_the_cache(self):
        session = AnalysisSession(catalog.factory())
        batch = [AnalysisRequest(Problem.CDPF)]
        first = session.run_batch(batch, executor="process")
        assert not first[0].cache_hit
        again = session.run(AnalysisRequest(Problem.CDPF))
        assert again.cache_hit
        assert session.stats.hits == 1 and session.stats.misses == 1

    def test_duplicate_requests_computed_once(self):
        session = AnalysisSession(catalog.factory())
        batch = [AnalysisRequest(Problem.CDPF), AnalysisRequest(Problem.CDPF)]
        results = session.run_batch(batch, executor="process")
        assert not results[0].cache_hit
        assert results[1].cache_hit
        assert results[0].front == results[1].front
        assert session.stats.misses == 1

    def test_cache_hits_served_in_parent(self):
        session = AnalysisSession(catalog.factory())
        session.run(AnalysisRequest(Problem.CDPF))
        results = session.run_batch(
            [AnalysisRequest(Problem.CDPF)], executor="process"
        )
        assert results[0].cache_hit

    def test_invalid_request_fails_before_spawning(self):
        session = AnalysisSession(catalog.factory())
        with pytest.raises(ValueError, match="budget"):
            session.run_batch(
                [AnalysisRequest(Problem.DGC)], executor="process"
            )

    def test_unknown_backend_fails_before_spawning(self):
        session = AnalysisSession(catalog.factory())
        with pytest.raises(ValueError, match="unknown backend"):
            session.run_batch(
                [AnalysisRequest(Problem.CDPF, backend="nope")],
                executor="process",
            )

    def test_custom_registry_rejected(self):
        session = AnalysisSession(catalog.factory(), registry=default_registry())
        with pytest.raises(ValueError, match="default backend registry"):
            session.run_batch([AnalysisRequest(Problem.CDPF)], executor="process")

    def test_unknown_executor_rejected(self):
        session = AnalysisSession(catalog.factory())
        with pytest.raises(ValueError, match="unknown executor"):
            session.run_batch([AnalysisRequest(Problem.CDPF)], executor="quantum")

    def test_parallel_flag_still_selects_threads(self):
        session = AnalysisSession(catalog.factory())
        results = session.run_batch(REQUESTS[:1] + REQUESTS[2:], parallel=True)
        assert len(results) == 3


class TestSerializedRequest:
    def test_wire_round_trip_matches_in_process(self):
        model = catalog.factory()
        request = AnalysisRequest(Problem.CDPF)
        payload = run_serialized_request(
            serialization.to_dict(model), request.to_dict()
        )
        session = AnalysisSession(model)
        direct = session.run(request)
        assert payload["backend"] == direct.backend
        assert payload["front"] == direct.to_dict()["front"]
