"""Tests for the shared persistent result store and its session wiring.

Covers the hardening cases the store must survive in shared deployments:
corrupted database files, stale schema versions, concurrent writers from
separate processes, and cache poisoning (a stored result re-keyed to a
different model or request must never be served).
"""

import json
import os
import sqlite3
import subprocess
import sys
import time
from pathlib import Path

import pytest

from repro.attacktree.builder import AttackTreeBuilder
from repro.attacktree.catalog import factory
from repro.core.problems import Problem
from repro.engine import (
    AnalysisRequest,
    AnalysisSession,
    InMemoryStore,
    NamespacedStore,
    SqliteStore,
    StoreError,
    model_fingerprint,
    open_store,
    run_request,
)
from repro.engine.store import STORE_SCHEMA_VERSION, request_key

SRC = str(Path(__file__).resolve().parents[2] / "src")


@pytest.fixture
def store_path(tmp_path):
    return str(tmp_path / "results.sqlite")


@pytest.fixture(params=["sqlite", "memory", "http"])
def any_store(request, store_path):
    """All three store implementations must share one semantics; ``http``
    runs against a live ``atcd serve`` broker backed by a sqlite store."""
    if request.param == "memory":
        store = InMemoryStore()
    elif request.param == "http":
        from repro.net import BrokerServer, HttpStore

        server = BrokerServer(store_path=store_path)
        server.start()
        store = HttpStore(server.url)
        yield store
        store.close()
        server.close()
        return
    else:
        store = SqliteStore(store_path)
    yield store
    store.close()


def factory_result(request=None):
    request = request or AnalysisRequest(Problem.CDPF)
    return run_request(factory(), request)


class TestRoundTrip:
    def test_get_returns_what_put_stored(self, any_store):
        request = AnalysisRequest(Problem.CDPF)
        result = factory_result(request)
        fingerprint = model_fingerprint(factory())
        any_store.put(fingerprint, request, result)
        loaded = any_store.get(fingerprint, request)
        assert loaded is not None
        assert loaded.to_dict() == result.to_dict()
        assert len(any_store) == 1
        assert any_store.stats.writes == 1 and any_store.stats.hits == 1

    def test_miss_on_unknown_request(self, any_store):
        fingerprint = model_fingerprint(factory())
        assert any_store.get(fingerprint, AnalysisRequest(Problem.CDPF)) is None
        assert any_store.stats.misses == 1

    def test_miss_on_other_fingerprint(self, any_store):
        request = AnalysisRequest(Problem.CDPF)
        any_store.put(model_fingerprint(factory()), request, factory_result(request))
        assert any_store.get("0" * 64, request) is None

    def test_last_writer_wins(self, any_store):
        request = AnalysisRequest(Problem.CDPF)
        fingerprint = model_fingerprint(factory())
        first = factory_result(request)
        second = factory_result(request)
        any_store.put(fingerprint, request, first)
        any_store.put(fingerprint, request, second)
        assert len(any_store) == 1
        loaded = any_store.get(fingerprint, request)
        assert loaded.wall_time_seconds == second.wall_time_seconds

    def test_requests_with_distinct_backends_get_distinct_rows(self, any_store):
        fingerprint = model_fingerprint(factory())
        plain = AnalysisRequest(Problem.CDPF)
        forced = AnalysisRequest(Problem.CDPF, backend="enumerative")
        any_store.put(fingerprint, plain, run_request(factory(), plain))
        any_store.put(fingerprint, forced, run_request(factory(), forced))
        assert len(any_store) == 2
        assert any_store.get(fingerprint, plain).backend == "bottom-up"
        assert any_store.get(fingerprint, forced).backend == "enumerative"

    def test_prune_everything(self, any_store):
        request = AnalysisRequest(Problem.CDPF)
        any_store.put(model_fingerprint(factory()), request, factory_result(request))
        assert any_store.prune() == 1
        assert len(any_store) == 0

    def test_prune_one_model_only(self, any_store):
        request = AnalysisRequest(Problem.CDPF)
        result = factory_result(request)
        any_store.put("a" * 64, request, result)
        any_store.put("b" * 64, request, result)
        assert any_store.prune(fingerprint="a" * 64) == 1
        assert len(any_store) == 1

    def test_int_and_float_parameters_share_one_key(self, any_store):
        # The session's in-memory dict treats budget=2 and budget=2.0 as
        # one key (Python numeric hashing); the store must agree.
        as_int = AnalysisRequest(Problem.DGC, budget=2)
        as_float = AnalysisRequest(Problem.DGC, budget=2.0)
        assert request_key(as_int) == request_key(as_float)
        fingerprint = model_fingerprint(factory())
        any_store.put(fingerprint, as_int, run_request(factory(), as_int))
        assert len(any_store) == 1
        loaded = any_store.get(fingerprint, as_float)
        assert loaded is not None and loaded.value == 200.0

    def test_summary_reports_entries(self, any_store):
        request = AnalysisRequest(Problem.CDPF)
        any_store.put(model_fingerprint(factory()), request, factory_result(request))
        summary = any_store.summary()
        assert summary["entries"] == 1
        assert summary["schema_version"] == STORE_SCHEMA_VERSION


class TestNamespacing:
    """Tenant isolation through :class:`NamespacedStore` views."""

    def test_namespaces_do_not_share_results(self, any_store):
        request = AnalysisRequest(Problem.CDPF)
        result = factory_result(request)
        fingerprint = model_fingerprint(factory())
        acme = NamespacedStore(any_store, "acme")
        globex = NamespacedStore(any_store, "globex")
        acme.put(fingerprint, request, result)
        # Same model, same request: the other tenant still misses.
        assert globex.get(fingerprint, request) is None
        assert acme.get(fingerprint, request) is not None
        # And the raw fingerprint is not readable outside a namespace.
        assert any_store.get(fingerprint, request) is None

    def test_poisoned_namespace_row_is_not_served(self, any_store):
        # A result written under tenant A's namespace cannot be replayed
        # to tenant B even by re-keying: the embedded-identity guard sees
        # the namespaced fingerprint mismatch and refuses.
        request = AnalysisRequest(Problem.CDPF)
        result = factory_result(request)
        fingerprint = model_fingerprint(factory())
        NamespacedStore(any_store, "acme").put(fingerprint, request, result)
        # Replaying acme's row under globex's key is a miss, never a hit.
        assert any_store.get(f"globex/{fingerprint}", request) is None

    def test_prune_is_scoped_to_the_namespace(self, any_store):
        request = AnalysisRequest(Problem.CDPF)
        result = factory_result(request)
        fingerprint = model_fingerprint(factory())
        acme = NamespacedStore(any_store, "acme")
        globex = NamespacedStore(any_store, "globex")
        acme.put(fingerprint, request, result)
        globex.put(fingerprint, request, result)
        assert acme.prune(fingerprint) == 1
        assert globex.get(fingerprint, request) is not None

    def test_prune_everything_is_refused_through_a_view(self, any_store):
        view = NamespacedStore(any_store, "acme")
        with pytest.raises(StoreError, match="namespaced view"):
            view.prune()

    def test_invalid_namespace_is_rejected(self, any_store):
        for bad in ("", "a/b", "../escape", "x" * 65, None):
            with pytest.raises(StoreError, match="namespace"):
                NamespacedStore(any_store, bad)

    def test_summary_carries_the_namespace(self, any_store):
        view = NamespacedStore(any_store, "acme")
        assert view.summary()["namespace"] == "acme"


class TestSqliteHardening:
    def test_corrupted_file_raises_store_error(self, store_path):
        Path(store_path).write_bytes(b"this is not a sqlite database\x00\x01")
        with pytest.raises(StoreError, match="cannot open result store"):
            SqliteStore(store_path)

    def test_corruption_after_open_is_a_store_error(self, store_path):
        store = SqliteStore(store_path)
        store.close()
        Path(store_path).write_bytes(b"\x00" * 4096)
        with pytest.raises(StoreError):
            store2 = SqliteStore(store_path)
            store2.get(model_fingerprint(factory()), AnalysisRequest(Problem.CDPF))

    def test_stale_schema_version_is_rejected(self, store_path):
        SqliteStore(store_path).close()
        with sqlite3.connect(store_path) as connection:
            connection.execute(
                "UPDATE store_meta SET value = '999' WHERE key = 'schema_version'"
            )
        with pytest.raises(StoreError, match="schema version '999'"):
            SqliteStore(store_path)

    def test_missing_schema_version_with_rows_is_rejected(self, store_path):
        # Rows of unknown vintage must not be silently re-stamped with the
        # current version...
        store = SqliteStore(store_path)
        request = AnalysisRequest(Problem.CDPF)
        store.put(model_fingerprint(factory()), request, factory_result(request))
        store.close()
        with sqlite3.connect(store_path) as connection:
            connection.execute("DELETE FROM store_meta")
        with pytest.raises(StoreError, match="schema version None"):
            SqliteStore(store_path)

    def test_missing_schema_version_on_empty_store_is_restamped(self, store_path):
        # ...but an *empty* file is indistinguishable from a fresh one.
        SqliteStore(store_path).close()
        with sqlite3.connect(store_path) as connection:
            connection.execute("DELETE FROM store_meta")
        store = SqliteStore(store_path)
        assert len(store) == 0
        store.close()

    def test_closed_store_refuses_operations(self, store_path):
        store = SqliteStore(store_path)
        store.close()
        with pytest.raises(StoreError, match="closed"):
            store.get(model_fingerprint(factory()), AnalysisRequest(Problem.CDPF))
        store.close()  # idempotent

    def test_foreign_database_is_never_blessed(self, tmp_path):
        # `atcd store stats ./myapp.sqlite` on some other application's
        # database must refuse, not create our tables inside it.
        foreign = str(tmp_path / "myapp.sqlite")
        with sqlite3.connect(foreign) as connection:
            connection.execute("CREATE TABLE users (id INTEGER PRIMARY KEY)")
        with pytest.raises(StoreError, match="not a result store"):
            SqliteStore(foreign)
        with sqlite3.connect(foreign) as connection:
            tables = {
                row[0]
                for row in connection.execute(
                    "SELECT name FROM sqlite_master WHERE type = 'table'"
                )
            }
        assert tables == {"users"}

    def test_open_store_must_exist(self, tmp_path):
        with pytest.raises(StoreError, match="no result store"):
            open_store(str(tmp_path / "absent.sqlite"), must_exist=True)

    def test_open_store_creates_when_allowed(self, store_path):
        with open_store(store_path) as store:
            assert len(store) == 0
        assert Path(store_path).exists()


class TestCachePoisoning:
    """A row re-keyed to another model/request must be rejected, not served."""

    def _seed(self, store_path):
        request = AnalysisRequest(Problem.CDPF)
        result = factory_result(request)
        fingerprint = model_fingerprint(factory())
        store = SqliteStore(store_path)
        store.put(fingerprint, request, result)
        store.close()
        return fingerprint, request

    def test_rekeyed_fingerprint_is_never_served(self, store_path):
        _, request = self._seed(store_path)
        victim = "f" * 64  # pretend another model's key was overwritten
        with sqlite3.connect(store_path) as connection:
            connection.execute("UPDATE results SET fingerprint = ?", (victim,))
        store = SqliteStore(store_path)
        assert store.get(victim, request) is None
        assert store.stats.rejected == 1
        store.close()

    def test_rekeyed_request_is_never_served(self, store_path):
        fingerprint, _ = self._seed(store_path)
        other = AnalysisRequest(Problem.DGC, budget=99)
        with sqlite3.connect(store_path) as connection:
            connection.execute(
                "UPDATE results SET request_key = ?", (request_key(other),)
            )
        store = SqliteStore(store_path)
        assert store.get(fingerprint, other) is None
        assert store.stats.rejected == 1
        store.close()

    def test_tampered_payload_identity_is_never_served(self, store_path):
        # Rewrite the embedded identity too: the guard's last line of
        # defence is that the payload's own request must match the key.
        fingerprint, request = self._seed(store_path)
        with sqlite3.connect(store_path) as connection:
            payload = json.loads(
                connection.execute("SELECT payload FROM results").fetchone()[0]
            )
            payload["result"]["request"] = {"problem": "dgc", "budget": 99}
            connection.execute(
                "UPDATE results SET payload = ?", (json.dumps(payload),)
            )
        store = SqliteStore(store_path)
        assert store.get(fingerprint, request) is None
        assert store.stats.rejected == 1
        store.close()

    def test_garbage_payload_is_a_miss_not_a_crash(self, store_path):
        fingerprint, request = self._seed(store_path)
        with sqlite3.connect(store_path) as connection:
            connection.execute("UPDATE results SET payload = 'not json at all'")
        store = SqliteStore(store_path)
        assert store.get(fingerprint, request) is None
        assert store.stats.rejected == 1
        store.close()


class TestEviction:
    """`atcd store prune --ttl/--max-bytes`: oldest-first, bounded stores."""

    def _fill(self, store, budgets):
        fingerprint = model_fingerprint(factory())
        for budget in budgets:
            request = AnalysisRequest(Problem.DGC, budget=budget)
            store.put(fingerprint, request, run_request(factory(), request))
        return fingerprint

    def _backdate(self, store_path, budget_older_than, seconds):
        # Shift created_unix into the past for the first rows written.
        with sqlite3.connect(store_path) as connection:
            connection.execute(
                "UPDATE results SET created_unix = created_unix - ? "
                "WHERE rowid <= ?",
                (seconds, budget_older_than),
            )

    def test_evict_noop_without_bounds(self, any_store):
        self._fill(any_store, [1, 2])
        assert any_store.evict() == 0
        assert len(any_store) == 2

    def test_ttl_evicts_only_old_rows(self, store_path):
        store = SqliteStore(store_path)
        self._fill(store, [1, 2, 3, 4])
        store.close()
        self._backdate(store_path, budget_older_than=2, seconds=3600)
        store = SqliteStore(store_path)
        assert store.evict(ttl_seconds=60) == 2
        assert len(store) == 2
        fingerprint = model_fingerprint(factory())
        # The fresh rows survive, the backdated ones are gone.
        assert store.get(fingerprint, AnalysisRequest(Problem.DGC, budget=4)) \
            is not None
        assert store.get(fingerprint, AnalysisRequest(Problem.DGC, budget=1)) \
            is None
        store.close()

    def test_ttl_on_memory_store(self, monkeypatch):
        store = InMemoryStore()
        self._fill(store, [1, 2])
        # Age everything by faking the clock forward.
        real_time = time.time
        monkeypatch.setattr(time, "time", lambda: real_time() + 3600)
        self._fill(store, [3])
        assert store.evict(ttl_seconds=60) == 2
        assert len(store) == 1

    def test_max_bytes_evicts_oldest_first_until_file_fits(self, store_path):
        store = SqliteStore(store_path)
        self._fill(store, list(range(1, 31)))
        store.close()
        self._backdate(store_path, budget_older_than=15, seconds=3600)
        store = SqliteStore(store_path)
        before = os.path.getsize(store_path)
        bound = before // 2
        dropped = store.evict(max_bytes=bound)
        assert dropped > 0
        assert os.path.getsize(store_path) <= bound
        fingerprint = model_fingerprint(factory())
        # Oldest-first: the backdated early rows went before the fresh ones.
        assert store.get(fingerprint, AnalysisRequest(Problem.DGC, budget=1)) \
            is None
        assert store.get(fingerprint, AnalysisRequest(Problem.DGC, budget=30)) \
            is not None
        store.close()

    def test_max_bytes_below_page_overhead_empties_the_store(self, store_path):
        store = SqliteStore(store_path)
        self._fill(store, [1, 2])
        assert store.evict(max_bytes=1) == 2
        assert len(store) == 0
        store.close()

    def test_max_bytes_on_memory_store_bounds_payload_bytes(self):
        store = InMemoryStore()
        self._fill(store, [1, 2, 3])
        assert store.evict(max_bytes=0) == 3
        assert len(store) == 0

    def test_negative_bounds_are_rejected(self, any_store):
        with pytest.raises(ValueError, match="ttl_seconds"):
            any_store.evict(ttl_seconds=-1)
        with pytest.raises(ValueError, match="max_bytes"):
            any_store.evict(max_bytes=-1)


_WRITER_SCRIPT = """
import sys
sys.path.insert(0, {src!r})
from repro.attacktree.catalog import factory
from repro.core.problems import Problem
from repro.engine import AnalysisRequest, SqliteStore, model_fingerprint, run_request

path, worker = sys.argv[1], int(sys.argv[2])
model = factory()
fingerprint = model_fingerprint(model)
store = SqliteStore(path)
for i in range(20):
    budget = worker * 100 + i  # distinct keys per worker
    request = AnalysisRequest(Problem.DGC, budget=budget)
    store.put(fingerprint, request, run_request(model, request))
shared = AnalysisRequest(Problem.CDPF)  # both workers fight over this row
store.put(fingerprint, shared, run_request(model, shared))
assert store.get(fingerprint, shared) is not None
store.close()
print("ok")
"""


class TestConcurrentWriters:
    def test_two_processes_write_one_store(self, store_path):
        """Two separate OS processes hammer the same file; nothing is lost."""
        script = _WRITER_SCRIPT.format(src=SRC)
        workers = [
            subprocess.Popen(
                [sys.executable, "-c", script, store_path, str(worker)],
                stdout=subprocess.PIPE,
                stderr=subprocess.PIPE,
                text=True,
            )
            for worker in (1, 2)
        ]
        for worker in workers:
            out, err = worker.communicate(timeout=120)
            assert worker.returncode == 0, err
            assert out.strip() == "ok"
        store = SqliteStore(store_path)
        # 20 distinct rows per worker + the single contended row.
        assert len(store) == 41
        fingerprint = model_fingerprint(factory())
        assert store.get(fingerprint, AnalysisRequest(Problem.CDPF)) is not None
        for worker, i in ((1, 0), (1, 19), (2, 0), (2, 19)):
            request = AnalysisRequest(Problem.DGC, budget=worker * 100 + i)
            assert store.get(fingerprint, request) is not None
        store.close()


class TestSessionWiring:
    def test_read_through_across_sessions(self, any_store):
        first = AnalysisSession(factory(), store=any_store)
        cold = first.run(AnalysisRequest(Problem.CDPF))
        assert not cold.cache_hit and first.stats.store_hits == 0

        second = AnalysisSession(factory(), store=any_store)
        warm = second.run(AnalysisRequest(Problem.CDPF))
        assert warm.cache_hit
        assert warm.front.values() == cold.front.values()
        assert second.stats.hits == 1 and second.stats.store_hits == 1

    def test_store_hit_installs_in_memory_entry(self, any_store):
        AnalysisSession(factory(), store=any_store).run(AnalysisRequest(Problem.CDPF))
        session = AnalysisSession(factory(), store=any_store)
        session.run(AnalysisRequest(Problem.CDPF))
        session.run(AnalysisRequest(Problem.CDPF))
        # Second repeat is served by the session dict, not the store again.
        assert session.stats.hits == 2 and session.stats.store_hits == 1

    def test_different_model_never_reads_anothers_results(self, any_store):
        AnalysisSession(factory(), store=any_store).run(AnalysisRequest(Problem.CDPF))
        builder = AttackTreeBuilder()
        builder.bas("a", cost=1, damage=7)
        builder.or_gate("root", ["a"])
        other = builder.build_cd(root="root")
        session = AnalysisSession(other, store=any_store)
        result = session.run(AnalysisRequest(Problem.CDPF))
        assert not result.cache_hit
        assert session.stats.store_hits == 0

    def test_process_batch_populates_store(self, any_store):
        requests = [AnalysisRequest(Problem.DGC, budget=b) for b in (1, 2, 3)]
        session = AnalysisSession(factory(), store=any_store)
        session.run_batch(requests, executor="process")
        assert len(any_store) == 3

        warm = AnalysisSession(factory(), store=any_store)
        results = warm.run_batch(requests, executor="process")
        assert all(result.cache_hit for result in results)
        assert warm.stats.hits == 3 and warm.stats.store_hits == 3
        assert warm.stats.misses == 0

    def test_thread_batch_reads_through(self, any_store):
        requests = [AnalysisRequest(Problem.DGC, budget=b) for b in (1, 2)]
        AnalysisSession(factory(), store=any_store).run_batch(requests)
        warm = AnalysisSession(factory(), store=any_store)
        results = warm.run_batch(requests, executor="thread")
        assert all(result.cache_hit for result in results)
        assert warm.stats.store_hits == 2

    def test_sessions_without_store_unaffected(self):
        session = AnalysisSession(factory())
        assert session.store is None
        result = session.run(AnalysisRequest(Problem.CDPF))
        assert not result.cache_hit

    def test_broken_store_degrades_to_cache_off(self, store_path):
        # A store failing mid-session (here: closed underneath, the same
        # error surface as disk-full or a lock timeout) must not abort
        # analyses that would succeed without any cache.
        store = SqliteStore(store_path)
        store.close()
        session = AnalysisSession(factory(), store=store)
        result = session.run(AnalysisRequest(Problem.CDPF))
        assert result.front is not None and not result.cache_hit
        # In-memory caching still works after degradation.
        assert session.run(AnalysisRequest(Problem.CDPF)).cache_hit
        assert session.stats.store_hits == 0

    def test_broken_store_degrades_process_batches_too(self, store_path):
        store = SqliteStore(store_path)
        store.close()
        session = AnalysisSession(factory(), store=store)
        requests = [AnalysisRequest(Problem.DGC, budget=b) for b in (1, 2)]
        results = session.run_batch(requests, executor="process")
        assert [result.value for result in results] == [200.0, 200.0]
