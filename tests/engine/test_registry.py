"""Tests for the capability-aware backend registry."""

import pytest

from repro.attacktree.catalog import (
    data_server,
    factory,
    factory_probabilistic,
    panda_iot,
)
from repro.attacktree.transform import with_unit_probabilities
from repro.core.problems import Problem
from repro.engine import (
    BackendRegistry,
    BackendRegistryError,
    BaseBackend,
    Capability,
    CapabilityError,
    Setting,
    Shape,
    UnknownBackendError,
    default_registry,
    standard_backends,
)

DETERMINISTIC = (Problem.CDPF, Problem.DGC, Problem.CGD)
PROBABILISTIC = (Problem.CEDPF, Problem.EDGC, Problem.CGED)


@pytest.fixture(scope="module")
def registry():
    return default_registry()


class TestTable1Resolution:
    """Auto-resolution must reproduce every cell of the paper's Table I."""

    @pytest.mark.parametrize("problem", DETERMINISTIC)
    def test_deterministic_tree_resolves_bottom_up(self, registry, problem):
        assert registry.resolve(problem, factory()).name == "bottom-up"

    @pytest.mark.parametrize("problem", DETERMINISTIC)
    def test_deterministic_dag_resolves_bilp(self, registry, problem):
        assert registry.resolve(problem, data_server()).name == "bilp"

    @pytest.mark.parametrize("problem", PROBABILISTIC)
    def test_probabilistic_tree_resolves_bottom_up(self, registry, problem):
        assert registry.resolve(problem, panda_iot()).name == "bottom-up"

    @pytest.mark.parametrize("problem", PROBABILISTIC)
    def test_probabilistic_dag_resolves_enumerative(self, registry, problem):
        model = with_unit_probabilities(data_server())
        assert registry.resolve(problem, model).name == "enumerative"

    def test_capability_report_matches_table1(self, registry):
        table = registry.capability_report()
        assert len(table) == 4
        assert "bottom-up" in table[("deterministic", "tree")]
        assert "BILP" in table[("deterministic", "dag")]
        assert "bottom-up" in table[("probabilistic", "tree")]
        assert "open problem" in table[("probabilistic", "dag")]

    def test_approximate_backends_never_auto_resolve(self, registry):
        """Genetic/Monte-Carlo cover many cells but require explicit opt-in."""
        for problem in DETERMINISTIC:
            for model in (factory(), data_server()):
                assert registry.resolve(problem, model).exact
        for problem in PROBABILISTIC:
            assert registry.resolve(problem, panda_iot()).exact


class TestExplicitSelection:
    def test_every_standard_backend_reachable_by_name(self, registry):
        for backend in standard_backends():
            assert registry.get(backend.name).name == backend.name

    def test_unknown_backend(self, registry):
        with pytest.raises(UnknownBackendError, match="unknown backend 'simplex'"):
            registry.resolve(Problem.CDPF, factory(), backend="simplex")

    def test_unknown_backend_lists_known_names(self, registry):
        with pytest.raises(UnknownBackendError, match="bottom-up"):
            registry.get("nope")

    def test_bilp_rejects_probabilistic_cells_with_domain_message(self, registry):
        with pytest.raises(CapabilityError, match="no BILP formulation"):
            registry.resolve(Problem.CEDPF, panda_iot(), backend="bilp")

    def test_bottom_up_rejects_dags_with_domain_message(self, registry):
        with pytest.raises(CapabilityError, match="treelike"):
            registry.resolve(Problem.CDPF, data_server(), backend="bottom-up")

    def test_prob_dag_rejects_deterministic_problems(self, registry):
        model = with_unit_probabilities(data_server())
        with pytest.raises(CapabilityError, match="probabilistic problems"):
            registry.resolve(Problem.CDPF, model, backend="prob-dag")

    def test_monte_carlo_rejects_deterministic_problems(self, registry):
        with pytest.raises(CapabilityError):
            registry.resolve(Problem.DGC, factory(), backend="monte-carlo")


class TestRegistration:
    def _dummy(self, name="dummy"):
        class Dummy(BaseBackend):
            pass

        backend = Dummy()
        backend.name = name
        backend.capabilities = frozenset(
            {Capability(Problem.CDPF, Shape.TREE, Setting.DETERMINISTIC)}
        )
        backend.priority = 1000
        return backend

    def test_register_and_resolve_custom_backend(self):
        registry = default_registry()
        registry.register(self._dummy())
        # Highest priority wins: the dummy now shadows bottom-up for CDPF/tree.
        assert registry.resolve(Problem.CDPF, factory()).name == "dummy"
        # Other cells are untouched.
        assert registry.resolve(Problem.DGC, factory()).name == "bottom-up"

    def test_duplicate_name_rejected_without_replace(self):
        registry = default_registry()
        registry.register(self._dummy())
        with pytest.raises(BackendRegistryError, match="already registered"):
            registry.register(self._dummy())
        registry.register(self._dummy(), replace=True)

    def test_unregister(self):
        registry = default_registry()
        registry.unregister("genetic")
        assert "genetic" not in registry
        with pytest.raises(UnknownBackendError):
            registry.get("genetic")

    def test_empty_registry_reports_uncovered_cell(self):
        registry = BackendRegistry()
        with pytest.raises(CapabilityError, match="no exact backend"):
            registry.resolve(Problem.CDPF, factory())

    def test_uncovered_cell_hints_at_approximate_backends(self):
        registry = BackendRegistry()
        for backend in standard_backends():
            if not backend.exact:
                registry.register(backend)
        with pytest.raises(CapabilityError, match="genetic"):
            registry.resolve(Problem.CDPF, factory())


class TestWrongSettingModels:
    """Problem/model mismatches must keep the library's canonical errors."""

    def test_probabilistic_problem_on_deterministic_model(self, registry):
        from repro.engine import run_request, AnalysisRequest

        with pytest.raises(TypeError, match="cdp-AT"):
            run_request(factory(), AnalysisRequest(Problem.CEDPF), registry)

    def test_setting_mismatch_caught_at_resolution_time(self, registry):
        """Pre-flight validators rely on resolve() rejecting this early."""
        with pytest.raises(TypeError, match="cdp-AT"):
            registry.resolve(Problem.CEDPF, factory())
        with pytest.raises(TypeError, match="cdp-AT"):
            registry.resolve(Problem.EDGC, factory(), backend="enumerative")

    def test_deterministic_problem_on_probabilistic_model_projects(self, registry):
        from repro.engine import run_request, AnalysisRequest

        result = run_request(factory_probabilistic(), AnalysisRequest(Problem.CDPF), registry)
        assert result.front.values() == [(0, 0), (1, 200), (3, 210), (5, 310)]
