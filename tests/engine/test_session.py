"""Tests for AnalysisSession: caching, batches, backend reachability."""

import pytest

from repro.attacktree.builder import AttackTreeBuilder
from repro.attacktree.catalog import data_server, factory, panda_iot
from repro.core.problems import Problem
from repro.engine import AnalysisRequest, AnalysisSession, model_fingerprint


def small_prob_dag():
    """A tiny probabilistic DAG (shared BAS under two gates)."""
    builder = AttackTreeBuilder()
    builder.bas("a", cost=1, probability=0.5)
    builder.bas("b", cost=2, damage=5, probability=0.8)
    builder.and_gate("g1", ["a", "b"], damage=10)
    builder.and_gate("g2", ["a"], damage=3)
    builder.or_gate("root", ["g1", "g2"], damage=20)
    return builder.build_cdp(root="root")


class TestCaching:
    def test_repeat_request_hits_cache(self):
        session = AnalysisSession(factory())
        first = session.run(AnalysisRequest(Problem.CDPF))
        second = session.run(AnalysisRequest(Problem.CDPF))
        assert not first.cache_hit
        assert second.cache_hit
        assert second.front is first.front
        assert session.stats.hits == 1 and session.stats.misses == 1

    def test_distinct_parameters_miss(self):
        session = AnalysisSession(factory())
        session.run(AnalysisRequest(Problem.DGC, budget=2))
        session.run(AnalysisRequest(Problem.DGC, budget=3))
        assert session.stats.misses == 2 and session.stats.hits == 0

    def test_distinct_backends_miss(self):
        session = AnalysisSession(factory())
        auto = session.run(AnalysisRequest(Problem.CDPF))
        forced = session.run(AnalysisRequest(Problem.CDPF, backend="enumerative"))
        assert not forced.cache_hit
        assert auto.front.values() == forced.front.values()

    def test_clear_cache_invalidates(self):
        session = AnalysisSession(factory())
        session.run(AnalysisRequest(Problem.CDPF))
        assert session.clear_cache() == 1
        again = session.run(AnalysisRequest(Problem.CDPF))
        assert not again.cache_hit

    def test_fingerprint_distinguishes_decorations(self):
        builder = AttackTreeBuilder()
        builder.bas("a", cost=1, damage=5)
        builder.or_gate("r", ["a"])
        cheap = builder.build_cd(root="r")
        builder2 = AttackTreeBuilder()
        builder2.bas("a", cost=2, damage=5)
        builder2.or_gate("r", ["a"])
        expensive = builder2.build_cd(root="r")
        assert model_fingerprint(cheap) != model_fingerprint(expensive)
        assert model_fingerprint(cheap) == model_fingerprint(cheap)

    def test_mutating_extras_does_not_corrupt_cache(self):
        session = AnalysisSession(small_prob_dag())
        request = AnalysisRequest(
            Problem.CEDPF, backend="monte-carlo", options={"samples_per_attack": 50}
        )
        first = session.run(request)
        first.extras.clear()
        session.cached_results()[0].extras.clear()
        second = session.run(request)
        assert second.cache_hit
        assert second.extras["standard_errors"]

    def test_sessions_on_same_model_share_keys_not_results(self):
        one, two = AnalysisSession(factory()), AnalysisSession(factory())
        assert one.fingerprint == two.fingerprint
        one.run(AnalysisRequest(Problem.CDPF))
        assert not two.run(AnalysisRequest(Problem.CDPF)).cache_hit


class TestBatch:
    def _requests(self):
        return [
            AnalysisRequest(Problem.CDPF),
            AnalysisRequest(Problem.DGC, budget=2),
            AnalysisRequest(Problem.CGD, threshold=300),
            AnalysisRequest(Problem.CDPF, backend="enumerative"),
        ]

    def test_batch_matches_sequential(self):
        sequential = AnalysisSession(factory())
        batched = AnalysisSession(factory())
        expected = [sequential.run(r) for r in self._requests()]
        actual = batched.run_batch(self._requests())
        assert len(actual) == len(expected)
        for got, want in zip(actual, expected):
            assert got.backend == want.backend
            assert got.value == want.value
            assert got.witness == want.witness
            if want.front is None:
                assert got.front is None
            else:
                assert got.front.values() == want.front.values()

    def test_parallel_batch_matches_sequential(self):
        sequential = AnalysisSession(panda_iot())
        parallel = AnalysisSession(panda_iot())
        requests = [
            AnalysisRequest(Problem.CDPF),
            AnalysisRequest(Problem.CEDPF),
            AnalysisRequest(Problem.EDGC, budget=7),
            AnalysisRequest(Problem.CGED, threshold=25),
        ]
        expected = [sequential.run(r) for r in requests]
        actual = parallel.run_batch(requests, parallel=True, max_workers=4)
        for got, want in zip(actual, expected):
            assert got.backend == want.backend
            assert got.value == pytest.approx(want.value) if want.value is not None \
                else got.value is None
            if want.front is not None:
                assert got.front.values() == want.front.values()

    def test_batch_preserves_order(self):
        session = AnalysisSession(factory())
        budgets = [0, 1, 2, 3, 4, 5]
        results = session.run_batch(
            [AnalysisRequest(Problem.DGC, budget=b) for b in budgets], parallel=True
        )
        assert [r.request.budget for r in results] == budgets
        assert [r.value for r in results] == [0, 200, 200, 210, 210, 310]

    def test_empty_batch(self):
        assert AnalysisSession(factory()).run_batch([]) == []


class TestMetadata:
    def test_result_metadata_fields(self):
        session = AnalysisSession(data_server())
        result = session.run(AnalysisRequest(Problem.CDPF))
        assert result.backend == "bilp"
        assert result.shape == "dag"
        assert result.setting == "deterministic"
        assert result.wall_time_seconds > 0
        assert result.node_count == len(data_server().tree)
        assert result.bas_count == 12

    def test_summary_mentions_backend_and_problem(self):
        session = AnalysisSession(factory())
        text = session.run(AnalysisRequest(Problem.CDPF)).summary()
        assert "cdpf" in text and "bottom-up" in text


class TestAllProblemsViaRegistryAlone:
    """Acceptance: all six problems + three extension solvers through the
    session with no Method-enum dispatch anywhere on the path."""

    def test_six_problems_on_panda(self):
        session = AnalysisSession(panda_iot())
        results = session.run_batch(
            [
                AnalysisRequest(Problem.CDPF),
                AnalysisRequest(Problem.DGC, budget=7),
                AnalysisRequest(Problem.CGD, threshold=60),
                AnalysisRequest(Problem.CEDPF),
                AnalysisRequest(Problem.EDGC, budget=7),
                AnalysisRequest(Problem.CGED, threshold=25),
            ]
        )
        cdpf, dgc, cgd, cedpf, edgc, cged = results
        assert cdpf.front.max_damage_given_cost(7) == 65
        assert dgc.value == 65
        assert cgd.value == 7
        assert cedpf.front.max_damage_given_cost(3) == pytest.approx(18.0)
        assert edgc.value == pytest.approx(27.555)
        assert cged.value == 7
        assert {r.backend for r in results} == {"bottom-up"}

    def test_genetic_backend_reachable(self):
        session = AnalysisSession(factory())
        result = session.run(
            AnalysisRequest(
                Problem.CDPF,
                backend="genetic",
                options={"generations": 20, "population_size": 32},
            )
        )
        assert result.backend == "genetic"
        assert result.extras.get("approximate") is True
        # NSGA-II recovers the tiny factory front exactly.
        exact = session.run(AnalysisRequest(Problem.CDPF)).front
        assert result.front.values() == exact.values()

    def test_prob_dag_backend_reachable(self):
        session = AnalysisSession(small_prob_dag())
        result = session.run(AnalysisRequest(Problem.CEDPF, backend="prob-dag"))
        assert result.backend == "prob-dag"
        enumerated = session.run(
            AnalysisRequest(Problem.CEDPF, backend="enumerative")
        )
        assert result.front.values_equal(enumerated.front)

    def test_prob_dag_backend_guards_large_models(self):
        session = AnalysisSession(small_prob_dag())
        with pytest.raises(ValueError, match="limit is 2\\^1"):
            session.run(
                AnalysisRequest(Problem.CEDPF, backend="prob-dag", options={"max_bas": 1})
            )

    def test_monte_carlo_backend_reachable(self):
        session = AnalysisSession(small_prob_dag())
        result = session.run(
            AnalysisRequest(
                Problem.CEDPF,
                backend="monte-carlo",
                options={"samples_per_attack": 4000, "seed": 1},
            )
        )
        assert result.backend == "monte-carlo"
        errors = result.extras["standard_errors"]
        assert errors and all(e["samples"] == 4000 for e in errors)
        exact = session.run(AnalysisRequest(Problem.CEDPF, backend="prob-dag"))
        # Every exact point should be approximated within a loose tolerance.
        for cost, damage in exact.front.values():
            close = [
                v for v in result.front.values()
                if abs(v[0] - cost) < 1e-9 and abs(v[1] - damage) < 1.0
            ]
            assert close, f"no Monte-Carlo point near ({cost}, {damage})"

    def test_monte_carlo_edgc_close_to_exact(self):
        session = AnalysisSession(small_prob_dag())
        exact = session.run(AnalysisRequest(Problem.EDGC, budget=3, backend="prob-dag"))
        sampled = session.run(
            AnalysisRequest(
                Problem.EDGC,
                budget=3,
                backend="monte-carlo",
                options={"samples_per_attack": 8000},
            )
        )
        assert sampled.value == pytest.approx(exact.value, abs=1.0)


class TestWrongRequests:
    def test_budget_required(self):
        with pytest.raises(ValueError, match="requires a cost budget"):
            AnalysisSession(factory()).run(AnalysisRequest(Problem.DGC))

    def test_threshold_required(self):
        with pytest.raises(ValueError, match="requires a damage threshold"):
            AnalysisSession(factory()).run(AnalysisRequest(Problem.CGD))

    def test_probabilistic_problem_needs_cdp_model(self):
        with pytest.raises(TypeError, match="cdp-AT"):
            AnalysisSession(factory()).run(AnalysisRequest(Problem.CEDPF))

    def test_unknown_backend_via_session(self):
        with pytest.raises(ValueError, match="unknown backend"):
            AnalysisSession(factory()).run(
                AnalysisRequest(Problem.CDPF, backend="quantum")
            )

    def test_typoed_option_key_rejected(self):
        """'samples' (a typo for samples_per_attack) must not be silently
        ignored and run with the 2000-sample default."""
        session = AnalysisSession(small_prob_dag())
        with pytest.raises(ValueError, match="samples_per_attack"):
            session.run(
                AnalysisRequest(
                    Problem.CEDPF, backend="monte-carlo", options={"samples": 5}
                )
            )

    def test_option_for_optionless_backend_rejected(self):
        with pytest.raises(ValueError, match="does not accept option"):
            AnalysisSession(factory()).run(
                AnalysisRequest(Problem.CDPF, options={"weights": (1, 2)})
            )

    def test_wrongly_typed_option_value_rejected(self):
        session = AnalysisSession(small_prob_dag())
        with pytest.raises(ValueError, match="must be int"):
            session.run(
                AnalysisRequest(
                    Problem.CEDPF,
                    backend="monte-carlo",
                    options={"samples_per_attack": "lots"},
                )
            )
