"""JSON round-trip tests for AnalysisRequest / AnalysisResult."""

import json

import pytest

from repro.attacktree.catalog import factory, factory_probabilistic, panda_iot
from repro.core.problems import Problem
from repro.engine import AnalysisRequest, AnalysisResult, AnalysisSession


class TestRequestRoundTrip:
    def test_minimal_request(self):
        request = AnalysisRequest(Problem.CDPF)
        restored = AnalysisRequest.from_json(request.to_json())
        assert restored == request
        assert restored.cache_key() == request.cache_key()

    def test_full_request(self):
        request = AnalysisRequest(
            Problem.EDGC,
            budget=7.5,
            backend="monte-carlo",
            options={"samples_per_attack": 500, "seed": 3},
        )
        restored = AnalysisRequest.from_json(request.to_json())
        assert restored == request
        assert restored.option("seed") == 3
        assert restored.options_dict() == {"samples_per_attack": 500, "seed": 3}

    def test_problem_accepts_string_value(self):
        assert AnalysisRequest("cgd", threshold=2).problem is Problem.CGD

    def test_options_mapping_is_canonicalized(self):
        a = AnalysisRequest(Problem.CDPF, options={"x": 1, "y": 2})
        b = AnalysisRequest(Problem.CDPF, options={"y": 2, "x": 1})
        assert a == b and hash(a) == hash(b)

    def test_unknown_fields_rejected(self):
        with pytest.raises(ValueError, match="unknown request fields"):
            AnalysisRequest.from_dict({"problem": "cdpf", "bugdet": 3})

    def test_array_option_values_stay_hashable(self):
        """JSON arrays in options must not break the session cache."""
        request = AnalysisRequest(Problem.CDPF, options={"weights": [1, 2]})
        assert hash(request) == hash(AnalysisRequest.from_json(request.to_json()))
        assert request.option("weights") == (1, 2)

    def test_nested_object_option_values_rejected_eagerly(self):
        with pytest.raises(ValueError, match="option 'cfg'"):
            AnalysisRequest(Problem.CDPF, options={"cfg": {"a": 1}})
        with pytest.raises(ValueError, match="option 'cfg'"):
            AnalysisRequest.from_dict(
                {"problem": "cdpf", "options": {"cfg": {"a": 1}}}
            )

    def test_missing_problem_rejected(self):
        with pytest.raises(ValueError, match="missing the 'problem'"):
            AnalysisRequest.from_dict({"budget": 3})

    def test_non_numeric_budget_rejected(self):
        with pytest.raises(ValueError, match="budget must be a number"):
            AnalysisRequest.from_dict({"problem": "dgc", "budget": "2"})
        with pytest.raises(ValueError, match="threshold must be a number"):
            AnalysisRequest(Problem.CGD, threshold=True)

    def test_non_string_backend_rejected(self):
        with pytest.raises(ValueError, match="backend must be a string"):
            AnalysisRequest.from_dict({"problem": "cdpf", "backend": 3})


class TestResultRoundTrip:
    def test_front_result(self):
        session = AnalysisSession(factory())
        result = session.run(AnalysisRequest(Problem.CDPF))
        restored = AnalysisResult.from_json(result.to_json())
        assert restored.request == result.request
        assert restored.backend == result.backend
        assert restored.shape == result.shape and restored.setting == result.setting
        assert restored.front.values() == result.front.values()
        assert [p.attack for p in restored.front] == [p.attack for p in result.front]
        assert restored.node_count == result.node_count
        assert restored.bas_count == result.bas_count
        assert restored.wall_time_seconds == result.wall_time_seconds

    def test_value_result(self):
        session = AnalysisSession(panda_iot())
        result = session.run(AnalysisRequest(Problem.EDGC, budget=7))
        restored = AnalysisResult.from_json(result.to_json())
        assert restored.value == pytest.approx(result.value)
        assert restored.witness == result.witness
        assert restored.front is None

    def test_unreachable_threshold_result(self):
        session = AnalysisSession(factory())
        result = session.run(AnalysisRequest(Problem.CGD, threshold=99999))
        assert result.value is None
        restored = AnalysisResult.from_json(result.to_json())
        assert restored.value is None and restored.witness is None

    def test_extras_survive(self):
        session = AnalysisSession(factory_probabilistic())
        result = session.run(
            AnalysisRequest(
                Problem.CEDPF,
                backend="monte-carlo",
                options={"samples_per_attack": 50},
            )
        )
        restored = AnalysisResult.from_json(result.to_json())
        assert restored.extras["approximate"] is True
        assert len(restored.extras["standard_errors"]) == len(
            result.extras["standard_errors"]
        )

    def test_json_is_plain_data(self):
        """The wire format must be stock JSON: no custom encoder needed."""
        session = AnalysisSession(factory())
        batch = session.run_batch(
            [AnalysisRequest(Problem.CDPF), AnalysisRequest(Problem.DGC, budget=2)]
        )
        payload = json.dumps([r.to_dict() for r in batch])
        parsed = json.loads(payload)
        assert [AnalysisResult.from_dict(entry).backend for entry in parsed] == [
            "bottom-up",
            "bottom-up",
        ]
