"""Command-line interface for cost-damage analysis of attack trees.

Installed as the ``atcd`` console script.  Sub-commands:

``atcd analyze MODEL.json``
    Print the model summary, the Pareto front and the critical-BAS report.
``atcd pareto MODEL.json [--probabilistic] [--method ...] [--backend ...]``
    Print only the Pareto front (CDPF or CEDPF).
``atcd dgc MODEL.json --budget U`` / ``atcd cgd MODEL.json --threshold L``
    Solve the single-objective problems.
``atcd batch MODEL.json REQUESTS.json [--parallel] [--out FILE] [--store DB]``
    Execute a JSON list of analysis requests through one
    :class:`~repro.engine.AnalysisSession` and emit the results as JSON —
    the service-style entry point of the engine.  With ``--store`` the
    session reads through and writes back to a shared sqlite result store.
``atcd backends``
    List the registered solver backends and their capabilities.
``atcd store stats|prune DB``
    Inspect or empty a shared result store
    (see :mod:`repro.engine.store`).
``atcd bench run [--profile NAME] [--out FILE] [--executor ...] [--store DB]``
    Execute a benchmark profile through the engine and write a versioned
    ``BENCH_*.json`` artifact (see ``benchmarks/DESIGN.md``).  With
    ``--store`` repeated runs serve unchanged cases from the shared store.
``atcd bench compare BASELINE.json CANDIDATE.json [--threshold R]``
    Diff two artifacts; exits 1 when a timing regression or result
    mismatch is found.
``atcd bench list``
    Show the registered workload families and benchmark profiles.
``atcd catalog NAME [--out FILE]``
    Export one of the built-in case-study models (factory, panda-iot,
    data-server) as JSON, for use as a starting point.
``atcd experiments [--quick]``
    Run the paper's case-study experiments and print the comparison against
    the published fronts.

Models are the JSON documents produced by
:mod:`repro.attacktree.serialization`.  Requests/results are the JSON
representations of :class:`repro.engine.AnalysisRequest` /
:class:`repro.engine.AnalysisResult`.
"""

from __future__ import annotations

import argparse
import json
import sys
from typing import Optional, Sequence

from .attacktree import catalog, serialization
from .attacktree.attributes import CostDamageAT, CostDamageProbAT
from .core.analysis import CostDamageAnalyzer
from .core.problems import Method, Problem
from .engine import AnalysisRequest, AnalysisSession, SqliteStore, shared_registry
from .engine.store import open_store
from .experiments import casestudies
from .experiments.report import format_pareto_front

__all__ = ["main", "build_parser"]

_CATALOG = {
    "factory": catalog.factory,
    "factory-probabilistic": catalog.factory_probabilistic,
    "panda-iot": catalog.panda_iot,
    "data-server": catalog.data_server,
}

#: Subcommands whose ValueError/TypeError failures are user errors (bad
#: backend name, uncovered cell, missing parameter, malformed request,
#: unknown bench profile/executor, invalid artifact, unusable store file).
_ENGINE_COMMANDS = frozenset({"pareto", "dgc", "cgd", "batch", "bench", "store"})


def build_parser() -> argparse.ArgumentParser:
    """Build the argument parser (exposed for tests and documentation)."""
    parser = argparse.ArgumentParser(
        prog="atcd",
        description="Cost-damage analysis of attack trees (DSN 2023 reproduction)",
    )
    subparsers = parser.add_subparsers(dest="command", required=True)

    analyze = subparsers.add_parser("analyze", help="full report for a model")
    analyze.add_argument("model", help="path to a JSON attack-tree model")
    analyze.add_argument("--probabilistic", action="store_true",
                         help="use expected damage (requires probabilities)")

    pareto = subparsers.add_parser("pareto", help="print the Pareto front")
    pareto.add_argument("model", help="path to a JSON attack-tree model")
    pareto.add_argument("--probabilistic", action="store_true")
    pareto.add_argument("--method", choices=[m.value for m in Method],
                        default=Method.AUTO.value,
                        help="legacy algorithm selector (auto follows Table I)")
    pareto.add_argument("--backend", default=None,
                        help="force a registered engine backend by name "
                             "(overrides --method; see 'atcd backends')")
    pareto.add_argument("--plot", action="store_true",
                        help="also render the front as an ASCII plot")

    dgc = subparsers.add_parser("dgc", help="max damage given a cost budget")
    dgc.add_argument("model")
    dgc.add_argument("--budget", type=float, required=True)
    dgc.add_argument("--probabilistic", action="store_true")
    dgc.add_argument("--backend", default=None)

    cgd = subparsers.add_parser("cgd", help="min cost given a damage threshold")
    cgd.add_argument("model")
    cgd.add_argument("--threshold", type=float, required=True)
    cgd.add_argument("--probabilistic", action="store_true")
    cgd.add_argument("--backend", default=None)

    batch = subparsers.add_parser(
        "batch", help="run a JSON list of analysis requests against one model"
    )
    batch.add_argument("model", help="path to a JSON attack-tree model")
    batch.add_argument("requests", help="path to a JSON list of request objects")
    batch.add_argument("--parallel", action="store_true",
                       help="execute the batch on a thread pool")
    batch.add_argument("--out", default=None, help="output path (default: stdout)")
    batch.add_argument("--store", default=None, metavar="DB",
                       help="shared sqlite result store to read through and "
                            "write back to (created if absent)")

    subparsers.add_parser("backends", help="list registered solver backends")

    store_cmd = subparsers.add_parser(
        "store", help="inspect or prune a shared result store"
    )
    store_sub = store_cmd.add_subparsers(dest="store_command", required=True)
    store_stats = store_sub.add_parser(
        "stats", help="entry counts and layout of a store file"
    )
    store_stats.add_argument("path", help="path to a result-store sqlite file")
    store_prune = store_sub.add_parser(
        "prune", help="delete stored results (all, or one model's)"
    )
    store_prune.add_argument("path", help="path to a result-store sqlite file")
    store_prune.add_argument("--fingerprint", default=None, metavar="SHA256",
                             help="only prune results of this model fingerprint "
                                  "(default: prune everything)")

    bench = subparsers.add_parser(
        "bench", help="run and compare workload benchmarks"
    )
    bench_sub = bench.add_subparsers(dest="bench_command", required=True)
    bench_run = bench_sub.add_parser(
        "run", help="execute a benchmark profile and write a BENCH_*.json artifact"
    )
    bench_run.add_argument("--profile", default="smoke",
                           help="profile name (see 'atcd bench list'; default: smoke)")
    bench_run.add_argument("--out", default=None,
                           help="artifact path (default: BENCH_<profile>.json)")
    bench_run.add_argument("--executor", default="sequential",
                           help="sequential, thread or process (default: sequential)")
    bench_run.add_argument("--max-workers", type=int, default=None,
                           help="pool size for the parallel executors")
    bench_run.add_argument("--repeats", type=int, default=1,
                           help="timing repetitions per case (default: 1)")
    bench_run.add_argument("--store", default=None, metavar="DB",
                           help="shared sqlite result store; repeated runs "
                                "and pool workers share results through it "
                                "(created if absent)")
    bench_compare = bench_sub.add_parser(
        "compare", help="diff two artifacts for regressions"
    )
    bench_compare.add_argument("baseline", help="baseline BENCH_*.json")
    bench_compare.add_argument("candidate", help="candidate BENCH_*.json")
    bench_compare.add_argument("--threshold", type=float, default=0.25,
                               help="relative slowdown flagged as regression "
                                    "(default: 0.25)")
    bench_compare.add_argument("--min-seconds", type=float, default=0.005,
                               help="ignore runs where both sides are faster "
                                    "than this (default: 0.005)")
    bench_sub.add_parser("list", help="list workload families and profiles")

    catalog_cmd = subparsers.add_parser("catalog", help="export a built-in model")
    catalog_cmd.add_argument("name", choices=sorted(_CATALOG))
    catalog_cmd.add_argument("--out", default=None, help="output path (default: stdout)")

    experiments = subparsers.add_parser(
        "experiments", help="run the paper's case-study experiments"
    )
    experiments.add_argument("--quick", action="store_true",
                             help="skip nothing here; accepted for symmetry")
    return parser


def _load_model(path: str):
    model = serialization.load_json(path)
    if not isinstance(model, (CostDamageAT, CostDamageProbAT)):
        raise SystemExit(
            f"{path} describes a bare attack tree without cost/damage decorations"
        )
    return model


def _backend_name(args: argparse.Namespace) -> Optional[str]:
    """Resolve --backend / --method flags into an engine backend name."""
    backend = getattr(args, "backend", None)
    if backend is not None:
        return backend
    method = Method(getattr(args, "method", Method.AUTO.value))
    from .core.problems import _METHOD_TO_BACKEND

    return _METHOD_TO_BACKEND.get(method)


def _command_analyze(args: argparse.Namespace) -> int:
    model = _load_model(args.model)
    analyzer = CostDamageAnalyzer(model)
    print(analyzer.report(probabilistic=args.probabilistic))
    return 0


def _command_pareto(args: argparse.Namespace) -> int:
    session = AnalysisSession(_load_model(args.model))
    problem = Problem.CEDPF if args.probabilistic else Problem.CDPF
    result = session.run(AnalysisRequest(problem, backend=_backend_name(args)))
    print(format_pareto_front(result.front))
    if args.plot:
        from .pareto.plot import ascii_front

        print()
        label = "cost-expected-damage" if args.probabilistic else "cost-damage"
        print(ascii_front(result.front, title=f"{label} Pareto front"))
    return 0


def _command_dgc(args: argparse.Namespace) -> int:
    session = AnalysisSession(_load_model(args.model))
    problem = Problem.EDGC if args.probabilistic else Problem.DGC
    result = session.run(
        AnalysisRequest(problem, budget=args.budget, backend=_backend_name(args))
    )
    witness = "{}" if not result.witness else "{" + ", ".join(sorted(result.witness)) + "}"
    label = "expected damage" if args.probabilistic else "damage"
    print(f"max {label} within budget {args.budget:g}: {result.value:g}")
    print(f"witness attack: {witness}")
    return 0


def _command_cgd(args: argparse.Namespace) -> int:
    session = AnalysisSession(_load_model(args.model))
    problem = Problem.CGED if args.probabilistic else Problem.CGD
    result = session.run(
        AnalysisRequest(problem, threshold=args.threshold, backend=_backend_name(args))
    )
    if result.value is None:
        print(f"no attack reaches damage {args.threshold:g}")
        return 1
    witness = "{}" if not result.witness else "{" + ", ".join(sorted(result.witness)) + "}"
    print(f"min cost reaching damage {args.threshold:g}: {result.value:g}")
    print(f"witness attack: {witness}")
    return 0


def _command_batch(args: argparse.Namespace) -> int:
    store = SqliteStore(args.store) if args.store else None
    try:
        return _run_batch_command(args, store)
    finally:
        if store is not None:
            store.close()


def _run_batch_command(
    args: argparse.Namespace, store: Optional[SqliteStore]
) -> int:
    session = AnalysisSession(_load_model(args.model), store=store)
    with open(args.requests, "r", encoding="utf-8") as handle:
        payload = json.load(handle)
    if not isinstance(payload, list):
        print(f"atcd: {args.requests} must contain a JSON list of requests",
              file=sys.stderr)
        return 2
    # Parse and validate the whole batch up front — field types, parameters,
    # backend resolution AND backend options: a malformed entry, missing
    # budget, bogus backend name, typo'd option, or a problem the model
    # cannot support must not abort after the earlier analyses already ran.
    requests = []
    for index, entry in enumerate(payload):
        try:
            request = AnalysisRequest.from_dict(entry)
            request.validate()
            backend = session.resolve(request.problem, backend=request.backend)
            backend.validate_options(request)
        except (ValueError, TypeError) as error:
            # Same format and exit code as engine errors on the other
            # subcommands, plus the offending entry's index.
            print(f"atcd: {args.requests}[{index}]: {error}", file=sys.stderr)
            return 2
        requests.append(request)
    results = session.run_batch(requests, parallel=args.parallel)
    try:
        text = json.dumps([result.to_dict() for result in results], indent=2)
    except TypeError as error:
        # A result that does not serialize (e.g. a third-party backend put a
        # non-JSON object in extras) is an internal bug, not a user error:
        # re-raise outside main()'s user-error net so the traceback survives.
        raise RuntimeError(
            f"internal error serializing batch results: {error}"
        ) from error
    if args.out:
        with open(args.out, "w", encoding="utf-8") as handle:
            handle.write(text)
        print(f"wrote {len(results)} results to {args.out}")
    else:
        print(text)
    for result in results:
        print(result.summary(), file=sys.stderr)
    return 0


def _command_bench(args: argparse.Namespace) -> int:
    # Imported lazily: the bench stack pulls in the workload generators,
    # which the other subcommands never need.
    from . import bench
    from .workloads import describe_families

    if args.bench_command == "list":
        print("workload families:")
        print(describe_families())
        print()
        print("profiles:")
        print(bench.describe_profiles())
        return 0
    if args.bench_command == "compare":
        baseline = bench.load_artifact(args.baseline)
        candidate = bench.load_artifact(args.candidate)
        report = bench.compare_artifacts(
            baseline, candidate,
            threshold=args.threshold, min_seconds=args.min_seconds,
        )
        print(report.render())
        return 0 if report.ok else 1
    # bench run
    specs = bench.profile(args.profile)
    runs = bench.execute_specs(
        specs,
        executor=args.executor,
        max_workers=args.max_workers,
        repeats=args.repeats,
        store_path=args.store,
    )
    artifact = bench.build_artifact(
        args.profile,
        specs,
        runs,
        config={
            "profile": args.profile,
            "executor": args.executor,
            "max_workers": args.max_workers,
            "repeats": args.repeats,
            "store": args.store,
        },
    )
    out = args.out or f"BENCH_{args.profile}.json"
    bench.write_artifact(artifact, out)
    totals = artifact["totals"]
    print(
        f"wrote {out}: {totals['cases']} cases over "
        f"{len(totals['families'])} families "
        f"({', '.join(totals['families'])}), "
        f"shapes {', '.join(totals['shapes'])}, "
        f"settings {', '.join(totals['settings'])}, "
        f"total solver time {totals['wall_time_seconds']:.2f}s"
    )
    for run in runs:
        print(
            f"  {run.case_id:<55} {run.problem:<6} via {run.backend:<12} "
            f"{run.wall_time_seconds * 1e3:9.2f} ms  "
            f"points={run.result_points}",
            file=sys.stderr,
        )
    return 0


def _command_store(args: argparse.Namespace) -> int:
    # Inspection must not conjure an empty store out of a typo'd path.
    with open_store(args.path, must_exist=True) as store:
        if args.store_command == "stats":
            summary = store.summary()
            print(f"store {summary['path']}")
            print(f"  schema version : {summary['schema_version']}")
            print(f"  entries        : {summary['entries']}")
            print(f"  models         : {summary['models']}")
            print(f"  size           : {summary['size_bytes']} bytes")
            if summary["by_problem_backend"]:
                print("  by problem/backend:")
                for cell, count in summary["by_problem_backend"].items():
                    print(f"    {cell:<24} {count}")
            return 0
        # store prune
        dropped = store.prune(fingerprint=args.fingerprint)
        scope = (
            f"model {args.fingerprint}" if args.fingerprint else "all models"
        )
        print(f"pruned {dropped} results ({scope}) from {args.path}")
        return 0


def _command_backends(args: argparse.Namespace) -> int:
    registry = shared_registry()
    print(registry.describe())
    print()
    print("Table I resolution:")
    for (setting, shape), label in sorted(registry.capability_report().items()):
        print(f"  {setting:<14} {shape:<5} -> {label}")
    return 0


def _command_catalog(args: argparse.Namespace) -> int:
    model = _CATALOG[args.name]()
    text = serialization.to_json(model)
    if args.out:
        with open(args.out, "w", encoding="utf-8") as handle:
            handle.write(text)
        print(f"wrote {args.name} to {args.out}")
    else:
        print(text)
    return 0


def _command_experiments(args: argparse.Namespace) -> int:
    results = casestudies.run_all_case_studies()
    all_match = True
    for key, result in results.items():
        print(result.render())
        print()
        all_match = all_match and result.exact_match
    print(f"all published points reproduced: {all_match}")
    return 0 if all_match else 1


def main(argv: Optional[Sequence[str]] = None) -> int:
    """CLI entry point; returns a process exit code."""
    parser = build_parser()
    args = parser.parse_args(argv)
    handlers = {
        "analyze": _command_analyze,
        "pareto": _command_pareto,
        "dgc": _command_dgc,
        "cgd": _command_cgd,
        "batch": _command_batch,
        "backends": _command_backends,
        "bench": _command_bench,
        "store": _command_store,
        "catalog": _command_catalog,
        "experiments": _command_experiments,
    }
    if args.command not in _ENGINE_COMMANDS:
        return handlers[args.command](args)
    try:
        return handlers[args.command](args)
    except (ValueError, TypeError) as error:
        # Engine/request errors (unknown backend, uncovered capability cell,
        # missing parameter, wrong model kind, malformed request JSON) are
        # user errors on these subcommands: report them as one line, not a
        # traceback.  Other subcommands run unwrapped so genuine internal
        # failures keep their stack traces.
        print(f"atcd: {error}", file=sys.stderr)
        return 2


if __name__ == "__main__":  # pragma: no cover
    sys.exit(main())
