"""Command-line interface for cost-damage analysis of attack trees.

Installed as the ``atcd`` console script.  Sub-commands:

``atcd analyze MODEL.json``
    Print the model summary, the Pareto front and the critical-BAS report.
``atcd pareto MODEL.json [--probabilistic] [--method ...] [--backend ...]``
    Print only the Pareto front (CDPF or CEDPF).
``atcd dgc MODEL.json --budget U`` / ``atcd cgd MODEL.json --threshold L``
    Solve the single-objective problems.
``atcd batch MODEL.json REQUESTS.json [--parallel] [--out FILE] [--store DB]``
    Execute a JSON list of analysis requests through one
    :class:`~repro.engine.AnalysisSession` and emit the results as JSON —
    the service-style entry point of the engine.  With ``--store`` the
    session reads through and writes back to a shared sqlite result store.
``atcd backends``
    List the registered solver backends and their capabilities.
``atcd store stats|prune DB``
    Inspect or empty a shared result store (see :mod:`repro.engine.store`);
    ``prune --ttl SECONDS`` / ``--max-bytes N`` evict oldest-first instead
    of emptying, for long-lived deployments.
``atcd bench run [--profile NAME] [--out FILE] [--executor ...] [--store DB]``
    Execute a benchmark profile through the engine and write a versioned
    ``BENCH_*.json`` artifact (see ``benchmarks/DESIGN.md``).  With
    ``--store`` repeated runs serve unchanged cases from the shared store;
    ``--trace-memory`` records per-case peak allocation as ``peak_kb``.
``atcd dist submit|worker|run|status|gather|resubmit``
    Distributed execution over a durable work queue
    (see :mod:`repro.distributed`).  ``dist run`` is the single-host mode
    (coordinator plus N local worker processes); ``submit``/``worker``
    split the same run across hosts sharing the queue file, with
    ``status``/``gather`` usable from anywhere; ``resubmit`` re-queues
    dead-lettered tasks with a fresh retry budget.  Every ``--queue`` and
    ``--store`` accepts either a sqlite path or an ``atcd serve`` broker
    URL (``http://host:port``) — the latter needs no shared filesystem.
``atcd serve --queue DB --store DB [--host H] [--port P] [--token T]``
    Serve a work queue and/or result store over HTTP (the network broker,
    see :mod:`repro.net`), so shared-nothing hosts can run workers
    against ``http://host:port`` queue/store URLs.  With ``--root DIR``
    the broker hosts many *named* queues (``DIR/<name>.queue.sqlite``)
    instead of one ``--queue`` file; clients address them as
    ``http://host:port/queues/<name>``.  ``--access-log PATH|-`` writes
    one structured JSON line per request.
``atcd queue create|list|drop TARGET [NAME]``
    Manage the named queues of a multi-queue root.  TARGET is either a
    ``--root`` directory (managed directly) or a running ``--root``
    broker's URL (managed over HTTP).
``atcd api --queue DB|URL --keys FILE [--workers N] [--store DB|URL]``
    Serve the multi-tenant analysis API (see :mod:`repro.service`):
    clients POST request batches to ``/v1/jobs`` with per-tenant API
    keys, poll or stream results, and cancel jobs.  ``--workers N``
    additionally runs N keep-alive local workers against the queue, for
    a self-contained single-host service.
``atcd bench baseline [--profile NAME] [--runs N] [--out FILE]``
    Run a profile N times (default 3) and write the per-case *median*
    artifact — the rolling baseline CI compares against.
``atcd bench compare BASELINE.json CANDIDATE.json [--threshold R]``
    Diff two artifacts; exits 1 when a timing regression or result
    mismatch is found.
``atcd bench list``
    Show the registered workload families and benchmark profiles.
``atcd catalog NAME [--out FILE]``
    Export one of the built-in case-study models (factory, panda-iot,
    data-server) as JSON, for use as a starting point.
``atcd experiments [--quick]``
    Run the paper's case-study experiments and print the comparison against
    the published fronts.
``atcd check [PATHS ...] [--rule ID] [--json] [--baseline FILE]``
    Run the project-invariant static analyzer
    (see :mod:`repro.devtools.staticcheck`) — determinism, metrics
    cardinality, transaction discipline, lock order, CLI exit codes and
    broad-except hygiene.  Exits 1 on findings outside the baseline,
    0 when clean; ``--write-baseline FILE`` grandfathers the current
    findings.

Models are the JSON documents produced by
:mod:`repro.attacktree.serialization`.  Requests/results are the JSON
representations of :class:`repro.engine.AnalysisRequest` /
:class:`repro.engine.AnalysisResult`.
"""

from __future__ import annotations

import argparse
import json
import os
import sys
from typing import Optional, Sequence

from .attacktree import catalog, serialization
from .attacktree.attributes import CostDamageAT, CostDamageProbAT
from .devtools.staticcheck import DEFAULT_BASELINE_NAME
from .core.analysis import CostDamageAnalyzer
from .core.problems import Method, Problem
from .engine import AnalysisRequest, AnalysisSession, shared_registry
from .engine.store import open_store
from .experiments import casestudies
from .experiments.report import format_pareto_front

__all__ = ["main", "build_parser"]

_CATALOG = {
    "factory": catalog.factory,
    "factory-probabilistic": catalog.factory_probabilistic,
    "panda-iot": catalog.panda_iot,
    "data-server": catalog.data_server,
}

#: Subcommands whose ValueError/TypeError failures are user errors (bad
#: backend name, uncovered cell, missing parameter, malformed request,
#: unknown bench profile/executor, invalid artifact, unusable store or
#: queue file or broker URL, zero workers, undecorated model, unknown
#: staticcheck rule or unreadable baseline).
_ENGINE_COMMANDS = frozenset(
    {"analyze", "pareto", "dgc", "cgd", "batch", "bench", "store", "dist",
     "serve", "queue", "api", "obs", "check"}
)

#: Shared help text for every ``--trace-out`` flag.
_TRACE_OUT_HELP = (
    "append finished spans as NDJSON to this file ('-' for stderr); "
    "trace ids propagate across submit -> queue -> worker, so files from "
    "several processes join on trace_id"
)


def build_parser() -> argparse.ArgumentParser:
    """Build the argument parser (exposed for tests and documentation)."""
    parser = argparse.ArgumentParser(
        prog="atcd",
        description="Cost-damage analysis of attack trees (DSN 2023 reproduction)",
    )
    subparsers = parser.add_subparsers(dest="command", required=True)

    analyze = subparsers.add_parser("analyze", help="full report for a model")
    analyze.add_argument("model", help="path to a JSON attack-tree model")
    analyze.add_argument("--probabilistic", action="store_true",
                         help="use expected damage (requires probabilities)")

    pareto = subparsers.add_parser("pareto", help="print the Pareto front")
    pareto.add_argument("model", help="path to a JSON attack-tree model")
    pareto.add_argument("--probabilistic", action="store_true")
    pareto.add_argument("--method", choices=[m.value for m in Method],
                        default=Method.AUTO.value,
                        help="legacy algorithm selector (auto follows Table I)")
    pareto.add_argument("--backend", default=None,
                        help="force a registered engine backend by name "
                             "(overrides --method; see 'atcd backends')")
    pareto.add_argument("--plot", action="store_true",
                        help="also render the front as an ASCII plot")

    dgc = subparsers.add_parser("dgc", help="max damage given a cost budget")
    dgc.add_argument("model")
    dgc.add_argument("--budget", type=float, required=True)
    dgc.add_argument("--probabilistic", action="store_true")
    dgc.add_argument("--backend", default=None)

    cgd = subparsers.add_parser("cgd", help="min cost given a damage threshold")
    cgd.add_argument("model")
    cgd.add_argument("--threshold", type=float, required=True)
    cgd.add_argument("--probabilistic", action="store_true")
    cgd.add_argument("--backend", default=None)

    batch = subparsers.add_parser(
        "batch", help="run a JSON list of analysis requests against one model"
    )
    batch.add_argument("model", help="path to a JSON attack-tree model")
    batch.add_argument("requests", help="path to a JSON list of request objects")
    batch.add_argument("--parallel", action="store_true",
                       help="execute the batch on a thread pool")
    batch.add_argument("--out", default=None, help="output path (default: stdout)")
    batch.add_argument("--store", default=None, metavar="DB|URL",
                       help="shared result store to read through and write "
                            "back to: a sqlite file (created if absent) or "
                            "an atcd-serve broker URL (http://host:port)")

    subparsers.add_parser("backends", help="list registered solver backends")

    store_cmd = subparsers.add_parser(
        "store", help="inspect or prune a shared result store"
    )
    store_sub = store_cmd.add_subparsers(dest="store_command", required=True)
    store_stats = store_sub.add_parser(
        "stats", help="entry counts and layout of a store file"
    )
    store_stats.add_argument("path", help="result-store sqlite file or "
                                          "broker URL")
    store_prune = store_sub.add_parser(
        "prune", help="delete stored results (all, or one model's)"
    )
    store_prune.add_argument("path", help="result-store sqlite file or "
                                          "broker URL")
    store_prune.add_argument("--fingerprint", default=None, metavar="SHA256",
                             help="only prune results of this model fingerprint "
                                  "(default: prune everything)")
    store_prune.add_argument("--ttl", type=float, default=None, metavar="SECONDS",
                             help="evict only results older than this many "
                                  "seconds instead of pruning everything")
    store_prune.add_argument("--max-bytes", type=int, default=None, metavar="N",
                             help="evict oldest results until the store file "
                                  "fits under N bytes")

    bench = subparsers.add_parser(
        "bench", help="run and compare workload benchmarks"
    )
    bench_sub = bench.add_subparsers(dest="bench_command", required=True)
    bench_run = bench_sub.add_parser(
        "run", help="execute a benchmark profile and write a BENCH_*.json artifact"
    )
    bench_run.add_argument("--profile", default="smoke",
                           help="profile name (see 'atcd bench list'; default: smoke)")
    bench_run.add_argument("--out", default=None,
                           help="artifact path (default: BENCH_<profile>.json)")
    bench_run.add_argument("--executor", default="sequential",
                           help="sequential, thread or process (default: sequential)")
    bench_run.add_argument("--max-workers", type=int, default=None,
                           help="pool size for the parallel executors")
    bench_run.add_argument("--repeats", type=int, default=1,
                           help="timing repetitions per case (default: 1)")
    bench_run.add_argument("--store", default=None, metavar="DB|URL",
                           help="shared result store (sqlite file, created "
                                "if absent, or broker URL); repeated runs "
                                "and pool workers share results through it")
    bench_run.add_argument("--trace-memory", action="store_true",
                           help="record per-case peak allocation (tracemalloc) "
                                "as the peak_kb row field; slows the run")
    bench_compare = bench_sub.add_parser(
        "compare", help="diff two artifacts for regressions"
    )
    bench_compare.add_argument("baseline", help="baseline BENCH_*.json")
    bench_compare.add_argument("candidate", help="candidate BENCH_*.json")
    bench_compare.add_argument("--threshold", type=float, default=0.25,
                               help="relative slowdown flagged as regression "
                                    "(default: 0.25)")
    bench_compare.add_argument("--min-seconds", type=float, default=0.005,
                               help="ignore runs where both sides are faster "
                                    "than this (default: 0.005)")
    bench_baseline = bench_sub.add_parser(
        "baseline", help="run a profile N times and write the per-case "
                         "median artifact (the rolling CI baseline)"
    )
    bench_baseline.add_argument("--profile", default="smoke",
                                help="profile name (default: smoke)")
    bench_baseline.add_argument("--runs", type=int, default=3,
                                help="independent runs to take the median "
                                     "over (default: 3)")
    bench_baseline.add_argument("--out", default=None,
                                help="artifact path (default: "
                                     "BENCH_<profile>_baseline.json)")
    bench_baseline.add_argument("--executor", default="sequential",
                                help="sequential, thread or process "
                                     "(default: sequential)")
    bench_baseline.add_argument("--max-workers", type=int, default=None,
                                help="pool size for the parallel executors")
    bench_sub.add_parser("list", help="list workload families and profiles")

    dist = subparsers.add_parser(
        "dist", help="distributed execution over a durable work queue"
    )
    dist_sub = dist.add_subparsers(dest="dist_command", required=True)

    dist_submit = dist_sub.add_parser(
        "submit", help="shard a profile (or batch request list) into a queue"
    )
    dist_submit.add_argument("--queue", required=True, metavar="DB|URL",
                             help="work-queue sqlite file (one run per queue; "
                                  "created if absent) or atcd-serve broker "
                                  "URL (http://host:port)")
    dist_submit.add_argument("--profile", default=None,
                             help="benchmark profile to shard "
                                  "(see 'atcd bench list')")
    dist_submit.add_argument("--model", default=None, metavar="MODEL.json",
                             help="with --requests: shard a batch request "
                                  "list against this model instead of a "
                                  "profile")
    dist_submit.add_argument("--requests", default=None, metavar="REQUESTS.json",
                             help="JSON list of request objects (see "
                                  "'atcd batch')")
    dist_submit.add_argument("--repeats", type=int, default=1,
                             help="timing repetitions per case (default: 1)")
    dist_submit.add_argument("--trace-memory", action="store_true",
                             help="workers record per-case peak allocation "
                                  "as peak_kb")
    dist_submit.add_argument("--max-attempts", type=int, default=3,
                             help="claims per task before dead-lettering "
                                  "(default: 3)")

    dist_worker = dist_sub.add_parser(
        "worker", help="claim and execute tasks from a queue until drained"
    )
    dist_worker.add_argument("--queue", required=True, metavar="DB|URL",
                             help="work-queue sqlite file (must exist) or "
                                  "broker URL (http://host:port)")
    dist_worker.add_argument("--store", default=None, metavar="DB|URL",
                             help="shared result store (sqlite file, created "
                                  "if absent, or broker URL); makes "
                                  "re-execution after crashes idempotent")
    dist_worker.add_argument("--worker-id", default=None,
                             help="stable worker name (default: hostname-pid)")
    dist_worker.add_argument("--lease", type=float, default=30.0, metavar="S",
                             help="visibility lease seconds per claim, "
                                  "heartbeat-renewed while a task runs "
                                  "(default: 30)")
    dist_worker.add_argument("--poll", type=float, default=0.2, metavar="S",
                             help="idle sleep between claim attempts "
                                  "(default: 0.2)")
    dist_worker.add_argument("--max-tasks", type=int, default=None,
                             help="stop after this many task attempts")
    dist_worker.add_argument("--keep-alive", action="store_true",
                             help="keep polling after the queue drains "
                                  "(long-lived fleets; default: exit when "
                                  "drained)")
    dist_worker.add_argument("--inject-delay", type=float, default=0.0,
                             metavar="S",
                             help="sleep before executing each claimed task "
                                  "(fault-injection/chaos testing)")
    dist_worker.add_argument("--trace-out", default=None, metavar="PATH|-",
                             help=_TRACE_OUT_HELP)

    dist_run = dist_sub.add_parser(
        "run", help="single-host run: coordinator + N local worker processes"
    )
    dist_run.add_argument("--profile", default="smoke",
                          help="profile name (default: smoke)")
    dist_run.add_argument("--workers", type=int, default=2,
                          help="local worker processes (default: 2)")
    dist_run.add_argument("--queue", default=None, metavar="DB|URL",
                          help="work-queue file to use and keep, or broker "
                               "URL (default: a temporary file, removed "
                               "after the run)")
    dist_run.add_argument("--store", default=None, metavar="DB|URL",
                          help="shared result store for the workers "
                               "(sqlite file, created if absent, or broker "
                               "URL)")
    dist_run.add_argument("--out", default=None,
                          help="artifact path (default: BENCH_<profile>.json)")
    dist_run.add_argument("--repeats", type=int, default=1,
                          help="timing repetitions per case (default: 1)")
    dist_run.add_argument("--trace-memory", action="store_true",
                          help="workers record per-case peak allocation "
                               "as peak_kb")
    dist_run.add_argument("--max-attempts", type=int, default=3,
                          help="claims per task before dead-lettering "
                               "(default: 3)")
    dist_run.add_argument("--lease", type=float, default=30.0, metavar="S",
                          help="worker visibility lease seconds (default: 30)")
    dist_run.add_argument("--timeout", type=float, default=None, metavar="S",
                          help="fail if the run has not drained after this "
                               "many seconds")
    dist_run.add_argument("--trace-out", default=None, metavar="PATH|-",
                          help=_TRACE_OUT_HELP + " (shared with the local "
                               "worker processes)")

    dist_status = dist_sub.add_parser(
        "status", help="task states, workers and retries of a queue"
    )
    dist_status.add_argument("--queue", required=True, metavar="DB|URL",
                             help="work-queue sqlite file (must exist) or "
                                  "broker URL")

    dist_gather = dist_sub.add_parser(
        "gather", help="collect a drained run into its output document"
    )
    dist_gather.add_argument("--queue", required=True, metavar="DB|URL",
                             help="work-queue sqlite file (must exist) or "
                                  "broker URL")
    dist_gather.add_argument("--out", default=None,
                             help="output path (default: BENCH_<name>.json "
                                  "for profile runs, stdout for batch runs)")

    dist_resubmit = dist_sub.add_parser(
        "resubmit", help="re-queue dead-lettered tasks with a fresh retry "
                         "budget"
    )
    dist_resubmit.add_argument("--queue", required=True, metavar="DB|URL",
                               help="work-queue sqlite file (must exist) or "
                                    "broker URL")

    serve = subparsers.add_parser(
        "serve", help="serve a work queue / result store over HTTP "
                      "(network broker for shared-nothing hosts)"
    )
    serve.add_argument("--queue", default=None, metavar="DB",
                       help="work-queue sqlite file to expose "
                            "(created if absent)")
    serve.add_argument("--root", default=None, metavar="DIR",
                       help="host *named* queues from this directory "
                            "instead of one --queue file; clients use "
                            "http://host:port/queues/<name> (manage with "
                            "'atcd queue create|list|drop')")
    serve.add_argument("--store", default=None, metavar="DB",
                       help="result-store sqlite file to expose "
                            "(created if absent)")
    serve.add_argument("--host", default="127.0.0.1",
                       help="bind address (default: 127.0.0.1; use 0.0.0.0 "
                            "to accept other hosts)")
    serve.add_argument("--port", type=int, default=8765,
                       help="TCP port (default: 8765; 0 picks a free port)")
    serve.add_argument("--token", default=None,
                       help="require this bearer token on every request "
                            "(default: $ATCD_BROKER_TOKEN if set; clients "
                            "read the same variable)")
    serve.add_argument("--verbose", action="store_true",
                       help="log one line per request to stderr")
    serve.add_argument("--access-log", default=None, metavar="PATH|-",
                       help="append one structured JSON line per request "
                            "(request id, route, status, latency-ms) to "
                            "this file, or stderr for '-'")
    serve.add_argument("--trace-out", default=None, metavar="PATH|-",
                       help=_TRACE_OUT_HELP)

    queue_cmd = subparsers.add_parser(
        "queue", help="manage the named queues of a multi-queue root"
    )
    queue_sub = queue_cmd.add_subparsers(dest="queue_command", required=True)
    queue_create = queue_sub.add_parser(
        "create", help="create a named queue (idempotent)"
    )
    queue_create.add_argument("target", metavar="DIR|URL",
                              help="queue-root directory, or the URL of a "
                                   "running 'atcd serve --root' broker")
    queue_create.add_argument("name", help="queue name ([A-Za-z0-9_.-], "
                                           "max 64 chars)")
    queue_list = queue_sub.add_parser(
        "list", help="list the root's queues and their task counts"
    )
    queue_list.add_argument("target", metavar="DIR|URL",
                            help="queue-root directory or broker URL")
    queue_drop = queue_sub.add_parser(
        "drop", help="delete a named queue and all its tasks"
    )
    queue_drop.add_argument("target", metavar="DIR|URL",
                            help="queue-root directory or broker URL")
    queue_drop.add_argument("name", help="queue name to delete")
    queue_prune = queue_sub.add_parser(
        "prune", help="garbage-collect finished tasks and orphaned job "
                      "descriptors from one queue"
    )
    queue_prune.add_argument("target", metavar="DB|URL",
                             help="work-queue sqlite file (must exist) or "
                                  "broker queue URL "
                                  "(http://host:port[/queues/<name>])")
    queue_prune.add_argument("--ttl", type=float, required=True, metavar="S",
                             help="delete done/cancelled tasks finished more "
                                  "than this many seconds ago (0 deletes "
                                  "all finished tasks); dead tasks are "
                                  "always kept")

    api = subparsers.add_parser(
        "api", help="serve the multi-tenant analysis API (jobs over HTTP)"
    )
    api.add_argument("--queue", required=True, metavar="DB|URL",
                     help="work queue backing the service: sqlite file "
                          "(created if absent) or a broker queue URL "
                          "(http://host:port[/queues/<name>])")
    api.add_argument("--keys", required=True, metavar="FILE",
                     help="tenant keys file: {\"tenants\": [{\"name\", "
                          "\"key\", \"max_in_flight\"?, "
                          "\"rate_per_second\"?, \"burst\"?}]}")
    api.add_argument("--store", default=None, metavar="DB|URL",
                     help="shared result store handed to --workers "
                          "(sqlite file or broker URL)")
    api.add_argument("--host", default="127.0.0.1",
                     help="bind address (default: 127.0.0.1)")
    api.add_argument("--port", type=int, default=8780,
                     help="TCP port (default: 8780; 0 picks a free port)")
    api.add_argument("--workers", type=int, default=0, metavar="N",
                     help="also run N keep-alive local worker processes "
                          "against --queue (default: 0; run workers "
                          "yourself with 'atcd dist worker --keep-alive')")
    api.add_argument("--max-attempts", type=int, default=3,
                     help="claims per task before dead-lettering "
                          "(default: 3)")
    api.add_argument("--max-requests", type=int, default=1000,
                     help="largest accepted batch per job (default: 1000)")
    api.add_argument("--access-log", default="-", metavar="PATH|-",
                     help="append one structured JSON line per request "
                          "(request id, tenant, route, status, latency-ms) "
                          "to this file (default: stderr)")
    api.add_argument("--verbose", action="store_true",
                     help="additionally log http.server lines to stderr")
    api.add_argument("--trace-out", default=None, metavar="PATH|-",
                     help=_TRACE_OUT_HELP + " (shared with --workers "
                          "processes)")

    obs_cmd = subparsers.add_parser(
        "obs", help="inspect a live server's metrics"
    )
    obs_sub = obs_cmd.add_subparsers(dest="obs_command", required=True)
    obs_dump = obs_sub.add_parser(
        "dump", help="scrape GET /metrics from a running broker or "
                     "analysis service and print it"
    )
    obs_dump.add_argument("url", metavar="URL",
                          help="base URL of a running 'atcd serve' or "
                               "'atcd api' (http://host:port)")
    obs_dump.add_argument("--json", action="store_true",
                          help="parse the exposition and print it as JSON "
                               "instead of raw Prometheus text")
    obs_dump.add_argument("--token", default=None,
                          help="bearer token for a token-protected broker "
                               "(default: $ATCD_BROKER_TOKEN if set)")

    catalog_cmd = subparsers.add_parser("catalog", help="export a built-in model")
    catalog_cmd.add_argument("name", choices=sorted(_CATALOG))
    catalog_cmd.add_argument("--out", default=None, help="output path (default: stdout)")

    experiments = subparsers.add_parser(
        "experiments", help="run the paper's case-study experiments"
    )
    experiments.add_argument("--quick", action="store_true",
                             help="skip nothing here; accepted for symmetry")

    check = subparsers.add_parser(
        "check", help="run the project-invariant static analyzer"
    )
    check.add_argument(
        "paths", nargs="*",
        help="files or directories to analyze (default: the installed "
             "repro package)",
    )
    check.add_argument(
        "--rule", action="append", metavar="ID",
        help="run only this rule id (repeatable; default: all rules)",
    )
    check.add_argument(
        "--json", action="store_true", dest="as_json",
        help="emit the report as JSON instead of file:line text",
    )
    check.add_argument(
        "--baseline", metavar="FILE",
        help="baseline of grandfathered findings to subtract "
             f"(default: {DEFAULT_BASELINE_NAME} in the working "
             "directory, when present)",
    )
    check.add_argument(
        "--write-baseline", metavar="FILE",
        help="write the current findings to FILE as the new baseline "
             "and exit 0",
    )
    return parser


def _load_model(path: str):
    model = serialization.load_json(path)
    if not isinstance(model, (CostDamageAT, CostDamageProbAT)):
        # ValueError lands in main()'s user-error net: one line, exit 2.
        raise ValueError(
            f"{path} describes a bare attack tree without cost/damage decorations"
        )
    return model


def _backend_name(args: argparse.Namespace) -> Optional[str]:
    """Resolve --backend / --method flags into an engine backend name."""
    backend = getattr(args, "backend", None)
    if backend is not None:
        return backend
    method = Method(getattr(args, "method", Method.AUTO.value))
    from .core.problems import _METHOD_TO_BACKEND

    return _METHOD_TO_BACKEND.get(method)


def _command_analyze(args: argparse.Namespace) -> int:
    model = _load_model(args.model)
    analyzer = CostDamageAnalyzer(model)
    print(analyzer.report(probabilistic=args.probabilistic))
    return 0


def _command_pareto(args: argparse.Namespace) -> int:
    session = AnalysisSession(_load_model(args.model))
    problem = Problem.CEDPF if args.probabilistic else Problem.CDPF
    result = session.run(AnalysisRequest(problem, backend=_backend_name(args)))
    print(format_pareto_front(result.front))
    if args.plot:
        from .pareto.plot import ascii_front

        print()
        label = "cost-expected-damage" if args.probabilistic else "cost-damage"
        print(ascii_front(result.front, title=f"{label} Pareto front"))
    return 0


def _command_dgc(args: argparse.Namespace) -> int:
    session = AnalysisSession(_load_model(args.model))
    problem = Problem.EDGC if args.probabilistic else Problem.DGC
    result = session.run(
        AnalysisRequest(problem, budget=args.budget, backend=_backend_name(args))
    )
    witness = "{}" if not result.witness else "{" + ", ".join(sorted(result.witness)) + "}"
    label = "expected damage" if args.probabilistic else "damage"
    print(f"max {label} within budget {args.budget:g}: {result.value:g}")
    print(f"witness attack: {witness}")
    return 0


def _command_cgd(args: argparse.Namespace) -> int:
    session = AnalysisSession(_load_model(args.model))
    problem = Problem.CGED if args.probabilistic else Problem.CGD
    result = session.run(
        AnalysisRequest(problem, threshold=args.threshold, backend=_backend_name(args))
    )
    if result.value is None:
        print(f"no attack reaches damage {args.threshold:g}")
        return 1
    witness = "{}" if not result.witness else "{" + ", ".join(sorted(result.witness)) + "}"
    print(f"min cost reaching damage {args.threshold:g}: {result.value:g}")
    print(f"witness attack: {witness}")
    return 0


def _command_batch(args: argparse.Namespace) -> int:
    store = open_store(args.store) if args.store else None
    try:
        return _run_batch_command(args, store)
    finally:
        if store is not None:
            store.close()


def _run_batch_command(args: argparse.Namespace, store) -> int:
    session = AnalysisSession(_load_model(args.model), store=store)
    with open(args.requests, "r", encoding="utf-8") as handle:
        payload = json.load(handle)
    if not isinstance(payload, list):
        print(f"atcd: {args.requests} must contain a JSON list of requests",
              file=sys.stderr)
        return 2
    # Parse and validate the whole batch up front — field types, parameters,
    # backend resolution AND backend options: a malformed entry, missing
    # budget, bogus backend name, typo'd option, or a problem the model
    # cannot support must not abort after the earlier analyses already ran.
    requests = []
    for index, entry in enumerate(payload):
        try:
            request = AnalysisRequest.from_dict(entry)
            request.validate()
            backend = session.resolve(request.problem, backend=request.backend)
            backend.validate_options(request)
        except (ValueError, TypeError) as error:
            # Same format and exit code as engine errors on the other
            # subcommands, plus the offending entry's index.
            print(f"atcd: {args.requests}[{index}]: {error}", file=sys.stderr)
            return 2
        requests.append(request)
    results = session.run_batch(requests, parallel=args.parallel)
    try:
        text = json.dumps([result.to_dict() for result in results], indent=2)
    except TypeError as error:
        # A result that does not serialize (e.g. a third-party backend put a
        # non-JSON object in extras) is an internal bug, not a user error:
        # re-raise outside main()'s user-error net so the traceback survives.
        raise RuntimeError(
            f"internal error serializing batch results: {error}"
        ) from error
    if args.out:
        with open(args.out, "w", encoding="utf-8") as handle:
            handle.write(text)
        print(f"wrote {len(results)} results to {args.out}")
    else:
        print(text)
    for result in results:
        print(result.summary(), file=sys.stderr)
    return 0


def _command_bench(args: argparse.Namespace) -> int:
    # Imported lazily: the bench stack pulls in the workload generators,
    # which the other subcommands never need.
    from . import bench
    from .workloads import describe_families

    if args.bench_command == "list":
        print("workload families:")
        print(describe_families())
        print()
        print("profiles:")
        print(bench.describe_profiles())
        return 0
    if args.bench_command == "compare":
        baseline = bench.load_artifact(args.baseline)
        candidate = bench.load_artifact(args.candidate)
        report = bench.compare_artifacts(
            baseline, candidate,
            threshold=args.threshold, min_seconds=args.min_seconds,
        )
        print(report.render())
        return 0 if report.ok else 1
    if args.bench_command == "baseline":
        if args.runs < 1:
            raise ValueError(f"--runs must be positive, got {args.runs!r}")
        specs = bench.profile(args.profile)
        artifacts = []
        for attempt in range(args.runs):
            runs = bench.execute_specs(
                specs, executor=args.executor, max_workers=args.max_workers
            )
            artifacts.append(bench.build_artifact(
                args.profile, specs, runs,
                config={"profile": args.profile, "executor": args.executor},
            ))
            print(f"  baseline run {attempt + 1}/{args.runs}: "
                  f"{artifacts[-1]['totals']['wall_time_seconds']:.2f}s total",
                  file=sys.stderr)
        artifact = bench.baseline_artifact(artifacts)
        out = args.out or f"BENCH_{args.profile}_baseline.json"
        bench.write_artifact(artifact, out)
        _print_artifact_summary(artifact, out)
        print(f"  median of {args.runs} runs; compare candidates with: "
              f"atcd bench compare {out} BENCH_{args.profile}.json")
        return 0
    # bench run
    specs = bench.profile(args.profile)
    runs = bench.execute_specs(
        specs,
        executor=args.executor,
        max_workers=args.max_workers,
        repeats=args.repeats,
        store_path=args.store,
        trace_memory=args.trace_memory,
    )
    artifact = bench.build_artifact(
        args.profile,
        specs,
        runs,
        config={
            "profile": args.profile,
            "executor": args.executor,
            "max_workers": args.max_workers,
            "repeats": args.repeats,
            "store": args.store,
            "trace_memory": args.trace_memory,
        },
    )
    out = args.out or f"BENCH_{args.profile}.json"
    bench.write_artifact(artifact, out)
    _print_artifact_summary(artifact, out)
    for run in runs:
        peak = f"  peak={run.peak_kb:.0f}KiB" if run.peak_kb is not None else ""
        print(
            f"  {run.case_id:<55} {run.problem:<6} via {run.backend:<12} "
            f"{run.wall_time_seconds * 1e3:9.2f} ms  "
            f"points={run.result_points}{peak}",
            file=sys.stderr,
        )
    return 0


def _print_artifact_summary(artifact: dict, out: str) -> None:
    totals = artifact["totals"]
    line = (
        f"wrote {out}: {totals['cases']} cases over "
        f"{len(totals['families'])} families "
        f"({', '.join(totals['families'])}), "
        f"shapes {', '.join(totals['shapes'])}, "
        f"settings {', '.join(totals['settings'])}, "
        f"total solver time {totals['wall_time_seconds']:.2f}s"
    )
    if "peak_kb_max" in totals:
        line += f", peak memory {totals['peak_kb_max']:.0f} KiB"
    print(line)


def _command_store(args: argparse.Namespace) -> int:
    # Inspection must not conjure an empty store out of a typo'd path.
    with open_store(args.path, must_exist=True) as store:
        if args.store_command == "stats":
            summary = store.summary()
            print(f"store {summary['path']}")
            print(f"  schema version : {summary['schema_version']}")
            print(f"  entries        : {summary['entries']}")
            print(f"  models         : {summary['models']}")
            print(f"  size           : {summary['size_bytes']} bytes")
            if summary["by_problem_backend"]:
                print("  by problem/backend:")
                for cell, count in summary["by_problem_backend"].items():
                    print(f"    {cell:<24} {count}")
            return 0
        # store prune
        if args.ttl is not None or args.max_bytes is not None:
            if args.fingerprint is not None:
                raise ValueError(
                    "--fingerprint cannot be combined with --ttl/--max-bytes "
                    "(eviction is age/size-scoped, not model-scoped)"
                )
            dropped = store.evict(ttl_seconds=args.ttl, max_bytes=args.max_bytes)
            bounds = []
            if args.ttl is not None:
                bounds.append(f"ttl {args.ttl:g}s")
            if args.max_bytes is not None:
                bounds.append(f"max {args.max_bytes} bytes")
            print(
                f"evicted {dropped} results ({', '.join(bounds)}) "
                f"from {args.path}"
            )
            return 0
        dropped = store.prune(fingerprint=args.fingerprint)
        scope = (
            f"model {args.fingerprint}" if args.fingerprint else "all models"
        )
        print(f"pruned {dropped} results ({scope}) from {args.path}")
        return 0


def _command_dist(args: argparse.Namespace) -> int:
    # Imported lazily, like the bench stack: the distributed runtime pulls
    # in the workload generators, which other subcommands never need.
    from .distributed import Coordinator, open_queue

    if args.dist_command == "submit":
        return _dist_submit(args)
    if args.dist_command == "worker":
        return _dist_worker(args)
    if args.dist_command == "status":
        with open_queue(args.queue, must_exist=True) as queue:
            summary = queue.summary()
            coordinator = Coordinator(queue)
            info = coordinator.run_info()
            print(f"queue {args.queue}: run {info['name']!r} ({info['kind']})")
            print(f"  tasks   : {summary['tasks']}")
            for state, count in summary["counts"].items():
                print(f"    {state:<8}: {count}")
            print(f"  retries : {summary['retries']}")
            print(f"  workers : {', '.join(summary['workers']) or '(none yet)'}")
            for entry in summary["dead"]:
                print(f"  DEAD {entry['task_id']} after {entry['attempts']} "
                      f"attempts: {entry['error']}")
            return 0
    if args.dist_command == "gather":
        with open_queue(args.queue, must_exist=True) as queue:
            report = Coordinator(queue).gather()
        return _dist_emit(args, report)
    if args.dist_command == "resubmit":
        with open_queue(args.queue, must_exist=True) as queue:
            task_ids = queue.resubmit_dead()
        if not task_ids:
            print(f"no dead tasks in {args.queue}")
        else:
            print(
                f"resubmitted {len(task_ids)} dead tasks to {args.queue} "
                f"with a fresh retry budget; start workers with: "
                f"atcd dist worker --queue {args.queue}"
            )
        return 0
    # dist run
    return _dist_run(args)


def _dist_submit(args: argparse.Namespace) -> int:
    from .distributed import Coordinator, open_queue
    batch_mode = args.model is not None or args.requests is not None
    if args.profile is not None and batch_mode:
        raise ValueError("use either --profile or --model/--requests, not both")
    if batch_mode and (args.model is None or args.requests is None):
        raise ValueError("batch submission needs both --model and --requests")
    if args.profile is None and not batch_mode:
        raise ValueError("nothing to submit: pass --profile or --model/--requests")
    if batch_mode and (args.repeats != 1 or args.trace_memory):
        # Refuse rather than silently drop the flags: batch tasks return
        # AnalysisResult documents, which carry neither repeats nor peak_kb.
        raise ValueError(
            "--repeats/--trace-memory only apply to profile submissions"
        )
    with open_queue(args.queue) as queue:
        coordinator = Coordinator(queue)
        if batch_mode:
            model_payload = serialization.to_dict(_load_model(args.model))
            with open(args.requests, "r", encoding="utf-8") as handle:
                payload = json.load(handle)
            if not isinstance(payload, list):
                raise ValueError(
                    f"{args.requests} must contain a JSON list of requests"
                )
            task_ids = coordinator.submit_requests(
                model_payload, payload, max_attempts=args.max_attempts
            )
        else:
            from . import bench

            specs = bench.profile(args.profile)
            task_ids = coordinator.submit_profile(
                args.profile,
                specs,
                repeats=args.repeats,
                trace_memory=args.trace_memory,
                max_attempts=args.max_attempts,
            )
    print(
        f"submitted {len(task_ids)} tasks to {args.queue}; start workers "
        f"with: atcd dist worker --queue {args.queue}"
    )
    return 0


def _dist_worker(args: argparse.Namespace) -> int:
    from .distributed import Worker, open_queue, signal_shutdown

    store = None
    close_trace = _open_trace_output(args.trace_out)
    try:
        with open_queue(args.queue, must_exist=True) as queue:
            # The store is opened only after the queue checked out: a
            # typo'd queue path must not leave a stray store file behind.
            store = open_store(args.store) if args.store else None
            worker = Worker(
                queue,
                worker_id=args.worker_id,
                store=store,
                lease_seconds=args.lease,
                poll_seconds=args.poll,
                max_tasks=args.max_tasks,
                exit_when_drained=not args.keep_alive,
                inject_delay_seconds=args.inject_delay,
            )
            # SIGTERM/SIGINT fail the in-flight task back to the queue
            # (immediately claimable) and exit cleanly, instead of
            # abandoning it to its lease.
            with signal_shutdown(worker):
                report = worker.run()
    finally:
        if store is not None:
            store.close()
        close_trace()
    print(
        f"worker {report.worker_id}: {report.completed} completed, "
        f"{report.failed} failed",
        file=sys.stderr,
    )
    if report.interrupted is not None:
        print(
            f"worker {report.worker_id}: interrupted by signal "
            f"{report.interrupted}; in-flight work returned to the queue",
            file=sys.stderr,
        )
        return 128 + report.interrupted
    return 0


def _dist_emit(args: argparse.Namespace, report) -> int:
    """Write a GatherReport's output document; shared by gather and run."""
    if report.kind == "batch":
        text = json.dumps(report.output, indent=2)
        if args.out:
            with open(args.out, "w", encoding="utf-8") as handle:
                handle.write(text)
            print(f"wrote {report.completed} results to {args.out}")
        else:
            print(text)
    else:
        from . import bench

        out = args.out or f"BENCH_{report.name}.json"
        bench.write_artifact(report.output, out)
        _print_artifact_summary(report.output, out)
        workers = ", ".join(report.workers) or "(none)"
        print(f"  distributed: workers {workers}, retries {report.retries}, "
              f"dead tasks {len(report.dead)}")
    for entry in report.dead:
        label = entry.get("case_id", entry["task_id"])
        print(
            f"atcd: DEAD task {label} after {entry['attempts']} attempts: "
            f"{entry['error']}",
            file=sys.stderr,
        )
    # Dead-lettered tasks mean the output is partial: the run completed,
    # but the exit code must not claim full success.
    return 1 if report.dead else 0


def _dist_run(args: argparse.Namespace) -> int:
    import shutil
    import tempfile

    from . import bench
    from .distributed import Coordinator, LocalFleet, open_queue

    if args.workers < 1:
        raise ValueError(
            f"workers must be a positive integer, got {args.workers!r}"
        )
    specs = bench.profile(args.profile)
    temp_dir = None
    close_trace = _open_trace_output(args.trace_out)
    if args.queue is None:
        temp_dir = tempfile.mkdtemp(prefix="atcd-dist-")
        queue_path = os.path.join(temp_dir, "queue.sqlite")
    else:
        queue_path = args.queue
    try:
        with open_queue(queue_path) as queue:
            coordinator = Coordinator(queue)
            coordinator.submit_profile(
                args.profile,
                specs,
                repeats=args.repeats,
                trace_memory=args.trace_memory,
                max_attempts=args.max_attempts,
            )
            with LocalFleet(
                queue_path,
                args.workers,
                store_path=args.store,
                lease_seconds=args.lease,
                trace_out=args.trace_out,
            ) as fleet:
                fleet.start()
                coordinator.wait(timeout=args.timeout, on_poll=fleet.supervise)
                fleet.join()
            report = coordinator.gather(
                distributed={"workers": args.workers, "store": args.store}
            )
    finally:
        close_trace()
        if temp_dir is not None:
            shutil.rmtree(temp_dir, ignore_errors=True)
    return _dist_emit(args, report)


def _open_access_log(spec: Optional[str]):
    """An :class:`AccessLog` plus closer from an ``--access-log`` value.

    ``None`` disables logging, ``-`` logs to stderr, anything else is a
    file path opened in append mode (restarts extend the log, they do not
    truncate history).
    """
    if spec is None:
        return None, (lambda: None)
    from .net.accesslog import AccessLog

    if spec == "-":
        return AccessLog(sys.stderr), (lambda: None)
    handle = open(spec, "a", encoding="utf-8")
    return AccessLog(handle), handle.close


def _open_trace_output(spec: Optional[str]):
    """Register a ``--trace-out`` span exporter; returns a closer.

    The closer deregisters the exporter as well as closing its file, so
    in-process callers of :func:`main` (tests) do not leak exporters into
    the process-global registry.
    """
    if spec is None:
        return lambda: None
    from .obs.trace import open_trace_output, remove_exporter

    exporter = open_trace_output(spec)

    def close() -> None:
        remove_exporter(exporter)
        exporter.close()

    return close


def _command_serve(args: argparse.Namespace) -> int:
    # Lazy import, like the dist stack: only this verb needs the broker.
    import signal as signal_module

    from .net.server import BrokerServer
    from .net.wire import TOKEN_ENV_VAR

    if not args.queue and not args.store and not args.root:
        raise ValueError(
            "nothing to serve: pass --queue, --root and/or --store"
        )
    token = args.token or os.environ.get(TOKEN_ENV_VAR) or None
    access_log, close_log = _open_access_log(args.access_log)
    close_trace = _open_trace_output(args.trace_out)
    try:
        server = BrokerServer(
            queue_path=args.queue,
            store_path=args.store,
            root=args.root,
            host=args.host,
            port=args.port,
            token=token,
            verbose=args.verbose,
            access_log=access_log,
        )
    except OSError as error:
        # Port in use, privileged port, unbindable address: user errors,
        # reported on the same one-line exit-2 contract as bad paths.
        close_log()
        close_trace()
        raise ValueError(
            f"cannot serve on {args.host}:{args.port}: {error}"
        ) from error
    except Exception:
        close_log()
        close_trace()
        raise
    served = [
        f"{kind} {path}"
        for kind, path in (
            ("queue", args.queue),
            ("root", args.root),
            ("store", args.store),
        )
        if path
    ]
    auth = "token auth" if token else "no auth"
    # A wildcard bind accepts every interface but is not itself a
    # connectable address — print a URL other hosts can actually use.
    if args.host in ("0.0.0.0", "::"):
        import socket

        url = f"http://{socket.gethostname()}:{server.port}"
        note = f" (listening on {args.host})"
    else:
        url, note = server.url, ""
    print(
        f"atcd broker serving {' and '.join(served)} at {url}{note} "
        f"({auth}); point --queue/--store at that URL",
        flush=True,
    )

    def _stop(signum, frame):
        raise KeyboardInterrupt

    previous = signal_module.signal(signal_module.SIGTERM, _stop)
    try:
        server.serve_forever()
    except KeyboardInterrupt:
        print("atcd broker shutting down", file=sys.stderr)
    finally:
        signal_module.signal(signal_module.SIGTERM, previous)
        server.close()
        close_log()
        close_trace()
    return 0


def _command_queue(args: argparse.Namespace) -> int:
    if args.queue_command == "prune":
        from .distributed import open_queue

        with open_queue(args.target, must_exist=True) as queue:
            pruned = queue.prune(args.ttl)
        print(
            f"pruned {pruned['tasks']} finished tasks and "
            f"{pruned['descriptors']} orphaned job descriptors "
            f"from {args.target}"
        )
        return 0
    def render_rows(rows) -> None:
        if not rows:
            print("(no queues)")
            return
        for row in rows:
            counts = row["counts"]
            states = ", ".join(
                f"{state}={count}" for state, count in counts.items() if count
            ) or "empty"
            print(f"  {row['name']:<24} {states}")

    if args.target.startswith(("http://", "https://")):
        from .net.client import BrokerAdmin
        from .net.wire import TOKEN_ENV_VAR

        token = os.environ.get(TOKEN_ENV_VAR) or None
        with BrokerAdmin(args.target, token=token) as admin:
            admin.ping()
            if args.queue_command == "create":
                created = admin.create_queue(args.name)
                verb = "created" if created else "already exists"
                print(f"queue {args.name!r} {verb} on {admin.url}")
            elif args.queue_command == "drop":
                dropped = admin.drop_queue(args.name)
                verb = "dropped" if dropped else "did not exist"
                print(f"queue {args.name!r} {verb} on {admin.url}")
            else:
                render_rows(admin.list_queues())
        return 0
    from .distributed import QueueRoot

    with QueueRoot(args.target) as root:
        if args.queue_command == "create":
            created = root.create(args.name)
            verb = "created" if created else "already exists"
            print(f"queue {args.name!r} {verb} under {args.target}")
        elif args.queue_command == "drop":
            dropped = root.drop(args.name)
            verb = "dropped" if dropped else "did not exist"
            print(f"queue {args.name!r} {verb} under {args.target}")
        else:
            render_rows(root.describe())
    return 0


def _command_api(args: argparse.Namespace) -> int:
    import signal as signal_module
    import threading
    import time as time_module

    from .distributed import LocalFleet, QueueError, open_queue
    from .service import ServiceServer, TenantRegistry

    registry = TenantRegistry.from_file(args.keys)
    access_log, close_log = _open_access_log(args.access_log)
    close_trace = _open_trace_output(args.trace_out)
    fleet = None
    supervisor = None
    try:
        queue = open_queue(args.queue)
        try:
            server = ServiceServer(
                queue,
                registry,
                host=args.host,
                port=args.port,
                max_attempts=args.max_attempts,
                max_requests=args.max_requests,
                access_log=access_log,
                verbose=args.verbose,
            )
        except OSError as error:
            queue.close()
            raise ValueError(
                f"cannot serve on {args.host}:{args.port}: {error}"
            ) from error
    except Exception:
        close_log()
        close_trace()
        raise
    try:
        if args.workers:
            fleet = LocalFleet(
                args.queue, args.workers, store_path=args.store,
                keep_alive=True, trace_out=args.trace_out,
            )
            fleet.start()

            def _supervise_loop() -> None:
                # Keep-alive workers should never exit; one that does has
                # crashed, and the fleet replaces it (within its respawn
                # budget) so the service does not quietly stop executing.
                while not server.closing:
                    time_module.sleep(2.0)
                    try:
                        fleet.supervise(server.queue.counts())
                    except (OSError, QueueError):
                        # Dead fleet with no respawn budget, unreachable
                        # queue, or a spawn failure: stop supervising; the
                        # server keeps answering with whatever is left.
                        return

            supervisor = threading.Thread(
                target=_supervise_loop, name="atcd-api-fleet", daemon=True
            )
            supervisor.start()
        print(
            f"atcd analysis service at {server.url} "
            f"({len(registry)} tenants, queue {args.queue}"
            + (f", {args.workers} local workers" if args.workers else "")
            + "); submit with POST /v1/jobs",
            flush=True,
        )

        def _stop(signum, frame):
            raise KeyboardInterrupt

        previous = signal_module.signal(signal_module.SIGTERM, _stop)
        try:
            server.serve_forever()
        except KeyboardInterrupt:
            print("atcd analysis service shutting down", file=sys.stderr)
        finally:
            signal_module.signal(signal_module.SIGTERM, previous)
    finally:
        server.close()
        if fleet is not None:
            fleet.terminate()
        if supervisor is not None:
            supervisor.join(timeout=5.0)
        close_log()
        close_trace()
    return 0


def _command_obs(args: argparse.Namespace) -> int:
    import urllib.error
    import urllib.request

    from .net.wire import AUTH_HEADER, TOKEN_ENV_VAR
    from .obs.promtext import parse as parse_promtext

    if not args.url.startswith(("http://", "https://")):
        raise ValueError(f"not an http(s) URL: {args.url!r}")
    url = args.url.rstrip("/") + "/metrics"
    token = args.token or os.environ.get(TOKEN_ENV_VAR) or None
    request = urllib.request.Request(url)
    if token:
        request.add_header(AUTH_HEADER, f"Bearer {token}")
    try:
        with urllib.request.urlopen(request, timeout=30.0) as response:
            text = response.read().decode("utf-8")
    except urllib.error.HTTPError as error:
        raise ValueError(
            f"{url} answered {error.code} {error.reason}"
            + (" (pass --token?)" if error.code == 401 else "")
        ) from error
    except (urllib.error.URLError, OSError) as error:
        raise ValueError(f"cannot reach {url}: {error}") from error
    if args.json:
        document = {
            name: {
                "type": family.type,
                "help": family.help,
                "samples": [
                    {"name": sample_name, "labels": labels, "value": value}
                    for sample_name, labels, value in family.samples
                ],
            }
            for name, family in sorted(parse_promtext(text).items())
        }
        print(json.dumps(document, indent=2, sort_keys=True))
    else:
        print(text, end="")
    return 0


def _command_backends(args: argparse.Namespace) -> int:
    registry = shared_registry()
    print(registry.describe())
    print()
    print("Table I resolution:")
    for (setting, shape), label in sorted(registry.capability_report().items()):
        print(f"  {setting:<14} {shape:<5} -> {label}")
    return 0


def _command_catalog(args: argparse.Namespace) -> int:
    model = _CATALOG[args.name]()
    text = serialization.to_json(model)
    if args.out:
        with open(args.out, "w", encoding="utf-8") as handle:
            handle.write(text)
        print(f"wrote {args.name} to {args.out}")
    else:
        print(text)
    return 0


def _command_experiments(args: argparse.Namespace) -> int:
    results = casestudies.run_all_case_studies()
    all_match = True
    for result in results.values():
        print(result.render())
        print()
        all_match = all_match and result.exact_match
    print(f"all published points reproduced: {all_match}")
    return 0 if all_match else 1


def _command_check(args: argparse.Namespace) -> int:
    from .devtools import staticcheck

    paths = list(args.paths)
    if not paths:
        # Default to the installed package itself, wherever the command
        # runs from; relpath keeps finding paths (and therefore baseline
        # fingerprints) stable when that is the usual repo-root checkout.
        package_dir = os.path.dirname(os.path.abspath(__file__))
        paths = [os.path.relpath(package_dir)]
    project = staticcheck.Project.from_paths(paths)
    rules = staticcheck.select_rules(args.rule)
    report = staticcheck.run_check(project, rules)

    if args.write_baseline:
        staticcheck.write_baseline(args.write_baseline, report.findings)
        print(
            f"wrote {len(report.findings)} grandfathered finding(s) "
            f"to {args.write_baseline}"
        )
        return 0

    baseline_path = args.baseline
    if baseline_path is None and os.path.exists(DEFAULT_BASELINE_NAME):
        baseline_path = DEFAULT_BASELINE_NAME
    grandfathered = 0
    stale: list = []
    findings = report.findings
    if baseline_path is not None:
        baseline = staticcheck.load_baseline(baseline_path)
        findings, grandfathered, stale = staticcheck.apply_baseline(
            report.findings, baseline
        )

    if args.as_json:
        document = report.to_dict()
        document["findings"] = [finding.to_dict() for finding in findings]
        document["grandfathered"] = grandfathered
        document["stale_baseline_entries"] = [
            {"rule": rule, "path": path, "message": message}
            for rule, path, message in stale
        ]
        document["baseline"] = baseline_path
        print(json.dumps(document, indent=2, sort_keys=True))
        return 1 if findings else 0

    for finding in findings:
        print(finding.render())
    for rule, path, _message in stale:
        print(
            f"stale baseline entry ({rule} in {path}): the violation was "
            f"fixed — remove it from {baseline_path}",
            file=sys.stderr,
        )
    summary = (
        f"checked {report.files_checked} file(s), "
        f"{len(report.rules_run)} rule(s): {len(findings)} finding(s)"
    )
    if grandfathered:
        summary += f", {grandfathered} grandfathered"
    if report.suppressed:
        summary += f", {report.suppressed} suppressed"
    print(summary)
    return 1 if findings else 0


def main(argv: Optional[Sequence[str]] = None) -> int:
    """CLI entry point; returns a process exit code."""
    parser = build_parser()
    args = parser.parse_args(argv)
    handlers = {
        "analyze": _command_analyze,
        "pareto": _command_pareto,
        "dgc": _command_dgc,
        "cgd": _command_cgd,
        "batch": _command_batch,
        "backends": _command_backends,
        "bench": _command_bench,
        "dist": _command_dist,
        "store": _command_store,
        "serve": _command_serve,
        "queue": _command_queue,
        "api": _command_api,
        "obs": _command_obs,
        "catalog": _command_catalog,
        "experiments": _command_experiments,
        "check": _command_check,
    }
    if args.command not in _ENGINE_COMMANDS:
        return handlers[args.command](args)
    try:
        return handlers[args.command](args)
    except (ValueError, TypeError) as error:
        # Engine/request errors (unknown backend, uncovered capability cell,
        # missing parameter, wrong model kind, malformed request JSON) are
        # user errors on these subcommands: report them as one line, not a
        # traceback.  Other subcommands run unwrapped so genuine internal
        # failures keep their stack traces.
        print(f"atcd: {error}", file=sys.stderr)
        return 2


if __name__ == "__main__":  # pragma: no cover
    sys.exit(main())
