"""Per-tenant admission control: in-flight caps and token-bucket rates.

Two independent limits, both configured per tenant in the keys file and
both answered with HTTP 429 when exceeded:

*In-flight cap* (``max_in_flight``)
    How many of the tenant's analysis requests may be pending or running
    at once, measured against the *durable* queue state — so the cap
    holds across service restarts and cannot be reset by reconnecting.
    A batch is admitted whole or not at all: a partial job is worse than
    a rejected one.

*Rate limit* (``rate_per_second`` + ``burst``)
    A classic token bucket: the bucket refills continuously at
    ``rate_per_second`` up to ``burst`` tokens, and each submitted
    analysis request costs one token (a batch of N costs N).  The bucket
    is in-memory per service process — a deliberate trade: rate limiting
    protects the *service's* ingest path, so it does not need to survive
    the service's own restart.

:class:`QuotaExceeded` carries a machine-usable ``kind`` ("quota" for the
cap, "rate-limit" for the bucket) and a ``retry_after_seconds`` hint that
the API layer forwards as the ``Retry-After`` header.
"""

from __future__ import annotations

import threading
import time
from typing import Callable, Dict, Optional

from .tenants import Tenant

__all__ = ["QuotaExceeded", "QuotaManager", "TokenBucket"]


class QuotaExceeded(Exception):
    """An admission was refused; the caller maps this to HTTP 429."""

    def __init__(
        self, kind: str, message: str, retry_after_seconds: Optional[float] = None
    ) -> None:
        super().__init__(message)
        self.kind = kind
        self.retry_after_seconds = retry_after_seconds


class TokenBucket:
    """One tenant's rate state: continuous refill, capped at ``burst``.

    Starts full (a fresh tenant can burst immediately), refills at
    ``rate_per_second``, never exceeds ``burst``.  Thread-safe; the clock
    is injectable so tests need not sleep.
    """

    def __init__(
        self,
        rate_per_second: float,
        burst: float,
        clock: Callable[[], float] = time.monotonic,
    ) -> None:
        self._rate = float(rate_per_second)
        self._burst = float(burst)
        self._clock = clock
        self._tokens = self._burst
        self._updated = clock()
        self._lock = threading.Lock()

    def _refill(self, now: float) -> None:
        elapsed = max(0.0, now - self._updated)
        self._tokens = min(self._burst, self._tokens + elapsed * self._rate)
        self._updated = now

    def try_acquire(self, tokens: float = 1.0) -> Optional[float]:
        """Take ``tokens`` if available; else the seconds until they would be.

        Returns ``None`` on success.  A request larger than ``burst`` can
        *never* succeed; it is reported with the time a full refill takes,
        and the admission layer turns it into a permanent-looking 429 —
        the tenant's burst must be raised, not retried.
        """
        now = self._clock()
        with self._lock:
            self._refill(now)
            if tokens <= self._tokens:
                self._tokens -= tokens
                return None
            deficit = tokens - self._tokens
            return deficit / self._rate if tokens <= self._burst else (
                self._burst / self._rate
            )

    @property
    def tokens(self) -> float:
        with self._lock:
            self._refill(self._clock())
            return self._tokens


class QuotaManager:
    """Admission control over all tenants: one bucket each, lazily built."""

    def __init__(self, clock: Callable[[], float] = time.monotonic) -> None:
        self._clock = clock
        self._buckets: Dict[str, TokenBucket] = {}
        self._lock = threading.Lock()

    def _bucket(self, tenant: Tenant) -> Optional[TokenBucket]:
        if tenant.rate_per_second is None:
            return None
        with self._lock:
            bucket = self._buckets.get(tenant.name)
            if bucket is None:
                burst = (
                    tenant.burst
                    if tenant.burst is not None
                    # A burst was not configured: default to one second's
                    # worth of rate, but never below a single request.
                    else max(tenant.rate_per_second, 1.0)
                )
                bucket = TokenBucket(
                    tenant.rate_per_second, burst, clock=self._clock
                )
                self._buckets[tenant.name] = bucket
            return bucket

    def admit(self, tenant: Tenant, batch_size: int, in_flight: int) -> None:
        """Admit a batch of ``batch_size`` requests or raise :class:`QuotaExceeded`.

        ``in_flight`` is the tenant's current pending+running request
        count as read from the queue.  The cap check runs first — it is
        the durable limit — and only an admitted batch consumes rate
        tokens, so a capped-out tenant does not also drain its bucket.
        """
        if tenant.max_in_flight is not None and (
            in_flight + batch_size > tenant.max_in_flight
        ):
            raise QuotaExceeded(
                "quota",
                f"tenant {tenant.name!r} would have {in_flight + batch_size} "
                f"requests in flight, over its cap of {tenant.max_in_flight}; "
                "wait for running jobs to finish (or cancel them)",
                retry_after_seconds=1.0,
            )
        bucket = self._bucket(tenant)
        if bucket is not None:
            retry_after = bucket.try_acquire(float(batch_size))
            if retry_after is not None:
                raise QuotaExceeded(
                    "rate-limit",
                    f"tenant {tenant.name!r} exceeded its rate limit "
                    f"({tenant.rate_per_second:g} requests/second); retry in "
                    f"{retry_after:.2f}s",
                    retry_after_seconds=retry_after,
                )
