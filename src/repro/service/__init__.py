"""Analysis-as-a-service: the multi-tenant HTTP API over the work queue.

The service layer turns the distributed runtime into a server: clients
POST batches of :class:`~repro.engine.requests.AnalysisRequest` payloads
and get back a *job* — an explicit state machine (``queued → running →
done | failed | cancelled``) derived from the durable task states of the
underlying :class:`~repro.distributed.queue.WorkQueue`.  Execution is
the ordinary worker fleet; the service only validates, admits, and
translates.

Layout:

* :mod:`repro.service.tenants` — API keys, constant-time authentication,
  per-tenant quota configuration.
* :mod:`repro.service.quotas` — admission control: durable in-flight
  caps and in-memory token-bucket rate limits.
* :mod:`repro.service.jobs` — batch validation, job descriptors in queue
  meta, the derived job state machine.
* :mod:`repro.service.api` — the HTTP surface (``atcd api``): submit,
  poll, NDJSON streaming, cancel.
"""

from .api import SERVICE_NAME, SERVICE_VERSION, ServiceServer
from .jobs import (
    JOB_STATES,
    TERMINAL_STATES,
    JobError,
    JobManager,
    JobValidationError,
    validate_batch,
)
from .quotas import QuotaExceeded, QuotaManager, TokenBucket
from .tenants import API_KEY_HEADER, MIN_KEY_LENGTH, Tenant, TenantRegistry

__all__ = [
    "API_KEY_HEADER",
    "JOB_STATES",
    "MIN_KEY_LENGTH",
    "SERVICE_NAME",
    "SERVICE_VERSION",
    "TERMINAL_STATES",
    "JobError",
    "JobManager",
    "JobValidationError",
    "QuotaExceeded",
    "QuotaManager",
    "ServiceServer",
    "Tenant",
    "TenantRegistry",
    "TokenBucket",
    "validate_batch",
]
