"""Jobs: batches of analysis requests driven through a state machine.

A *job* is what a tenant gets back from ``POST /v1/jobs``: one batch of
:class:`~repro.engine.AnalysisRequest` payloads against one model, sharded
into the shared :class:`~repro.distributed.queue.WorkQueue` (one task per
request) and tracked as a unit.  The job's state is *derived* from its
tasks' durable states — the queue is the single source of truth, so a
restarted service reports exactly where every job stands:

``queued``
    Submitted; no task has been claimed yet.
``running``
    At least one task was claimed (or finished) and none is dead.
``done``
    Every task completed; per-request results are available.
``failed``
    At least one task dead-lettered (its retry budget is spent).  The
    other tasks' results remain readable — a job fails loudly but keeps
    what it computed.
``cancelled``
    The tenant cancelled the job: pending tasks were withdrawn
    (:meth:`~repro.distributed.queue.WorkQueue.cancel_pending`); running
    tasks finish their attempt and their results are retained, but the
    job is terminal.

Tenancy is structural, not advisory: every job lives in queue metadata
under ``job:<tenant>:<job_id>`` and every lookup key includes the
*authenticated* tenant's name — tenant A asking for tenant B's job id
builds key ``job:A:<id>``, which does not exist.  There is no code path
that reads another tenant's keys.

Task payloads ride the existing worker wire format (``kind: "request"``)
with two service extensions workers already honor: ``store_namespace``
(tenant-isolated result caching) and a ``job`` stanza (job id, tenant,
request index) that makes every queue row attributable in operator
tooling.
"""

from __future__ import annotations

import json
import threading
import time
import uuid
from typing import Any, Callable, Dict, List, Optional, Sequence

from ..distributed.queue import Task, TaskState, WorkQueue
from ..obs import families as obs_families
from ..obs.trace import inject_context
from ..obs.trace import span as trace_span

__all__ = [
    "JOB_STATES",
    "TERMINAL_STATES",
    "JobError",
    "JobValidationError",
    "JobManager",
    "job_meta_key",
    "tenant_index_key",
    "validate_batch",
]

#: Every state a job can report, in lifecycle order.
JOB_STATES = ("queued", "running", "done", "failed", "cancelled")

#: States in which a job accepts no further transitions.
TERMINAL_STATES = ("done", "failed", "cancelled")


def job_meta_key(tenant: str, job_id: str) -> str:
    """Queue-meta key of one job's descriptor (tenant-namespaced)."""
    return f"job:{tenant}:{job_id}"


def tenant_index_key(tenant: str) -> str:
    """Queue-meta key of one tenant's job-id index."""
    return f"jobs:{tenant}"


class JobError(ValueError):
    """A job operation is invalid (not a transport or queue failure)."""


class JobValidationError(JobError):
    """A submitted batch failed edge validation and was never enqueued.

    ``index`` names the offending request (``None`` for batch- or
    model-level problems); ``field`` names the offending part of the
    submission document.  The API layer serializes both into the
    structured 400 body.
    """

    def __init__(
        self,
        message: str,
        field: Optional[str] = None,
        index: Optional[int] = None,
    ) -> None:
        super().__init__(message)
        self.field = field
        self.index = index


def validate_batch(
    model_payload: Any, request_payloads: Any, max_requests: int
) -> None:
    """Fail-fast edge validation: never enqueue a batch a worker would reject.

    Reuses the engine's own validators — request parsing
    (:meth:`AnalysisRequest.from_dict`), problem-parameter checks
    (:meth:`AnalysisRequest.validate`), Table I backend resolution and
    backend option validation — so edge acceptance and worker acceptance
    cannot drift apart.
    """
    from ..attacktree import serialization
    from ..attacktree.attributes import CostDamageAT, CostDamageProbAT
    from ..engine import AnalysisRequest, AnalysisSession

    if not isinstance(model_payload, dict):
        raise JobValidationError(
            "the 'model' field must be a serialized attack-defense tree "
            "object", field="model",
        )
    if not isinstance(request_payloads, list) or not request_payloads:
        raise JobValidationError(
            "the 'requests' field must be a non-empty list of analysis "
            "requests", field="requests",
        )
    if len(request_payloads) > max_requests:
        raise JobValidationError(
            f"batch has {len(request_payloads)} requests; this service "
            f"accepts at most {max_requests} per job",
            field="requests",
        )
    try:
        model = serialization.from_dict(model_payload)
    except (ValueError, TypeError, KeyError) as error:
        raise JobValidationError(
            f"model does not deserialize: {error}", field="model"
        ) from error
    if not isinstance(model, (CostDamageAT, CostDamageProbAT)):
        raise JobValidationError(
            "model lacks cost/damage attributes; serialize a CostDamageAT "
            "or CostDamageProbAT", field="model",
        )
    session = AnalysisSession(model)
    for index, entry in enumerate(request_payloads):
        if not isinstance(entry, dict):
            raise JobValidationError(
                f"requests[{index}] must be an object", field="requests",
                index=index,
            )
        try:
            request = AnalysisRequest.from_dict(entry)
            request.validate()
            backend = session.resolve(request.problem, backend=request.backend)
            backend.validate_options(request)
        except (ValueError, TypeError) as error:
            raise JobValidationError(
                f"requests[{index}]: {error}", field="requests", index=index
            ) from error


def _derive_state(descriptor: Dict[str, Any], tasks: List[Task]) -> str:
    """The job state machine, evaluated over the tasks' durable states."""
    if descriptor.get("cancelled"):
        return "cancelled"
    states = [task.state for task in tasks]
    if any(state is TaskState.DEAD for state in states):
        return "failed"
    if states and all(state is TaskState.DONE for state in states):
        return "done"
    if all(
        task.state is TaskState.PENDING and task.attempts == 0
        for task in tasks
    ):
        return "queued"
    return "running"


class JobManager:
    """Submit, track, enumerate and cancel jobs on one work queue.

    The manager owns no state of its own — descriptors live in queue
    metadata, progress lives on the task rows — so any number of manager
    instances (service restarts, a debugging REPL) observe the same jobs.
    The one exception is the per-tenant submit lock serializing the job
    *index* read-modify-write; it assumes a single service process per
    queue, which is the deployment this layer targets.

    Parameters
    ----------
    queue:
        The shared work queue (local sqlite or a broker URL's client).
    max_attempts:
        Retry budget given to every task submitted through the service.
    max_requests:
        Largest accepted batch (edge validation).
    clock:
        Injectable time source for descriptor timestamps.
    """

    def __init__(
        self,
        queue: WorkQueue,
        max_attempts: int = 3,
        max_requests: int = 1000,
        clock: Callable[[], float] = time.time,
    ) -> None:
        self.queue = queue
        self.max_attempts = max_attempts
        self.max_requests = max_requests
        self._clock = clock
        self._index_lock = threading.Lock()

    # ------------------------------------------------------------------ #
    # submission
    # ------------------------------------------------------------------ #
    def submit(
        self,
        tenant: str,
        model_payload: Dict[str, Any],
        request_payloads: Sequence[Dict[str, Any]],
        name: Optional[str] = None,
    ) -> Dict[str, Any]:
        """Validate, enqueue and record one job; returns its status document.

        Validation happens entirely before the first queue write, so a
        rejected batch leaves no trace.  The descriptor is recorded with
        an atomic check-and-set on a fresh job id — and the task submit
        carries a dedupe key derived from it, so a retried submit (lost
        response through a broker) cannot double-enqueue the batch.
        """
        requests = list(request_payloads)
        validate_batch(model_payload, requests, self.max_requests)
        job_id = uuid.uuid4().hex[:12]
        with trace_span(
            "job.submit", attrs={"tenant": tenant, "requests": len(requests)}
        ):
            # Each task carries the submission's trace context, so the
            # worker spans executing this job parent under it (one trace
            # per job, across the whole fleet).
            carrier = inject_context()
            payloads = [
                {
                    "kind": "request",
                    "model": model_payload,
                    "request": dict(entry),
                    "store_namespace": tenant,
                    "job": {"id": job_id, "tenant": tenant, "index": index},
                    **({"trace": dict(carrier)} if carrier else {}),
                }
                for index, entry in enumerate(requests)
            ]
            task_ids = self.queue.submit(
                payloads,
                max_attempts=self.max_attempts,
                dedupe_key=f"job:{tenant}:{job_id}",
            )
        obs_families.service_jobs_total().inc(tenant=tenant)
        obs_families.service_requests_total().inc(len(task_ids), tenant=tenant)
        descriptor = {
            "job_id": job_id,
            "tenant": tenant,
            "name": name,
            "count": len(task_ids),
            "task_ids": task_ids,
            "created_unix": self._clock(),
            "cancelled": False,
        }
        if not self.queue.set_meta_if_absent(
            job_meta_key(tenant, job_id), json.dumps(descriptor, sort_keys=True)
        ):
            # A 12-hex-char uuid collided with an existing job: effectively
            # impossible, but a silent overwrite of someone's job would be
            # unforgivable, so it is a loud error instead.
            raise JobError(f"job id collision for {job_id!r}; resubmit")
        with self._index_lock:
            raw = self.queue.get_meta(tenant_index_key(tenant))
            index = json.loads(raw) if raw is not None else []
            index.append(job_id)
            self.queue.set_meta(tenant_index_key(tenant), json.dumps(index))
        return self.status(tenant, job_id)

    # ------------------------------------------------------------------ #
    # tracking
    # ------------------------------------------------------------------ #
    def _descriptor(self, tenant: str, job_id: str) -> Optional[Dict[str, Any]]:
        raw = self.queue.get_meta(job_meta_key(tenant, job_id))
        return None if raw is None else json.loads(raw)

    def _job_tasks(self, descriptor: Dict[str, Any]) -> List[Task]:
        wanted = set(descriptor["task_ids"])
        by_id = {
            task.task_id: task
            for task in self.queue.tasks()
            if task.task_id in wanted
        }
        # Preserve submission (request-index) order.
        return [by_id[tid] for tid in descriptor["task_ids"] if tid in by_id]

    def _status_document(
        self, descriptor: Dict[str, Any], tasks: List[Task]
    ) -> Dict[str, Any]:
        counts = {state.value: 0 for state in TaskState}
        for task in tasks:
            counts[task.state.value] += 1
        return {
            "job_id": descriptor["job_id"],
            "tenant": descriptor["tenant"],
            "name": descriptor.get("name"),
            "state": _derive_state(descriptor, tasks),
            "count": descriptor["count"],
            "created_unix": descriptor["created_unix"],
            "task_counts": counts,
            "completed": counts[TaskState.DONE.value],
        }

    def status(self, tenant: str, job_id: str) -> Optional[Dict[str, Any]]:
        """The job's status document, or ``None`` for a job this tenant
        does not own (unknown and foreign ids are indistinguishable)."""
        descriptor = self._descriptor(tenant, job_id)
        if descriptor is None:
            return None
        return self._status_document(descriptor, self._job_tasks(descriptor))

    def list_jobs(self, tenant: str) -> List[Dict[str, Any]]:
        """Status documents of every job the tenant ever submitted."""
        raw = self.queue.get_meta(tenant_index_key(tenant))
        if raw is None:
            return []
        statuses = []
        for job_id in json.loads(raw):
            status = self.status(tenant, job_id)
            if status is not None:
                statuses.append(status)
        return statuses

    def results(self, tenant: str, job_id: str) -> Optional[List[Dict[str, Any]]]:
        """Per-request rows, in submission order: index, state, result/error."""
        descriptor = self._descriptor(tenant, job_id)
        if descriptor is None:
            return None
        rows = []
        for index, task in enumerate(self._job_tasks(descriptor)):
            rows.append({
                "index": index,
                "task_id": task.task_id,
                "state": task.state.value,
                "result": task.result,
                "error": task.error,
            })
        return rows

    def in_flight(self, tenant: str) -> int:
        """The tenant's pending+running request count, across all its jobs.

        Read from the durable queue state, so the quota this feeds holds
        across service restarts.
        """
        raw = self.queue.get_meta(tenant_index_key(tenant))
        if raw is None:
            return 0
        wanted = set()
        for job_id in json.loads(raw):
            descriptor = self._descriptor(tenant, job_id)
            if descriptor is not None and not descriptor.get("cancelled"):
                wanted.update(descriptor["task_ids"])
        return sum(
            1
            for task in self.queue.tasks()
            if task.task_id in wanted
            and task.state in (TaskState.PENDING, TaskState.RUNNING)
        )

    # ------------------------------------------------------------------ #
    # cancellation
    # ------------------------------------------------------------------ #
    def cancel(self, tenant: str, job_id: str) -> Optional[Dict[str, Any]]:
        """Cancel the job; returns its status afterwards (``None`` = not owned).

        Pending tasks are withdrawn from the queue; running tasks finish
        their attempt (their workers hold leases that cannot be revoked
        safely) and keep their results.  Cancelling a job that is already
        terminal — done, failed, or cancelled — changes nothing and
        returns the status as-is, so retried cancels are harmless.
        """
        descriptor = self._descriptor(tenant, job_id)
        if descriptor is None:
            return None
        tasks = self._job_tasks(descriptor)
        if _derive_state(descriptor, tasks) in TERMINAL_STATES:
            return self._status_document(descriptor, tasks)
        descriptor["cancelled"] = True
        self.queue.set_meta(
            job_meta_key(tenant, job_id), json.dumps(descriptor, sort_keys=True)
        )
        self.queue.cancel_pending(descriptor["task_ids"])
        return self._status_document(descriptor, self._job_tasks(descriptor))
