"""Tenant identity: API keys, constant-time authentication, quotas config.

The analysis service is multi-tenant: every request carries an API key in
the ``X-Api-Key`` header, mapped here to a :class:`Tenant` — the name that
namespaces every queue-meta key and every result-store row the tenant
touches, plus the tenant's quota settings.

Keys load from a JSON file (``atcd api --keys``)::

    {"tenants": [
        {"name": "acme", "key": "acme-key-0123456789abcdef",
         "max_in_flight": 16, "rate_per_second": 5.0, "burst": 20}
    ]}

``max_in_flight``, ``rate_per_second`` and ``burst`` are optional — a
tenant without them is unthrottled (see :mod:`repro.service.quotas` for
their semantics).

Authentication is constant-time by construction: the presented key is
compared against *every* tenant's key with :func:`hmac.compare_digest`,
accumulating the match without early exit, so neither the comparison
length nor the table position of a tenant leaks through response timing.
"""

from __future__ import annotations

import hmac
import json
import re
from dataclasses import dataclass
from typing import Any, Dict, List, Mapping, Optional

__all__ = ["API_KEY_HEADER", "MIN_KEY_LENGTH", "Tenant", "TenantRegistry"]

#: HTTP header carrying the tenant's API key.
API_KEY_HEADER = "X-Api-Key"

#: Minimum accepted key length.  Keys are bearer secrets; a one-character
#: "key" in a config file is a misconfiguration, not a tenant.
MIN_KEY_LENGTH = 8

#: Tenant names become store namespaces, queue-meta key segments and URL
#: path pieces — same strict grammar as queue names.
_NAME_PATTERN = re.compile(r"^[A-Za-z0-9][A-Za-z0-9_.-]{0,63}$")


@dataclass(frozen=True)
class Tenant:
    """One tenant: identity plus quota configuration.

    ``max_in_flight`` bounds how many of the tenant's analysis requests
    may be pending or running at once; ``rate_per_second``/``burst``
    parameterize the token-bucket rate limit.  ``None`` means unlimited.
    """

    name: str
    key: str
    max_in_flight: Optional[int] = None
    rate_per_second: Optional[float] = None
    burst: Optional[float] = None

    def __post_init__(self) -> None:
        if not isinstance(self.name, str) or not _NAME_PATTERN.fullmatch(self.name):
            raise ValueError(
                f"invalid tenant name {self.name!r}: names are 1-64 characters "
                "from [A-Za-z0-9_.-], starting with a letter or digit"
            )
        if not isinstance(self.key, str) or len(self.key) < MIN_KEY_LENGTH:
            raise ValueError(
                f"tenant {self.name!r}: api key must be a string of at least "
                f"{MIN_KEY_LENGTH} characters"
            )
        if self.max_in_flight is not None and (
            isinstance(self.max_in_flight, bool)
            or not isinstance(self.max_in_flight, int)
            or self.max_in_flight < 1
        ):
            raise ValueError(
                f"tenant {self.name!r}: max_in_flight must be a positive "
                f"integer, got {self.max_in_flight!r}"
            )
        for field_name in ("rate_per_second", "burst"):
            value = getattr(self, field_name)
            if value is not None and (
                isinstance(value, bool)
                or not isinstance(value, (int, float))
                or value <= 0
            ):
                raise ValueError(
                    f"tenant {self.name!r}: {field_name} must be a positive "
                    f"number, got {value!r}"
                )

    @classmethod
    def from_dict(cls, data: Mapping[str, Any]) -> "Tenant":
        unknown = set(data) - {
            "name", "key", "max_in_flight", "rate_per_second", "burst"
        }
        if unknown:
            raise ValueError(f"unknown tenant fields: {sorted(unknown)!r}")
        if "name" not in data or "key" not in data:
            raise ValueError("every tenant needs both 'name' and 'key'")
        return cls(
            name=data["name"],
            key=data["key"],
            max_in_flight=data.get("max_in_flight"),
            rate_per_second=data.get("rate_per_second"),
            burst=data.get("burst"),
        )


class TenantRegistry:
    """The tenant table: load, validate, authenticate.

    Names and keys must both be unique — a duplicated name would merge
    two tenants' namespaces, a duplicated key would make authentication
    ambiguous.
    """

    def __init__(self, tenants: List[Tenant]) -> None:
        if not tenants:
            raise ValueError("tenant registry is empty: the service would "
                             "reject every request")
        names = [tenant.name for tenant in tenants]
        if len(set(names)) != len(names):
            duplicates = sorted({n for n in names if names.count(n) > 1})
            raise ValueError(f"duplicate tenant names: {duplicates!r}")
        keys = [tenant.key for tenant in tenants]
        if len(set(keys)) != len(keys):
            raise ValueError("duplicate tenant api keys (keys must uniquely "
                             "identify a tenant)")
        self._tenants = list(tenants)
        self._by_name: Dict[str, Tenant] = {t.name: t for t in tenants}

    @classmethod
    def from_file(cls, path: str) -> "TenantRegistry":
        """Load a keys file (see the module docstring for the format)."""
        try:
            with open(path, "r", encoding="utf-8") as handle:
                document = json.load(handle)
        except OSError as error:
            raise ValueError(f"cannot read keys file {path!r}: {error}") from error
        except ValueError as error:
            raise ValueError(
                f"keys file {path!r} is not valid JSON: {error}"
            ) from error
        if not isinstance(document, dict) or not isinstance(
            document.get("tenants"), list
        ):
            raise ValueError(
                f"keys file {path!r} must be an object with a 'tenants' list"
            )
        try:
            tenants = [Tenant.from_dict(entry) for entry in document["tenants"]]
        except (TypeError, ValueError) as error:
            raise ValueError(f"keys file {path!r}: {error}") from error
        return cls(tenants)

    def __len__(self) -> int:
        return len(self._tenants)

    def names(self) -> List[str]:
        return sorted(self._by_name)

    def get(self, name: str) -> Optional[Tenant]:
        return self._by_name.get(name)

    def authenticate(self, presented_key: Optional[str]) -> Optional[Tenant]:
        """The tenant owning ``presented_key``, or ``None``.

        Every registered key is compared (no early exit) with
        :func:`hmac.compare_digest`, so response timing does not depend on
        which tenant matched or how much of a key prefix an attacker got
        right.
        """
        if not isinstance(presented_key, str) or not presented_key:
            return None
        presented = presented_key.encode("utf-8")
        matched: Optional[Tenant] = None
        for tenant in self._tenants:
            if hmac.compare_digest(presented, tenant.key.encode("utf-8")):
                matched = tenant
        return matched
