"""The analysis service: ``atcd api`` — jobs over JSON/HTTP.

One :class:`ServiceServer` fronts a shared work queue: clients POST
batches of analysis requests and drive the resulting job through the
state machine in :mod:`repro.service.jobs`, while ordinary ``atcd dist
worker`` processes (local or remote, attached to the same queue and a
shared result store) execute the tasks.  The service itself computes
nothing — it validates at the edge, admits against quotas, and translates
job state; every durable fact lives in the queue.

Wire schema (all bodies JSON; errors are
``{"ok": false, "error": str, "kind": str, ...}``):

``GET /ping``
    Liveness, unauthenticated: ``{"server": "atcd-service",
    "service_version": 1}``.
``POST /v1/jobs``
    Body ``{"model": <serialized tree>, "requests": [<request>...],
    "name"?: str}``.  Fail-fast validated (400 with ``field``/``index``
    on the first offending request), quota-checked (429 with
    ``retry_after_seconds`` and a ``Retry-After`` header), then enqueued:
    202 with the job's status document.
``GET /v1/jobs``
    All of the calling tenant's jobs (status documents).
``GET /v1/jobs/<id>``
    One job's status: state, per-state task counts, completion count.
``GET /v1/jobs/<id>/results``
    Status plus per-request rows ``{"index", "state", "result", "error"}``
    in submission order (results present for completed tasks only).
``GET /v1/jobs/<id>/stream``
    NDJSON: one ``{"event": "result", "index", "result"}`` line per
    request *as workers complete them*, then one terminal
    ``{"event": "end", "state", "job"}`` line.  The response carries no
    Content-Length and closes the connection when done — a plain HTTP
    client (or ``curl -N``) reads results live.
``POST /v1/jobs/<id>/cancel``
    Drive the job to ``cancelled``: pending tasks are withdrawn, running
    ones finish their attempt.  Terminal jobs are returned unchanged.

Authentication: every ``/v1`` request carries the tenant's API key in
``X-Api-Key``.  A missing key is 401, an unknown key 403 — both
constant-time (:meth:`TenantRegistry.authenticate` compares against every
registered key).  Job visibility is tenant-scoped by construction: lookup
keys embed the authenticated tenant's name, so another tenant's job id is
simply not found (404), indistinguishable from a nonexistent one.
"""

from __future__ import annotations

import contextlib
import json
import threading
import time
from http.server import BaseHTTPRequestHandler, ThreadingHTTPServer
from typing import Any, Callable, Dict, Optional

from ..distributed.queue import QueueError, WorkQueue
from ..engine.store import StoreError
from ..net.accesslog import AccessLog, REQUEST_ID_HEADER, request_trace_seed
from ..obs import families as obs_families
from ..obs.promtext import CONTENT_TYPE as PROMETHEUS_CONTENT_TYPE
from ..obs.scrape import render_fleet_metrics
from ..obs.trace import activate_context
from ..obs.trace import span as trace_span
from .jobs import JobError, JobManager, JobValidationError, validate_batch
from .quotas import QuotaExceeded, QuotaManager
from .tenants import API_KEY_HEADER, Tenant, TenantRegistry

__all__ = ["SERVICE_NAME", "SERVICE_VERSION", "ServiceServer"]

#: The ``server`` field of ``GET /ping`` — distinguishes the service from
#: the broker (and from arbitrary HTTP servers) during probes.
SERVICE_NAME = "atcd-service"

#: Version of the service wire schema; bump on incompatible change.
SERVICE_VERSION = 1

#: Maximum accepted request body.  Batches embed whole serialized models,
#: so this is generous — but a hostile client must not make the service
#: buffer unbounded memory.
MAX_BODY_BYTES = 64 * 1024 * 1024


def _route_template(path: str) -> str:
    """Collapse one request path to a bounded-cardinality route label.

    Job ids are per-job unique and must never become label values, so the
    ``/v1/jobs/...`` shapes collapse to ``{id}`` templates; anything off
    the wire schema is just ``other``.
    """
    if path in ("/ping", "/metrics", "/v1/jobs"):
        return path
    parts = path.strip("/").split("/")
    if len(parts) == 3 and parts[:2] == ["v1", "jobs"]:
        return "/v1/jobs/{id}"
    if (
        len(parts) == 4
        and parts[:2] == ["v1", "jobs"]
        and parts[3] in ("results", "stream", "cancel")
    ):
        return f"/v1/jobs/{{id}}/{parts[3]}"
    return "other"


class _ServiceHandler(BaseHTTPRequestHandler):
    """One request: authenticate, admit, dispatch, reply JSON."""

    protocol_version = "HTTP/1.1"
    server_version = f"{SERVICE_NAME}/{SERVICE_VERSION}"

    _request_id = ""
    _status = 0
    _route = "other"
    _counted = False
    _tenant: Optional[Tenant] = None

    def log_message(self, format: str, *args: Any) -> None:  # noqa: A002
        if getattr(self.server, "verbose", False):
            super().log_message(format, *args)

    # ------------------------------------------------------------------ #
    # plumbing (the broker's, plus tenant attribution)
    # ------------------------------------------------------------------ #
    def _observed(self, method: str, handler: Callable[[], None]) -> None:
        self._request_id, context = request_trace_seed(self.headers)
        self._status = 0
        self._counted = False
        self._tenant = None
        route = self._route = _route_template(self.path)
        started = time.perf_counter()
        try:
            if context is not None:
                # A tracing caller's context becomes the ambient trace, so
                # the job.submit span (and through the queue payload, every
                # worker span) carries the caller's trace id.
                with activate_context(context), trace_span(
                    "http.request",
                    attrs={"server": "service", "method": method,
                           "route": route},
                ):
                    handler()
            else:
                handler()
        finally:
            elapsed = time.perf_counter() - started
            if not self._counted:
                # Normally _count_request ran before the reply bytes left
                # the socket (so a scrape issued right after the response
                # already sees this request); this fallback covers
                # handlers that crashed before replying.
                self._count_request(self._status)
            obs_families.http_request_seconds().observe(
                elapsed, server="service", route=route
            )
            log = self.server.service.access_log
            if log is not None:
                log.record(
                    method=method,
                    route=self.path,
                    status=self._status,
                    latency_ms=elapsed * 1000.0,
                    request_id=self._request_id,
                    tenant=None if self._tenant is None else self._tenant.name,
                    trace_id=None if context is None else context.trace_id,
                )

    def _count_request(self, status: int) -> None:
        """Count the request *before* the reply is flushed.

        A client that saw the response may scrape ``/metrics`` on its next
        request; counting after the flush (the old shape) lost that race.
        """
        self._counted = True
        obs_families.http_requests_total().inc(
            server="service", route=self._route, status=str(status)
        )

    def _reply(
        self,
        status: int,
        document: Dict[str, Any],
        close: bool = False,
        headers: Optional[Dict[str, str]] = None,
    ) -> None:
        body = json.dumps(document, sort_keys=True).encode("utf-8")
        self._status = status
        self._count_request(status)
        self.send_response(status)
        self.send_header("Content-Type", "application/json")
        self.send_header("Content-Length", str(len(body)))
        self.send_header(REQUEST_ID_HEADER, self._request_id)
        for name, value in (headers or {}).items():
            self.send_header(name, value)
        if close:
            self.send_header("Connection", "close")
            self.close_connection = True
        self.end_headers()
        self.wfile.write(body)

    def _reply_error(
        self,
        status: int,
        message: str,
        kind: str,
        close: bool = False,
        headers: Optional[Dict[str, str]] = None,
        **extra: Any,
    ) -> None:
        document = {"ok": False, "error": message, "kind": kind}
        document.update(extra)
        self._reply(
            status, document, close=close or status == 503, headers=headers
        )

    def _drain_body(self) -> None:
        try:
            length = int(self.headers.get("Content-Length", "0"))
        except ValueError:
            length = -1
        if length < 0 or length > MAX_BODY_BYTES:
            self.close_connection = True
            return
        remaining = length
        while remaining > 0:
            chunk = self.rfile.read(min(remaining, 1 << 20))
            if not chunk:
                break
            remaining -= len(chunk)

    def _shutting_down(self) -> bool:
        if not self.server.service.closing:
            return False
        self._reply_error(503, "service is shutting down; retry", "unavailable")
        return True

    def _authenticate(self) -> Optional[Tenant]:
        """The calling tenant, or ``None`` after replying 401/403."""
        presented = self.headers.get(API_KEY_HEADER)
        if not presented:
            self._drain_body()
            self._reply_error(
                401,
                f"missing api key: pass the {API_KEY_HEADER} header",
                "unauthorized",
            )
            return None
        tenant = self.server.service.tenants.authenticate(presented)
        if tenant is None:
            self._drain_body()
            self._reply_error(403, "unknown api key", "forbidden")
            return None
        self._tenant = tenant
        return tenant

    def _read_body(self) -> Optional[Dict[str, Any]]:
        try:
            length = int(self.headers.get("Content-Length", "0"))
        except ValueError:
            length = -1
        if length < 0 or length > MAX_BODY_BYTES:
            self._reply_error(
                400, f"invalid request body length {length}", "bad-request",
                close=True,
            )
            return None
        raw = self.rfile.read(length) if length else b""
        try:
            args = json.loads(raw.decode("utf-8")) if raw else {}
        except (ValueError, UnicodeDecodeError):
            self._reply_error(
                400, "request body is not valid JSON", "bad-request"
            )
            return None
        if not isinstance(args, dict):
            self._reply_error(
                400, "request body must be a JSON object", "bad-request"
            )
            return None
        return args

    # ------------------------------------------------------------------ #
    # dispatch
    # ------------------------------------------------------------------ #
    def do_GET(self) -> None:  # noqa: N802 (http.server naming)
        self._observed("GET", self._handle_get)

    def do_POST(self) -> None:  # noqa: N802
        self._observed("POST", self._handle_post)

    def _handle_get(self) -> None:
        if self._shutting_down():
            return
        if self.path == "/ping":
            self._reply(200, {
                "ok": True,
                "server": SERVICE_NAME,
                "service_version": SERVICE_VERSION,
            })
            return
        if self.path == "/metrics":
            # Operator-facing like /ping, so it shares /ping's (open) auth
            # posture: per-tenant API keys authenticate *tenants*, and a
            # fleet-wide scrape belongs to no one tenant.
            body = self.server.service.metrics_body()
            payload = body.encode("utf-8")
            self._status = 200
            self._count_request(200)
            self.send_response(200)
            self.send_header("Content-Type", PROMETHEUS_CONTENT_TYPE)
            self.send_header("Content-Length", str(len(payload)))
            self.send_header(REQUEST_ID_HEADER, self._request_id)
            self.end_headers()
            self.wfile.write(payload)
            return
        tenant = self._authenticate()
        if tenant is None:
            return
        parts = self.path.strip("/").split("/")
        jobs = self.server.service.jobs
        try:
            if parts == ["v1", "jobs"]:
                self._reply(200, {
                    "ok": True, "jobs": jobs.list_jobs(tenant.name),
                })
                return
            if len(parts) == 3 and parts[:2] == ["v1", "jobs"]:
                status = jobs.status(tenant.name, parts[2])
                if status is None:
                    self._reply_job_not_found(parts[2])
                    return
                self._reply(200, {"ok": True, "job": status})
                return
            if len(parts) == 4 and parts[:2] == ["v1", "jobs"]:
                job_id, verb = parts[2], parts[3]
                if verb == "results":
                    status = jobs.status(tenant.name, job_id)
                    rows = jobs.results(tenant.name, job_id)
                    if status is None or rows is None:
                        self._reply_job_not_found(job_id)
                        return
                    self._reply(200, {
                        "ok": True, "job": status, "results": rows,
                    })
                    return
                if verb == "stream":
                    self._stream_job(tenant, job_id)
                    return
        except (QueueError, StoreError) as error:
            self._reply_backend_error(error)
            return
        self._reply_error(404, f"unknown endpoint {self.path!r}", "not-found")

    def _handle_post(self) -> None:
        if self._shutting_down():
            return
        tenant = self._authenticate()
        if tenant is None:
            return
        parts = self.path.strip("/").split("/")
        try:
            if parts == ["v1", "jobs"]:
                self._submit_job(tenant)
                return
            if (
                len(parts) == 4
                and parts[:2] == ["v1", "jobs"]
                and parts[3] == "cancel"
            ):
                status = self.server.service.jobs.cancel(tenant.name, parts[2])
                if status is None:
                    self._drain_body()
                    self._reply_job_not_found(parts[2])
                    return
                self._drain_body()
                self._reply(200, {"ok": True, "job": status})
                return
        except (QueueError, StoreError) as error:
            self._drain_body()
            self._reply_backend_error(error)
            return
        self._drain_body()
        self._reply_error(404, f"unknown endpoint {self.path!r}", "not-found")

    def _reply_job_not_found(self, job_id: str) -> None:
        self._reply_error(
            404, f"no job {job_id!r} for this tenant", "not-found"
        )

    def _reply_backend_error(self, error: Exception) -> None:
        """A queue/store failure under a request: 503, the client's retry
        path — the service's backend being briefly unreachable is not a
        client error."""
        self._reply_error(503, f"backend unavailable: {error}", "unavailable")

    # ------------------------------------------------------------------ #
    # endpoints
    # ------------------------------------------------------------------ #
    def _submit_job(self, tenant: Tenant) -> None:
        service = self.server.service
        args = self._read_body()
        if args is None:
            return
        unknown = set(args) - {"model", "requests", "name"}
        if unknown:
            self._reply_error(
                400, f"unknown job fields: {sorted(unknown)!r}", "validation",
            )
            return
        name = args.get("name")
        if name is not None and not isinstance(name, str):
            self._reply_error(
                400, "the 'name' field must be a string", "validation",
                field="name",
            )
            return
        requests = args.get("requests")
        batch_size = len(requests) if isinstance(requests, list) else 0
        try:
            # Validation runs before admission: validating is cheap, no
            # task is enqueued either way, and the honest tenant gets the
            # more useful error.  The rate bucket must only be charged
            # for batches that are actually admitted, hence the order:
            # validate, then admit, then enqueue.
            validate_batch(
                args.get("model"), requests, service.jobs.max_requests
            )
            service.quotas.admit(
                tenant, batch_size, service.jobs.in_flight(tenant.name)
            )
            status = service.jobs.submit(
                tenant.name, args["model"], requests, name=name
            )
        except JobValidationError as error:
            extra: Dict[str, Any] = {}
            if error.field is not None:
                extra["field"] = error.field
            if error.index is not None:
                extra["index"] = error.index
            self._reply_error(400, str(error), "validation", **extra)
            return
        except QuotaExceeded as error:
            # error.kind is "quota" or "rate-limit" — a closed set, so it
            # is safe as a label value.
            obs_families.service_rejections_total().inc(
                tenant=tenant.name, kind=error.kind
            )
            headers = {}
            extra = {}
            if error.retry_after_seconds is not None:
                headers["Retry-After"] = str(
                    max(1, int(error.retry_after_seconds + 0.999))
                )
                extra["retry_after_seconds"] = round(
                    error.retry_after_seconds, 3
                )
            self._reply_error(
                429, str(error), error.kind, headers=headers, **extra
            )
            return
        except JobError as error:
            self._reply_error(400, str(error), "job-error")
            return
        self._reply(202, {"ok": True, "job": status})

    def _stream_job(self, tenant: Tenant, job_id: str) -> None:
        """NDJSON: per-request results as they complete, then an end line.

        The response is close-delimited (no Content-Length, ``Connection:
        close``) — the one framing a streaming body can use over plain
        ``http.server``.  Results stream in completion order; the terminal
        line carries the job's final state and status document.
        """
        service = self.server.service
        jobs = service.jobs
        if jobs.status(tenant.name, job_id) is None:
            self._reply_job_not_found(job_id)
            return
        self._status = 200
        self._count_request(200)
        self.send_response(200)
        self.send_header("Content-Type", "application/x-ndjson")
        self.send_header(REQUEST_ID_HEADER, self._request_id)
        self.send_header("Connection", "close")
        self.close_connection = True
        self.end_headers()

        def emit(document: Dict[str, Any]) -> None:
            self.wfile.write(
                json.dumps(document, sort_keys=True).encode("utf-8") + b"\n"
            )
            self.wfile.flush()

        emitted = set()
        deadline = time.monotonic() + service.stream_timeout_seconds
        try:
            while True:
                status = jobs.status(tenant.name, job_id)
                rows = jobs.results(tenant.name, job_id)
                if status is None or rows is None:
                    emit({"event": "error", "error": "job disappeared"})
                    return
                for row in rows:
                    if row["index"] in emitted or row["result"] is None:
                        continue
                    emitted.add(row["index"])
                    emit({
                        "event": "result",
                        "index": row["index"],
                        "result": row["result"],
                    })
                if status["state"] in ("done", "failed", "cancelled"):
                    emit({"event": "end", "state": status["state"],
                          "job": status})
                    return
                if time.monotonic() >= deadline:
                    emit({"event": "timeout", "state": status["state"],
                          "job": status})
                    return
                if service.closing:
                    emit({"event": "error",
                          "error": "service is shutting down"})
                    return
                time.sleep(service.poll_seconds)
        except (OSError, ValueError):
            # The client went away mid-stream; nothing to clean up — job
            # progress lives in the queue, not in this connection.
            return


class ServiceServer:
    """Serve the multi-tenant analysis API over one work queue.

    Parameters
    ----------
    queue:
        The shared :class:`~repro.distributed.queue.WorkQueue` instance
        (local sqlite or an HTTP client).  The server owns it and closes
        it on :meth:`close`.
    tenants:
        The :class:`~repro.service.tenants.TenantRegistry` to
        authenticate against.
    host / port:
        Bind address; port 0 picks a free port.
    max_attempts / max_requests:
        Task retry budget and largest accepted batch (forwarded to
        :class:`JobManager`).
    poll_seconds / stream_timeout_seconds:
        Streaming endpoint tuning: poll cadence against the queue, and
        the hard cap on one streaming response's lifetime.
    access_log:
        Optional :class:`~repro.net.accesslog.AccessLog`; the CLI wires
        this to stderr by default — a public surface should not be dark.
    verbose:
        Log one line per request via ``http.server`` (default quiet; the
        access log is the structured alternative).
    clock:
        Injectable time source (descriptor timestamps, rate buckets).
    """

    def __init__(
        self,
        queue: WorkQueue,
        tenants: TenantRegistry,
        host: str = "127.0.0.1",
        port: int = 0,
        max_attempts: int = 3,
        max_requests: int = 1000,
        poll_seconds: float = 0.2,
        stream_timeout_seconds: float = 300.0,
        access_log: Optional[AccessLog] = None,
        verbose: bool = False,
        clock: Callable[[], float] = time.time,
    ) -> None:
        self.queue = queue
        self.tenants = tenants
        self.jobs = JobManager(
            queue, max_attempts=max_attempts, max_requests=max_requests,
            clock=clock,
        )
        self.quotas = QuotaManager()
        self.poll_seconds = poll_seconds
        self.stream_timeout_seconds = stream_timeout_seconds
        self.access_log = access_log
        self._thread: Optional[threading.Thread] = None
        self._served = threading.Event()
        self._closed = False
        try:
            self._http = ThreadingHTTPServer((host, port), _ServiceHandler)
        except BaseException:
            self.close()
            raise
        self._http.daemon_threads = True
        self._http.service = self
        self._http.verbose = verbose
        self.host, self.port = self._http.server_address[:2]
        # Register every metric family up front so a scrape taken before
        # the first request still shows the full catalog (at zero).
        obs_families.ensure_all()

    def metrics_body(self) -> str:
        """The ``GET /metrics`` exposition body for this service.

        Merges the workers' published snapshots (found in the shared
        queue's metadata) under the service's own registry, so engine and
        worker metrics show up here even though the service itself never
        computes anything.
        """
        return render_fleet_metrics(queues=[self.queue])

    @property
    def url(self) -> str:
        """The base URL clients submit jobs against."""
        return f"http://{self.host}:{self.port}"

    @property
    def closing(self) -> bool:
        """True once :meth:`close` began; handlers answer 503 from then."""
        return self._closed

    def serve_forever(self) -> None:
        """Serve on the calling thread until :meth:`close` (or a signal)."""
        self._served.set()
        self._http.serve_forever(poll_interval=0.1)

    def start(self) -> None:
        """Serve on a background daemon thread (tests, embedding)."""
        self._served.set()
        self._thread = threading.Thread(
            target=self.serve_forever, name="atcd-service", daemon=True
        )
        self._thread.start()

    def close(self) -> None:
        """Stop serving and release the queue (idempotent)."""
        if self._closed:
            return
        self._closed = True
        http = getattr(self, "_http", None)
        if http is not None:
            if self._served.is_set():
                http.shutdown()
            http.server_close()
        if self._thread is not None:
            self._thread.join(timeout=10.0)
        with contextlib.suppress(Exception):
            self.queue.close()

    def __enter__(self) -> "ServiceServer":
        return self

    def __exit__(self, *exc_info: Any) -> None:
        self.close()
