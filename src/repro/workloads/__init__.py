"""Declarative, reproducible benchmark workloads.

This package is the scenario layer of the benchmark subsystem: a
:class:`ScenarioSpec` names a workload *family* plus shape, setting, size
sweep, seed and decoration ranges, and :func:`expand` turns it into
decorated attack-tree models.  Expansion is fully deterministic in the
spec, so a spec embedded in a ``BENCH_*.json`` artifact regenerates the
exact models the numbers were measured on.

See :mod:`repro.workloads.families` for the built-in families and the
registry, and :mod:`repro.bench` for the harness that times the expanded
workloads through the analysis engine.
"""

from .families import (
    CatalogFamily,
    DeepChainFamily,
    RandomFamily,
    SharedBasFamily,
    WideFanFamily,
    WorkloadCase,
    WorkloadFamily,
    describe_families,
    expand,
    family,
    family_names,
    register_family,
)
from .spec import SETTINGS, SHAPES, DecorationRanges, ScenarioSpec

__all__ = [
    "CatalogFamily",
    "DecorationRanges",
    "DeepChainFamily",
    "RandomFamily",
    "SETTINGS",
    "SHAPES",
    "ScenarioSpec",
    "SharedBasFamily",
    "WideFanFamily",
    "WorkloadCase",
    "WorkloadFamily",
    "describe_families",
    "expand",
    "family",
    "family_names",
    "register_family",
]
