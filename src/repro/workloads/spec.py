"""Declarative scenario specifications for workload generation.

A :class:`ScenarioSpec` names a workload *family* (registered in
:mod:`repro.workloads.families`) together with everything needed to
regenerate its models deterministically: shape (``treelike``/``dag``),
analysis setting (``deterministic``/``probabilistic``), a size sweep, a
seed, decoration ranges and family-specific parameters.  The same spec
always expands to byte-identical models — ``(family, params, seed)`` is the
whole identity — which is what makes benchmark artifacts comparable across
machines and PRs.

Specs are plain JSON values on the wire (``to_dict``/``from_dict``), the
same convention as :class:`repro.engine.AnalysisRequest`.
"""

from __future__ import annotations

from dataclasses import dataclass, field, replace
from typing import Any, Dict, Mapping, Optional, Tuple

__all__ = ["DecorationRanges", "ScenarioSpec", "SHAPES", "SETTINGS"]

#: Structural shapes a spec can ask for (mirrors the paper's T_tree / T_DAG).
SHAPES = ("treelike", "dag")
#: Analysis settings (Table I rows).
SETTINGS = ("deterministic", "probabilistic")


@dataclass(frozen=True)
class DecorationRanges:
    """Ranges the random decorations are drawn from (Section X.C defaults).

    Costs and damages are integer-valued uniform draws from inclusive
    ranges; success probabilities are the multiples of ``probability_step``
    in ``(0, 1]``.
    """

    cost_range: Tuple[int, int] = (1, 10)
    damage_range: Tuple[int, int] = (0, 10)
    probability_step: float = 0.1

    def __post_init__(self) -> None:
        for name in ("cost_range", "damage_range"):
            value = getattr(self, name)
            if (
                not isinstance(value, (tuple, list))
                or len(value) != 2
                or not all(isinstance(bound, int) for bound in value)
            ):
                raise ValueError(f"{name} must be an (int, int) pair, got {value!r}")
            object.__setattr__(self, name, tuple(value))
            low, high = getattr(self, name)
            if low > high:
                raise ValueError(f"{name} is empty: {low} > {high}")
        if self.cost_range[0] < 0:
            raise ValueError("costs must be non-negative")
        if self.damage_range[0] < 0:
            raise ValueError("damages must be non-negative")
        step = self.probability_step
        if not isinstance(step, (int, float)) or not 0.0 < step <= 1.0:
            raise ValueError(
                f"probability_step must lie in (0, 1], got {step!r}"
            )

    # ------------------------------------------------------------------ #
    # choice sequences consumed by repro.attacktree.random_gen
    # ------------------------------------------------------------------ #
    def cost_choices(self) -> Tuple[int, ...]:
        """The cost values a BAS can draw."""
        return tuple(range(self.cost_range[0], self.cost_range[1] + 1))

    def damage_choices(self) -> Tuple[int, ...]:
        """The damage values a node can draw."""
        return tuple(range(self.damage_range[0], self.damage_range[1] + 1))

    def probability_choices(self) -> Tuple[float, ...]:
        """The success probabilities a BAS can draw."""
        count = int(round(1.0 / self.probability_step))
        return tuple(round(self.probability_step * k, 10) for k in range(1, count + 1))

    # ------------------------------------------------------------------ #
    # JSON round-trip
    # ------------------------------------------------------------------ #
    def to_dict(self) -> Dict[str, Any]:
        """A JSON-compatible representation."""
        return {
            "cost_range": list(self.cost_range),
            "damage_range": list(self.damage_range),
            "probability_step": self.probability_step,
        }

    @classmethod
    def from_dict(cls, data: Mapping[str, Any]) -> "DecorationRanges":
        """Rebuild from :meth:`to_dict` output."""
        unknown = set(data) - {"cost_range", "damage_range", "probability_step"}
        if unknown:
            raise ValueError(f"unknown decoration fields: {sorted(unknown)!r}")
        kwargs: Dict[str, Any] = {}
        for name in ("cost_range", "damage_range"):
            if name in data:
                kwargs[name] = tuple(data[name])
        if "probability_step" in data:
            kwargs["probability_step"] = data["probability_step"]
        return cls(**kwargs)


def _freeze_params(params: Optional[Mapping[str, Any]]) -> Tuple[Tuple[str, Any], ...]:
    """Canonicalize family params into a hashable sorted tuple of pairs."""
    if not params:
        return ()
    frozen = []
    for key, value in sorted(dict(params).items()):
        if isinstance(value, (list, tuple)):
            value = tuple(value)
        elif value is not None and not isinstance(value, (bool, int, float, str)):
            raise ValueError(
                f"param {key!r} has unsupported value {value!r}; params must be "
                "JSON scalars or arrays of them"
            )
        frozen.append((key, value))
    return tuple(frozen)


@dataclass(frozen=True)
class ScenarioSpec:
    """One reproducible workload: a family plus its expansion parameters.

    Attributes
    ----------
    family:
        Name of a registered workload family (``repro.workloads.family_names``).
    shape:
        ``"treelike"`` or ``"dag"`` — the structural regime requested.  For
        stochastic families this selects the generation regime (like the
        paper's ``T_tree`` vs ``T_DAG`` suites); individual small instances
        of a DAG regime may still come out treelike.
    setting:
        ``"deterministic"`` (cd-AT) or ``"probabilistic"`` (cdp-AT).
    sizes:
        Target model sizes to sweep (minimum node counts for stochastic
        families, exact structural parameters for the shaped stress
        families; ignored by ``catalog``).
    cases_per_size:
        How many independently-seeded cases to generate per size.
    seed:
        Base seed; every case derives its own rng stream from
        ``(family, shape, setting, seed, size, index)``, so a single case is
        regenerable without expanding the whole spec.
    problem:
        Engine problem to benchmark on each case, by value (e.g. ``"cdpf"``).
        Defaults to the setting's Pareto-front problem (CDPF / CEDPF).
    backend:
        Optional backend to force (``None`` follows Table I resolution).
    decoration:
        Ranges for the random cost/damage/probability decorations.
    params:
        Family-specific knobs, stored canonically as a sorted tuple of pairs.
    """

    family: str
    shape: str = "treelike"
    setting: str = "deterministic"
    sizes: Tuple[int, ...] = (10,)
    cases_per_size: int = 1
    seed: int = 2023
    problem: Optional[str] = None
    backend: Optional[str] = None
    decoration: DecorationRanges = field(default_factory=DecorationRanges)
    params: Tuple[Tuple[str, Any], ...] = ()

    def __post_init__(self) -> None:
        if not self.family or not isinstance(self.family, str):
            raise ValueError(f"family must be a non-empty string, got {self.family!r}")
        if self.shape not in SHAPES:
            raise ValueError(
                f"shape must be one of {'/'.join(SHAPES)}, got {self.shape!r}"
            )
        if self.setting not in SETTINGS:
            raise ValueError(
                f"setting must be one of {'/'.join(SETTINGS)}, got {self.setting!r}"
            )
        if isinstance(self.sizes, int):
            object.__setattr__(self, "sizes", (self.sizes,))
        else:
            object.__setattr__(self, "sizes", tuple(self.sizes))
        if not self.sizes or any(
            not isinstance(size, int) or size < 1 for size in self.sizes
        ):
            raise ValueError(f"sizes must be positive integers, got {self.sizes!r}")
        if not isinstance(self.cases_per_size, int) or self.cases_per_size < 1:
            raise ValueError(
                f"cases_per_size must be a positive integer, got {self.cases_per_size!r}"
            )
        if not isinstance(self.seed, int):
            raise ValueError(f"seed must be an integer, got {self.seed!r}")
        if not isinstance(self.decoration, DecorationRanges):
            raise ValueError(
                "decoration must be a DecorationRanges, got "
                f"{type(self.decoration).__name__}"
            )
        object.__setattr__(self, "params", _freeze_params(dict(self.params or ())))

    # ------------------------------------------------------------------ #
    # identity and derived values
    # ------------------------------------------------------------------ #
    def label(self) -> str:
        """A short stable name, e.g. ``random-dag-probabilistic-s2023``."""
        return f"{self.family}-{self.shape}-{self.setting}-s{self.seed}"

    def case_seed(self, size: int, index: int) -> str:
        """The per-case rng seed string (deterministic, order-independent)."""
        return (
            f"{self.family}:{self.shape}:{self.setting}:{self.seed}:{size}:{index}"
        )

    def param(self, key: str, default: Any = None) -> Any:
        """Look up one family-specific parameter."""
        for name, value in self.params:
            if name == key:
                return value
        return default

    def default_problem(self) -> str:
        """The problem benchmarked when none is given explicitly."""
        if self.problem is not None:
            return self.problem
        return "cedpf" if self.setting == "probabilistic" else "cdpf"

    def with_overrides(self, **changes: Any) -> "ScenarioSpec":
        """A copy with the given fields replaced (validation re-runs)."""
        return replace(self, **changes)

    # ------------------------------------------------------------------ #
    # JSON round-trip
    # ------------------------------------------------------------------ #
    def to_dict(self) -> Dict[str, Any]:
        """A JSON-compatible representation."""
        payload: Dict[str, Any] = {
            "family": self.family,
            "shape": self.shape,
            "setting": self.setting,
            "sizes": list(self.sizes),
            "cases_per_size": self.cases_per_size,
            "seed": self.seed,
        }
        if self.problem is not None:
            payload["problem"] = self.problem
        if self.backend is not None:
            payload["backend"] = self.backend
        if self.decoration != DecorationRanges():
            payload["decoration"] = self.decoration.to_dict()
        if self.params:
            payload["params"] = dict(self.params)
        return payload

    @classmethod
    def from_dict(cls, data: Mapping[str, Any]) -> "ScenarioSpec":
        """Rebuild a spec from :meth:`to_dict` output."""
        known = {
            "family", "shape", "setting", "sizes", "cases_per_size", "seed",
            "problem", "backend", "decoration", "params",
        }
        unknown = set(data) - known
        if unknown:
            raise ValueError(f"unknown scenario fields: {sorted(unknown)!r}")
        if "family" not in data:
            raise ValueError("scenario spec is missing the 'family' field")
        kwargs: Dict[str, Any] = {"family": data["family"]}
        for name in ("shape", "setting", "cases_per_size", "seed", "problem", "backend"):
            if name in data:
                kwargs[name] = data[name]
        if "sizes" in data:
            kwargs["sizes"] = tuple(data["sizes"])
        if "decoration" in data:
            kwargs["decoration"] = DecorationRanges.from_dict(data["decoration"])
        if "params" in data:
            kwargs["params"] = _freeze_params(data["params"])
        return cls(**kwargs)
