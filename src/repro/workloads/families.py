"""Workload families: named, registered generators of benchmark models.

A *family* turns a :class:`~repro.workloads.spec.ScenarioSpec` into a list
of :class:`WorkloadCase` objects — decorated attack trees plus enough
metadata to identify each case in a benchmark artifact.  Families are
registered by name in a module-level registry (mirroring the engine's
backend registry), so the bench harness, the CLI and external callers all
discover them the same way.

Built-in families
-----------------
``catalog``
    The paper's case studies (factory, panda IoT, data server) with their
    published decorations; sizes are fixed by the models themselves.
``random``
    The Section X.D random-suite generator (literature building blocks
    combined until a target size), generalizing
    :func:`repro.attacktree.random_gen.random_attack_tree` with
    spec-controlled decoration ranges.
``deep-chain``
    A maximally deep alternating AND/OR chain — the worst case for
    recursive bottom-up propagation depth.  The DAG variant threads a
    shared BAS through every other level.
``wide-fan``
    A maximally wide root gate — the worst case for Pareto-front width.
    The DAG variant splits the fan into two overlapping sub-gates.
``shared-bas``
    DAG-only: gates drawing from a common BAS pool, stressing exactly the
    sharing that breaks the treelike bottom-up method (Section VI).

Every case is regenerated deterministically from
``(family, shape, setting, seed, size, index)`` — two expansions of the
same spec, in any process, produce identical models.
"""

from __future__ import annotations

import random
from dataclasses import dataclass
from typing import Dict, Iterable, List, Tuple, Union

from ..attacktree import catalog
from ..attacktree.attributes import CostDamageAT, CostDamageProbAT
from ..attacktree.builder import AttackTreeBuilder
from ..attacktree.node import NodeType
from ..attacktree.random_gen import random_attack_tree, random_decoration
from ..attacktree.tree import AttackTree
from .spec import ScenarioSpec, SETTINGS, SHAPES

__all__ = [
    "WorkloadCase",
    "WorkloadFamily",
    "CatalogFamily",
    "RandomFamily",
    "DeepChainFamily",
    "WideFanFamily",
    "SharedBasFamily",
    "register_family",
    "family",
    "family_names",
    "describe_families",
    "expand",
]

Model = Union[CostDamageAT, CostDamageProbAT]


@dataclass(frozen=True)
class WorkloadCase:
    """One generated benchmark model with its identity metadata.

    ``case_id`` is stable across regenerations of the same spec and unique
    within it, so artifact comparisons can match cases across runs.
    """

    case_id: str
    family: str
    shape: str
    setting: str
    size: int
    model: Model

    @property
    def node_count(self) -> int:
        """Number of nodes in the generated model."""
        return len(self.model.tree)

    @property
    def bas_count(self) -> int:
        """Number of basic attack steps in the generated model."""
        return len(self.model.tree.basic_attack_steps)


class WorkloadFamily:
    """Base class for registered workload families.

    Subclasses set :attr:`name`, :attr:`description` and
    :attr:`supported_cells` (the ``(shape, setting)`` pairs they can
    generate) and implement :meth:`_generate`.
    """

    name: str = ""
    description: str = ""
    #: (shape, setting) pairs this family can generate.
    supported_cells: Tuple[Tuple[str, str], ...] = tuple(
        (shape, setting) for shape in SHAPES for setting in SETTINGS
    )

    def supports(self, shape: str, setting: str) -> bool:
        """Whether the family can generate the given cell."""
        return (shape, setting) in self.supported_cells

    def generate(self, spec: ScenarioSpec) -> List[WorkloadCase]:
        """Expand a spec into its cases (validating the requested cell)."""
        if spec.family != self.name:
            raise ValueError(
                f"spec names family {spec.family!r} but was given to {self.name!r}"
            )
        if not self.supports(spec.shape, spec.setting):
            cells = ", ".join(f"{s}/{t}" for s, t in self.supported_cells)
            raise ValueError(
                f"family {self.name!r} does not support {spec.shape}/{spec.setting} "
                f"workloads; supported: {cells}"
            )
        return list(self._generate(spec))

    def _generate(self, spec: ScenarioSpec) -> Iterable[WorkloadCase]:
        raise NotImplementedError

    # ------------------------------------------------------------------ #
    # helpers shared by the generated (non-catalog) families
    # ------------------------------------------------------------------ #
    def _decorate(
        self, tree: AttackTree, rng: random.Random, spec: ScenarioSpec
    ) -> Model:
        """Decorate a bare tree according to the spec's setting and ranges."""
        cost, damage, probability = random_decoration(
            tree,
            rng,
            cost_choices=spec.decoration.cost_choices(),
            damage_choices=spec.decoration.damage_choices(),
            probability_choices=spec.decoration.probability_choices(),
        )
        if spec.setting == "probabilistic":
            return CostDamageProbAT(tree, cost, damage, probability)
        return CostDamageAT(tree, cost, damage)

    def _case(
        self, spec: ScenarioSpec, size: int, index: int, model: Model
    ) -> WorkloadCase:
        case_id = f"{spec.label()}-n{size}-i{index}"
        return WorkloadCase(
            case_id=case_id,
            family=self.name,
            shape=spec.shape,
            setting=spec.setting,
            size=size,
            model=model,
        )


class CatalogFamily(WorkloadFamily):
    """The paper's case-study models with their published decorations.

    Sizes in the spec are ignored — the models are what they are.  The
    probabilistic-DAG cell is unsupported because the paper (and the
    catalogue) has no probabilistically decorated DAG case study.
    """

    name = "catalog"
    description = "paper case studies (factory, panda IoT, data server)"
    supported_cells = (
        ("treelike", "deterministic"),
        ("treelike", "probabilistic"),
        ("dag", "deterministic"),
    )

    def _generate(self, spec: ScenarioSpec) -> Iterable[WorkloadCase]:
        models: List[Tuple[str, Model]] = []
        if spec.shape == "treelike":
            if spec.setting == "deterministic":
                models.append(("factory", catalog.factory()))
                models.append(("panda-iot", catalog.panda_iot().deterministic()))
            else:
                models.append(("factory", catalog.factory_probabilistic()))
                models.append(("panda-iot", catalog.panda_iot()))
        else:
            models.append(("data-server", catalog.data_server()))
        for label, model in models:
            case_id = f"{spec.label()}-{label}"
            yield WorkloadCase(
                case_id=case_id,
                family=self.name,
                shape=spec.shape,
                setting=spec.setting,
                size=len(model.tree),
                model=model,
            )


class RandomFamily(WorkloadFamily):
    """Random ATs built by combining literature blocks (Section X.D).

    ``shape="dag"`` uses all building blocks and all three combination
    operations (the paper's ``T_DAG`` regime); small instances may still be
    treelike, exactly as in the paper's suites.  ``shape="treelike"``
    guarantees treelike output.
    """

    name = "random"
    description = "Section X.D random suites over literature building blocks"

    def _generate(self, spec: ScenarioSpec) -> Iterable[WorkloadCase]:
        treelike = spec.shape == "treelike"
        for size in spec.sizes:
            for index in range(spec.cases_per_size):
                rng = random.Random(spec.case_seed(size, index))
                tree = random_attack_tree(size, rng, treelike=treelike)
                yield self._case(spec, size, index, self._decorate(tree, rng, spec))


class DeepChainFamily(WorkloadFamily):
    """A depth-``size`` alternating AND/OR chain (propagation-depth stress).

    Level ``i`` is a gate over one fresh BAS and the previous level; the
    treelike variant is a pure chain, the DAG variant additionally wires a
    single shared BAS into every other gate, giving it many parents.
    """

    name = "deep-chain"
    description = "alternating AND/OR chain of the requested depth"

    def _generate(self, spec: ScenarioSpec) -> Iterable[WorkloadCase]:
        for size in spec.sizes:
            for index in range(spec.cases_per_size):
                rng = random.Random(spec.case_seed(size, index))
                tree = self._build(size, spec.shape == "dag")
                yield self._case(spec, size, index, self._decorate(tree, rng, spec))

    @staticmethod
    def _build(depth: int, dag: bool) -> AttackTree:
        builder = AttackTreeBuilder()
        builder.bas("b0")
        if dag:
            builder.bas("shared")
        previous = "b0"
        for level in range(1, depth + 1):
            leaf = f"b{level}"
            builder.bas(leaf)
            children = [leaf, previous]
            if dag and level % 2 == 0:
                children.append("shared")
            gate = f"g{level}"
            builder.gate(
                gate,
                NodeType.AND if level % 2 else NodeType.OR,
                children,
            )
            previous = gate
        return builder.build_tree(root=previous)


class WideFanFamily(WorkloadFamily):
    """A single gate over ``size`` BASs (Pareto-front-width stress).

    The treelike variant is one OR gate over the whole fan (every subset of
    leaves is a distinct cost/damage trade-off, the Example 6 regime); the
    DAG variant splits the fan into two overlapping sub-gates joined by an
    AND root, so the overlap BASs have two parents.
    """

    name = "wide-fan"
    description = "one wide gate over the requested number of BASs"

    def _generate(self, spec: ScenarioSpec) -> Iterable[WorkloadCase]:
        for size in spec.sizes:
            for index in range(spec.cases_per_size):
                rng = random.Random(spec.case_seed(size, index))
                tree = self._build(size, spec.shape == "dag")
                yield self._case(spec, size, index, self._decorate(tree, rng, spec))

    @staticmethod
    def _build(width: int, dag: bool) -> AttackTree:
        width = max(width, 2)
        builder = AttackTreeBuilder()
        names = []
        for i in range(width):
            name = f"b{i}"
            builder.bas(name)
            names.append(name)
        if not dag:
            builder.or_gate("root", names)
            return builder.build_tree(root="root")
        # Two overlapping halves: the middle third feeds both gates.
        third = max(width // 3, 1)
        left = names[: 2 * third]
        right = names[third:]
        builder.or_gate("left", left)
        builder.or_gate("right", right)
        builder.and_gate("root", ["left", "right"])
        return builder.build_tree(root="root")


class SharedBasFamily(WorkloadFamily):
    """Gates drawing from a shared pool of ``size`` BASs (DAG-only).

    The pool is partitioned across the gates and every gate additionally
    borrows one BAS from the next partition, so sharing — the structure
    that defeats the treelike bottom-up method — is guaranteed.
    """

    name = "shared-bas"
    description = "gates over a shared BAS pool (guaranteed sharing)"
    supported_cells = (
        ("dag", "deterministic"),
        ("dag", "probabilistic"),
    )

    def _generate(self, spec: ScenarioSpec) -> Iterable[WorkloadCase]:
        for size in spec.sizes:
            for index in range(spec.cases_per_size):
                rng = random.Random(spec.case_seed(size, index))
                tree = self._build(max(size, 4), rng)
                yield self._case(spec, size, index, self._decorate(tree, rng, spec))

    @staticmethod
    def _build(pool_size: int, rng: random.Random) -> AttackTree:
        builder = AttackTreeBuilder()
        pool = []
        for i in range(pool_size):
            name = f"b{i}"
            builder.bas(name)
            pool.append(name)
        gate_count = max(pool_size // 2, 2)
        chunk = max(pool_size // gate_count, 1)
        gates = []
        for g in range(gate_count):
            members = pool[g * chunk: (g + 1) * chunk]
            if g == gate_count - 1:
                members = pool[g * chunk:]
            # Borrow one BAS from the next partition (wrapping), creating a
            # second parent for it.
            borrowed = pool[((g + 1) * chunk) % pool_size]
            if borrowed not in members:
                members = members + [borrowed]
            gate = f"g{g}"
            builder.gate(
                gate, rng.choice([NodeType.OR, NodeType.AND]), members
            )
            gates.append(gate)
        builder.or_gate("root", gates)
        return builder.build_tree(root="root")


# ---------------------------------------------------------------------------- #
# registry
# ---------------------------------------------------------------------------- #

_FAMILIES: Dict[str, WorkloadFamily] = {}


def register_family(instance: WorkloadFamily, replace: bool = False) -> WorkloadFamily:
    """Register a family under its name (error on collision unless replace)."""
    if not instance.name:
        raise ValueError("workload families must set a non-empty name")
    if instance.name in _FAMILIES and not replace:
        raise ValueError(
            f"a workload family named {instance.name!r} is already registered; "
            "pass replace=True to override it"
        )
    _FAMILIES[instance.name] = instance
    return instance


def family(name: str) -> WorkloadFamily:
    """Look up a registered family by name."""
    try:
        return _FAMILIES[name]
    except KeyError:
        known = ", ".join(family_names()) or "(none)"
        raise ValueError(
            f"unknown workload family {name!r}; registered families: {known}"
        ) from None


def family_names() -> List[str]:
    """The registered family names, sorted."""
    return sorted(_FAMILIES)


def describe_families() -> str:
    """Multi-line overview of families and their supported cells (for the CLI)."""
    lines = []
    for name in family_names():
        item = _FAMILIES[name]
        cells = ", ".join(f"{s}/{t}" for s, t in item.supported_cells)
        lines.append(f"{name:<12} {item.description}")
        lines.append(f"{'':<12} cells: {cells}")
    return "\n".join(lines)


def expand(spec: ScenarioSpec) -> List[WorkloadCase]:
    """Expand a scenario spec into its workload cases."""
    return family(spec.family).generate(spec)


for _instance in (
    CatalogFamily(),
    RandomFamily(),
    DeepChainFamily(),
    WideFanFamily(),
    SharedBasFamily(),
):
    register_family(_instance)
