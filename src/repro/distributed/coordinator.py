"""The coordinator: shard work into a queue, track it, gather the output.

A :class:`Coordinator` owns one *run* on one queue.  It shards either a
benchmark profile (one task per workload case, the
:func:`repro.bench.harness.case_payload` wire format) or a batch of
analysis requests (one task per request) into the queue, records a run
descriptor in the queue metadata so any later process can gather without
out-of-band knowledge, waits for the fleet to drain the queue — sweeping
expired leases so crashed workers' tasks are retried — and finally gathers
the per-task results back into the run's natural output: a schema-v1
``BENCH_*.json`` artifact for profile runs (with distributed-run metadata:
worker ids seen, retry count, dead-lettered cases), or an ordered result
list for batch runs.

The coordinator is deliberately broker-less: all coordination state lives
in the queue file, so the coordinator can die and be restarted (or `atcd
dist gather` run from another host) without losing anything.
"""

from __future__ import annotations

import json
import time
from dataclasses import dataclass, field
from typing import Any, Callable, Dict, List, Optional, Sequence

from ..obs.trace import inject_context
from ..obs.trace import span as trace_span
from .queue import QueueError, Task, TaskState, WorkQueue

__all__ = ["Coordinator", "GatherReport", "RUN_META_KEY"]


def _stamp_trace(payloads: List[Dict[str, Any]]) -> List[Dict[str, Any]]:
    """Embed the ambient trace context into each task payload.

    Workers parent their ``worker.task`` spans under it, so one submit's
    fan-out shows up as a single trace across every host that executed a
    piece of it.  No ambient trace → payloads pass through untouched.
    """
    carrier = inject_context()
    if carrier is not None:
        for payload in payloads:
            payload["trace"] = dict(carrier)
    return payloads

#: Queue metadata key under which the run descriptor is stored.
RUN_META_KEY = "run"


@dataclass
class GatherReport:
    """The gathered output of a drained run.

    ``output`` is the run's natural artifact: a validated BENCH artifact
    dict for profile runs (``kind == "bench"``), a list of serialized
    :class:`~repro.engine.AnalysisResult` dicts for batch runs
    (``kind == "batch"``).  ``dead`` lists dead-lettered tasks — they are
    *absent* from ``output`` and must be surfaced, never dropped silently.
    """

    kind: str
    name: str
    output: Any
    completed: int
    retries: int
    workers: List[str] = field(default_factory=list)
    dead: List[Dict[str, Any]] = field(default_factory=list)


def _dead_entry(task: Task) -> Dict[str, Any]:
    entry: Dict[str, Any] = {
        "task_id": task.task_id,
        "attempts": task.attempts,
        "error": task.error,
    }
    identity = task.payload.get("identity")
    if isinstance(identity, dict) and "case_id" in identity:
        entry["case_id"] = identity["case_id"]
    return entry


class Coordinator:
    """Shard, track and gather one distributed run over a work queue.

    Parameters
    ----------
    queue:
        The (fresh) work queue holding this run.  One queue holds one run;
        submitting into a queue that already carries a run descriptor is
        refused, so results can never be mixed across runs.
    poll_seconds:
        Sleep between :meth:`wait` polls.
    clock / sleep:
        Injectable for tests.
    """

    def __init__(
        self,
        queue: WorkQueue,
        poll_seconds: float = 0.2,
        clock: Callable[[], float] = time.time,
        sleep: Optional[Callable[[float], None]] = None,
    ) -> None:
        self.queue = queue
        self.poll_seconds = poll_seconds
        self._clock = clock
        self._sleep = sleep if sleep is not None else time.sleep

    # ------------------------------------------------------------------ #
    # sharding
    # ------------------------------------------------------------------ #
    def _record_run(self, descriptor: Dict[str, Any], max_attempts: int) -> None:
        # Everything that could still reject the submission must be checked
        # before the descriptor is recorded — a recorded run with zero tasks
        # would poison the queue file for the corrected retry.
        if max_attempts < 1:
            raise ValueError(
                f"max_attempts must be a positive integer, got {max_attempts!r}"
            )
        # Atomic check-and-set: two concurrent submitters must not both
        # pass a read-then-write guard and mix their runs in one queue.
        recorded = self.queue.set_meta_if_absent(
            RUN_META_KEY, json.dumps(descriptor, sort_keys=True)
        )
        if not recorded:
            existing = json.loads(self.queue.get_meta(RUN_META_KEY))
            raise QueueError(
                f"queue already holds run {existing.get('name')!r}; "
                "use a fresh queue file per run"
            )

    def submit_profile(
        self,
        name: str,
        specs: Sequence[Any],
        repeats: int = 1,
        trace_memory: bool = False,
        max_attempts: int = 3,
    ) -> List[str]:
        """Shard a benchmark profile: one task per expanded workload case.

        Every request is validated (and its backend resolved) *before*
        anything is submitted, so a bad spec fails here, in one process,
        not on the Nth worker of a fleet.
        """
        from ..bench.harness import case_payload, expand_specs, validate_case_requests

        if not isinstance(repeats, int) or repeats < 1:
            raise ValueError(
                f"repeats must be a positive integer, got {repeats!r}"
            )
        items = expand_specs(list(specs))
        validate_case_requests(items)
        payloads = []
        for spec, case in items:
            payload = case_payload(spec, case, repeats, trace_memory=trace_memory)
            payload["kind"] = "bench-case"
            payloads.append(payload)
        with trace_span(
            "coordinator.submit",
            attrs={"kind": "bench", "run": name, "tasks": len(payloads)},
        ):
            _stamp_trace(payloads)
            self._record_run({
                "kind": "bench",
                "name": name,
                "specs": [spec.to_dict() for spec in specs],
                "repeats": repeats,
                "trace_memory": trace_memory,
                "max_attempts": max_attempts,
                "created_unix": self._clock(),
            }, max_attempts)
            return self.queue.submit(payloads, max_attempts=max_attempts)

    def submit_requests(
        self,
        model_payload: Dict[str, Any],
        request_payloads: Sequence[Dict[str, Any]],
        name: str = "batch",
        max_attempts: int = 3,
    ) -> List[str]:
        """Shard a batch-API request list: one task per request."""
        from ..attacktree import serialization
        from ..engine import AnalysisRequest, AnalysisSession

        model = serialization.from_dict(model_payload)
        session = AnalysisSession(model)
        for index, entry in enumerate(request_payloads):
            try:
                request = AnalysisRequest.from_dict(entry)
                request.validate()
                backend = session.resolve(request.problem, backend=request.backend)
                backend.validate_options(request)
            except (ValueError, TypeError) as error:
                raise ValueError(f"requests[{index}]: {error}") from error
        payloads = [
            {"kind": "request", "model": model_payload, "request": dict(entry)}
            for entry in request_payloads
        ]
        with trace_span(
            "coordinator.submit",
            attrs={"kind": "batch", "run": name, "tasks": len(payloads)},
        ):
            _stamp_trace(payloads)
            self._record_run({
                "kind": "batch",
                "name": name,
                "max_attempts": max_attempts,
                "created_unix": self._clock(),
            }, max_attempts)
            return self.queue.submit(payloads, max_attempts=max_attempts)

    # ------------------------------------------------------------------ #
    # tracking
    # ------------------------------------------------------------------ #
    def run_info(self) -> Dict[str, Any]:
        """The run descriptor recorded at submit time."""
        raw = self.queue.get_meta(RUN_META_KEY)
        if raw is None:
            raise QueueError("queue holds no run (nothing was submitted)")
        return json.loads(raw)

    def wait(
        self,
        timeout: Optional[float] = None,
        on_poll: Optional[Callable[[Dict[str, int]], None]] = None,
    ) -> Dict[str, int]:
        """Block until every task is terminal (done or dead).

        Sweeps expired leases on every poll — this is what turns a crashed
        worker's task back into claimable work.  ``on_poll`` (called with
        the current state counts) is the liveness hook: ``atcd dist run``
        uses it to respawn dead local workers.  Raises :class:`QueueError`
        after ``timeout`` seconds with work still outstanding.
        """
        deadline = None if timeout is None else self._clock() + timeout
        while True:
            self.queue.expire_leases()
            counts = self.queue.counts()
            if counts["pending"] == 0 and counts["running"] == 0:
                return counts
            if on_poll is not None:
                on_poll(counts)
            if deadline is not None and self._clock() >= deadline:
                raise QueueError(
                    f"run did not drain within {timeout:g}s "
                    f"(pending={counts['pending']}, running={counts['running']})"
                )
            self._sleep(self.poll_seconds)

    # ------------------------------------------------------------------ #
    # gathering
    # ------------------------------------------------------------------ #
    def gather(
        self, distributed: Optional[Dict[str, Any]] = None
    ) -> GatherReport:
        """Collect a drained run's results into its output document.

        Rows come back in submission (= expansion) order, so a distributed
        profile run's artifact ``runs`` section is ordered exactly like a
        sequential ``atcd bench run`` of the same profile.  ``distributed``
        merges extra metadata (e.g. the local fleet size) into the
        artifact's ``config["distributed"]`` block.
        """
        info = self.run_info()
        if not self.queue.drained():
            counts = self.queue.counts()
            raise QueueError(
                "run is not complete: "
                f"pending={counts['pending']}, running={counts['running']} "
                "(wait for the workers, or check 'atcd dist status')"
            )
        tasks = self.queue.tasks()
        done = [task for task in tasks if task.state is TaskState.DONE]
        dead = [_dead_entry(task) for task in tasks
                if task.state is TaskState.DEAD]
        retries = sum(max(0, task.attempts - 1) for task in tasks)
        workers = sorted({
            task.worker_id for task in done if task.worker_id is not None
        })
        rows = [task.result for task in done]
        if info["kind"] == "batch":
            return GatherReport(
                kind="batch", name=info["name"], output=rows,
                completed=len(done), retries=retries, workers=workers,
                dead=dead,
            )
        from ..bench.artifact import build_artifact
        from ..bench.harness import BenchRun
        from ..workloads import ScenarioSpec

        specs = [ScenarioSpec.from_dict(spec) for spec in info["specs"]]
        runs = [BenchRun.from_dict(row) for row in rows]
        config: Dict[str, Any] = {
            "profile": info["name"],
            "executor": "distributed",
            "repeats": info.get("repeats", 1),
            "trace_memory": info.get("trace_memory", False),
            "distributed": {
                "max_attempts": info.get("max_attempts"),
                "workers_seen": workers,
                "retries": retries,
                "dead_tasks": dead,
            },
        }
        if distributed:
            config["distributed"].update(distributed)
        artifact = build_artifact(info["name"], specs, runs, config=config)
        return GatherReport(
            kind="bench", name=info["name"], output=artifact,
            completed=len(done), retries=retries, workers=workers, dead=dead,
        )
