"""A directory of named work queues: the broker's multi-queue root.

One ``atcd serve --root DIR`` process hosts many independent runs, each a
:class:`~repro.distributed.queue.SqliteQueue` living at
``DIR/<name>.queue.sqlite``.  :class:`QueueRoot` is the server-side
registry: it validates names (they become both filesystem paths and URL
segments, so the grammar is deliberately strict), lazily opens queue
handles and caches them for the server's lifetime, and supports the
``queue create | list | drop`` management verbs.

Queues under a root are fully isolated from each other — separate files,
separate task sequences, separate metadata — which is what lets one broker
serve many coordinated runs (or many service deployments) without them
sharing a dead-letter pool or a run descriptor.
"""

from __future__ import annotations

import os
import re
import threading
import time
from typing import Any, Callable, Dict, List

from .queue import DEFAULT_LEASE_GRACE, QueueError, SqliteQueue

__all__ = ["QUEUE_NAME_PATTERN", "QUEUE_FILE_SUFFIX", "QueueRoot"]

#: Grammar of queue names.  A name is used verbatim as a filename stem and
#: a URL path segment, so it must not be able to traverse directories or
#: require escaping: it starts with an alphanumeric and continues with
#: alphanumerics, ``_``, ``.`` and ``-`` (64 chars max).
QUEUE_NAME_PATTERN = re.compile(r"^[A-Za-z0-9][A-Za-z0-9_.-]{0,63}$")

#: Filename suffix of every queue under a root — what marks a file as one
#: of ours when listing the directory.
QUEUE_FILE_SUFFIX = ".queue.sqlite"


def validate_queue_name(name: str) -> str:
    """Return ``name`` if it is a legal queue name, else raise."""
    if not isinstance(name, str) or not QUEUE_NAME_PATTERN.fullmatch(name):
        raise QueueError(
            f"invalid queue name {name!r}: names are 1-64 characters from "
            "[A-Za-z0-9_.-], starting with a letter or digit"
        )
    return name


class QueueRoot:
    """Named queues in one directory, opened lazily and cached.

    Thread-safe: the broker serves requests from a thread pool, and two
    threads racing to open the same queue must share one handle (each
    :class:`SqliteQueue` holds its own connection lock, so a shared handle
    is the cheap, correct option).
    """

    def __init__(
        self,
        path: str,
        grace_seconds: float = DEFAULT_LEASE_GRACE,
        clock: Callable[[], float] = time.time,
    ) -> None:
        self.path = str(path)
        self._grace = grace_seconds
        self._clock = clock
        self._lock = threading.Lock()
        self._queues: Dict[str, SqliteQueue] = {}
        self._closed = False
        if os.path.exists(self.path) and not os.path.isdir(self.path):
            raise QueueError(
                f"queue root {self.path!r} exists and is not a directory"
            )
        os.makedirs(self.path, exist_ok=True)

    def _file(self, name: str) -> str:
        return os.path.join(self.path, validate_queue_name(name) + QUEUE_FILE_SUFFIX)

    # ------------------------------------------------------------------ #
    # management verbs
    # ------------------------------------------------------------------ #
    def names(self) -> List[str]:
        """Existing queue names, sorted."""
        names = []
        for entry in os.listdir(self.path):
            if entry.endswith(QUEUE_FILE_SUFFIX):
                stem = entry[: -len(QUEUE_FILE_SUFFIX)]
                if QUEUE_NAME_PATTERN.fullmatch(stem):
                    names.append(stem)
        return sorted(names)

    def exists(self, name: str) -> bool:
        return os.path.exists(self._file(name))

    def create(self, name: str) -> bool:
        """Create the named queue; ``False`` if it already existed."""
        created = not self.exists(name)
        self.open(name)  # opening creates the schema when absent
        return created

    def open(self, name: str, must_exist: bool = False) -> SqliteQueue:
        """The named queue's shared handle, opening (or creating) it.

        With ``must_exist=True`` an absent queue raises instead of being
        conjured — the broker's task-operation path uses this, so a typo'd
        queue name in a URL is a client error, not a new empty queue.
        """
        file_path = self._file(name)
        with self._lock:
            if self._closed:
                raise QueueError(f"queue root {self.path!r} is closed")
            queue = self._queues.get(name)
            if queue is not None:
                return queue
            if must_exist and not os.path.exists(file_path):
                raise QueueError(f"no queue named {name!r} under {self.path!r}")
            queue = SqliteQueue(
                file_path, clock=self._clock, grace_seconds=self._grace
            )
            self._queues[name] = queue
            return queue

    def drop(self, name: str) -> bool:
        """Delete the named queue's file; ``False`` if it did not exist.

        Any cached handle is closed first.  In-flight operations on that
        handle fail with a closed-queue error — dropping a queue out from
        under live workers is an operator action, and loud is correct.
        """
        file_path = self._file(name)
        with self._lock:
            queue = self._queues.pop(name, None)
            if queue is not None:
                queue.close()
            existed = os.path.exists(file_path)
            for path in (file_path, file_path + "-journal"):
                try:
                    os.unlink(path)
                except FileNotFoundError:
                    pass
            return existed

    def describe(self) -> List[Dict[str, Any]]:
        """One row per queue (name + state counts) for ``queue list``."""
        rows = []
        for name in self.names():
            rows.append({"name": name, "counts": self.open(name).counts()})
        return rows

    def close(self) -> None:
        with self._lock:
            self._closed = True
            for queue in self._queues.values():
                queue.close()
            self._queues.clear()

    def __enter__(self) -> "QueueRoot":
        return self

    def __exit__(self, *exc_info: Any) -> None:
        self.close()
