"""Durable work queues: the task ledger of the distributed runtime.

A *work queue* holds self-contained JSON task payloads (bench case payloads
or serialized analysis requests) and tracks each task through a small state
machine:

``pending``
    Submitted, unclaimed — or claimed once and returned to the pool after a
    failure or an expired lease, with retry budget remaining.
``running``
    Claimed by a worker under a *visibility lease*: the task is invisible
    to other claimants until ``lease_expires_unix``.  Workers extend the
    lease with heartbeats while they compute; a worker that dies stops
    heartbeating and the lease simply runs out.
``done``
    Completed; the worker's JSON result is stored on the task row.
``dead``
    Dead-lettered: the task failed (or lost its lease) ``max_attempts``
    times and will not be retried.  Dead tasks are reported, never
    silently dropped.
``cancelled``
    Withdrawn before any worker picked it up (:meth:`WorkQueue.cancel_pending`
    — the service's job-cancellation path).  Terminal like ``done``/``dead``,
    but distinct from both: a cancelled task carries no result, is *not*
    revived by :meth:`WorkQueue.resubmit_dead`, and does not read as a
    failure.  Only pending tasks can be cancelled; a running task finishes
    its attempt (its lease holder cannot be interrupted safely), and its
    result is simply ignored by whoever cancelled the job.

Transitions are claim-driven: :meth:`WorkQueue.claim` first sweeps expired
leases (``running`` → ``pending`` or ``dead``), then atomically hands the
oldest pending task to the caller.  ``attempts`` counts claims, so a task
bounces between ``pending`` and ``running`` at most ``max_attempts`` times
before dead-lettering.

Three implementations, mirroring :mod:`repro.engine.store`:

:class:`SqliteQueue`
    The durable one: a single sqlite file, safe for concurrent workers
    across threads *and* processes (``BEGIN IMMEDIATE`` claims, busy
    timeout, rollback journaling — deliberately not WAL, whose per-host
    shared-memory index would break cross-host locking).  This is what
    multi-host deployments point at a shared filesystem.
:class:`InMemoryQueue`
    The same semantics on dicts, for tests and single-process embedding.
:class:`repro.net.HttpQueue`
    A network client speaking the broker wire protocol of ``atcd serve``
    (:mod:`repro.net`), for shared-nothing multi-host deployments;
    :func:`open_queue` dispatches ``http(s)://`` URLs to it.

Clock contract
--------------
Every timestamp a queue writes or compares (lease deadlines, expiry
sweeps, ``created_unix``/``updated_unix``) comes from the queue's injected
``clock`` — by default :func:`time.time`, replaceable for tests.  With a
shared *file*, claims from different hosts stamp leases with different
clocks, so ``expire_leases`` tolerates ``grace_seconds`` of skew before
declaring a lease dead (a lease is expired only once
``lease_expires_unix + grace_seconds < now``).  With the HTTP broker all
clock math runs on the server — one clock, skew-free by construction.
"""

from __future__ import annotations

import contextlib
import dataclasses
import enum
import json
import os
import sqlite3
import threading
import time
from dataclasses import dataclass
from typing import Any, Callable, Dict, List, Optional, Protocol, Sequence, Set, Tuple, runtime_checkable

from ..obs import families as obs_families

__all__ = [
    "DEFAULT_LEASE_GRACE",
    "QUEUE_SCHEMA_VERSION",
    "QueueError",
    "TaskState",
    "Task",
    "WorkQueue",
    "InMemoryQueue",
    "SqliteQueue",
    "open_queue",
]

#: Version of the persisted queue layout.  Bump on any incompatible change;
#: old files then fail loudly instead of being misread.
QUEUE_SCHEMA_VERSION = 1

#: Default retry budget: a task is claimed at most this many times (first
#: attempt included) before it is dead-lettered.
DEFAULT_MAX_ATTEMPTS = 3

#: Default clock-skew tolerance of lease-expiry sweeps, in seconds.  On a
#: queue file shared between hosts, the lease deadline was stamped by the
#: claimant's clock and is compared against the sweeper's — an NTP step or
#: plain skew between them must not prematurely expire a live lease (which
#: would double-execute the task).  Two seconds comfortably covers NTP
#: discipline; deployments with worse clocks can raise it per queue.
DEFAULT_LEASE_GRACE = 2.0


def _validate_grace(grace_seconds: float) -> float:
    if not isinstance(grace_seconds, (int, float)) or grace_seconds < 0:
        raise QueueError(
            f"grace_seconds must be a non-negative number, got {grace_seconds!r}"
        )
    return float(grace_seconds)


class QueueError(ValueError):
    """A queue file is unusable or an operation is invalid.

    Subclasses ``ValueError`` so CLI entry points report it as a one-line
    user error (exit code 2), consistent with engine and store errors.
    """


class TaskState(enum.Enum):
    """Lifecycle states of one queued task (see the module docstring)."""

    PENDING = "pending"
    RUNNING = "running"
    DONE = "done"
    DEAD = "dead"
    CANCELLED = "cancelled"


@dataclass(frozen=True)
class Task:
    """One queued unit of work, as observed at a point in time.

    ``seq`` is the submission index — gather order.  ``attempts`` counts
    claims so far; ``result`` is set once ``done``, ``error`` records the
    most recent failure (and survives into the dead-letter state).
    """

    task_id: str
    seq: int
    payload: Dict[str, Any]
    state: TaskState
    attempts: int
    max_attempts: int
    worker_id: Optional[str] = None
    lease_expires_unix: Optional[float] = None
    result: Optional[Dict[str, Any]] = None
    error: Optional[str] = None


@runtime_checkable
class WorkQueue(Protocol):
    """What workers, the coordinator and the CLI require of a queue."""

    def submit(
        self,
        payloads: Sequence[Dict[str, Any]],
        max_attempts: int = DEFAULT_MAX_ATTEMPTS,
        dedupe_key: Optional[str] = None,
    ) -> List[str]:
        """Append tasks (one per payload); returns their task ids.

        ``dedupe_key`` makes the call idempotent: a repeated submit with
        the same key (a retry after a lost response — the HTTP client's
        case) returns the original task ids instead of appending the
        batch again.  The check-and-record is atomic with the insert.
        """
        ...

    def claim(self, worker_id: str, lease_seconds: float) -> Optional[Task]:
        """Atomically take the oldest pending task under a lease.

        Expired leases are swept first, so crashed workers' tasks become
        claimable (or dead) without any separate janitor process.  Returns
        ``None`` when nothing is pending.
        """
        ...

    def heartbeat(self, task_id: str, worker_id: str, lease_seconds: float) -> bool:
        """Extend a running task's lease; ``False`` if no longer ours."""
        ...

    def complete(self, task_id: str, worker_id: str, result: Dict[str, Any]) -> bool:
        """Finish a task with its result; ``False`` if no longer ours.

        Idempotent for the rightful owner: completing a task that is
        already ``done`` *by the same worker* returns ``True`` (a replay
        after a lost broker response must not read as a lost lease).  A
        different worker's completion still returns ``False``.
        """
        ...

    def fail(self, task_id: str, worker_id: str, error: str) -> bool:
        """Report a failed attempt (``pending`` again, or ``dead`` once the
        retry budget is exhausted); ``False`` if no longer ours."""
        ...

    def expire_leases(self) -> int:
        """Sweep expired leases (skew grace applied); returns how many
        tasks were released."""
        ...

    def resubmit_dead(self) -> List[str]:
        """Re-queue every dead-lettered task with a fresh retry budget.

        Dead tasks go back to ``pending`` with ``attempts`` reset to zero
        and their error cleared, so a run stuck on dead letters (after an
        environment fix) can complete instead of being rebuilt from
        scratch.  Returns the re-queued task ids in submission order.
        """
        ...

    def cancel_pending(self, task_ids: Sequence[str]) -> List[str]:
        """Withdraw the given tasks if (and only if) still ``pending``.

        Pending tasks move to the terminal ``cancelled`` state; tasks in
        any other state — running, done, dead, already cancelled, or
        unknown ids — are left untouched.  Returns the ids actually
        cancelled by *this* call, in submission order.  Naturally
        idempotent: a retried cancel finds the tasks no longer pending
        and returns an empty list.
        """
        ...

    def prune(self, ttl_seconds: float) -> Dict[str, int]:
        """Retention sweep: delete finished work past its keep horizon.

        Removes ``done``/``cancelled`` tasks whose last state change is
        older than ``ttl_seconds``, then job descriptors (plus their
        submit-dedupe records and tenant-index entries) every one of
        whose tasks is gone — dead tasks keep their descriptor alive, so
        failures stay inspectable until explicitly resubmitted or the
        tasks themselves are dealt with.  Returns
        ``{"tasks": n, "descriptors": m}``.
        """
        ...

    def counts(self) -> Dict[str, int]:
        """Task counts per state name (every state always present)."""
        ...

    def drained(self) -> bool:
        """True when no task is pending or running (all are terminal)."""
        ...

    def tasks(self, state: Optional[TaskState] = None) -> List[Task]:
        """All tasks (optionally one state's), in submission order."""
        ...

    def get_meta(self, key: str) -> Optional[str]:
        """A queue-level metadata value (e.g. the run descriptor)."""
        ...

    def set_meta(self, key: str, value: str) -> None:
        """Set a queue-level metadata value (last writer wins)."""
        ...

    def set_meta_if_absent(self, key: str, value: str) -> bool:
        """Atomically set a metadata value only if the key is unset.

        Returns ``False`` (without writing) when the key already exists —
        the check-and-set two concurrent submitters race on must be one
        operation, or both would win and their runs would mix.
        """
        ...

    def summary(self) -> Dict[str, Any]:
        """JSON-compatible description for ``atcd dist status``."""
        ...

    def close(self) -> None:
        """Release any underlying resources (idempotent)."""
        ...


def _next_state(attempts: int, max_attempts: int) -> TaskState:
    """Where a failed/expired running task goes: retry or dead-letter."""
    return TaskState.DEAD if attempts >= max_attempts else TaskState.PENDING


def _dedupe_meta_key(dedupe_key: str) -> str:
    """Queue-meta key recording one deduped submit's task ids."""
    return f"submit-dedupe:{dedupe_key}"


def _record_op(op: str, amount: int = 1) -> None:
    """Count one queue lifecycle event in the process-wide registry."""
    if amount > 0:
        obs_families.queue_ops_total().inc(amount, op=op)


def _record_pruned(kind: str, amount: int) -> None:
    if amount > 0:
        obs_families.queue_pruned_total().inc(amount, kind=kind)


# The service layer's job bookkeeping conventions (repro.service.jobs)
# — mirrored here rather than imported so the dependency keeps pointing
# service -> distributed.  prune() must understand them to collect
# descriptors whose tasks are gone.
_JOB_META_PREFIX = "job:"


def _job_index_key(tenant: str) -> str:
    return f"jobs:{tenant}"


#: Queue-meta key holding the lowest seq the next submit may use; written
#: by SqliteQueue.prune so deleting the highest-seq rows can never make
#: MAX(seq)+1 go backwards and recycle task ids.
_SEQ_FLOOR_META_KEY = "task-seq-floor"


def _orphaned_descriptor(
    raw: str, existing_task_ids: Set[str]
) -> Optional[Tuple[str, str]]:
    """Parse one ``job:<tenant>:<id>`` descriptor; return ``(tenant,
    job_id)`` when every task it references is gone from the queue, else
    ``None`` (including for undecodable values — never delete what we
    don't understand)."""
    try:
        descriptor = json.loads(raw)
        tenant = descriptor["tenant"]
        job_id = descriptor["job_id"]
        task_ids = descriptor["task_ids"]
    except (ValueError, TypeError, KeyError):
        return None
    if not isinstance(task_ids, list):
        return None
    if any(task_id in existing_task_ids for task_id in task_ids):
        return None
    return str(tenant), str(job_id)


def _shrink_job_indexes(
    get_meta: Callable[[str], Optional[str]],
    set_meta: Callable[[str, str], None],
    dropped: Dict[str, Set[str]],
) -> None:
    """Remove pruned job ids from each tenant's ``jobs:<tenant>`` index."""
    for tenant, job_ids in dropped.items():
        raw = get_meta(_job_index_key(tenant))
        if raw is None:
            continue
        try:
            index = json.loads(raw)
        except ValueError:
            continue
        if not isinstance(index, list):
            continue
        kept = [job_id for job_id in index if job_id not in job_ids]
        if len(kept) != len(index):
            set_meta(_job_index_key(tenant), json.dumps(kept))


def _summary_payload(
    kind: str, counts: Dict[str, int], tasks: List[Task]
) -> Dict[str, Any]:
    """The implementation-independent part of :meth:`WorkQueue.summary`."""
    workers = sorted(
        {task.worker_id for task in tasks if task.worker_id is not None}
    )
    return {
        "kind": kind,
        "schema_version": QUEUE_SCHEMA_VERSION,
        "tasks": len(tasks),
        "counts": counts,
        "retries": sum(max(0, task.attempts - 1) for task in tasks),
        "workers": workers,
        "dead": [
            {"task_id": task.task_id, "attempts": task.attempts,
             "error": task.error}
            for task in tasks
            if task.state is TaskState.DEAD
        ],
    }


class InMemoryQueue:
    """A process-local :class:`WorkQueue`: sqlite semantics, no disk.

    Thread-safe, so in-process worker threads can share one instance.  The
    ``clock`` parameter makes lease expiry testable without sleeping;
    ``grace_seconds`` is the expiry sweep's clock-skew tolerance (see the
    module docstring's clock contract).
    """

    def __init__(
        self,
        clock: Callable[[], float] = time.time,
        grace_seconds: float = DEFAULT_LEASE_GRACE,
    ) -> None:
        self._clock = clock
        self._grace = _validate_grace(grace_seconds)
        self._lock = threading.Lock()
        self._tasks: Dict[str, Task] = {}
        self._meta: Dict[str, str] = {}
        #: task_id -> when it reached a prunable (done/cancelled) state;
        #: the sqlite twin reads its ``updated_unix`` column instead.
        self._finished: Dict[str, float] = {}
        #: Monotonic submission counter.  Deliberately not len(_tasks):
        #: prune() deletes rows, and a reused seq would reuse task ids.
        self._seq = 0

    def submit(
        self,
        payloads: Sequence[Dict[str, Any]],
        max_attempts: int = DEFAULT_MAX_ATTEMPTS,
        dedupe_key: Optional[str] = None,
    ) -> List[str]:
        if max_attempts < 1:
            raise QueueError(
                f"max_attempts must be a positive integer, got {max_attempts!r}"
            )
        ids: List[str] = []
        with self._lock:
            if dedupe_key is not None:
                recorded = self._meta.get(_dedupe_meta_key(dedupe_key))
                if recorded is not None:
                    _record_op("duplicate")
                    return json.loads(recorded)
            seq = self._seq
            for payload in payloads:
                task_id = f"task-{seq:06d}"
                self._tasks[task_id] = Task(
                    task_id=task_id,
                    seq=seq,
                    payload=json.loads(json.dumps(payload)),
                    state=TaskState.PENDING,
                    attempts=0,
                    max_attempts=max_attempts,
                )
                ids.append(task_id)
                seq += 1
            self._seq = seq
            if dedupe_key is not None:
                self._meta[_dedupe_meta_key(dedupe_key)] = json.dumps(ids)
        _record_op("submit", len(ids))
        return ids

    def _expire_locked(self, now: float) -> int:
        released = 0
        for task_id, task in self._tasks.items():
            if task.state is not TaskState.RUNNING:
                continue
            if (
                task.lease_expires_unix is not None
                and task.lease_expires_unix + self._grace < now
            ):
                state = _next_state(task.attempts, task.max_attempts)
                error = task.error
                if state is TaskState.DEAD and error is None:
                    error = "lease expired"
                self._tasks[task_id] = dataclasses.replace(
                    task, state=state, error=error,
                    worker_id=None, lease_expires_unix=None,
                )
                released += 1
                if state is TaskState.DEAD:
                    _record_op("dead-letter")
        _record_op("lease-expire", released)
        return released

    def expire_leases(self) -> int:
        with self._lock:
            return self._expire_locked(self._clock())

    def claim(self, worker_id: str, lease_seconds: float) -> Optional[Task]:
        now = self._clock()
        with self._lock:
            self._expire_locked(now)
            candidates = sorted(
                (task for task in self._tasks.values()
                 if task.state is TaskState.PENDING),
                key=lambda task: task.seq,
            )
            if not candidates:
                return None
            task = candidates[0]
            claimed = dataclasses.replace(
                task, state=TaskState.RUNNING, attempts=task.attempts + 1,
                worker_id=worker_id, lease_expires_unix=now + lease_seconds,
            )
            self._tasks[task.task_id] = claimed
        _record_op("claim")
        return claimed

    def _owned_running(self, task_id: str, worker_id: str) -> Optional[Task]:
        task = self._tasks.get(task_id)
        if task is None or task.state is not TaskState.RUNNING:
            return None
        if task.worker_id != worker_id:
            return None
        return task

    def heartbeat(self, task_id: str, worker_id: str, lease_seconds: float) -> bool:
        now = self._clock()
        with self._lock:
            self._expire_locked(now)
            task = self._owned_running(task_id, worker_id)
            if task is None:
                return False
            self._tasks[task_id] = dataclasses.replace(
                task, lease_expires_unix=now + lease_seconds,
            )
        _record_op("heartbeat")
        return True

    def complete(self, task_id: str, worker_id: str, result: Dict[str, Any]) -> bool:
        now = self._clock()
        with self._lock:
            self._expire_locked(now)
            task = self._owned_running(task_id, worker_id)
            if task is None:
                return self._completed_by(task_id, worker_id)
            self._tasks[task_id] = dataclasses.replace(
                task, state=TaskState.DONE, lease_expires_unix=None,
                result=json.loads(json.dumps(result)), error=None,
            )
            self._finished[task_id] = now
        _record_op("complete")
        return True

    def _completed_by(self, task_id: str, worker_id: str) -> bool:
        """Replay check: is the task already done by this very worker?"""
        task = self._tasks.get(task_id)
        return (
            task is not None
            and task.state is TaskState.DONE
            and task.worker_id == worker_id
        )

    def fail(self, task_id: str, worker_id: str, error: str) -> bool:
        with self._lock:
            self._expire_locked(self._clock())
            task = self._owned_running(task_id, worker_id)
            if task is None:
                return False
            next_state = _next_state(task.attempts, task.max_attempts)
            self._tasks[task_id] = dataclasses.replace(
                task, state=next_state,
                worker_id=None, lease_expires_unix=None, error=str(error),
            )
        _record_op(
            "dead-letter" if next_state is TaskState.DEAD else "retry"
        )
        return True

    def cancel_pending(self, task_ids: Sequence[str]) -> List[str]:
        wanted = set(task_ids)
        now = self._clock()
        with self._lock:
            cancelled = sorted(
                (task for task in self._tasks.values()
                 if task.task_id in wanted and task.state is TaskState.PENDING),
                key=lambda task: task.seq,
            )
            for task in cancelled:
                self._tasks[task.task_id] = dataclasses.replace(
                    task, state=TaskState.CANCELLED, error="cancelled",
                )
                self._finished[task.task_id] = now
        _record_op("cancel", len(cancelled))
        return [task.task_id for task in cancelled]

    def resubmit_dead(self) -> List[str]:
        with self._lock:
            dead = sorted(
                (task for task in self._tasks.values()
                 if task.state is TaskState.DEAD),
                key=lambda task: task.seq,
            )
            for task in dead:
                self._tasks[task.task_id] = dataclasses.replace(
                    task, state=TaskState.PENDING, attempts=0,
                    worker_id=None, lease_expires_unix=None, error=None,
                )
        _record_op("resubmit", len(dead))
        return [task.task_id for task in dead]

    def prune(self, ttl_seconds: float) -> Dict[str, int]:
        if not isinstance(ttl_seconds, (int, float)) or ttl_seconds < 0:
            raise QueueError(
                f"ttl_seconds must be a non-negative number, got {ttl_seconds!r}"
            )
        cutoff = self._clock() - ttl_seconds
        with self._lock:
            doomed = [
                task_id for task_id, task in self._tasks.items()
                if task.state in (TaskState.DONE, TaskState.CANCELLED)
                and self._finished.get(task_id, 0.0) < cutoff
            ]
            for task_id in doomed:
                del self._tasks[task_id]
                self._finished.pop(task_id, None)
            existing = set(self._tasks)
            dropped: Dict[str, Set[str]] = {}
            descriptors = 0
            for key in [
                k for k in self._meta if k.startswith(_JOB_META_PREFIX)
            ]:
                orphan = _orphaned_descriptor(self._meta[key], existing)
                if orphan is None:
                    continue
                tenant, job_id = orphan
                del self._meta[key]
                self._meta.pop(
                    _dedupe_meta_key(f"job:{tenant}:{job_id}"), None
                )
                dropped.setdefault(tenant, set()).add(job_id)
                descriptors += 1
            _shrink_job_indexes(
                self._meta.get, self._meta.__setitem__, dropped
            )
        _record_pruned("task", len(doomed))
        _record_pruned("descriptor", descriptors)
        return {"tasks": len(doomed), "descriptors": descriptors}

    def counts(self) -> Dict[str, int]:
        with self._lock:
            counts = {state.value: 0 for state in TaskState}
            for task in self._tasks.values():
                counts[task.state.value] += 1
            return counts

    def drained(self) -> bool:
        counts = self.counts()
        return counts["pending"] == 0 and counts["running"] == 0

    def tasks(self, state: Optional[TaskState] = None) -> List[Task]:
        with self._lock:
            rows = sorted(self._tasks.values(), key=lambda task: task.seq)
        if state is not None:
            rows = [task for task in rows if task.state is state]
        return rows

    def get_meta(self, key: str) -> Optional[str]:
        with self._lock:
            return self._meta.get(key)

    def set_meta(self, key: str, value: str) -> None:
        with self._lock:
            self._meta[key] = value

    def set_meta_if_absent(self, key: str, value: str) -> bool:
        with self._lock:
            if key in self._meta:
                return False
            self._meta[key] = value
            return True

    def summary(self) -> Dict[str, Any]:
        return _summary_payload("memory", self.counts(), self.tasks())

    def close(self) -> None:
        pass

    def __enter__(self) -> "InMemoryQueue":
        return self

    def __exit__(self, *exc_info: Any) -> None:
        self.close()


class SqliteQueue:
    """A durable, cross-process :class:`WorkQueue` in one sqlite file.

    Parameters
    ----------
    path:
        Database file; created (with its schema) when absent.
    timeout:
        Seconds an operation waits for sqlite's file lock before failing —
        claims from many workers serialize on the write lock instead of
        erroring.
    clock:
        Source of every timestamp this queue writes or compares (defaults
        to :func:`time.time`); injectable so lease expiry is testable
        without sleeping.
    grace_seconds:
        Clock-skew tolerance of expiry sweeps: a lease is only declared
        expired once ``lease_expires_unix + grace_seconds`` has passed.
        On a queue file shared between hosts the deadline was stamped by
        the *claimant's* clock, so the sweeper must absorb NTP steps and
        plain skew rather than double-executing a live task.

    The connection runs in autocommit mode and every mutation happens
    inside an explicit ``BEGIN IMMEDIATE`` transaction, which takes the
    database write lock up front: a claim's read-check-update is therefore
    atomic across processes, so two workers can never claim one task while
    its lease is valid.

    Unlike the result store, the queue deliberately stays on rollback
    journaling (sqlite's default) rather than WAL: WAL coordinates its
    readers and writers through a shared-memory index that only exists
    per *host*, so it must not be used on a queue file shared between
    machines — exactly the multi-host deployment this queue exists for.
    Queue transactions are tiny (a claim updates one row), so the
    write-lock serialization rollback journaling implies costs little.
    """

    def __init__(
        self,
        path: str,
        timeout: float = 30.0,
        clock: Callable[[], float] = time.time,
        grace_seconds: float = DEFAULT_LEASE_GRACE,
    ) -> None:
        self.path = str(path)
        self._clock = clock
        self._grace = _validate_grace(grace_seconds)
        self._lock = threading.Lock()
        self._closed = False
        self._connection: Optional[sqlite3.Connection] = None
        try:
            self._connection = sqlite3.connect(
                self.path,
                timeout=timeout,
                check_same_thread=False,
                isolation_level=None,  # autocommit; transactions are explicit
            )
            self._initialize_schema()
        except sqlite3.Error as error:
            if self._connection is not None:
                self._connection.close()
            raise QueueError(
                f"cannot open work queue {self.path!r}: {error}"
            ) from error

    def _initialize_schema(self) -> None:
        # Never bless a foreign database (same stance as the result store):
        # a file with tables that are not ours is some other application's
        # data, and creating our schema inside it would be corruption.
        has_meta = self._connection.execute(
            "SELECT COUNT(*) FROM sqlite_master "
            "WHERE type = 'table' AND name = 'queue_meta'"
        ).fetchone()[0]
        foreign = self._connection.execute(
            "SELECT COUNT(*) FROM sqlite_master "
            "WHERE type IN ('table', 'view') "
            "AND name NOT IN ('queue_meta', 'tasks') "
            "AND name NOT LIKE 'sqlite_%'"
        ).fetchone()[0]
        if foreign and not has_meta:
            self._connection.close()
            raise QueueError(
                f"{self.path!r} is not a work queue: it contains unrelated "
                "tables; refusing to create the queue schema inside it"
            )
        with self._transaction():
            self._connection.execute(
                "CREATE TABLE IF NOT EXISTS queue_meta ("
                " key TEXT PRIMARY KEY, value TEXT NOT NULL)"
            )
            self._connection.execute(
                "CREATE TABLE IF NOT EXISTS tasks ("
                " task_id TEXT PRIMARY KEY,"
                " seq INTEGER NOT NULL UNIQUE,"
                " payload TEXT NOT NULL,"
                " state TEXT NOT NULL,"
                " attempts INTEGER NOT NULL DEFAULT 0,"
                " max_attempts INTEGER NOT NULL,"
                " worker_id TEXT,"
                " lease_expires_unix REAL,"
                " result TEXT,"
                " error TEXT,"
                " created_unix REAL NOT NULL,"
                " updated_unix REAL NOT NULL)"
            )
            self._connection.execute(
                "CREATE INDEX IF NOT EXISTS tasks_state_seq "
                "ON tasks (state, seq)"
            )
            row = self._connection.execute(
                "SELECT value FROM queue_meta WHERE key = 'schema_version'"
            ).fetchone()
            if row is None:
                entries = self._connection.execute(
                    "SELECT COUNT(*) FROM tasks"
                ).fetchone()[0]
                if not entries:
                    self._connection.execute(
                        "INSERT OR IGNORE INTO queue_meta (key, value) "
                        "VALUES (?, ?)",
                        ("schema_version", str(QUEUE_SCHEMA_VERSION)),
                    )
                    row = (str(QUEUE_SCHEMA_VERSION),)
        if row is None or row[0] != str(QUEUE_SCHEMA_VERSION):
            found = None if row is None else row[0]
            self._connection.close()
            raise QueueError(
                f"work queue {self.path!r} has schema version {found!r}; "
                f"this build reads version {QUEUE_SCHEMA_VERSION}. "
                "Use a fresh queue file (or a matching build)."
            )

    @contextlib.contextmanager
    def _transaction(self) -> Any:
        """``BEGIN IMMEDIATE`` … ``COMMIT``/``ROLLBACK`` under the thread lock.

        ``BEGIN IMMEDIATE`` takes the database write lock before the body
        reads anything, which is what makes read-check-update sequences
        (claims, completes) atomic across worker processes.
        """
        if self._closed:
            raise QueueError(f"work queue {self.path!r} is closed")
        with self._lock:
            try:
                self._connection.execute("BEGIN IMMEDIATE")
            except sqlite3.Error as error:
                raise QueueError(
                    f"work queue {self.path!r} failed: {error}"
                ) from error
            try:
                yield self._connection
            except sqlite3.Error as error:
                # The ROLLBACK itself fails on a connection closed under
                # us (a broker shutting down mid-request); the original
                # error must still surface as a QueueError — the server
                # maps it to a retryable 503 while closing — not as a
                # naked ProgrammingError that reads as an internal bug.
                with contextlib.suppress(sqlite3.Error):
                    self._connection.execute("ROLLBACK")
                raise QueueError(
                    f"work queue {self.path!r} failed: {error}"
                ) from error
            except BaseException:
                with contextlib.suppress(sqlite3.Error):
                    self._connection.execute("ROLLBACK")
                raise
            else:
                try:
                    self._connection.execute("COMMIT")
                except sqlite3.Error as error:
                    # A failed COMMIT (disk full, I/O error) must surface as
                    # the usual one-line queue error, and must not leave the
                    # connection stuck inside an open transaction.
                    try:
                        self._connection.execute("ROLLBACK")
                    except sqlite3.Error:
                        pass
                    raise QueueError(
                        f"work queue {self.path!r} failed: {error}"
                    ) from error

    def _query(self, sql: str, parameters: tuple = ()) -> List[tuple]:
        """A read outside any explicit transaction."""
        if self._closed:
            raise QueueError(f"work queue {self.path!r} is closed")
        try:
            with self._lock:
                return self._connection.execute(sql, parameters).fetchall()
        except sqlite3.Error as error:
            raise QueueError(
                f"work queue {self.path!r} failed: {error}"
            ) from error

    # ------------------------------------------------------------------ #
    # WorkQueue interface
    # ------------------------------------------------------------------ #
    def submit(
        self,
        payloads: Sequence[Dict[str, Any]],
        max_attempts: int = DEFAULT_MAX_ATTEMPTS,
        dedupe_key: Optional[str] = None,
    ) -> List[str]:
        if max_attempts < 1:
            raise QueueError(
                f"max_attempts must be a positive integer, got {max_attempts!r}"
            )
        now = self._clock()
        ids: List[str] = []
        with self._transaction() as connection:
            if dedupe_key is not None:
                # Inside the same BEGIN IMMEDIATE as the inserts, so a
                # retried submit (lost HTTP response) either sees the
                # recorded ids or records them — never a duplicate batch.
                row = connection.execute(
                    "SELECT value FROM queue_meta WHERE key = ?",
                    (_dedupe_meta_key(dedupe_key),),
                ).fetchone()
                if row is not None:
                    _record_op("duplicate")
                    return json.loads(row[0])
            row = connection.execute("SELECT MAX(seq) FROM tasks").fetchone()
            seq = (row[0] + 1) if row[0] is not None else 0
            # prune() may have deleted the highest-seq rows; the recorded
            # floor keeps seq (and task ids) monotonic regardless.
            floor_row = connection.execute(
                "SELECT value FROM queue_meta WHERE key = ?",
                (_SEQ_FLOOR_META_KEY,),
            ).fetchone()
            if floor_row is not None:
                try:
                    seq = max(seq, int(floor_row[0]))
                except (TypeError, ValueError):
                    pass
            for payload in payloads:
                task_id = f"task-{seq:06d}"
                connection.execute(
                    "INSERT INTO tasks (task_id, seq, payload, state, attempts,"
                    " max_attempts, created_unix, updated_unix)"
                    " VALUES (?, ?, ?, ?, 0, ?, ?, ?)",
                    (task_id, seq, json.dumps(payload, sort_keys=True),
                     TaskState.PENDING.value, max_attempts, now, now),
                )
                ids.append(task_id)
                seq += 1
            if dedupe_key is not None:
                connection.execute(
                    "INSERT INTO queue_meta (key, value) VALUES (?, ?)",
                    (_dedupe_meta_key(dedupe_key), json.dumps(ids)),
                )
        _record_op("submit", len(ids))
        return ids

    def _expire_sql(self, connection: sqlite3.Connection, now: float) -> int:
        # The skew grace applies only here, on the comparison: deadlines
        # are stored as written, so a sweep with a different grace (or a
        # later build) still sees the claimant's original lease.
        cursor = connection.execute(
            "UPDATE tasks SET"
            " state = CASE WHEN attempts >= max_attempts"
            f"   THEN '{TaskState.DEAD.value}' ELSE '{TaskState.PENDING.value}' END,"
            " error = CASE WHEN attempts >= max_attempts AND error IS NULL"
            "   THEN 'lease expired' ELSE error END,"
            " worker_id = NULL,"
            " lease_expires_unix = NULL,"
            " updated_unix = ?"
            f" WHERE state = '{TaskState.RUNNING.value}'"
            " AND lease_expires_unix IS NOT NULL AND lease_expires_unix < ?",
            (now, now - self._grace),
        )
        _record_op("lease-expire", cursor.rowcount)
        return cursor.rowcount

    def expire_leases(self) -> int:
        with self._transaction() as connection:
            return self._expire_sql(connection, self._clock())

    def claim(self, worker_id: str, lease_seconds: float) -> Optional[Task]:
        now = self._clock()
        with self._transaction() as connection:
            self._expire_sql(connection, now)
            row = connection.execute(
                "SELECT task_id FROM tasks WHERE state = ? ORDER BY seq LIMIT 1",
                (TaskState.PENDING.value,),
            ).fetchone()
            if row is None:
                return None
            task_id = row[0]
            cursor = connection.execute(
                "UPDATE tasks SET state = ?, worker_id = ?,"
                " attempts = attempts + 1, lease_expires_unix = ?,"
                " updated_unix = ? WHERE task_id = ? AND state = ?",
                (TaskState.RUNNING.value, worker_id, now + lease_seconds,
                 now, task_id, TaskState.PENDING.value),
            )
            # The write lock was held since BEGIN IMMEDIATE, so the selected
            # row cannot have been taken by anyone else.
            assert cursor.rowcount == 1
            task_row = connection.execute(
                _TASK_SELECT + " WHERE task_id = ?", (task_id,)
            ).fetchone()
        _record_op("claim")
        return _task_from_row(task_row)

    def heartbeat(self, task_id: str, worker_id: str, lease_seconds: float) -> bool:
        now = self._clock()
        with self._transaction() as connection:
            self._expire_sql(connection, now)
            cursor = connection.execute(
                "UPDATE tasks SET lease_expires_unix = ?, updated_unix = ?"
                " WHERE task_id = ? AND worker_id = ? AND state = ?",
                (now + lease_seconds, now, task_id, worker_id,
                 TaskState.RUNNING.value),
            )
            extended = cursor.rowcount == 1
        if extended:
            _record_op("heartbeat")
        return extended

    def complete(self, task_id: str, worker_id: str, result: Dict[str, Any]) -> bool:
        now = self._clock()
        with self._transaction() as connection:
            self._expire_sql(connection, now)
            cursor = connection.execute(
                "UPDATE tasks SET state = ?, result = ?, error = NULL,"
                " lease_expires_unix = NULL, updated_unix = ?"
                " WHERE task_id = ? AND worker_id = ? AND state = ?",
                (TaskState.DONE.value, json.dumps(result, sort_keys=True),
                 now, task_id, worker_id, TaskState.RUNNING.value),
            )
            if cursor.rowcount == 1:
                _record_op("complete")
                return True
            # Replay check (see the protocol docstring): already done by
            # this very worker — an earlier complete whose response was
            # lost — is still a success, not a lost lease.
            row = connection.execute(
                "SELECT state, worker_id FROM tasks WHERE task_id = ?",
                (task_id,),
            ).fetchone()
        return (
            row is not None
            and row[0] == TaskState.DONE.value
            and row[1] == worker_id
        )

    def fail(self, task_id: str, worker_id: str, error: str) -> bool:
        now = self._clock()
        with self._transaction() as connection:
            self._expire_sql(connection, now)
            cursor = connection.execute(
                "UPDATE tasks SET"
                " state = CASE WHEN attempts >= max_attempts"
                f"   THEN '{TaskState.DEAD.value}'"
                f"   ELSE '{TaskState.PENDING.value}' END,"
                " error = ?, worker_id = NULL, lease_expires_unix = NULL,"
                " updated_unix = ?"
                " WHERE task_id = ? AND worker_id = ? AND state = ?",
                (str(error), now, task_id, worker_id, TaskState.RUNNING.value),
            )
            failed = cursor.rowcount == 1
            next_state = None
            if failed:
                row = connection.execute(
                    "SELECT state FROM tasks WHERE task_id = ?", (task_id,)
                ).fetchone()
                next_state = row[0] if row is not None else None
        if failed:
            _record_op(
                "dead-letter" if next_state == TaskState.DEAD.value else "retry"
            )
        return failed

    def cancel_pending(self, task_ids: Sequence[str]) -> List[str]:
        now = self._clock()
        ids = list(dict.fromkeys(task_ids))
        if not ids:
            return []
        placeholders = ", ".join("?" for _ in ids)
        with self._transaction() as connection:
            cancelled = [
                row[0] for row in connection.execute(
                    "SELECT task_id FROM tasks WHERE state = ?"
                    f" AND task_id IN ({placeholders}) ORDER BY seq",
                    (TaskState.PENDING.value, *ids),
                ).fetchall()
            ]
            if cancelled:
                connection.execute(
                    "UPDATE tasks SET state = ?, error = 'cancelled',"
                    " updated_unix = ? WHERE state = ?"
                    f" AND task_id IN ({placeholders})",
                    (TaskState.CANCELLED.value, now,
                     TaskState.PENDING.value, *ids),
                )
        _record_op("cancel", len(cancelled))
        return cancelled

    def resubmit_dead(self) -> List[str]:
        now = self._clock()
        with self._transaction() as connection:
            ids = [
                row[0] for row in connection.execute(
                    "SELECT task_id FROM tasks WHERE state = ? ORDER BY seq",
                    (TaskState.DEAD.value,),
                ).fetchall()
            ]
            if ids:
                connection.execute(
                    "UPDATE tasks SET state = ?, attempts = 0,"
                    " worker_id = NULL, lease_expires_unix = NULL,"
                    " error = NULL, updated_unix = ? WHERE state = ?",
                    (TaskState.PENDING.value, now, TaskState.DEAD.value),
                )
        _record_op("resubmit", len(ids))
        return ids

    def prune(self, ttl_seconds: float) -> Dict[str, int]:
        if not isinstance(ttl_seconds, (int, float)) or ttl_seconds < 0:
            raise QueueError(
                f"ttl_seconds must be a non-negative number, got {ttl_seconds!r}"
            )
        cutoff = self._clock() - ttl_seconds
        with self._transaction() as connection:
            # Pin the seq floor before deleting: MAX(seq) may drop.
            row = connection.execute("SELECT MAX(seq) FROM tasks").fetchone()
            if row[0] is not None:
                connection.execute(
                    "INSERT OR REPLACE INTO queue_meta (key, value)"
                    " VALUES (?, ?)",
                    (_SEQ_FLOOR_META_KEY, str(int(row[0]) + 1)),
                )
            cursor = connection.execute(
                "DELETE FROM tasks WHERE state IN (?, ?) AND updated_unix < ?",
                (TaskState.DONE.value, TaskState.CANCELLED.value, cutoff),
            )
            tasks_dropped = cursor.rowcount
            existing = {
                task_id for (task_id,) in connection.execute(
                    "SELECT task_id FROM tasks"
                ).fetchall()
            }
            dropped: Dict[str, Set[str]] = {}
            descriptors = 0
            for key, value in connection.execute(
                "SELECT key, value FROM queue_meta WHERE key LIKE ?",
                (_JOB_META_PREFIX + "%",),
            ).fetchall():
                orphan = _orphaned_descriptor(value, existing)
                if orphan is None:
                    continue
                tenant, job_id = orphan
                connection.execute(
                    "DELETE FROM queue_meta WHERE key IN (?, ?)",
                    (key, _dedupe_meta_key(f"job:{tenant}:{job_id}")),
                )
                dropped.setdefault(tenant, set()).add(job_id)
                descriptors += 1

            def get_meta_tx(meta_key: str) -> Optional[str]:
                row = connection.execute(
                    "SELECT value FROM queue_meta WHERE key = ?", (meta_key,)
                ).fetchone()
                return row[0] if row is not None else None

            def set_meta_tx(meta_key: str, value: str) -> None:
                connection.execute(
                    "INSERT OR REPLACE INTO queue_meta (key, value)"
                    " VALUES (?, ?)",
                    (meta_key, value),
                )

            _shrink_job_indexes(get_meta_tx, set_meta_tx, dropped)
        _record_pruned("task", tasks_dropped)
        _record_pruned("descriptor", descriptors)
        return {"tasks": tasks_dropped, "descriptors": descriptors}

    def counts(self) -> Dict[str, int]:
        counts = {state.value: 0 for state in TaskState}
        for state, count in self._query(
            "SELECT state, COUNT(*) FROM tasks GROUP BY state"
        ):
            counts[state] = count
        return counts

    def drained(self) -> bool:
        counts = self.counts()
        return counts["pending"] == 0 and counts["running"] == 0

    def tasks(self, state: Optional[TaskState] = None) -> List[Task]:
        if state is None:
            rows = self._query(_TASK_SELECT + " ORDER BY seq")
        else:
            rows = self._query(
                _TASK_SELECT + " WHERE state = ? ORDER BY seq", (state.value,)
            )
        return [_task_from_row(row) for row in rows]

    def get_meta(self, key: str) -> Optional[str]:
        rows = self._query(
            "SELECT value FROM queue_meta WHERE key = ?", (key,)
        )
        return rows[0][0] if rows else None

    def set_meta(self, key: str, value: str) -> None:
        with self._transaction() as connection:
            connection.execute(
                "INSERT OR REPLACE INTO queue_meta (key, value) VALUES (?, ?)",
                (key, value),
            )

    def set_meta_if_absent(self, key: str, value: str) -> bool:
        with self._transaction() as connection:
            cursor = connection.execute(
                "INSERT OR IGNORE INTO queue_meta (key, value) VALUES (?, ?)",
                (key, value),
            )
            return cursor.rowcount == 1

    def summary(self) -> Dict[str, Any]:
        # Computed in SQL over the scalar columns: `atcd dist status` polls
        # this, and must not read (or JSON-parse) every task's payload and
        # result just to report a handful of aggregates.
        total, retries = self._query(
            "SELECT COUNT(*), COALESCE(SUM(MAX(attempts - 1, 0)), 0) FROM tasks"
        )[0]
        workers = [
            row[0] for row in self._query(
                "SELECT DISTINCT worker_id FROM tasks "
                "WHERE worker_id IS NOT NULL ORDER BY worker_id"
            )
        ]
        dead = [
            {"task_id": task_id, "attempts": attempts, "error": error}
            for task_id, attempts, error in self._query(
                "SELECT task_id, attempts, error FROM tasks "
                "WHERE state = ? ORDER BY seq", (TaskState.DEAD.value,)
            )
        ]
        return {
            "kind": "sqlite",
            "schema_version": QUEUE_SCHEMA_VERSION,
            "tasks": total,
            "counts": self.counts(),
            "retries": retries,
            "workers": workers,
            "dead": dead,
            "path": self.path,
        }

    def close(self) -> None:
        if not self._closed:
            self._closed = True
            if self._connection is not None:
                self._connection.close()

    def __enter__(self) -> "SqliteQueue":
        return self

    def __exit__(self, *exc_info: Any) -> None:
        self.close()


_TASK_SELECT = (
    "SELECT task_id, seq, payload, state, attempts, max_attempts,"
    " worker_id, lease_expires_unix, result, error FROM tasks"
)


def _task_from_row(row: tuple) -> Task:
    (task_id, seq, payload, state, attempts, max_attempts,
     worker_id, lease_expires_unix, result, error) = row
    return Task(
        task_id=task_id,
        seq=seq,
        payload=json.loads(payload),
        state=TaskState(state),
        attempts=attempts,
        max_attempts=max_attempts,
        worker_id=worker_id,
        lease_expires_unix=lease_expires_unix,
        result=json.loads(result) if result is not None else None,
        error=error,
    )


def open_queue(path: str, must_exist: bool = False) -> WorkQueue:
    """Open the work queue at ``path`` — a sqlite file or a broker URL.

    This is the single URL-dispatch point of the runtime: an
    ``http://``/``https://`` value returns a
    :class:`repro.net.HttpQueue` speaking to an ``atcd serve`` broker
    (token from ``$ATCD_BROKER_TOKEN``), anything else opens (or creates)
    a local :class:`SqliteQueue`.

    With ``must_exist=True`` a missing file is a :class:`QueueError`
    instead of a silently created empty queue — the right behaviour for
    ``atcd dist worker|status|gather``, where a typo'd path must not
    conjure an empty queue and an immediately-drained worker.  Broker
    URLs are always pinged (a URL cannot be "created", only reached), so
    an unreachable broker — or one serving no queue — fails here with
    one clear line instead of mid-run.
    """
    if path.startswith(("http://", "https://")):
        from ..net.client import HttpQueue

        queue = HttpQueue(path)
        queue.ping()
        return queue
    if must_exist and not os.path.exists(path):
        raise QueueError(f"no work queue at {path!r}")
    return SqliteQueue(path)
