"""Local worker fleets: N ``atcd dist worker`` subprocesses on this host.

``atcd dist run`` is the single-host convenience mode of the distributed
runtime: one coordinator plus a :class:`LocalFleet` of worker *processes*
(true CPU parallelism, like the bench harness's process executor — but
through the same durable queue a multi-host deployment would use, so the
execution path is identical either way).

The fleet is supervised, not fire-and-forget: workers normally exit on
their own once the queue drains, so a worker that disappears while work is
outstanding has crashed — the coordinator's poll hook respawns it, within
a bounded budget (a poison *task* is handled by the queue's retry budget;
the respawn budget guards against a poison *environment* crash-looping
forever).
"""

from __future__ import annotations

import os
import subprocess
import sys
from typing import Dict, List, Optional

from .queue import QueueError

__all__ = ["LocalFleet", "worker_command", "worker_environment"]


def worker_command(
    queue_path: str,
    store_path: Optional[str] = None,
    lease_seconds: float = 30.0,
    poll_seconds: float = 0.2,
    worker_id: Optional[str] = None,
    keep_alive: bool = False,
    trace_out: Optional[str] = None,
) -> List[str]:
    """The argv for one local ``atcd dist worker`` subprocess.

    ``keep_alive`` workers poll for new work indefinitely instead of
    exiting once the queue drains — the fleet mode behind a long-lived
    service, where an idle queue means "no jobs right now", not "done".
    ``trace_out`` forwards ``--trace-out``: workers append whole NDJSON
    lines, so one shared file collects the entire fleet's spans.
    """
    command = [
        sys.executable, "-m", "repro.cli", "dist", "worker",
        "--queue", queue_path,
        "--lease", str(lease_seconds),
        "--poll", str(poll_seconds),
    ]
    if store_path:
        command += ["--store", store_path]
    if worker_id:
        command += ["--worker-id", worker_id]
    if keep_alive:
        command.append("--keep-alive")
    if trace_out:
        command += ["--trace-out", trace_out]
    return command


def worker_environment() -> Dict[str, str]:
    """The subprocess environment: this build of ``repro`` on the path.

    The directory this very package was imported from is prepended to
    ``PYTHONPATH`` so source checkouts (where ``repro`` is importable only
    via ``PYTHONPATH=src``) spawn workers of the same build; for installed
    packages the extra entry is harmless.
    """
    package_root = os.path.dirname(
        os.path.dirname(os.path.dirname(os.path.abspath(__file__)))
    )
    env = dict(os.environ)
    existing = env.get("PYTHONPATH")
    env["PYTHONPATH"] = (
        package_root + os.pathsep + existing if existing else package_root
    )
    return env


class LocalFleet:
    """Spawn, supervise and reap N local worker subprocesses.

    Parameters
    ----------
    queue_path / store_path / lease_seconds / poll_seconds:
        Forwarded to every worker (see :func:`worker_command`).
    workers:
        Fleet size (kept constant while the run is outstanding).
    respawn_budget:
        How many crashed workers may be replaced before the fleet gives
        up; defaults to the fleet size.
    keep_alive:
        Spawn long-lived workers that keep polling after the queue drains
        (``atcd api --workers N`` mode).  The supervisor semantics change
        with it: a missing keep-alive worker is *always* a crash, even on
        an idle queue, so :meth:`supervise` respawns regardless of
        outstanding work.
    """

    def __init__(
        self,
        queue_path: str,
        workers: int,
        store_path: Optional[str] = None,
        lease_seconds: float = 30.0,
        poll_seconds: float = 0.2,
        respawn_budget: Optional[int] = None,
        keep_alive: bool = False,
        trace_out: Optional[str] = None,
    ) -> None:
        if workers < 1:
            raise ValueError(
                f"workers must be a positive integer, got {workers!r}"
            )
        self.queue_path = queue_path
        self.store_path = store_path
        self.workers = workers
        self.lease_seconds = lease_seconds
        self.poll_seconds = poll_seconds
        self.respawn_budget = workers if respawn_budget is None else respawn_budget
        self.keep_alive = keep_alive
        self.trace_out = trace_out
        self._spawned = 0
        self._processes: List[subprocess.Popen] = []
        self._dead_with_work_polls = 0

    def _spawn_one(self) -> subprocess.Popen:
        self._spawned += 1
        process = subprocess.Popen(
            worker_command(
                self.queue_path,
                store_path=self.store_path,
                lease_seconds=self.lease_seconds,
                poll_seconds=self.poll_seconds,
                worker_id=f"local-{os.getpid()}-w{self._spawned}",
                keep_alive=self.keep_alive,
                trace_out=self.trace_out,
            ),
            env=worker_environment(),
            stdout=subprocess.DEVNULL,  # workers report on stderr only
        )
        self._processes.append(process)
        return process

    def start(self) -> None:
        """Launch the initial fleet."""
        for _ in range(self.workers):
            self._spawn_one()

    def alive(self) -> int:
        """How many workers are currently running."""
        return sum(1 for process in self._processes if process.poll() is None)

    def supervise(self, counts: Dict[str, int]) -> None:
        """Coordinator poll hook: keep the fleet at size while work remains.

        Workers exit zero on their own only once the queue is drained, so
        with pending/running tasks outstanding every missing worker is a
        crash: replace it, within the respawn budget.  A fleet that is
        entirely dead with no budget left raises — a hung ``dist run``
        would otherwise wait on its timeout for workers that no longer
        exist.  The abort needs the condition on two *consecutive* polls:
        ``counts`` was read before ``alive()``, so the last task may have
        completed (and the workers legitimately exited) in between — the
        coordinator's next poll observes the drained queue and returns
        normally instead.
        """
        outstanding = counts["pending"] + counts["running"]
        if outstanding == 0 and not self.keep_alive:
            self._dead_with_work_polls = 0
            return
        missing = self.workers - self.alive()
        for _ in range(missing):
            if self._spawned - self.workers >= self.respawn_budget:
                if self.alive() == 0:
                    self._dead_with_work_polls += 1
                    if self._dead_with_work_polls >= 2:
                        raise QueueError(
                            "all local workers exited with work outstanding "
                            f"(pending={counts['pending']}, "
                            f"running={counts['running']}) and the respawn "
                            f"budget ({self.respawn_budget}) is spent"
                        )
                return
            self._spawn_one()
        self._dead_with_work_polls = 0

    def join(self, timeout: float = 30.0) -> None:
        """Wait for the (drained) workers to exit on their own."""
        for process in self._processes:
            if process.poll() is None:
                try:
                    process.wait(timeout=timeout)
                except subprocess.TimeoutExpired:
                    process.terminate()
                    process.wait(timeout=5.0)

    def terminate(self) -> None:
        """Stop every remaining worker (cleanup on error paths).

        ``terminate()`` sends SIGTERM, which a worker's signal handler
        turns into a graceful exit: the in-flight task is failed back to
        the queue (immediately claimable) rather than abandoned to its
        lease.  Workers that don't wind down in time are killed — their
        task then takes the lease-expiry path.
        """
        for process in self._processes:
            if process.poll() is None:
                process.terminate()
        for process in self._processes:
            if process.poll() is None:
                try:
                    process.wait(timeout=5.0)
                except subprocess.TimeoutExpired:
                    process.kill()
                    process.wait(timeout=5.0)

    def __enter__(self) -> "LocalFleet":
        return self

    def __exit__(self, *exc_info: object) -> None:
        self.terminate()
