"""Distributed execution runtime: durable queue, workers, coordinator.

This package fans analysis work out beyond a single process pool, over the
two foundations the engine already ships: self-contained JSON task payloads
(:func:`repro.bench.harness.case_payload` /
:func:`repro.engine.session.run_serialized_request`) and the cross-process
:class:`~repro.engine.store.SqliteStore` result store.  It is broker-less
by design — all coordination state lives in one sqlite *work queue* file,
so a single-host run and a multi-host run over a shared filesystem use
exactly the same code path.

Layers
------
``queue``
    The :class:`WorkQueue` protocol and its two implementations:
    :class:`SqliteQueue` (durable, ``BEGIN IMMEDIATE`` claims — safe for
    worker fleets across threads, processes and hosts) and
    :class:`InMemoryQueue` (tests, single-process embedding).  Tasks carry
    visibility leases with expiry, bounded retries and a dead-letter
    state.
``worker``
    :class:`Worker`: claim → execute (through the engine's wire entry
    points, idempotently via a shared result store) → heartbeat →
    complete/fail.
``coordinator``
    :class:`Coordinator`: shard a bench profile or batch request list into
    tasks, wait out the fleet (sweeping expired leases, so crashed
    workers' tasks are retried), gather results into a ``BENCH_*.json``
    artifact or result list with distributed-run metadata.
``fleet``
    :class:`LocalFleet`: the supervised N-worker-subprocess mode behind
    ``atcd dist run``.

Typical single-host use (``atcd dist run`` wraps exactly this)::

    from repro.bench import profile
    from repro.distributed import Coordinator, LocalFleet, SqliteQueue

    queue = SqliteQueue("run.queue")
    coordinator = Coordinator(queue)
    coordinator.submit_profile("smoke", profile("smoke"))
    with LocalFleet("run.queue", workers=4) as fleet:
        fleet.start()
        coordinator.wait(on_poll=fleet.supervise)
        fleet.join()
    artifact = coordinator.gather(distributed={"workers": 4}).output

Multi-host use splits the same pieces: ``atcd dist submit`` on one host,
``atcd dist worker`` on each compute host (pointing at the queue — and
ideally a result store — on a shared filesystem), ``atcd dist status`` /
``atcd dist gather`` anywhere.  Hosts that share *nothing* point the same
flags at an ``atcd serve`` broker URL instead of a path
(:mod:`repro.net`); :func:`open_queue` dispatches on the scheme.
"""

from .coordinator import Coordinator, GatherReport, RUN_META_KEY
from .fleet import LocalFleet, worker_command, worker_environment
from .roots import QUEUE_FILE_SUFFIX, QueueRoot
from .queue import (
    DEFAULT_LEASE_GRACE,
    DEFAULT_MAX_ATTEMPTS,
    QUEUE_SCHEMA_VERSION,
    InMemoryQueue,
    QueueError,
    SqliteQueue,
    Task,
    TaskState,
    WorkQueue,
    open_queue,
)
from .worker import (
    Worker,
    WorkerReport,
    WorkerShutdown,
    default_worker_id,
    execute_task_payload,
    signal_shutdown,
)

__all__ = [
    "Coordinator",
    "DEFAULT_LEASE_GRACE",
    "DEFAULT_MAX_ATTEMPTS",
    "GatherReport",
    "InMemoryQueue",
    "LocalFleet",
    "QUEUE_FILE_SUFFIX",
    "QUEUE_SCHEMA_VERSION",
    "QueueError",
    "QueueRoot",
    "RUN_META_KEY",
    "SqliteQueue",
    "Task",
    "TaskState",
    "WorkQueue",
    "Worker",
    "WorkerReport",
    "WorkerShutdown",
    "default_worker_id",
    "execute_task_payload",
    "open_queue",
    "signal_shutdown",
    "worker_command",
    "worker_environment",
]
