"""The worker loop: claim, execute, heartbeat, report.

A :class:`Worker` repeatedly claims tasks from a :class:`~.queue.WorkQueue`
and executes them through the engine's existing wire entry points — bench
case payloads via :func:`repro.bench.harness.execute_serialized_case`,
plain analysis requests via
:func:`repro.engine.session.run_serialized_request`.  Nothing about a task
is worker-specific: any worker on any host (sharing the queue file and,
optionally, a result store) can execute any task.

While a task runs, a daemon thread renews its visibility lease at a third
of the lease interval, so long solver runs stay invisible to other workers
for as long as — and only as long as — this process is alive.  A worker
that is killed simply stops heartbeating; the lease runs out and the queue
hands the task to someone else.

Re-execution is made *idempotent* by the shared result store: a retried
task whose first execution already persisted its result is answered from
the store (``run_serialized_request(store=...)`` /
``execute_serialized_case(store=...)`` read through it) instead of being
recomputed, so crash-retry cannot produce divergent results.

Failures inside a task (a payload that does not deserialize, a backend
error) are reported to the queue with :meth:`~.queue.WorkQueue.fail` —
bounded retries, then dead-letter — and the worker moves on; only the
queue itself failing stops the loop.

Graceful shutdown: under :func:`signal_shutdown` (what ``atcd dist
worker`` runs in), SIGTERM/SIGINT raise :class:`WorkerShutdown` inside
the loop.  The in-flight task is *failed back to the queue immediately*
(ownership-checked, so a task that was meanwhile reassigned is left
alone) instead of staying invisible until its lease times out, and the
worker exits with a report marking the interruption.
"""

from __future__ import annotations

import contextlib
import json
import os
import signal
import socket
import threading
import time
import traceback
from dataclasses import dataclass, field
from typing import Any, Callable, Dict, Iterator, Optional

from ..bench.harness import execute_serialized_case
from ..engine.session import run_serialized_request
from ..engine.store import NamespacedStore, ResultStore
from ..obs import families as obs_families
from ..obs.metrics import get_registry
from ..obs.scrape import WORKER_METRICS_META_PREFIX
from ..obs.trace import activate_context, extract_context
from ..obs.trace import span as trace_span
from .queue import QueueError, Task, TaskState, WorkQueue

__all__ = [
    "WORKER_METRICS_META_PREFIX",
    "Worker",
    "WorkerReport",
    "WorkerShutdown",
    "default_worker_id",
    "execute_task_payload",
    "signal_shutdown",
]

class WorkerShutdown(BaseException):
    """A shutdown signal arrived; unwind the worker loop.

    Subclasses ``BaseException`` (like ``KeyboardInterrupt``) so the
    worker's normal task-failure handling — which retries and moves on —
    cannot swallow it: a signalled worker must stop, not keep claiming.
    """

    def __init__(self, signum: int) -> None:
        super().__init__(signum)
        self.signum = signum


@contextlib.contextmanager
def signal_shutdown(worker: "Worker") -> Iterator[None]:
    """Route SIGTERM/SIGINT into a graceful stop of ``worker``.

    The handler stops the loop and raises :class:`WorkerShutdown` at the
    interrupt point, so :meth:`Worker.run` can fail its in-flight task
    back to the queue before returning.  The raise is one-shot: a second
    signal (an impatient operator, a supervisor re-signalling) must not
    interrupt the fail-back already in progress — it only re-confirms the
    stop.  Signal handlers can only be installed from the main thread;
    elsewhere this is a no-op (thread-run workers are stopped with
    :meth:`Worker.stop` instead).  Previous handlers are restored on
    exit.
    """
    fired = threading.Event()

    def _handler(signum: int, frame: Any) -> None:
        worker.stop()
        if not fired.is_set():
            fired.set()
            raise WorkerShutdown(signum)

    previous: Dict[int, Any] = {}
    if threading.current_thread() is threading.main_thread():
        for signum in (signal.SIGTERM, signal.SIGINT):
            previous[signum] = signal.signal(signum, _handler)
    try:
        yield
    finally:
        for signum, handler in previous.items():
            signal.signal(signum, handler)


def default_worker_id() -> str:
    """A host-unique worker name: ``<hostname>-<pid>``."""
    return f"{socket.gethostname()}-{os.getpid()}"


def execute_task_payload(
    payload: Dict[str, Any], store: Optional[ResultStore] = None
) -> Dict[str, Any]:
    """Dispatch one task payload to the engine by its ``kind``.

    ``bench-case`` payloads (the harness wire format) return a
    :class:`~repro.bench.harness.BenchRun` row dict; ``request`` payloads
    (a serialized model + request) return an
    :class:`~repro.engine.AnalysisResult` dict.

    A ``request`` payload may carry a ``store_namespace`` (the service
    layer's tenant name): the store is then accessed through a
    :class:`~repro.engine.store.NamespacedStore` view, so one tenant's
    cached results can neither serve nor poison another's.  Workers need
    no tenant configuration — isolation rides on the task payload.
    """
    kind = payload.get("kind", "bench-case")
    if kind == "bench-case":
        return execute_serialized_case(payload, store=store)
    if kind == "request":
        namespace = payload.get("store_namespace")
        if namespace is not None and store is not None:
            store = NamespacedStore(store, namespace)
        return run_serialized_request(
            payload["model"], payload["request"], store=store
        )
    raise ValueError(f"unknown task kind {kind!r}")


@dataclass
class WorkerReport:
    """What one :meth:`Worker.run` invocation did."""

    worker_id: str
    completed: int = 0
    failed: int = 0
    #: Task ids whose attempt failed on this worker (possibly retried by
    #: another worker afterwards).
    failures: list = field(default_factory=list)
    #: Signal number that interrupted the loop (``None`` for a normal
    #: drained/stopped exit).  An interrupted worker's in-flight task was
    #: failed back to the queue, not abandoned to its lease.
    interrupted: Optional[int] = None

    @property
    def executed(self) -> int:
        """Total attempts this worker made (completed + failed)."""
        return self.completed + self.failed


class _LeaseKeeper(threading.Thread):
    """Renews one running task's lease until stopped (daemon thread).

    Renewal runs at a third of the lease interval, so two renewals can be
    missed (scheduler stalls, a slow queue write) before the lease actually
    lapses.  If the queue reports the task is no longer ours — the lease
    already expired and someone else claimed it — the keeper gives up; the
    worker discovers the loss when its ``complete``/``fail`` returns False.
    """

    def __init__(
        self, queue: WorkQueue, task_id: str, worker_id: str, lease_seconds: float
    ) -> None:
        super().__init__(name=f"lease-{task_id}", daemon=True)
        self._queue = queue
        self._task_id = task_id
        self._worker_id = worker_id
        self._lease_seconds = lease_seconds
        self._interval = max(lease_seconds / 3.0, 0.05)
        self._stop_event = threading.Event()

    def run(self) -> None:
        while not self._stop_event.wait(self._interval):
            try:
                renewed = self._queue.heartbeat(
                    self._task_id, self._worker_id, self._lease_seconds
                )
            except QueueError:
                # A transient queue error (lock timeout) must not kill the
                # keeper; the next tick retries, and the lease is sized to
                # survive missed renewals.  Both queue flavours wrap their
                # transport errors in QueueError, so that is the whole set.
                continue
            if not renewed:
                return
            obs_families.worker_heartbeats_total().inc()

    def stop(self) -> None:
        self._stop_event.set()
        self.join(timeout=5.0)


class Worker:
    """A single queue consumer; run one per process (or thread).

    Parameters
    ----------
    queue:
        The work queue to claim from.
    worker_id:
        Stable name used for lease ownership; defaults to
        ``<hostname>-<pid>``.
    store:
        Optional shared result store.  Results are read through and written
        back, making re-execution after a crash idempotent and letting
        workers share work across the fleet.
    lease_seconds:
        Visibility lease per claim; renewed by heartbeat at a third of
        this interval while the task executes.
    poll_seconds:
        Idle sleep between claim attempts when nothing is pending.
    max_tasks:
        Stop after this many attempts (None = unbounded).
    exit_when_drained:
        Return once the queue holds no pending or running tasks (the
        single-run default).  With ``False`` the worker keeps polling for
        new work until ``max_tasks`` — the long-lived fleet mode.
    executor:
        Override task execution (tests inject failures/delays here);
        defaults to :func:`execute_task_payload` with this worker's store.
    inject_delay_seconds:
        Sleep this long after claiming each task, before executing it —
        fault-injection hook for chaos tests (kill a worker mid-task).
    """

    def __init__(
        self,
        queue: WorkQueue,
        worker_id: Optional[str] = None,
        store: Optional[ResultStore] = None,
        lease_seconds: float = 30.0,
        poll_seconds: float = 0.2,
        max_tasks: Optional[int] = None,
        exit_when_drained: bool = True,
        executor: Optional[Callable[[Dict[str, Any]], Dict[str, Any]]] = None,
        inject_delay_seconds: float = 0.0,
    ) -> None:
        if lease_seconds <= 0:
            raise ValueError(
                f"lease_seconds must be positive, got {lease_seconds!r}"
            )
        self.queue = queue
        self.worker_id = worker_id or default_worker_id()
        self.store = store
        self.lease_seconds = lease_seconds
        self.poll_seconds = poll_seconds
        self.max_tasks = max_tasks
        self.exit_when_drained = exit_when_drained
        self.executor = executor
        self.inject_delay_seconds = inject_delay_seconds
        self._stop_event = threading.Event()

    def stop(self) -> None:
        """Ask a running loop to return after its current task."""
        self._stop_event.set()

    def _execute(self, task: Task) -> Dict[str, Any]:
        if self.inject_delay_seconds:
            time.sleep(self.inject_delay_seconds)
        if self.executor is not None:
            return self.executor(task.payload)
        return execute_task_payload(task.payload, store=self.store)

    def run_one(self, task: Task, report: WorkerReport) -> None:
        """Execute one claimed task under a heartbeat, report the outcome."""
        keeper = _LeaseKeeper(
            self.queue, task.task_id, self.worker_id, self.lease_seconds
        )
        keeper.start()
        kind = (
            task.payload.get("kind", "bench-case")
            if isinstance(task.payload, dict) else "unknown"
        )
        started = time.perf_counter()
        try:
            # The payload's "trace" stanza (if the submitter embedded one)
            # parents this span under the coordinator/service span that
            # created the task — one trace across process and host hops.
            context = (
                extract_context(task.payload.get("trace"))
                if isinstance(task.payload, dict) else None
            )
            with contextlib.ExitStack() as stack:
                if context is not None:
                    stack.enter_context(activate_context(context))
                stack.enter_context(trace_span(
                    "worker.task",
                    attrs={
                        "task_id": task.task_id,
                        "kind": kind,
                        "worker_id": self.worker_id,
                        "attempt": task.attempts,
                    },
                ))
                result = self._execute(task)
        except WorkerShutdown:
            # A shutdown signal mid-task: stop renewing and let run()
            # fail the task back to the queue on the way out.
            keeper.stop()
            raise
        # staticcheck: allow-broad-except(task payloads run arbitrary backend code; any failure must dead-letter the task, not the worker)
        except Exception as error:
            keeper.stop()
            obs_families.worker_task_seconds().observe(
                time.perf_counter() - started, kind=kind
            )
            message = "".join(
                traceback.format_exception_only(type(error), error)
            ).strip()
            self.queue.fail(task.task_id, self.worker_id, message)
            report.failed += 1
            report.failures.append(task.task_id)
            obs_families.worker_tasks_total().inc(outcome="failed")
            self.publish_metrics()
            return
        keeper.stop()
        obs_families.worker_task_seconds().observe(
            time.perf_counter() - started, kind=kind
        )
        if self.queue.complete(task.task_id, self.worker_id, result):
            report.completed += 1
            obs_families.worker_tasks_total().inc(outcome="completed")
        else:
            # Our lease lapsed mid-run and the task went elsewhere.  The
            # computation is not wasted if a store is attached (the result
            # was written through), but it is not ours to report as done.
            report.failed += 1
            report.failures.append(task.task_id)
            obs_families.worker_tasks_total().inc(outcome="lost-lease")
        self.publish_metrics()

    def run(self) -> WorkerReport:
        """Claim and execute until drained/stopped/signalled; returns the
        report.

        On :class:`WorkerShutdown` (a SIGTERM/SIGINT routed in by
        :func:`signal_shutdown`) the in-flight claim is failed back to
        the queue — ownership-checked, so nothing is touched if the lease
        already moved on — making the task immediately claimable instead
        of invisible until lease expiry.
        """
        report = WorkerReport(worker_id=self.worker_id)
        current: Optional[Task] = None
        try:
            while not self._stop_event.is_set():
                if self.max_tasks is not None and report.executed >= self.max_tasks:
                    break
                current = self.queue.claim(self.worker_id, self.lease_seconds)
                if current is None:
                    if self.exit_when_drained and self.queue.drained():
                        break
                    if self._stop_event.wait(self.poll_seconds):
                        break
                    continue
                self.run_one(current, report)
                current = None
        except WorkerShutdown as shutdown:
            report.interrupted = shutdown.signum
            try:
                # `current` is None when the signal landed between tasks —
                # or inside claim(), after the server committed the lease
                # but before the result was assigned.  Ask the queue which
                # tasks it believes are ours so that window leaks nothing.
                if current is not None:
                    claims = [current]
                else:
                    claims = [
                        task
                        for task in self.queue.tasks(TaskState.RUNNING)
                        if task.worker_id == self.worker_id
                    ]
                for task in claims:
                    if self.queue.fail(
                        task.task_id, self.worker_id,
                        f"worker {self.worker_id} shut down by signal "
                        f"{shutdown.signum} with the task in flight",
                    ):
                        report.failed += 1
                        report.failures.append(task.task_id)
                        obs_families.worker_interrupted_total().inc()
            # staticcheck: allow-broad-except(a stray shutdown signal can hit the fail-back itself; the lease expiring recovers the task)
            except BaseException:
                # The queue is unreachable, or a stray signal hit the
                # fail-back itself; the lease will expire and recover the
                # task the slow way.
                pass
        self.publish_metrics()
        return report

    def publish_metrics(self) -> None:
        """Publish this process's metrics snapshot into queue metadata.

        Written under ``worker-metrics:<worker_id>`` after every task and
        on loop exit; the broker/service merge these at scrape time so a
        single ``GET /metrics`` covers the whole fleet.  Best-effort —
        telemetry must never fail the work it observes.
        """
        try:
            self.queue.set_meta(
                WORKER_METRICS_META_PREFIX + self.worker_id,
                json.dumps(get_registry().snapshot()),
            )
        except QueueError:
            pass
