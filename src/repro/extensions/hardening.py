"""Defence hardening: choosing countermeasures against cost-damage attackers.

The data-server case study of the paper is taken from Dewri et al. [23],
whose actual topic is *optimal security hardening* — choosing, under a
defence budget, which countermeasures to implement so that the residual risk
is minimised.  This extension closes that loop on top of the cost-damage
machinery:

* a :class:`Countermeasure` raises the cost of some BASs (possibly to the
  point of disabling them) and has an implementation cost for the defender;
* :func:`apply_countermeasures` produces the hardened cd-AT;
* :func:`optimal_hardening` searches over countermeasure subsets within a
  defence budget and picks the one that minimises the attacker's optimal
  damage (problem DgC evaluated on every hardened model) — i.e. it solves
  the bi-level min-max problem by enumerating the (typically small) defence
  lattice and delegating the inner maximisation to the exact solvers.

This is an extension beyond the paper's claims; it exists because it is the
natural next question a user of the library asks ("which defence should I
buy?") and because it exercises the public API end to end.
"""

from __future__ import annotations

import itertools
import math
from dataclasses import dataclass, field
from typing import Dict, FrozenSet, Iterable, Mapping, Optional, Sequence, Tuple, Union

from ..attacktree.attributes import CostDamageAT, CostDamageProbAT
from ..core.problems import Method, Problem, solve

__all__ = ["Countermeasure", "HardeningResult", "apply_countermeasures", "optimal_hardening"]

#: Cost multiplier treated as "the BAS becomes impossible".
DISABLED = math.inf


@dataclass(frozen=True)
class Countermeasure:
    """A defensive measure that makes certain BASs harder (or impossible).

    Attributes
    ----------
    name:
        Identifier used in results.
    implementation_cost:
        What the defender pays to deploy the measure.
    cost_increase:
        Additive cost increase per affected BAS; use ``math.inf`` (or the
        module constant :data:`DISABLED`) to model a BAS that becomes
        impossible.
    """

    name: str
    implementation_cost: float
    cost_increase: Mapping[str, float] = field(default_factory=dict)

    def __post_init__(self) -> None:
        if self.implementation_cost < 0:
            raise ValueError("implementation cost must be non-negative")
        if not self.cost_increase:
            raise ValueError(f"countermeasure {self.name!r} affects no BAS")
        for bas, increase in self.cost_increase.items():
            if increase < 0:
                raise ValueError(
                    f"countermeasure {self.name!r} lowers the cost of {bas!r}"
                )


@dataclass(frozen=True)
class HardeningResult:
    """Outcome of :func:`optimal_hardening`."""

    chosen: Tuple[Countermeasure, ...]
    defence_cost: float
    residual_damage: float
    attacker_witness: Optional[FrozenSet[str]]
    evaluated_combinations: int

    @property
    def chosen_names(self) -> Tuple[str, ...]:
        """Names of the selected countermeasures."""
        return tuple(measure.name for measure in self.chosen)


Model = Union[CostDamageAT, CostDamageProbAT]


def apply_countermeasures(
    model: Model, measures: Iterable[Countermeasure]
) -> Model:
    """Return the hardened model with the given countermeasures applied.

    BASs whose cost becomes infinite are modelled by a finite cost exceeding
    the sum of every other BAS cost plus any conceivable budget — attacks
    using them are never optimal under a finite attacker budget, while the
    model stays a valid cd-AT (costs must be finite).
    """
    new_cost: Dict[str, float] = dict(model.cost)
    unknown = {
        bas
        for measure in measures
        for bas in measure.cost_increase
        if bas not in model.tree.basic_attack_steps
    }
    if unknown:
        raise KeyError(f"countermeasures reference unknown BASs: {sorted(unknown)!r}")

    finite_ceiling = sum(model.cost.values()) + 1.0
    disabled_cost = finite_ceiling * 1e6
    for measure in measures:
        for bas, increase in measure.cost_increase.items():
            if math.isinf(increase):
                new_cost[bas] = disabled_cost
            else:
                new_cost[bas] = new_cost[bas] + increase

    if isinstance(model, CostDamageProbAT):
        return CostDamageProbAT(
            model.tree, new_cost, dict(model.damage), dict(model.probability)
        )
    return CostDamageAT(model.tree, new_cost, dict(model.damage))


def optimal_hardening(
    model: Model,
    countermeasures: Sequence[Countermeasure],
    defence_budget: float,
    attacker_budget: float,
    probabilistic: bool = False,
    max_countermeasures: Optional[int] = None,
) -> HardeningResult:
    """Choose countermeasures minimising the attacker's optimal damage.

    Parameters
    ----------
    model:
        The baseline cd-AT / cdp-AT.
    countermeasures:
        The available defences.
    defence_budget:
        Maximum total implementation cost.
    attacker_budget:
        The attacker budget ``U`` used for the inner DgC/EDgC evaluation.
    probabilistic:
        Evaluate expected damage (EDgC) instead of deterministic damage;
        requires a cdp-AT.
    max_countermeasures:
        Optional cap on the subset size (prunes the search lattice).

    Notes
    -----
    The search enumerates affordable countermeasure subsets — exponential in
    the number of countermeasures, which is fine for the realistic handful a
    security team weighs up.  Ties are broken towards cheaper defences.
    """
    if defence_budget < 0:
        raise ValueError("defence budget must be non-negative")
    if len({measure.name for measure in countermeasures}) != len(countermeasures):
        raise ValueError("countermeasure names must be unique")
    problem = Problem.EDGC if probabilistic else Problem.DGC

    best: Optional[HardeningResult] = None
    evaluated = 0
    limit = max_countermeasures if max_countermeasures is not None else len(countermeasures)
    for size in range(0, limit + 1):
        for combo in itertools.combinations(countermeasures, size):
            cost = sum(measure.implementation_cost for measure in combo)
            if cost > defence_budget + 1e-9:
                continue
            hardened = apply_countermeasures(model, combo)
            evaluated += 1
            result = solve(hardened, problem, Method.AUTO, budget=attacker_budget)
            candidate = HardeningResult(
                chosen=tuple(combo),
                defence_cost=cost,
                residual_damage=result.value,
                attacker_witness=result.witness,
                evaluated_combinations=0,
            )
            if best is None or _better(candidate, best):
                best = candidate

    assert best is not None  # size-0 combination is always affordable
    return HardeningResult(
        chosen=best.chosen,
        defence_cost=best.defence_cost,
        residual_damage=best.residual_damage,
        attacker_witness=best.attacker_witness,
        evaluated_combinations=evaluated,
    )


def _better(candidate: HardeningResult, incumbent: HardeningResult) -> bool:
    """Lower residual damage wins; ties go to the cheaper defence."""
    if candidate.residual_damage < incumbent.residual_damage - 1e-9:
        return True
    if candidate.residual_damage > incumbent.residual_damage + 1e-9:
        return False
    return candidate.defence_cost < incumbent.defence_cost - 1e-9
