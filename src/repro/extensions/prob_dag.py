"""Probabilistic analysis of DAG-like ATs (the paper's open problem).

Section IX of the paper ends by leaving CEDPF / EDgC / CgED for DAG-like ATs
open: the bottom-up recursion is unsound (shared subtrees break the
independence assumption) and the BILP constraints become nonlinear
(``y_v = y_{v₁}·y_{v₂}`` for AND gates over probabilities).

This extension module goes beyond the paper and offers two pragmatic tools:

* an **exact enumerative** solver — evaluate the exact expected damage (via
  actualization enumeration, correct also for DAGs) for every attack and
  Pareto-minimise.  Doubly exponential, usable only for small models, but an
  exact reference;
* a **Monte-Carlo** solver — estimate each attack's expected damage by
  sampling actualizations.  Still exponential in the number of BASs (one
  estimate per attack) but with controllable per-attack effort; returns an
  *approximate* front together with the per-point standard errors so callers
  can judge the resolution.

Both carry explicit warnings in their docstrings: they are extensions, not
reproductions of a paper claim.
"""

from __future__ import annotations

import random
from dataclasses import dataclass
from typing import FrozenSet, List, Optional, Tuple

from ..attacktree.attributes import CostDamageProbAT
from ..core.semantics import all_attacks, attack_cost
from ..pareto.front import ParetoFront, ParetoPoint
from ..pareto.poset import pareto_minimal_pairs
from ..probability.actualization import expected_damage
from ..probability.montecarlo import MonteCarloEstimate, estimate_expected_damage

__all__ = [
    "ApproximateFrontPoint",
    "pareto_front_probabilistic_exact",
    "max_expected_damage_exact",
    "pareto_front_probabilistic_montecarlo",
]


def pareto_front_probabilistic_exact(
    cdpat: CostDamageProbAT, max_bas: int = 18
) -> ParetoFront:
    """Exact CEDPF for an arbitrary (DAG-like) cdp-AT by enumeration.

    Raises ``ValueError`` when the model has more than ``max_bas`` BASs —
    beyond that the doubly exponential enumeration is hopeless and the
    Monte-Carlo variant should be used instead.
    """
    bas_count = len(cdpat.tree.basic_attack_steps)
    if bas_count > max_bas:
        raise ValueError(
            f"exact probabilistic DAG analysis enumerates 2^{bas_count} attacks; "
            f"the limit is 2^{max_bas} — use pareto_front_probabilistic_montecarlo"
        )
    points = []
    for attack in all_attacks(cdpat):
        cost = attack_cost(cdpat, attack)
        damage = expected_damage(cdpat, attack)
        points.append(
            ParetoPoint(cost=cost, damage=damage, attack=attack,
                        reaches_root=cdpat.tree.is_successful(attack))
        )
    return ParetoFront(points)


def max_expected_damage_exact(
    cdpat: CostDamageProbAT, budget: float, max_bas: int = 18
) -> Tuple[float, Optional[FrozenSet[str]]]:
    """Exact EDgC for an arbitrary cdp-AT by enumeration (small models only)."""
    front = pareto_front_probabilistic_exact(cdpat, max_bas=max_bas)
    point = front.best_attack_given_cost(budget)
    if point is None:
        return 0.0, None
    return point.damage, point.attack


@dataclass(frozen=True)
class ApproximateFrontPoint:
    """A point of a Monte-Carlo-estimated Pareto front."""

    cost: float
    estimate: MonteCarloEstimate
    attack: FrozenSet[str]

    @property
    def expected_damage(self) -> float:
        """The estimated expected damage."""
        return self.estimate.mean


def pareto_front_probabilistic_montecarlo(
    cdpat: CostDamageProbAT,
    samples_per_attack: int = 2000,
    seed: int = 0,
    max_bas: int = 22,
) -> List[ApproximateFrontPoint]:
    """Approximate CEDPF for a DAG-like cdp-AT via Monte-Carlo estimation.

    Every attack's expected damage is estimated with
    ``samples_per_attack`` actualization samples; the Pareto filter is then
    applied to the estimates.  Points whose estimates are within one
    standard error of each other may be mis-ordered — the returned standard
    errors quantify that resolution.

    Returns the approximate front ordered by cost.
    """
    bas_count = len(cdpat.tree.basic_attack_steps)
    if bas_count > max_bas:
        raise ValueError(
            f"the Monte-Carlo front still enumerates 2^{bas_count} attacks; "
            f"the limit is 2^{max_bas}"
        )
    rng = random.Random(seed)
    candidates: List[ApproximateFrontPoint] = []
    for attack in all_attacks(cdpat):
        cost = attack_cost(cdpat, attack)
        estimate = estimate_expected_damage(
            cdpat, attack, samples=samples_per_attack, rng=rng
        )
        candidates.append(
            ApproximateFrontPoint(cost=cost, estimate=estimate, attack=attack)
        )
    minimal = pareto_minimal_pairs(
        candidates, key=lambda point: (point.cost, point.expected_damage)
    )
    return sorted(minimal, key=lambda point: point.cost)
