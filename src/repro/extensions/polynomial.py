"""Exact probabilistic DAG analysis via multilinear reach polynomials.

The paper's conclusion sketches a possible attack on its open problem
(probabilistic analysis of DAG-like ATs): "use a bottom-up approach, but in
a polynomial ring with formal variables for nodes that occur multiple times,
[…] to keep track of which nodes occur twice, and tweak addition to prevent
double counting."  This module implements that idea.

Every BAS ``v`` gets a formal indicator variable ``x_v``.  The *reach
polynomial* of a node is the multilinear polynomial (over those indicators,
with the idempotence rule ``x_v² = x_v``) that equals the node's structure
function.  It is computed bottom-up on the DAG:

* BAS:  ``x_v``;
* AND:  product of the children's polynomials;
* OR:   ``1 − Π (1 − child)``;

with multilinear reduction applied after every product.  Because the BAS
success indicators are independent Bernoulli variables, substituting
``x_v ↦ p(v)·[v ∈ attack]`` into the multilinear polynomial yields the exact
reach probability ``PS(x, v)`` — *also on DAGs*, where the plain numeric
recursion of Section IX is unsound.  The price is the polynomial size, which
is worst-case exponential in the number of shared BASs below the node but is
small for the sharing patterns of realistic models (the data-server AT's
largest reach polynomial has a handful of monomials).

On top of the polynomials the module offers exact expected damage and an
exact CEDPF solver for DAG-like cdp-ATs whose per-attack evaluation is
polynomial-sized instead of the ``2^|x|`` actualization enumeration used by
:mod:`repro.extensions.prob_dag`.
"""

from __future__ import annotations

from typing import Dict, FrozenSet, Iterable, Mapping, Optional

from ..attacktree.attributes import CostDamageProbAT
from ..attacktree.node import NodeType
from ..attacktree.tree import AttackTree
from ..core.semantics import all_attacks, attack_cost, normalize_attack
from ..pareto.front import ParetoFront, ParetoPoint

__all__ = [
    "MultilinearPolynomial",
    "reach_polynomials",
    "expected_damage_polynomial",
    "pareto_front_probabilistic_polynomial",
]


class MultilinearPolynomial:
    """A multilinear polynomial over Boolean indicator variables.

    Stored as a mapping ``monomial -> coefficient`` where a monomial is a
    frozenset of variable names (the empty frozenset is the constant term).
    Multiplication applies the idempotence rule ``x² = x`` by taking unions
    of monomials, which is exactly what makes the representation correct for
    Boolean indicators.
    """

    __slots__ = ("terms",)

    def __init__(self, terms: Optional[Mapping[FrozenSet[str], float]] = None) -> None:
        self.terms: Dict[FrozenSet[str], float] = {}
        if terms:
            for monomial, coefficient in terms.items():
                if coefficient != 0.0:
                    self.terms[frozenset(monomial)] = float(coefficient)

    # -- constructors ---------------------------------------------------- #
    @classmethod
    def constant(cls, value: float) -> "MultilinearPolynomial":
        """The constant polynomial ``value``."""
        return cls({frozenset(): value} if value else {})

    @classmethod
    def variable(cls, name: str) -> "MultilinearPolynomial":
        """The single-variable polynomial ``x_name``."""
        return cls({frozenset({name}): 1.0})

    # -- ring operations --------------------------------------------------- #
    def __add__(self, other: "MultilinearPolynomial") -> "MultilinearPolynomial":
        result = dict(self.terms)
        for monomial, coefficient in other.terms.items():
            result[monomial] = result.get(monomial, 0.0) + coefficient
        return MultilinearPolynomial(result)

    def __sub__(self, other: "MultilinearPolynomial") -> "MultilinearPolynomial":
        result = dict(self.terms)
        for monomial, coefficient in other.terms.items():
            result[monomial] = result.get(monomial, 0.0) - coefficient
        return MultilinearPolynomial(result)

    def __mul__(self, other: "MultilinearPolynomial") -> "MultilinearPolynomial":
        result: Dict[FrozenSet[str], float] = {}
        for left_monomial, left_coefficient in self.terms.items():
            for right_monomial, right_coefficient in other.terms.items():
                monomial = left_monomial | right_monomial  # idempotence: x² = x
                result[monomial] = (
                    result.get(monomial, 0.0) + left_coefficient * right_coefficient
                )
        return MultilinearPolynomial(result)

    def complement(self) -> "MultilinearPolynomial":
        """Return ``1 − self`` (the polynomial of the negated event)."""
        return MultilinearPolynomial.constant(1.0) - self

    # -- queries --------------------------------------------------------- #
    def evaluate(self, assignment: Mapping[str, float]) -> float:
        """Evaluate at an assignment of variable values (missing ⇒ 0)."""
        total = 0.0
        for monomial, coefficient in self.terms.items():
            product = coefficient
            for variable in monomial:
                product *= assignment.get(variable, 0.0)
                if product == 0.0:
                    break
            total += product
        return total

    def variables(self) -> FrozenSet[str]:
        """All variables appearing in the polynomial."""
        return frozenset(v for monomial in self.terms for v in monomial)

    def monomial_count(self) -> int:
        """Number of monomials (a size measure used in tests and reports)."""
        return len(self.terms)

    def __eq__(self, other: object) -> bool:
        if not isinstance(other, MultilinearPolynomial):
            return NotImplemented
        keys = set(self.terms) | set(other.terms)
        return all(
            abs(self.terms.get(k, 0.0) - other.terms.get(k, 0.0)) <= 1e-12 for k in keys
        )

    def __hash__(self) -> int:  # pragma: no cover - not used as dict key in hot paths
        return hash(frozenset((k, round(v, 12)) for k, v in self.terms.items()))

    def __repr__(self) -> str:
        if not self.terms:
            return "MultilinearPolynomial(0)"
        parts = []
        for monomial in sorted(self.terms, key=lambda m: (len(m), sorted(m))):
            coefficient = self.terms[monomial]
            if monomial:
                parts.append(f"{coefficient:g}·{'·'.join(sorted(monomial))}")
            else:
                parts.append(f"{coefficient:g}")
        return "MultilinearPolynomial(" + " + ".join(parts) + ")"


def reach_polynomials(
    tree: AttackTree, max_monomials: int = 200_000
) -> Dict[str, MultilinearPolynomial]:
    """Compute the reach polynomial of every node, bottom-up on the DAG.

    Parameters
    ----------
    tree:
        Any attack tree (treelike or DAG-like).
    max_monomials:
        Safety valve on the size of any intermediate polynomial; exceeding it
        raises ``ValueError`` (the representation is worst-case exponential).
    """
    polynomials: Dict[str, MultilinearPolynomial] = {}
    for name in tree.node_names:  # children before parents
        node = tree.node(name)
        if node.is_bas:
            polynomials[name] = MultilinearPolynomial.variable(name)
        elif node.type is NodeType.AND:
            product = MultilinearPolynomial.constant(1.0)
            for child in node.children:
                product = product * polynomials[child]
            polynomials[name] = product
        else:  # OR: 1 − Π (1 − child)
            failure = MultilinearPolynomial.constant(1.0)
            for child in node.children:
                failure = failure * polynomials[child].complement()
            polynomials[name] = failure.complement()
        if polynomials[name].monomial_count() > max_monomials:
            raise ValueError(
                f"reach polynomial of node {name!r} exceeds {max_monomials} monomials; "
                "the sharing structure of this DAG is too dense for the "
                "polynomial method"
            )
    return polynomials


def expected_damage_polynomial(
    cdpat: CostDamageProbAT,
    attack: Iterable[str],
    polynomials: Optional[Dict[str, MultilinearPolynomial]] = None,
) -> float:
    """Exact expected damage of an attack, via reach polynomials.

    Correct for arbitrary DAG-like cdp-ATs: each node's reach polynomial is
    evaluated at ``x_v = p(v)`` for attempted BASs and ``0`` otherwise, which
    yields ``PS(x, v)`` exactly because the polynomial is multilinear and the
    BAS successes are independent.
    """
    active = normalize_attack(cdpat, attack)
    if polynomials is None:
        polynomials = reach_polynomials(cdpat.tree)
    assignment = {bas: cdpat.probability[bas] for bas in active}
    total = 0.0
    for node in cdpat.tree.node_names:
        damage = cdpat.damage[node]
        if damage:
            total += damage * polynomials[node].evaluate(assignment)
    return total


def pareto_front_probabilistic_polynomial(
    cdpat: CostDamageProbAT, max_bas: int = 20
) -> ParetoFront:
    """Exact CEDPF for an arbitrary (DAG-like) cdp-AT via reach polynomials.

    Still enumerates the ``2^|B|`` attacks (the front itself can be that
    large, Theorem 5), but each attack is evaluated against the precomputed
    polynomials instead of enumerating its ``2^|x|`` actualizations, which is
    dramatically faster than :func:`repro.extensions.prob_dag.pareto_front_probabilistic_exact`
    on models with more than a dozen BASs.
    """
    bas_count = len(cdpat.tree.basic_attack_steps)
    if bas_count > max_bas:
        raise ValueError(
            f"CEDPF enumeration over 2^{bas_count} attacks exceeds the 2^{max_bas} limit"
        )
    polynomials = reach_polynomials(cdpat.tree)
    points = []
    for attack in all_attacks(cdpat):
        cost = attack_cost(cdpat, attack)
        damage = expected_damage_polynomial(cdpat, attack, polynomials)
        points.append(
            ParetoPoint(cost=cost, damage=damage, attack=attack,
                        reaches_root=cdpat.tree.is_successful(attack))
        )
    return ParetoFront(points)
