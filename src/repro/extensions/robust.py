"""Robust (interval-valued) cost-damage analysis.

The paper's conclusion notes that cost and damage values "may not be
precisely known, but carry some uncertainty", and suggests a robust version
of the cost-damage Pareto front as future work.  This extension implements a
simple but useful interval semantics:

* every BAS cost and every node damage is an interval ``[lo, hi]``;
* the **optimistic front** (from the defender's viewpoint) uses the highest
  costs and lowest damages — attacks look as unattractive as possible;
* the **pessimistic front** uses the lowest costs and highest damages —
  attacks look as attractive as possible;
* a point is **robustly Pareto-optimal** when it lies on the front for
  *every* realisation of the intervals; we report the practical sufficient
  check "optimal in both extreme scenarios", together with the band between
  the two extreme fronts.

This is a conservative envelope, not a full parametric analysis, and is
documented as an extension beyond the paper's claims.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import FrozenSet, Mapping, Optional, Tuple, Union

from ..attacktree.attributes import CostDamageAT
from ..attacktree.tree import AttackTree
from ..core.problems import Method, Problem, solve
from ..pareto.front import ParetoFront

__all__ = ["Interval", "IntervalCostDamageAT", "RobustFront", "robust_pareto_front"]


@dataclass(frozen=True)
class Interval:
    """A closed non-negative interval ``[lo, hi]``."""

    lo: float
    hi: float

    def __post_init__(self) -> None:
        if self.lo < 0 or self.hi < self.lo:
            raise ValueError(f"invalid interval [{self.lo}, {self.hi}]")

    @classmethod
    def exact(cls, value: float) -> "Interval":
        """A degenerate interval ``[value, value]``."""
        return cls(value, value)

    @property
    def width(self) -> float:
        """The interval's width ``hi − lo``."""
        return self.hi - self.lo


IntervalLike = Union[Interval, float, Tuple[float, float]]


def _as_interval(value: IntervalLike) -> Interval:
    if isinstance(value, Interval):
        return value
    if isinstance(value, tuple):
        return Interval(float(value[0]), float(value[1]))
    return Interval.exact(float(value))


@dataclass(frozen=True)
class IntervalCostDamageAT:
    """A cd-AT whose costs and damages are intervals.

    Costs cover the BASs; damages cover any subset of nodes (missing nodes
    default to the exact interval ``[0, 0]``).
    """

    tree: AttackTree
    cost: Mapping[str, Interval]
    damage: Mapping[str, Interval]

    def __init__(
        self,
        tree: AttackTree,
        cost: Mapping[str, IntervalLike],
        damage: Optional[Mapping[str, IntervalLike]] = None,
    ) -> None:
        object.__setattr__(self, "tree", tree)
        object.__setattr__(
            self, "cost", {name: _as_interval(value) for name, value in cost.items()}
        )
        object.__setattr__(
            self,
            "damage",
            {name: _as_interval(value) for name, value in (damage or {}).items()},
        )
        missing = set(tree.basic_attack_steps) - set(self.cost)
        if missing:
            raise ValueError(f"cost intervals missing for BASs: {sorted(missing)!r}")

    def scenario(self, *, attacker_favourable: bool) -> CostDamageAT:
        """Instantiate an extreme scenario.

        ``attacker_favourable=True`` uses the low costs and high damages
        (the pessimistic view for the defender); ``False`` the opposite.
        """
        if attacker_favourable:
            cost = {b: interval.lo for b, interval in self.cost.items()}
            damage = {n: interval.hi for n, interval in self.damage.items()}
        else:
            cost = {b: interval.hi for b, interval in self.cost.items()}
            damage = {n: interval.lo for n, interval in self.damage.items()}
        return CostDamageAT(self.tree, cost, damage)


@dataclass(frozen=True)
class RobustFront:
    """The two extreme Pareto fronts and the robustly optimal attacks."""

    pessimistic: ParetoFront
    optimistic: ParetoFront
    robust_attacks: FrozenSet[FrozenSet[str]]

    def damage_band(self, budget: float) -> Tuple[float, float]:
        """The [min, max] worst-case damage achievable within a budget.

        The lower end comes from the optimistic scenario, the upper end from
        the pessimistic one; the true value for any interval realisation lies
        in between (costs and damages are monotone in their parameters).
        """
        low = self.optimistic.max_damage_given_cost(budget) or 0.0
        high = self.pessimistic.max_damage_given_cost(budget) or 0.0
        return (low, high)


def robust_pareto_front(model: IntervalCostDamageAT) -> RobustFront:
    """Compute the extreme-scenario fronts and the robustly optimal attacks.

    An attack is reported as robust when its witness appears on the Pareto
    front of *both* extreme scenarios.  (This is a sufficient condition for
    being optimal in the two extremes; intermediate realisations interpolate
    between them for the monotone interval semantics used here.)
    """
    pessimistic_model = model.scenario(attacker_favourable=True)
    optimistic_model = model.scenario(attacker_favourable=False)
    pessimistic = solve(pessimistic_model, Problem.CDPF, Method.AUTO).front
    optimistic = solve(optimistic_model, Problem.CDPF, Method.AUTO).front

    pessimistic_attacks = {p.attack for p in pessimistic if p.attack is not None}
    optimistic_attacks = {p.attack for p in optimistic if p.attack is not None}
    robust = frozenset(pessimistic_attacks & optimistic_attacks)
    return RobustFront(pessimistic=pessimistic, optimistic=optimistic, robust_attacks=robust)
