"""NSGA-II-style genetic approximation of the cost-damage Pareto front.

The paper's conclusion lists comparing its exact methods against a genetic
multi-objective optimiser (NSGA-II [31]) as future work.  This extension
implements a compact NSGA-II over attack bit-vectors so that exactly this
comparison can be run (see ``benchmarks/test_bench_ablation_genetic.py``):

* individuals are attacks (subsets of the BASs);
* objectives are (cost, −damage) for cd-ATs or (cost, −expected damage) for
  treelike cdp-ATs;
* standard fast non-dominated sorting, crowding distance, binary tournament
  selection, uniform crossover and bit-flip mutation.

The result is an *approximation*: the benchmark measures how much of the
exact front's hypervolume it recovers and how long it takes, mirroring the
"performance gain vs accuracy cost" question raised in the paper.
"""

from __future__ import annotations

import random
from dataclasses import dataclass
from typing import Callable, Dict, FrozenSet, List, Optional, Sequence, Tuple, Union

from ..attacktree.attributes import CostDamageAT, CostDamageProbAT
from ..core.semantics import attack_cost, attack_damage
from ..pareto.front import ParetoFront, ParetoPoint
from ..probability.actualization import expected_damage

__all__ = ["GeneticConfig", "approximate_pareto_front"]


@dataclass(frozen=True)
class GeneticConfig:
    """Hyper-parameters of the NSGA-II approximation."""

    population_size: int = 64
    generations: int = 60
    crossover_probability: float = 0.9
    mutation_probability: float = 0.02
    seed: int = 7

    def __post_init__(self) -> None:
        if self.population_size < 4 or self.population_size % 2:
            raise ValueError("population_size must be an even number ≥ 4")
        if self.generations < 1:
            raise ValueError("generations must be positive")


Model = Union[CostDamageAT, CostDamageProbAT]


def _objectives(model: Model, probabilistic: bool) -> Callable[[FrozenSet[str]], Tuple[float, float]]:
    """Return a function mapping an attack to (cost, −damage)."""
    if probabilistic:
        if not isinstance(model, CostDamageProbAT):
            raise TypeError("probabilistic approximation needs a cdp-AT")

        def evaluate(attack: FrozenSet[str]) -> Tuple[float, float]:
            return attack_cost(model, attack), -expected_damage(model, attack)

        return evaluate

    deterministic = model.deterministic() if isinstance(model, CostDamageProbAT) else model

    def evaluate(attack: FrozenSet[str]) -> Tuple[float, float]:
        return attack_cost(deterministic, attack), -attack_damage(deterministic, attack)

    return evaluate


def _dominates(a: Tuple[float, float], b: Tuple[float, float]) -> bool:
    """Minimisation domination on (cost, −damage)."""
    return a[0] <= b[0] and a[1] <= b[1] and a != b


def _fast_non_dominated_sort(values: List[Tuple[float, float]]) -> List[List[int]]:
    """Return indices grouped into non-domination fronts (NSGA-II step 1)."""
    size = len(values)
    dominated_by: List[List[int]] = [[] for _ in range(size)]
    domination_count = [0] * size
    fronts: List[List[int]] = [[]]
    for i in range(size):
        for j in range(size):
            if i == j:
                continue
            if _dominates(values[i], values[j]):
                dominated_by[i].append(j)
            elif _dominates(values[j], values[i]):
                domination_count[i] += 1
        if domination_count[i] == 0:
            fronts[0].append(i)
    current = 0
    while fronts[current]:
        next_front: List[int] = []
        for i in fronts[current]:
            for j in dominated_by[i]:
                domination_count[j] -= 1
                if domination_count[j] == 0:
                    next_front.append(j)
        current += 1
        fronts.append(next_front)
    return [front for front in fronts if front]


def _crowding_distance(values: List[Tuple[float, float]], front: List[int]) -> Dict[int, float]:
    """Crowding distance of the individuals of one front (NSGA-II step 2)."""
    distance = {i: 0.0 for i in front}
    if len(front) <= 2:
        return {i: float("inf") for i in front}
    for objective in range(2):
        ordered = sorted(front, key=lambda i: values[i][objective])
        low = values[ordered[0]][objective]
        high = values[ordered[-1]][objective]
        distance[ordered[0]] = distance[ordered[-1]] = float("inf")
        span = high - low
        if span <= 0:
            continue
        for position in range(1, len(ordered) - 1):
            previous = values[ordered[position - 1]][objective]
            following = values[ordered[position + 1]][objective]
            distance[ordered[position]] += (following - previous) / span
    return distance


def approximate_pareto_front(
    model: Model,
    config: Optional[GeneticConfig] = None,
    probabilistic: bool = False,
) -> ParetoFront:
    """Approximate CDPF (or CEDPF) with NSGA-II.

    Returns a :class:`ParetoFront` built from the final population's
    non-dominated individuals; every point carries its witness attack, so the
    result can be compared directly against the exact solvers.
    """
    config = config or GeneticConfig()
    rng = random.Random(config.seed)
    bas = sorted(model.tree.basic_attack_steps)
    evaluate = _objectives(model, probabilistic)

    def random_individual() -> Tuple[bool, ...]:
        return tuple(rng.random() < 0.5 for _ in bas)

    def to_attack(individual: Sequence[bool]) -> FrozenSet[str]:
        return frozenset(name for name, active in zip(bas, individual) if active)

    population: List[Tuple[bool, ...]] = [random_individual() for _ in range(config.population_size)]
    # Seed the extremes: the empty attack and the full attack are always useful.
    population[0] = tuple(False for _ in bas)
    population[1] = tuple(True for _ in bas)

    def evaluate_population(pop: List[Tuple[bool, ...]]) -> List[Tuple[float, float]]:
        return [evaluate(to_attack(individual)) for individual in pop]

    def tournament(values: List[Tuple[float, float]], ranks: Dict[int, int],
                   crowding: Dict[int, float]) -> int:
        a, b = rng.randrange(len(values)), rng.randrange(len(values))
        if ranks[a] != ranks[b]:
            return a if ranks[a] < ranks[b] else b
        return a if crowding.get(a, 0.0) >= crowding.get(b, 0.0) else b

    def crossover(left: Tuple[bool, ...], right: Tuple[bool, ...]) -> Tuple[bool, ...]:
        if rng.random() > config.crossover_probability:
            return left
        return tuple(l if rng.random() < 0.5 else r for l, r in zip(left, right))

    def mutate(individual: Tuple[bool, ...]) -> Tuple[bool, ...]:
        return tuple(
            (not bit) if rng.random() < config.mutation_probability else bit
            for bit in individual
        )

    for _ in range(config.generations):
        values = evaluate_population(population)
        fronts = _fast_non_dominated_sort(values)
        ranks: Dict[int, int] = {}
        crowding: Dict[int, float] = {}
        for rank, front in enumerate(fronts):
            for index in front:
                ranks[index] = rank
            crowding.update(_crowding_distance(values, front))
        offspring: List[Tuple[bool, ...]] = []
        while len(offspring) < config.population_size:
            parent_a = population[tournament(values, ranks, crowding)]
            parent_b = population[tournament(values, ranks, crowding)]
            offspring.append(mutate(crossover(parent_a, parent_b)))
        # Elitist environmental selection over parents + offspring.
        combined = population + offspring
        combined_values = evaluate_population(combined)
        combined_fronts = _fast_non_dominated_sort(combined_values)
        next_population: List[Tuple[bool, ...]] = []
        for front in combined_fronts:
            if len(next_population) + len(front) <= config.population_size:
                next_population.extend(combined[i] for i in front)
                continue
            crowd = _crowding_distance(combined_values, front)
            chosen = sorted(front, key=lambda i: crowd[i], reverse=True)
            remaining = config.population_size - len(next_population)
            next_population.extend(combined[i] for i in chosen[:remaining])
            break
        population = next_population

    final_values = evaluate_population(population)
    points = []
    for individual, (cost, negated_damage) in zip(population, final_values):
        attack = to_attack(individual)
        points.append(
            ParetoPoint(cost=cost, damage=-negated_damage, attack=attack,
                        reaches_root=model.tree.is_successful(attack))
        )
    return ParetoFront(points)
