"""Extensions beyond the paper's claims.

These modules implement the directions the paper explicitly lists as future
work: probabilistic analysis of DAG-like ATs (via exact enumeration and
Monte-Carlo estimation), genetic approximation of the Pareto front
(NSGA-II), and robust analysis under interval-valued costs and damages.
They are clearly separated from :mod:`repro.core`, which only contains the
algorithms the paper proves correct.
"""

from .genetic import GeneticConfig, approximate_pareto_front
from .hardening import (
    Countermeasure,
    HardeningResult,
    apply_countermeasures,
    optimal_hardening,
)
from .polynomial import (
    MultilinearPolynomial,
    expected_damage_polynomial,
    pareto_front_probabilistic_polynomial,
    reach_polynomials,
)
from .prob_dag import (
    ApproximateFrontPoint,
    max_expected_damage_exact,
    pareto_front_probabilistic_exact,
    pareto_front_probabilistic_montecarlo,
)
from .robust import Interval, IntervalCostDamageAT, RobustFront, robust_pareto_front

__all__ = [
    "ApproximateFrontPoint",
    "Countermeasure",
    "GeneticConfig",
    "HardeningResult",
    "Interval",
    "MultilinearPolynomial",
    "apply_countermeasures",
    "expected_damage_polynomial",
    "optimal_hardening",
    "pareto_front_probabilistic_polynomial",
    "reach_polynomials",
    "IntervalCostDamageAT",
    "RobustFront",
    "approximate_pareto_front",
    "max_expected_damage_exact",
    "pareto_front_probabilistic_exact",
    "pareto_front_probabilistic_montecarlo",
    "robust_pareto_front",
]
