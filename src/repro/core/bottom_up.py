"""Bottom-up cost-damage analysis for treelike ATs (deterministic setting).

This module implements Section VI of the paper.  The key idea is to perform
Pareto analysis not on ``(cost, damage)`` pairs but in the extended
*deterministic attribute-triple domain*
``DTrip = R≥0 × R≥0 × B``: each partial attack on the sub-tree ``T_v`` is
summarised by ``(ĉ, d̂, S(x, v))``.  The third component records whether the
current node is reached; an attack that is more expensive but reaches the
node must be kept because it may unlock damage at ancestors (Example 4).

For every node ``v`` the algorithm computes the *incomplete Pareto front*
``C^D_U(v)`` by combining the fronts of the children (Equations (4)–(5)) and
discarding triples that exceed the cost budget ``U`` or are dominated in the
``(DTrip, ⊑)`` order.  Theorem 4 states that projecting ``C^D_∞(R_T)`` to
its first two components and minimising yields the CDPF; Theorem 3 reads the
DgC optimum off ``C^D_U(R_T)``.

The paper presents the recursion for binary trees "purely to simplify
notation"; here gates of any arity are folded child by child, which is
equivalent because the combination operators are associative and preserve
the DTrip order (Lemma 3), so intermediate pruning remains sound.

Kernel representation
---------------------
Internally the solver never builds per-candidate objects.  A node's front is
a pair of *quadrants* split on the reached bit — ``N`` (not reached) and
``R`` (reached) — each stored as three parallel lists ``(costs, damages,
masks)`` sorted so that costs and damages are strictly increasing (an exact
2-D Pareto staircase).  Witness attacks are integer bitsets over the node's
local BAS universe (child masks are shifted and OR-ed when folding a gate),
so combining two partial attacks is one integer OR instead of a frozenset
union.  Because the bit of ``R`` strictly beats the bit of ``N``, the DTrip
minimisation reduces to: staircase each quadrant, then drop ``N`` entries
weakly dominated by an ``R`` entry (a single merge scan).  Structurally
identical subtrees (same gate types, decorations and child order) are
detected by an interned fingerprint and computed once.  Masks are
materialised back to ``frozenset[str]`` — and the paper's ε-tolerant
``min_U`` is applied — only at the public API boundary, so exact internal
pruning keeps a superset of every ε-pruned front and remains sound.

When numpy is installed, ``accelerator="numpy"`` vectorises the gate-fold
inner loops (outer sums, budget filter and staircase); survivor masks are
still combined as Python integers, so results are bit-identical to the pure
Python path.
"""

from __future__ import annotations

import math
from dataclasses import dataclass
from typing import Dict, FrozenSet, List, Optional, Tuple

from ..attacktree.attributes import CostDamageAT
from ..attacktree.node import NodeType
from ..pareto.front import ParetoFront, ParetoPoint
from ..pareto.poset import EPSILON, pareto_minimal_pairs, pareto_minimal_triples

try:  # optional accelerator for the gate-fold inner loops
    import numpy as _np
except ImportError:  # pragma: no cover - exercised where numpy is absent
    _np = None

__all__ = [
    "AttributedAttack",
    "numpy_available",
    "node_pareto_front",
    "pareto_front_treelike",
    "max_damage_given_cost_treelike",
    "min_cost_given_damage_treelike",
]

#: Candidate batches smaller than this are folded in pure Python even when
#: the numpy accelerator is requested — below it, array setup costs more
#: than the loop it replaces.  Both paths produce identical survivors.
_NUMPY_CUTOFF = 64


def numpy_available() -> bool:
    """Whether the optional numpy fold accelerator can be used."""
    return _np is not None


@dataclass(frozen=True)
class AttributedAttack:
    """A partial attack on a sub-tree together with its DTrip attributes.

    Attributes
    ----------
    cost:
        ``ĉ_v(x)`` — cost of the partial attack.
    damage:
        ``d̂_v(x)`` — damage done inside the sub-tree.
    reached:
        ``S(x, v)`` — whether the sub-tree's root is reached.
    attack:
        Witness: the activated BASs of the partial attack.
    """

    cost: float
    damage: float
    reached: bool
    attack: FrozenSet[str]

    @property
    def triple(self) -> Tuple[float, float, float]:
        """The DTrip value ``(c, d, b)`` with the bit as 0.0/1.0."""
        return (self.cost, self.damage, 1.0 if self.reached else 0.0)


# A quadrant front: parallel (costs, damages, masks) lists forming an exact
# 2-D staircase — costs strictly increasing, damages strictly increasing.
_Front = Tuple[List[float], List[float], List[int]]

_EMPTY_FRONT: _Front = ([], [], [])


def _staircase(buffer: List[Tuple[float, float, int]]) -> _Front:
    """Exact 2-D Pareto staircase of ``(cost, damage, mask)`` candidates.

    Sorts by (cost asc, damage desc) — stable, so ties keep generation
    order — and keeps a candidate iff its damage strictly exceeds every
    cheaper-or-equal one.  The result has strictly increasing costs *and*
    damages.
    """
    buffer.sort(key=lambda entry: (entry[0], -entry[1]))
    costs: List[float] = []
    damages: List[float] = []
    masks: List[int] = []
    best = -math.inf
    for cost, damage, mask in buffer:
        if damage > best:
            costs.append(cost)
            damages.append(damage)
            masks.append(mask)
            best = damage
    return costs, damages, masks


def _combine_py(
    products: List[Tuple[_Front, _Front, int]], limit: float
) -> List[Tuple[float, float, int]]:
    """Cross-combine staircase fronts: costs/damages add, masks OR-merge.

    Right-hand costs ascend, so the inner loop stops at the first partner
    that would blow the budget (the paper's early ``min_U`` pruning).
    """
    buffer: List[Tuple[float, float, int]] = []
    append = buffer.append
    for (lc, ld, lm), (rc, rd, rm), shift in products:
        for i in range(len(lc)):
            ci = lc[i]
            di = ld[i]
            mi = lm[i]
            for j in range(len(rc)):
                cost = ci + rc[j]
                if cost > limit:
                    break
                append((cost, di + rd[j], mi | (rm[j] << shift)))
    return buffer


def _combine_np(products: List[Tuple[_Front, _Front, int]], limit: float) -> _Front:
    """Numpy fold: outer sums, budget filter and staircase, vectorised.

    Tie-breaking matches :func:`_combine_py` + :func:`_staircase` exactly:
    candidates are generated in the same (product-major, left-major) order
    and ``np.lexsort`` is stable, so the surviving masks are identical.
    """
    cost_parts = []
    damage_parts = []
    provenance = []  # (start, left_masks, right_masks, shift, right_len)
    start = 0
    for (lc, ld, lm), (rc, rd, rm), shift in products:
        if not lc or not rc:
            continue
        cost_block = _np.add.outer(
            _np.asarray(lc, dtype=_np.float64), _np.asarray(rc, dtype=_np.float64)
        ).ravel()
        damage_block = _np.add.outer(
            _np.asarray(ld, dtype=_np.float64), _np.asarray(rd, dtype=_np.float64)
        ).ravel()
        cost_parts.append(cost_block)
        damage_parts.append(damage_block)
        provenance.append((start, lm, rm, shift, len(rc)))
        start += cost_block.shape[0]
    if not cost_parts:
        return ([], [], [])
    costs = _np.concatenate(cost_parts)
    damages = _np.concatenate(damage_parts)
    if math.isfinite(limit):
        affordable = _np.nonzero(costs <= limit)[0]
        costs = costs[affordable]
        damages = damages[affordable]
    else:
        affordable = None
    if costs.shape[0] == 0:
        return ([], [], [])
    order = _np.lexsort((-damages, costs))
    ordered_damages = damages[order]
    keep = _np.empty(order.shape[0], dtype=bool)
    keep[0] = True
    keep[1:] = ordered_damages[1:] > _np.maximum.accumulate(ordered_damages)[:-1]
    survivors = order[keep]
    out_costs = costs[survivors].tolist()
    out_damages = damages[survivors].tolist()
    starts = [entry[0] for entry in provenance]
    out_masks: List[int] = []
    for position in survivors.tolist():
        flat = position if affordable is None else int(affordable[position])
        # Locate the product block this flat index came from.
        block = len(starts) - 1
        while starts[block] > flat:
            block -= 1
        begin, left_masks, right_masks, shift, right_len = provenance[block]
        i, j = divmod(flat - begin, right_len)
        out_masks.append(left_masks[i] | (right_masks[j] << shift))
    return out_costs, out_damages, out_masks


def _combine(
    products: List[Tuple[_Front, _Front, int]], limit: float, use_numpy: bool
) -> _Front:
    """Fold the given quadrant products into one staircase front."""
    if use_numpy:
        total = sum(
            len(left[0]) * len(right[0]) for left, right, _ in products
        )
        if total >= _NUMPY_CUTOFF:
            return _combine_np(products, limit)
    return _staircase(_combine_py(products, limit))


def _filter_not_reached(n_front: _Front, r_front: _Front) -> _Front:
    """Drop ``N`` entries weakly dominated by an ``R`` entry.

    The reached bit of ``R`` strictly beats ``N``'s, so weak (cost, damage)
    domination is already strict DTrip domination.  Both staircases ascend
    in cost and damage, so a single merge scan suffices.
    """
    rc, rd, _ = r_front
    nc, nd, nm = n_front
    if not rc or not nc:
        return n_front
    out_costs: List[float] = []
    out_damages: List[float] = []
    out_masks: List[int] = []
    last = -1  # index of the most damaging R entry with cost <= current N cost
    for i in range(len(nc)):
        cost = nc[i]
        while last + 1 < len(rc) and rc[last + 1] <= cost:
            last += 1
        if last >= 0 and rd[last] >= nd[i]:
            continue
        out_costs.append(cost)
        out_damages.append(nd[i])
        out_masks.append(nm[i])
    return out_costs, out_damages, out_masks


def _mask_to_attack(mask: int, names: Tuple[str, ...]) -> FrozenSet[str]:
    """Materialise a local bitset back to a frozenset of BAS names."""
    selected = []
    while mask:
        low = mask & -mask
        selected.append(names[low.bit_length() - 1])
        mask ^= low
    return frozenset(selected)


class _TripleKernel:
    """Reachability-tracking bottom-up fold over (N, R) quadrant fronts.

    One instance per solver call: the memo caches each structural
    fingerprint's computed quadrants, so decoration-identical subtrees
    (common in generated workloads) are folded once.  Memoised fronts are
    shared read-only; masks live in the subtree-local bit universe, so a hit
    is valid for every occurrence regardless of the actual BAS names.
    """

    def __init__(self, cdat: CostDamageAT, limit: float, use_numpy: bool) -> None:
        self.cdat = cdat
        self.limit = limit
        self.use_numpy = use_numpy
        self.fingerprints: Dict[object, int] = {}
        self.memo: Dict[int, Tuple[_Front, _Front, int]] = {}

    def _intern(self, key: object) -> int:
        return self.fingerprints.setdefault(key, len(self.fingerprints))

    def compute(self, target: str) -> Tuple[_Front, _Front, Tuple[str, ...]]:
        """Return ``(n_front, r_front, bas_names)`` for the target's subtree.

        Iterative post-order (reversed pre-order) so deep chains do not hit
        the interpreter recursion limit.
        """
        tree = self.cdat.tree
        order: List[str] = []
        stack = [target]
        while stack:
            name = stack.pop()
            order.append(name)
            stack.extend(tree.node(name).children)
        # name -> (n_front, r_front, bas_names, fingerprint id)
        done: Dict[str, Tuple[_Front, _Front, Tuple[str, ...], int]] = {}
        for name in reversed(order):
            node = tree.node(name)
            if node.is_bas:
                cost = self.cdat.cost[name]
                damage = self.cdat.damage[name]
                fingerprint = self._intern(("B", cost, damage))
                cached = self.memo.get(fingerprint)
                if cached is None:
                    if cost > self.limit:
                        cached = (([0.0], [0.0], [0]), _EMPTY_FRONT, 1)
                    else:
                        cached = (([0.0], [0.0], [0]), ([cost], [damage], [1]), 1)
                    self.memo[fingerprint] = cached
                done[name] = (cached[0], cached[1], (name,), fingerprint)
                continue
            child_results = [done[child] for child in node.children]
            names: Tuple[str, ...] = ()
            for _, _, child_names, _ in child_results:
                names += child_names
            gate_damage = self.cdat.damage[name]
            fingerprint = self._intern(
                (node.type.value, gate_damage, tuple(r[3] for r in child_results))
            )
            cached = self.memo.get(fingerprint)
            if cached is not None:
                done[name] = (cached[0], cached[1], names, fingerprint)
                continue
            n_front, r_front, _, _ = child_results[0]
            width = len(child_results[0][2])
            for child_n, child_r, child_names, _ in child_results[1:]:
                n_front, r_front = self._fold(
                    n_front, r_front, child_n, child_r, node.type, width
                )
                width += len(child_names)
            if gate_damage != 0.0 and r_front[0]:
                r_front = (
                    r_front[0],
                    [value + gate_damage for value in r_front[1]],
                    r_front[2],
                )
                n_front = _filter_not_reached(n_front, r_front)
            self.memo[fingerprint] = (n_front, r_front, len(names))
            done[name] = (n_front, r_front, names, fingerprint)
        n_front, r_front, names, _ = done[target]
        return n_front, r_front, names

    def _fold(
        self,
        acc_n: _Front,
        acc_r: _Front,
        child_n: _Front,
        child_r: _Front,
        gate_type: NodeType,
        shift: int,
    ) -> Tuple[_Front, _Front]:
        """Fold one child into the running combination (Equations (4)–(5))."""
        if gate_type is NodeType.AND:
            r_products = [(acc_r, child_r, shift)]
            n_products = [
                (acc_n, child_n, shift),
                (acc_r, child_n, shift),
                (acc_n, child_r, shift),
            ]
        else:
            r_products = [
                (acc_r, child_r, shift),
                (acc_r, child_n, shift),
                (acc_n, child_r, shift),
            ]
            n_products = [(acc_n, child_n, shift)]
        r_front = _combine(r_products, self.limit, self.use_numpy)
        n_front = _combine(n_products, self.limit, self.use_numpy)
        return _filter_not_reached(n_front, r_front), r_front


class _PairKernel:
    """The ablation kernel: 2-D pruning that ignores the reached bit.

    This reproduces the *incorrect* naive propagation the paper warns about
    (Example 4) and is exposed only for the ablation study.  Each node's
    front is a single staircase of ``(cost, damage, reached, mask)`` rows;
    the reached flag rides along (it decides gate-damage application) but
    takes no part in domination.
    """

    def __init__(self, cdat: CostDamageAT, limit: float) -> None:
        self.cdat = cdat
        self.limit = limit
        self.fingerprints: Dict[object, int] = {}
        self.memo: Dict[int, Tuple[list, int]] = {}

    def _intern(self, key: object) -> int:
        return self.fingerprints.setdefault(key, len(self.fingerprints))

    @staticmethod
    def _staircase(buffer: list) -> list:
        buffer.sort(key=lambda entry: (entry[0], -entry[1]))
        kept = []
        best = -math.inf
        for entry in buffer:
            if entry[1] > best:
                kept.append(entry)
                best = entry[1]
        return kept

    def compute(self, target: str) -> Tuple[list, Tuple[str, ...]]:
        tree = self.cdat.tree
        order: List[str] = []
        stack = [target]
        while stack:
            name = stack.pop()
            order.append(name)
            stack.extend(tree.node(name).children)
        done: Dict[str, Tuple[list, Tuple[str, ...], int]] = {}
        for name in reversed(order):
            node = tree.node(name)
            if node.is_bas:
                cost = self.cdat.cost[name]
                damage = self.cdat.damage[name]
                fingerprint = self._intern(("B", cost, damage))
                cached = self.memo.get(fingerprint)
                if cached is None:
                    front = [(0.0, 0.0, False, 0)]
                    if cost <= self.limit:
                        front = self._staircase(front + [(cost, damage, True, 1)])
                    cached = (front, 1)
                    self.memo[fingerprint] = cached
                done[name] = (cached[0], (name,), fingerprint)
                continue
            child_results = [done[child] for child in node.children]
            names: Tuple[str, ...] = ()
            for _, child_names, _ in child_results:
                names += child_names
            gate_damage = self.cdat.damage[name]
            fingerprint = self._intern(
                (node.type.value, gate_damage, tuple(r[2] for r in child_results))
            )
            cached = self.memo.get(fingerprint)
            if cached is not None:
                done[name] = (cached[0], names, fingerprint)
                continue
            conjunctive = node.type is NodeType.AND
            front = child_results[0][0]
            width = len(child_results[0][1])
            for child_front, child_names, _ in child_results[1:]:
                buffer = []
                for lc, ld, lr, lmask in front:
                    for rc, rd, rr, rmask in child_front:
                        cost = lc + rc
                        if cost > self.limit:
                            break
                        reached = (lr and rr) if conjunctive else (lr or rr)
                        buffer.append(
                            (cost, ld + rd, reached, lmask | (rmask << width))
                        )
                front = self._staircase(buffer)
                width += len(child_names)
            if gate_damage != 0.0:
                front = self._staircase(
                    [
                        (cost, damage + gate_damage if reached else damage, reached, mask)
                        for cost, damage, reached, mask in front
                    ]
                )
            self.memo[fingerprint] = (front, len(names))
            done[name] = (front, names, fingerprint)
        front, names, _ = done[target]
        return front, names


def node_pareto_front(
    cdat: CostDamageAT,
    node: Optional[str] = None,
    budget: float = math.inf,
    track_reachability: bool = True,
    accelerator: Optional[str] = None,
) -> List[AttributedAttack]:
    """Compute the incomplete Pareto front ``C^D_U(v)`` of a node.

    Parameters
    ----------
    cdat:
        A treelike cd-AT.
    node:
        The node whose front to return; defaults to the root.
    budget:
        The cost budget ``U``; ``inf`` for the unconstrained CDPF case.
    track_reachability:
        Keep the third (reached) dimension in the Pareto order, as the paper
        requires.  Setting this to ``False`` reproduces the naive two
        dimensional propagation that loses optimal attacks (ablation only).
    accelerator:
        ``None`` for the pure-Python fold, ``"numpy"`` to vectorise the
        gate-fold inner loops (requires numpy; results are identical).
        Ignored by the ablation (``track_reachability=False``) path.

    Returns
    -------
    list of :class:`AttributedAttack`
        The non-dominated attribute triples (with witness attacks) for the
        requested node.

    Raises
    ------
    ValueError
        If the underlying tree is DAG-like — shared subtrees would be double
        counted by this recursion (Section VII); use the BILP solver instead.
    """
    tree = cdat.tree
    if not tree.is_treelike:
        raise ValueError(
            "the bottom-up method requires a treelike AT; "
            "use repro.core.bilp for DAG-like ATs (Theorem 6)"
        )
    if budget < 0:
        raise ValueError("the cost budget must be non-negative")
    if accelerator not in (None, "numpy"):
        raise ValueError(f"unknown accelerator {accelerator!r}; use None or 'numpy'")
    if accelerator == "numpy" and _np is None:
        raise ValueError("accelerator 'numpy' requested but numpy is not installed")
    target = node if node is not None else tree.root
    if target not in tree.nodes:
        raise KeyError(f"no node named {target!r} in this attack tree")

    limit = budget + EPSILON
    if track_reachability:
        kernel = _TripleKernel(cdat, limit, accelerator == "numpy")
        n_front, r_front, names = kernel.compute(target)
        items = [
            AttributedAttack(
                cost=cost, damage=damage, reached=False,
                attack=_mask_to_attack(mask, names),
            )
            for cost, damage, mask in zip(*n_front)
        ]
        items += [
            AttributedAttack(
                cost=cost, damage=damage, reached=True,
                attack=_mask_to_attack(mask, names),
            )
            for cost, damage, mask in zip(*r_front)
        ]
        # The paper's ε-tolerant min_U is applied once, at the boundary.
        return pareto_minimal_triples(items, key=lambda item: item.triple)

    pair_kernel = _PairKernel(cdat, limit)
    front, names = pair_kernel.compute(target)
    items = [
        AttributedAttack(
            cost=cost, damage=damage, reached=reached,
            attack=_mask_to_attack(mask, names),
        )
        for cost, damage, reached, mask in front
    ]
    return pareto_minimal_pairs(items, key=lambda item: (item.cost, item.damage))


def pareto_front_treelike(
    cdat: CostDamageAT,
    budget: float = math.inf,
    track_reachability: bool = True,
    accelerator: Optional[str] = None,
) -> ParetoFront:
    """Solve CDPF for a treelike cd-AT bottom-up (Theorem 4).

    The incomplete front at the root is projected onto ``(cost, damage)``
    and minimised.  With a finite ``budget`` this instead yields the Pareto
    front restricted to affordable attacks, from which DgC can be read off
    (Theorem 3).
    """
    root_front = node_pareto_front(
        cdat,
        cdat.tree.root,
        budget=budget,
        track_reachability=track_reachability,
        accelerator=accelerator,
    )
    points = [
        ParetoPoint(cost=item.cost, damage=item.damage, attack=item.attack,
                    reaches_root=item.reached)
        for item in root_front
    ]
    return ParetoFront(points)


def max_damage_given_cost_treelike(
    cdat: CostDamageAT, budget: float, accelerator: Optional[str] = None
) -> Tuple[float, Optional[FrozenSet[str]]]:
    """Solve DgC for a treelike cd-AT (Theorem 3).

    Propagates the budget ``U`` through the bottom-up recursion so that
    partial attacks exceeding the budget are discarded early, then returns
    the most damaging affordable triple at the root.  Damage ties are broken
    towards the least cost, then the fewest activated BASs, so the witness
    is never needlessly expensive.
    """
    if budget < 0:
        return 0.0, None
    root_front = node_pareto_front(
        cdat, cdat.tree.root, budget=budget, accelerator=accelerator
    )
    best = max(
        root_front,
        key=lambda item: (item.damage, -item.cost, -len(item.attack)),
    )
    return best.damage, best.attack


def min_cost_given_damage_treelike(
    cdat: CostDamageAT, threshold: float, accelerator: Optional[str] = None
) -> Tuple[Optional[float], Optional[FrozenSet[str]]]:
    """Solve CgD for a treelike cd-AT.

    As the paper notes (Section VI.B), the damage threshold cannot be used
    to prune partial attacks — an attack below the threshold at ``v`` may
    still exceed it at an ancestor — so the full Pareto front is computed
    and the answer read off via Equation (2).
    """
    front = pareto_front_treelike(cdat, accelerator=accelerator)
    point = front.cheapest_attack_given_damage(threshold)
    if point is None:
        return None, None
    return point.cost, point.attack
