"""Bottom-up cost-damage analysis for treelike ATs (deterministic setting).

This module implements Section VI of the paper.  The key idea is to perform
Pareto analysis not on ``(cost, damage)`` pairs but in the extended
*deterministic attribute-triple domain*
``DTrip = R≥0 × R≥0 × B``: each partial attack on the sub-tree ``T_v`` is
summarised by ``(ĉ, d̂, S(x, v))``.  The third component records whether the
current node is reached; an attack that is more expensive but reaches the
node must be kept because it may unlock damage at ancestors (Example 4).

For every node ``v`` the algorithm computes the *incomplete Pareto front*
``C^D_U(v)`` by combining the fronts of the children (Equations (4)–(5)) and
discarding triples that exceed the cost budget ``U`` or are dominated in the
``(DTrip, ⊑)`` order.  Theorem 4 states that projecting ``C^D_∞(R_T)`` to
its first two components and minimising yields the CDPF; Theorem 3 reads the
DgC optimum off ``C^D_U(R_T)``.

The paper presents the recursion for binary trees "purely to simplify
notation"; here gates of any arity are folded child by child, which is
equivalent because the combination operators are associative and preserve
the DTrip order (Lemma 3), so intermediate pruning remains sound.
"""

from __future__ import annotations

import math
from dataclasses import dataclass
from typing import Dict, FrozenSet, Iterable, List, Optional, Tuple

from ..attacktree.attributes import CostDamageAT
from ..attacktree.node import NodeType
from ..attacktree.tree import AttackTree
from ..pareto.front import ParetoFront, ParetoPoint
from ..pareto.poset import EPSILON, pareto_minimal_pairs, pareto_minimal_triples

__all__ = [
    "AttributedAttack",
    "node_pareto_front",
    "pareto_front_treelike",
    "max_damage_given_cost_treelike",
    "min_cost_given_damage_treelike",
]


@dataclass(frozen=True)
class AttributedAttack:
    """A partial attack on a sub-tree together with its DTrip attributes.

    Attributes
    ----------
    cost:
        ``ĉ_v(x)`` — cost of the partial attack.
    damage:
        ``d̂_v(x)`` — damage done inside the sub-tree.
    reached:
        ``S(x, v)`` — whether the sub-tree's root is reached.
    attack:
        Witness: the activated BASs of the partial attack.
    """

    cost: float
    damage: float
    reached: bool
    attack: FrozenSet[str]

    @property
    def triple(self) -> Tuple[float, float, float]:
        """The DTrip value ``(c, d, b)`` with the bit as 0.0/1.0."""
        return (self.cost, self.damage, 1.0 if self.reached else 0.0)


def _prune(
    candidates: Iterable[AttributedAttack],
    budget: float,
    track_reachability: bool,
) -> List[AttributedAttack]:
    """The paper's ``min_U``: budget filter plus Pareto filter on DTrip.

    ``track_reachability=False`` drops the third dimension from the order —
    this reproduces the *incorrect* naive propagation that the paper warns
    about (Example 4) and is exposed only for the ablation study.
    """
    affordable = [c for c in candidates if c.cost <= budget + EPSILON]
    if track_reachability:
        return pareto_minimal_triples(affordable, key=lambda a: a.triple)
    return pareto_minimal_pairs(affordable, key=lambda a: (a.cost, a.damage))


def _bas_front(
    cdat: CostDamageAT, name: str, budget: float
) -> List[AttributedAttack]:
    """``C^D_U`` at a BAS: not attacking, and attacking if affordable."""
    idle = AttributedAttack(cost=0.0, damage=0.0, reached=False, attack=frozenset())
    cost = cdat.cost[name]
    if cost > budget + EPSILON:
        return [idle]
    active = AttributedAttack(
        cost=cost, damage=cdat.damage[name], reached=True, attack=frozenset({name})
    )
    return [idle, active]


def _combine_gate(
    accumulated: List[AttributedAttack],
    child_front: List[AttributedAttack],
    gate_type: NodeType,
    budget: float,
    track_reachability: bool,
) -> List[AttributedAttack]:
    """Fold one more child into the running combination for a gate.

    The damage contribution ``d(v)`` of the gate itself is *not* added here;
    it is applied once after all children have been folded (see
    :func:`node_pareto_front`), which keeps the fold associative.
    """
    combined: List[AttributedAttack] = []
    for left in accumulated:
        for right in child_front:
            if gate_type is NodeType.AND:
                reached = left.reached and right.reached
            else:
                reached = left.reached or right.reached
            combined.append(
                AttributedAttack(
                    cost=left.cost + right.cost,
                    damage=left.damage + right.damage,
                    reached=reached,
                    attack=left.attack | right.attack,
                )
            )
    return _prune(combined, budget, track_reachability)


def node_pareto_front(
    cdat: CostDamageAT,
    node: Optional[str] = None,
    budget: float = math.inf,
    track_reachability: bool = True,
) -> List[AttributedAttack]:
    """Compute the incomplete Pareto front ``C^D_U(v)`` for every node.

    Parameters
    ----------
    cdat:
        A treelike cd-AT.
    node:
        The node whose front to return; defaults to the root.
    budget:
        The cost budget ``U``; ``inf`` for the unconstrained CDPF case.
    track_reachability:
        Keep the third (reached) dimension in the Pareto order, as the paper
        requires.  Setting this to ``False`` reproduces the naive two
        dimensional propagation that loses optimal attacks (ablation only).

    Returns
    -------
    list of :class:`AttributedAttack`
        The non-dominated attribute triples (with witness attacks) for the
        requested node.

    Raises
    ------
    ValueError
        If the underlying tree is DAG-like — shared subtrees would be double
        counted by this recursion (Section VII); use the BILP solver instead.
    """
    tree = cdat.tree
    if not tree.is_treelike:
        raise ValueError(
            "the bottom-up method requires a treelike AT; "
            "use repro.core.bilp for DAG-like ATs (Theorem 6)"
        )
    if budget < 0:
        raise ValueError("the cost budget must be non-negative")
    target = node if node is not None else tree.root
    if target not in tree.nodes:
        raise KeyError(f"no node named {target!r} in this attack tree")

    fronts: Dict[str, List[AttributedAttack]] = {}
    for name in tree.node_names:  # children before parents
        current = tree.node(name)
        if current.is_bas:
            fronts[name] = _bas_front(cdat, name, budget)
            continue
        accumulated = fronts[current.children[0]]
        for child in current.children[1:]:
            accumulated = _combine_gate(
                accumulated, fronts[child], current.type, budget, track_reachability
            )
        if len(current.children) == 1:
            # A unary gate behaves as the identity on its child's front.
            accumulated = list(accumulated)
        gate_damage = cdat.damage[name]
        with_gate_damage = [
            AttributedAttack(
                cost=item.cost,
                damage=item.damage + (gate_damage if item.reached else 0.0),
                reached=item.reached,
                attack=item.attack,
            )
            for item in accumulated
        ]
        fronts[name] = _prune(with_gate_damage, budget, track_reachability)

    return fronts[target]


def pareto_front_treelike(
    cdat: CostDamageAT,
    budget: float = math.inf,
    track_reachability: bool = True,
) -> ParetoFront:
    """Solve CDPF for a treelike cd-AT bottom-up (Theorem 4).

    The incomplete front at the root is projected onto ``(cost, damage)``
    and minimised.  With a finite ``budget`` this instead yields the Pareto
    front restricted to affordable attacks, from which DgC can be read off
    (Theorem 3).
    """
    root_front = node_pareto_front(
        cdat, cdat.tree.root, budget=budget, track_reachability=track_reachability
    )
    points = [
        ParetoPoint(cost=item.cost, damage=item.damage, attack=item.attack,
                    reaches_root=item.reached)
        for item in root_front
    ]
    return ParetoFront(points)


def max_damage_given_cost_treelike(
    cdat: CostDamageAT, budget: float
) -> Tuple[float, Optional[FrozenSet[str]]]:
    """Solve DgC for a treelike cd-AT (Theorem 3).

    Propagates the budget ``U`` through the bottom-up recursion so that
    partial attacks exceeding the budget are discarded early, then returns
    the most damaging affordable triple at the root.
    """
    if budget < 0:
        return 0.0, None
    root_front = node_pareto_front(cdat, cdat.tree.root, budget=budget)
    best = max(root_front, key=lambda item: item.damage)
    return best.damage, best.attack


def min_cost_given_damage_treelike(
    cdat: CostDamageAT, threshold: float
) -> Tuple[Optional[float], Optional[FrozenSet[str]]]:
    """Solve CgD for a treelike cd-AT.

    As the paper notes (Section VI.B), the damage threshold cannot be used
    to prune partial attacks — an attack below the threshold at ``v`` may
    still exceed it at an ancestor — so the full Pareto front is computed
    and the answer read off via Equation (2).
    """
    front = pareto_front_treelike(cdat)
    point = front.cheapest_attack_given_damage(threshold)
    if point is None:
        return None, None
    return point.cost, point.attack
