"""High-level analyzer facade.

:class:`CostDamageAnalyzer` is the question-oriented entry point of the
library: wrap a cd-AT or cdp-AT once, then ask security questions in domain
terms — "what is the worst damage an attacker with budget 10 can do?",
"which attacks are Pareto-optimal?", "which BASs appear in every optimal
attack?" — without having to pick an algorithm.  Since the engine redesign
it is a thin veneer over :class:`repro.engine.AnalysisSession`: algorithm
selection is delegated to the engine's capability registry (Table I of the
paper) and every result is cached by the session, keyed on the model
fingerprint and the exact request.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import FrozenSet, List, NamedTuple, Optional, Union

from ..attacktree.attributes import CostDamageAT, CostDamageProbAT
from ..engine.requests import AnalysisRequest
from ..engine.session import AnalysisSession
from ..pareto.front import ParetoFront
from .problems import (
    _METHOD_TO_BACKEND,
    _to_solve_result,
    Method,
    Problem,
    SolveResult,
)

__all__ = ["CostDamageAnalyzer", "CriticalBasReport", "BudgetDamagePoint"]


@dataclass(frozen=True)
class CriticalBasReport:
    """Which BASs matter most according to the Pareto front.

    Attributes
    ----------
    in_every_optimal_attack:
        BASs contained in every nonzero Pareto-optimal attack — the paper's
        case studies use this to prioritise defenses (e.g. ``b18`` internal
        leakage in the panda AT, Section X.A).
    in_some_optimal_attack:
        BASs appearing in at least one Pareto-optimal attack.
    unused:
        BASs appearing in no Pareto-optimal attack.
    """

    in_every_optimal_attack: FrozenSet[str]
    in_some_optimal_attack: FrozenSet[str]
    unused: FrozenSet[str]


class BudgetDamagePoint(NamedTuple):
    """One sample of the "max damage vs budget" curve (Eq. (1)).

    ``damage`` is ``None`` — and ``reachable`` is ``False`` — when no point
    of the front is affordable at this budget.  Earlier versions silently
    coerced that case to damage ``0.0``, conflating "the attacker can do
    nothing" with "the attacker's best option does no damage"; the
    distinction now surfaces explicitly.
    """

    budget: float
    damage: Optional[float]
    reachable: bool


class CostDamageAnalyzer:
    """Uniform, cached access to every cost-damage analysis of one model.

    Parameters
    ----------
    model:
        The decorated attack tree.  A plain cd-AT only supports the
        deterministic problems; a cdp-AT supports all six.
    method:
        Default solution method (``Method.AUTO`` lets the engine registry
        follow Table I).

    The heavy lifting — backend resolution, result caching, metadata — is
    done by the underlying :class:`repro.engine.AnalysisSession`, available
    as :attr:`session` for callers that want batches or structured results.
    """

    def __init__(self, model: Union[CostDamageAT, CostDamageProbAT],
                 method: Method = Method.AUTO) -> None:
        self.model = model
        self.method = method
        self.session = AnalysisSession(model)

    def _backend(self, method: Optional[Method]) -> Optional[str]:
        chosen = method or self.method
        return _METHOD_TO_BACKEND.get(chosen)

    def _solve_cached(
        self,
        problem: Problem,
        method: Optional[Method],
        budget: Optional[float] = None,
        threshold: Optional[float] = None,
    ) -> SolveResult:
        """Run one single-objective problem through the cached session."""
        result = self.session.run(
            AnalysisRequest(
                problem,
                budget=budget,
                threshold=threshold,
                backend=self._backend(method),
            )
        )
        return _to_solve_result(problem, result)

    # ------------------------------------------------------------------ #
    # model facts
    # ------------------------------------------------------------------ #
    @property
    def is_treelike(self) -> bool:
        """Whether the underlying AT is treelike."""
        return self.model.tree.is_treelike

    @property
    def is_probabilistic(self) -> bool:
        """Whether the model carries success probabilities."""
        return isinstance(self.model, CostDamageProbAT)

    def describe(self) -> str:
        """A one-paragraph summary of the model and applicable algorithms."""
        tree = self.model.tree
        shape = "treelike" if tree.is_treelike else "DAG-like"
        setting = "probabilistic (cdp-AT)" if self.is_probabilistic else "deterministic (cd-AT)"
        if tree.is_treelike:
            algorithm = "bottom-up Pareto propagation (Theorems 4 and 9)"
        elif self.is_probabilistic:
            algorithm = (
                "BILP for the deterministic projection (Theorem 6); the "
                "probabilistic DAG case is the paper's open problem"
            )
        else:
            algorithm = "bi-objective integer linear programming (Theorem 6)"
        return (
            f"{setting} attack tree with {len(tree)} nodes "
            f"({len(tree.basic_attack_steps)} BASs), {shape}; "
            f"applicable exact method: {algorithm}."
        )

    # ------------------------------------------------------------------ #
    # deterministic analyses
    # ------------------------------------------------------------------ #
    def pareto_front(self, method: Optional[Method] = None) -> ParetoFront:
        """The cost-damage Pareto front (problem CDPF)."""
        return self.session.pareto_front(backend=self._backend(method)).front

    def max_damage(self, budget: float, method: Optional[Method] = None) -> SolveResult:
        """Problem DgC: the most damaging attack within a cost budget."""
        return self._solve_cached(Problem.DGC, method, budget=budget)

    def min_cost(self, threshold: float, method: Optional[Method] = None) -> SolveResult:
        """Problem CgD: the cheapest attack reaching a damage threshold."""
        return self._solve_cached(Problem.CGD, method, threshold=threshold)

    # ------------------------------------------------------------------ #
    # probabilistic analyses
    # ------------------------------------------------------------------ #
    def expected_pareto_front(self, method: Optional[Method] = None) -> ParetoFront:
        """The cost-expected-damage Pareto front (problem CEDPF)."""
        return self.session.expected_pareto_front(backend=self._backend(method)).front

    def max_expected_damage(
        self, budget: float, method: Optional[Method] = None
    ) -> SolveResult:
        """Problem EDgC: the attack maximising expected damage within budget."""
        return self._solve_cached(Problem.EDGC, method, budget=budget)

    def min_cost_expected(
        self, threshold: float, method: Optional[Method] = None
    ) -> SolveResult:
        """Problem CgED: the cheapest attack with expected damage ≥ threshold."""
        return self._solve_cached(Problem.CGED, method, threshold=threshold)

    # ------------------------------------------------------------------ #
    # derived security insights
    # ------------------------------------------------------------------ #
    def critical_basic_attack_steps(
        self, probabilistic: bool = False
    ) -> CriticalBasReport:
        """Classify BASs by their participation in Pareto-optimal attacks.

        The paper's case-study discussion (Section X.A–B) reads defence
        priorities off exactly this classification.
        """
        front = self.expected_pareto_front() if probabilistic else self.pareto_front()
        optimal_attacks = [
            p.attack for p in front if p.attack is not None and len(p.attack) > 0
        ]
        all_bas = self.model.tree.basic_attack_steps
        if not optimal_attacks:
            return CriticalBasReport(frozenset(), frozenset(), all_bas)
        in_every = frozenset.intersection(*optimal_attacks)
        in_some = frozenset.union(*optimal_attacks)
        return CriticalBasReport(
            in_every_optimal_attack=in_every,
            in_some_optimal_attack=in_some,
            unused=all_bas - in_some,
        )

    def damage_budget_curve(
        self, budgets: List[float], probabilistic: bool = False
    ) -> List[BudgetDamagePoint]:
        """Evaluate "max damage vs budget" at the given budgets via Eq. (1).

        Budgets at which the front has no affordable point yield a
        :class:`BudgetDamagePoint` with ``damage=None`` and
        ``reachable=False`` instead of a misleading ``0.0``.
        """
        front = self.expected_pareto_front() if probabilistic else self.pareto_front()
        curve = []
        for budget in budgets:
            damage = front.max_damage_given_cost(budget)
            curve.append(
                BudgetDamagePoint(
                    budget=budget, damage=damage, reachable=damage is not None
                )
            )
        return curve

    def report(self, probabilistic: bool = False) -> str:
        """A plain-text report: model summary, Pareto table, critical BASs."""
        front = self.expected_pareto_front() if probabilistic else self.pareto_front()
        critical = self.critical_basic_attack_steps(probabilistic=probabilistic)
        lines = [self.describe(), "", "Pareto front:", front.table(), ""]
        lines.append(
            "BASs in every optimal attack: "
            + (", ".join(sorted(critical.in_every_optimal_attack)) or "(none)")
        )
        lines.append(
            "BASs in no optimal attack:    "
            + (", ".join(sorted(critical.unused)) or "(none)")
        )
        return "\n".join(lines)
