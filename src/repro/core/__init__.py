"""Core cost-damage algorithms: the paper's primary contribution.

Submodules
----------
``semantics``
    Attacks, structure function, cost and damage evaluation (Definitions 2–4).
``enumerative``
    The naive exhaustive baseline used for comparison and as a test oracle.
``bottom_up`` / ``bottom_up_prob``
    Bottom-up Pareto propagation for treelike ATs — deterministic
    (Theorems 3–4) and probabilistic (Theorems 8–9).
``bilp``
    The integer-linear-programming translation for DAG-like ATs
    (Theorems 6–7).
``knapsack``
    The NP-completeness and expressivity constructions of Section V.
``problems`` / ``analysis``
    Problem taxonomy, uniform dispatch, and the high-level analyzer facade.
"""

from .analysis import BudgetDamagePoint, CostDamageAnalyzer, CriticalBasReport
from .problems import Method, Problem, SolveResult, capability_matrix, solve
from .semantics import (
    Attack,
    all_attacks,
    attack_cost,
    attack_damage,
    evaluate_attack,
    normalize_attack,
)

__all__ = [
    "Attack",
    "BudgetDamagePoint",
    "CostDamageAnalyzer",
    "CriticalBasReport",
    "Method",
    "Problem",
    "SolveResult",
    "all_attacks",
    "attack_cost",
    "attack_damage",
    "capability_matrix",
    "evaluate_attack",
    "normalize_attack",
    "solve",
]
