"""Cost-damage analysis of DAG-like ATs via (bi-objective) integer programming.

This module implements Section VII of the paper.  The bottom-up recursion is
unsound on DAG-like ATs — a shared subtree would have its cost and damage
counted once per parent — so instead the problems are translated into
integer linear programs over one binary variable ``y_v`` per node:

* ``y_v`` is intended to represent ``S(x, v)``, the structure function of
  the attack ``x = y|_B``;
* the objectives are linear in ``y``: cost ``Σ_{v∈B} c(v)·y_v`` and damage
  ``Σ_{v∈N} d(v)·y_v`` (this is the paper's key observation — damage is a
  nonlinear function of the *attack* but a linear function of the
  *structure function*);
* the constraints only force ``y_v ≤ S(x, v)``:
  for an AND gate ``y_v ≤ y_w`` for every child ``w``, for an OR gate
  ``y_v ≤ Σ_w y_w``.  Forcing equality is unnecessary because setting
  ``y_v = S(x, v)`` never decreases damage and never increases cost, so some
  optimal solution always satisfies it (Theorem 6's proof).

Theorem 6 solves CDPF by handing the two objectives to a bi-objective ILP
solver; Theorem 7 obtains DgC and CgD directly as single-objective ILPs with
the budget/threshold as an extra linear constraint.
"""

from __future__ import annotations

from typing import FrozenSet, Optional, Tuple

from ..attacktree.attributes import CostDamageAT
from ..attacktree.node import NodeType
from ..milp.biobjective import EpsilonConstraintSolver
from ..milp.highs import default_solver
from ..milp.model import (
    ConstraintSense,
    IntegerProgram,
    LinearExpression,
    Objective,
    ObjectiveSense,
)
from ..milp.solution import MilpSolution, SolveStatus
from ..pareto.front import ParetoFront, ParetoPoint
from .semantics import evaluate_attack

__all__ = [
    "build_structure_program",
    "cost_objective",
    "damage_objective",
    "pareto_front_bilp",
    "max_damage_given_cost_bilp",
    "min_cost_given_damage_bilp",
]

_VARIABLE_PREFIX = "y:"


def _variable(node: str) -> str:
    """Name of the binary variable representing ``S(x, v)`` for node ``v``."""
    return _VARIABLE_PREFIX + node


def build_structure_program(cdat: CostDamageAT, name: str = "cost-damage") -> IntegerProgram:
    """Build the constraint system of Theorem 6 (no objectives attached).

    One binary variable per node; AND gates contribute ``y_v ≤ y_w`` per
    child, OR gates contribute ``y_v ≤ Σ_w y_w``.
    """
    tree = cdat.tree
    program = IntegerProgram(name=name)
    for node in tree.node_names:
        program.add_binary(_variable(node))
    for gate in tree.gates:
        node = tree.node(gate)
        if node.type is NodeType.AND:
            for child in node.children:
                expression = LinearExpression(
                    {_variable(gate): 1.0, _variable(child): -1.0}
                )
                program.add_less_equal(expression, 0.0, name=f"and:{gate}:{child}")
        else:  # OR
            coefficients = {_variable(gate): 1.0}
            for child in node.children:
                coefficients[_variable(child)] = coefficients.get(_variable(child), 0.0) - 1.0
            program.add_less_equal(
                LinearExpression(coefficients), 0.0, name=f"or:{gate}"
            )
    return program


def cost_objective(cdat: CostDamageAT) -> Objective:
    """The cost objective ``min Σ_{v∈B} c(v)·y_v``."""
    expression = LinearExpression(
        {_variable(bas): cdat.cost[bas] for bas in cdat.tree.basic_attack_steps}
    )
    return Objective(expression=expression, sense=ObjectiveSense.MINIMIZE, name="cost")


def damage_objective(cdat: CostDamageAT) -> Objective:
    """The damage objective ``max Σ_{v∈N} d(v)·y_v``."""
    expression = LinearExpression(
        {_variable(node): cdat.damage[node] for node in cdat.tree.node_names}
    )
    return Objective(expression=expression, sense=ObjectiveSense.MAXIMIZE, name="damage")


def _attack_from_solution(cdat: CostDamageAT, solution: MilpSolution) -> FrozenSet[str]:
    """Extract the attack ``x = y|_B`` from an ILP solution."""
    attack = set()
    for bas in cdat.tree.basic_attack_steps:
        if solution.value(_variable(bas)) > 0.5:
            attack.add(bas)
    return frozenset(attack)


def pareto_front_bilp(
    cdat: CostDamageAT,
    solver=None,
    step: Optional[float] = None,
) -> ParetoFront:
    """Solve CDPF for an arbitrary (DAG-like or treelike) cd-AT (Theorem 6).

    The bi-objective program (maximise damage, minimise cost) is handed to
    the ε-constraint driver; every returned assignment is converted back to
    an attack and *re-evaluated with the exact semantics* so that reported
    cost/damage values are independent of solver tolerances.
    """
    program = build_structure_program(cdat)
    driver = EpsilonConstraintSolver(solver=solver, step=step)
    result = driver.solve(program, primary=damage_objective(cdat), secondary=cost_objective(cdat))

    points = []
    for point in result.points:
        attack = frozenset(
            bas
            for bas in cdat.tree.basic_attack_steps
            if point.assignment.get(_variable(bas), 0.0) > 0.5
        )
        cost, damage, reaches_root = evaluate_attack(cdat, attack)
        points.append(
            ParetoPoint(cost=cost, damage=damage, attack=attack, reaches_root=reaches_root)
        )
    # The empty attack is always achievable; include it explicitly in case the
    # sweep stopped at the cheapest positive-damage point.
    points.append(ParetoPoint(cost=0.0, damage=0.0, attack=frozenset(), reaches_root=False))
    return ParetoFront(points)


def max_damage_given_cost_bilp(
    cdat: CostDamageAT, budget: float, solver=None
) -> Tuple[float, Optional[FrozenSet[str]]]:
    """Solve DgC via a single-objective ILP (Theorem 7).

    Maximise ``Σ d(v)·y_v`` subject to the structure constraints and
    ``Σ c(v)·y_v ≤ U``.
    """
    if budget < 0:
        return 0.0, None
    if solver is None:
        solver = default_solver()
    program = build_structure_program(cdat, name="DgC")
    program.add_less_equal(cost_objective(cdat).expression, budget, name="budget")
    solution = solver.solve(program, damage_objective(cdat))
    if solution.status is not SolveStatus.OPTIMAL:
        return 0.0, frozenset()
    attack = _attack_from_solution(cdat, solution)
    _, damage, _ = evaluate_attack(cdat, attack)
    return damage, attack


def min_cost_given_damage_bilp(
    cdat: CostDamageAT, threshold: float, solver=None
) -> Tuple[Optional[float], Optional[FrozenSet[str]]]:
    """Solve CgD via a single-objective ILP (Theorem 7).

    Minimise ``Σ c(v)·y_v`` subject to the structure constraints and
    ``Σ d(v)·y_v ≥ L``.

    Unlike the DgC formulation, the damage constraint is a *lower* bound on
    a quantity that the relaxed ``y`` can overstate (``y_v ≤ S(x, v)`` is
    only an upper bound when maximising damage).  Here larger ``y`` helps
    satisfy the constraint, and the structure constraints exactly prevent
    ``y_v`` from exceeding ``S(x, v)``, so the formulation remains sound.
    """
    if solver is None:
        solver = default_solver()

    # MILP feasibility tolerances (HiGHS uses ~1e-6) can make the all-zero
    # assignment "satisfy" a tiny positive threshold.  When the extracted
    # attack misses the threshold we re-solve with a slightly strengthened
    # constraint; two bumps are ample for any realistic decoration.
    strengthened = threshold
    for _ in range(3):
        program = build_structure_program(cdat, name="CgD")
        program.add_constraint(
            damage_objective(cdat).expression,
            ConstraintSense.GREATER_EQUAL,
            strengthened,
            name="damage-threshold",
        )
        solution = solver.solve(program, cost_objective(cdat))
        if solution.status is not SolveStatus.OPTIMAL:
            return None, None
        attack = _attack_from_solution(cdat, solution)
        cost, damage, _ = evaluate_attack(cdat, attack)
        if damage + 1e-9 >= threshold:
            return cost, attack
        strengthened += max(1e-5, abs(threshold) * 1e-5)
    return None, None
