"""Problem definitions and a uniform solver dispatch.

The paper states six problems (Sections IV and VIII).  This module gives
each a first-class identifier, records which algorithm of the paper applies
to which problem/shape combination (Table I), and exposes a single
:func:`solve` entry point that dispatches to the bottom-up, BILP or
enumerative implementation.

==========  ==========================================  ===================
problem     meaning                                      parameter
==========  ==========================================  ===================
``CDPF``    cost-damage Pareto front                     —
``DGC``     max damage given a cost budget               ``budget``
``CGD``     min cost given a damage threshold            ``threshold``
``CEDPF``   cost-expected-damage Pareto front            —
``EDGC``    max expected damage given a cost budget      ``budget``
``CGED``    min cost given an expected-damage threshold  ``threshold``
==========  ==========================================  ===================
"""

from __future__ import annotations

import enum
from dataclasses import dataclass
from typing import FrozenSet, Optional, Union

from ..attacktree.attributes import CostDamageAT, CostDamageProbAT
from ..pareto.front import ParetoFront
from . import bilp, bottom_up, bottom_up_prob, enumerative

__all__ = ["Problem", "Method", "SolveResult", "solve", "capability_matrix"]


class Problem(enum.Enum):
    """The six cost-damage problems of the paper."""

    CDPF = "cdpf"
    DGC = "dgc"
    CGD = "cgd"
    CEDPF = "cedpf"
    EDGC = "edgc"
    CGED = "cged"

    @property
    def is_probabilistic(self) -> bool:
        """``True`` for the expected-damage problems."""
        return self in {Problem.CEDPF, Problem.EDGC, Problem.CGED}

    @property
    def is_front(self) -> bool:
        """``True`` for the Pareto-front problems."""
        return self in {Problem.CDPF, Problem.CEDPF}


class Method(enum.Enum):
    """Available solution methods."""

    AUTO = "auto"
    BOTTOM_UP = "bottom-up"
    BILP = "bilp"
    ENUMERATIVE = "enumerative"


@dataclass(frozen=True)
class SolveResult:
    """Result of :func:`solve`.

    Exactly one of :attr:`front` or :attr:`value` is populated, depending on
    whether the problem is a Pareto-front problem or a single-objective one.
    """

    problem: Problem
    method: Method
    front: Optional[ParetoFront] = None
    value: Optional[float] = None
    witness: Optional[FrozenSet[str]] = None

    def __post_init__(self) -> None:
        if self.problem.is_front and self.front is None:
            raise ValueError(f"{self.problem} results must carry a Pareto front")


Model = Union[CostDamageAT, CostDamageProbAT]


def _require_probabilistic(model: Model, problem: Problem) -> CostDamageProbAT:
    if not isinstance(model, CostDamageProbAT):
        raise TypeError(
            f"problem {problem.value} needs a cdp-AT (with success probabilities); "
            "got a deterministic cd-AT"
        )
    return model


def _as_deterministic(model: Model) -> CostDamageAT:
    if isinstance(model, CostDamageProbAT):
        return model.deterministic()
    return model


def _pick_method(model: Model, problem: Problem, method: Method) -> Method:
    """Resolve ``AUTO`` following Table I of the paper."""
    if method is not Method.AUTO:
        return method
    treelike = model.tree.is_treelike
    if problem.is_probabilistic:
        if treelike:
            return Method.BOTTOM_UP
        # Probabilistic DAG analysis is the paper's open problem; the exact
        # fallback is enumeration (see repro.extensions.prob_dag for more).
        return Method.ENUMERATIVE
    return Method.BOTTOM_UP if treelike else Method.BILP


def solve(
    model: Model,
    problem: Problem,
    method: Method = Method.AUTO,
    budget: Optional[float] = None,
    threshold: Optional[float] = None,
) -> SolveResult:
    """Solve one of the six cost-damage problems.

    Parameters
    ----------
    model:
        A cd-AT (deterministic problems) or cdp-AT (either kind; the
        probability map is ignored by deterministic problems).
    problem:
        Which problem to solve.
    method:
        Force a specific algorithm, or ``AUTO`` to follow Table I.
    budget:
        Required for ``DGC``/``EDGC``.
    threshold:
        Required for ``CGD``/``CGED``.
    """
    chosen = _pick_method(model, problem, method)

    if problem in {Problem.DGC, Problem.EDGC} and budget is None:
        raise ValueError(f"problem {problem.value} requires a cost budget")
    if problem in {Problem.CGD, Problem.CGED} and threshold is None:
        raise ValueError(f"problem {problem.value} requires a damage threshold")

    if problem is Problem.CDPF:
        cdat = _as_deterministic(model)
        if chosen is Method.BOTTOM_UP:
            front = bottom_up.pareto_front_treelike(cdat)
        elif chosen is Method.BILP:
            front = bilp.pareto_front_bilp(cdat)
        else:
            front = enumerative.enumerate_pareto_front(cdat)
        return SolveResult(problem=problem, method=chosen, front=front)

    if problem is Problem.DGC:
        cdat = _as_deterministic(model)
        if chosen is Method.BOTTOM_UP:
            value, witness = bottom_up.max_damage_given_cost_treelike(cdat, budget)
        elif chosen is Method.BILP:
            value, witness = bilp.max_damage_given_cost_bilp(cdat, budget)
        else:
            value, witness = enumerative.enumerate_max_damage_given_cost(cdat, budget)
        return SolveResult(problem=problem, method=chosen, value=value, witness=witness)

    if problem is Problem.CGD:
        cdat = _as_deterministic(model)
        if chosen is Method.BOTTOM_UP:
            value, witness = bottom_up.min_cost_given_damage_treelike(cdat, threshold)
        elif chosen is Method.BILP:
            value, witness = bilp.min_cost_given_damage_bilp(cdat, threshold)
        else:
            value, witness = enumerative.enumerate_min_cost_given_damage(cdat, threshold)
        return SolveResult(problem=problem, method=chosen, value=value, witness=witness)

    if problem is Problem.CEDPF:
        cdpat = _require_probabilistic(model, problem)
        if chosen is Method.BOTTOM_UP:
            front = bottom_up_prob.pareto_front_treelike_probabilistic(cdpat)
        elif chosen is Method.ENUMERATIVE:
            front = enumerative.enumerate_pareto_front_probabilistic(cdpat)
        else:
            raise ValueError(
                "CEDPF has no BILP formulation (the constraints become nonlinear); "
                "use BOTTOM_UP for treelike ATs or ENUMERATIVE"
            )
        return SolveResult(problem=problem, method=chosen, front=front)

    if problem is Problem.EDGC:
        cdpat = _require_probabilistic(model, problem)
        if chosen is Method.BOTTOM_UP:
            value, witness = bottom_up_prob.max_expected_damage_given_cost_treelike(
                cdpat, budget
            )
        elif chosen is Method.ENUMERATIVE:
            value, witness = enumerative.enumerate_max_expected_damage_given_cost(
                cdpat, budget
            )
        else:
            raise ValueError("EDgC has no BILP formulation; use BOTTOM_UP or ENUMERATIVE")
        return SolveResult(problem=problem, method=chosen, value=value, witness=witness)

    # Problem.CGED
    cdpat = _require_probabilistic(model, problem)
    if chosen is Method.BOTTOM_UP:
        value, witness = bottom_up_prob.min_cost_given_expected_damage_treelike(
            cdpat, threshold
        )
    elif chosen is Method.ENUMERATIVE:
        value, witness = enumerative.enumerate_min_cost_given_expected_damage(
            cdpat, threshold
        )
    else:
        raise ValueError("CgED has no BILP formulation; use BOTTOM_UP or ENUMERATIVE")
    return SolveResult(problem=problem, method=chosen, value=value, witness=witness)


def capability_matrix() -> dict:
    """Table I of the paper: which exact method covers which setting.

    Keys are ``(setting, shape)`` pairs; values name the algorithm (or mark
    the open problem).  The library additionally offers enumerative and
    Monte-Carlo fallbacks for the open cell (see
    :mod:`repro.extensions.prob_dag`).
    """
    return {
        ("deterministic", "tree"): "bottom-up (Theorem 4)",
        ("deterministic", "dag"): "BILP (Theorem 6)",
        ("probabilistic", "tree"): "bottom-up (Theorem 9)",
        ("probabilistic", "dag"): "open problem (enumerative / Monte-Carlo extension)",
    }
