"""Problem definitions and the legacy uniform ``solve`` entry point.

The paper states six problems (Sections IV and VIII).  This module gives
each a first-class identifier and keeps :func:`solve` as a thin
backwards-compatible shim over the pluggable analysis engine
(:mod:`repro.engine`): algorithm selection is no longer hardwired here but
resolved by the engine's capability registry, which encodes Table I of the
paper as data.  New code should prefer
:class:`repro.engine.AnalysisSession`, which adds caching, batching and
structured result metadata.

==========  ==========================================  ===================
problem     meaning                                      parameter
==========  ==========================================  ===================
``CDPF``    cost-damage Pareto front                     —
``DGC``     max damage given a cost budget               ``budget``
``CGD``     min cost given a damage threshold            ``threshold``
``CEDPF``   cost-expected-damage Pareto front            —
``EDGC``    max expected damage given a cost budget      ``budget``
``CGED``    min cost given an expected-damage threshold  ``threshold``
==========  ==========================================  ===================
"""

from __future__ import annotations

import enum
from dataclasses import dataclass
from typing import FrozenSet, Optional, Union

from ..attacktree.attributes import CostDamageAT, CostDamageProbAT
from ..pareto.front import ParetoFront

__all__ = ["Problem", "Method", "SolveResult", "solve", "capability_matrix"]


class Problem(enum.Enum):
    """The six cost-damage problems of the paper."""

    CDPF = "cdpf"
    DGC = "dgc"
    CGD = "cgd"
    CEDPF = "cedpf"
    EDGC = "edgc"
    CGED = "cged"

    @property
    def is_probabilistic(self) -> bool:
        """``True`` for the expected-damage problems."""
        return self in {Problem.CEDPF, Problem.EDGC, Problem.CGED}

    @property
    def is_front(self) -> bool:
        """``True`` for the Pareto-front problems."""
        return self in {Problem.CDPF, Problem.CEDPF}


class Method(enum.Enum):
    """Legacy algorithm selector, kept for backwards compatibility.

    ``AUTO`` lets the engine registry resolve following Table I; the other
    values force the engine backend of the same name.  The engine API
    (:class:`repro.engine.AnalysisRequest`) selects backends by *name*
    instead, which also reaches the extension backends (``genetic``,
    ``prob-dag``, ``monte-carlo``) this enum predates.
    """

    AUTO = "auto"
    BOTTOM_UP = "bottom-up"
    BILP = "bilp"
    ENUMERATIVE = "enumerative"


#: Method ↔ engine-backend name correspondence used by the shim.
_METHOD_TO_BACKEND = {
    Method.BOTTOM_UP: "bottom-up",
    Method.BILP: "bilp",
    Method.ENUMERATIVE: "enumerative",
}
_BACKEND_TO_METHOD = {name: method for method, name in _METHOD_TO_BACKEND.items()}


@dataclass(frozen=True)
class SolveResult:
    """Result of :func:`solve`.

    Exactly one of :attr:`front` or :attr:`value` is populated, depending on
    whether the problem is a Pareto-front problem or a single-objective one.
    """

    problem: Problem
    method: Method
    front: Optional[ParetoFront] = None
    value: Optional[float] = None
    witness: Optional[FrozenSet[str]] = None

    def __post_init__(self) -> None:
        if self.problem.is_front and self.front is None:
            raise ValueError(f"{self.problem} results must carry a Pareto front")


Model = Union[CostDamageAT, CostDamageProbAT]


def _to_solve_result(problem: Problem, result: "AnalysisResult") -> SolveResult:
    """Convert an engine :class:`~repro.engine.AnalysisResult` into the
    legacy :class:`SolveResult` shape (shared by :func:`solve` and the
    analyzer facade so the two shims cannot drift apart)."""
    return SolveResult(
        problem=problem,
        method=_BACKEND_TO_METHOD.get(result.backend, Method.AUTO),
        front=result.front,
        value=result.value,
        witness=result.witness,
    )


def solve(
    model: Model,
    problem: Problem,
    method: Method = Method.AUTO,
    budget: Optional[float] = None,
    threshold: Optional[float] = None,
) -> SolveResult:
    """Solve one of the six cost-damage problems (legacy entry point).

    This is a compatibility shim over :func:`repro.engine.run_request`; it
    keeps the original call signature and :class:`SolveResult` shape while
    the engine registry performs the algorithm selection.

    Parameters
    ----------
    model:
        A cd-AT (deterministic problems) or cdp-AT (either kind; the
        probability map is ignored by deterministic problems).
    problem:
        Which problem to solve.
    method:
        Force a specific algorithm, or ``AUTO`` to follow Table I.
    budget:
        Required for ``DGC``/``EDGC``.
    threshold:
        Required for ``CGD``/``CGED``.
    """
    # Imported lazily: the engine's backends import this module for the
    # Problem enum, so a module-level import would be circular.
    from ..engine.requests import AnalysisRequest
    from ..engine.session import run_request

    request = AnalysisRequest(
        problem=problem,
        budget=budget,
        threshold=threshold,
        backend=_METHOD_TO_BACKEND.get(method),
    )
    return _to_solve_result(problem, run_request(model, request))


def capability_matrix() -> dict:
    """Table I of the paper: which exact method covers which setting.

    Keys are ``(setting, shape)`` pairs; values name the algorithm (or mark
    the open problem).  The table is computed from the engine registry's
    declared backend capabilities — see
    :meth:`repro.engine.BackendRegistry.capability_report` — so it always
    reflects what resolution will actually do.
    """
    from ..engine.registry import shared_registry

    return shared_registry().capability_report()
