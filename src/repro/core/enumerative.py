"""The enumerative baseline.

The paper compares its bottom-up and BILP methods against "an enumerative
method that goes through all attacks to find the Pareto optimal ones"
(Section X).  This module implements that baseline faithfully — evaluate
``ĉ`` and ``d̂`` (or ``d̂_E``) for every one of the ``2^|B|`` attacks and
keep the non-dominated ones — for both the deterministic and probabilistic
settings and for the single-objective problems DgC/CgD/EDgC/CgED.

It is exponential by construction; it exists as the correctness oracle for
tests and as the comparison baseline in the timing experiments (Table III
and Fig. 7).
"""

from __future__ import annotations

import math
from typing import FrozenSet, Iterable, Optional, Tuple

from ..attacktree.attributes import CostDamageAT, CostDamageProbAT
from ..pareto.front import ParetoFront, ParetoPoint
from ..probability.actualization import expected_damage
from .semantics import Attack, all_attacks, attack_cost, evaluate_attack

__all__ = [
    "enumerate_pareto_front",
    "enumerate_pareto_front_probabilistic",
    "enumerate_max_damage_given_cost",
    "enumerate_min_cost_given_damage",
    "enumerate_max_expected_damage_given_cost",
    "enumerate_min_cost_given_expected_damage",
]


def enumerate_pareto_front(cdat: CostDamageAT) -> ParetoFront:
    """Solve CDPF by full enumeration of all attacks.

    Every attack is evaluated; the :class:`ParetoFront` constructor keeps
    the non-dominated ``(cost, damage)`` values together with a witness
    attack each.
    """
    points = []
    for attack in all_attacks(cdat):
        cost, damage, reaches_root = evaluate_attack(cdat, attack)
        points.append(
            ParetoPoint(cost=cost, damage=damage, attack=attack,
                        reaches_root=reaches_root)
        )
    return ParetoFront(points)


def enumerate_pareto_front_probabilistic(cdpat: CostDamageProbAT) -> ParetoFront:
    """Solve CEDPF by full enumeration (doubly exponential for DAGs).

    For every attack the exact expected damage is computed; for treelike
    trees that inner computation is linear, for DAG-like trees it enumerates
    actualizations, matching the naive approach the paper compares against.
    """
    points = []
    for attack in all_attacks(cdpat):
        cost = attack_cost(cdpat, attack)
        damage = expected_damage(cdpat, attack)
        reaches_root = cdpat.tree.is_successful(attack)
        points.append(
            ParetoPoint(cost=cost, damage=damage, attack=attack,
                        reaches_root=reaches_root)
        )
    return ParetoFront(points)


def enumerate_max_damage_given_cost(
    cdat: CostDamageAT, budget: float
) -> Tuple[float, Optional[Attack]]:
    """Solve DgC by enumeration: the most damaging attack with ``ĉ(x) ≤ U``.

    Returns ``(d_opt, witness)``.  The empty attack is always feasible, so
    ``d_opt ≥ 0`` and the witness is never ``None`` for non-negative budgets;
    a negative budget returns ``(0.0, None)`` for robustness.
    """
    best_damage = 0.0
    best_attack: Optional[Attack] = frozenset() if budget >= 0 else None
    if best_attack is None:
        return 0.0, None
    for attack in all_attacks(cdat):
        cost, damage, _ = evaluate_attack(cdat, attack)
        if cost <= budget + 1e-9 and damage > best_damage + 1e-9:
            best_damage = damage
            best_attack = attack
    return best_damage, best_attack


def enumerate_min_cost_given_damage(
    cdat: CostDamageAT, threshold: float
) -> Tuple[Optional[float], Optional[Attack]]:
    """Solve CgD by enumeration: the cheapest attack with ``d̂(x) ≥ L``.

    Returns ``(c_opt, witness)`` or ``(None, None)`` when the threshold is
    unachievable even by activating every BAS.
    """
    best_cost: Optional[float] = None
    best_attack: Optional[Attack] = None
    for attack in all_attacks(cdat):
        cost, damage, _ = evaluate_attack(cdat, attack)
        if damage + 1e-9 >= threshold and (best_cost is None or cost < best_cost - 1e-9):
            best_cost = cost
            best_attack = attack
    return best_cost, best_attack


def enumerate_max_expected_damage_given_cost(
    cdpat: CostDamageProbAT, budget: float
) -> Tuple[float, Optional[Attack]]:
    """Solve EDgC by enumeration: max expected damage under a cost budget."""
    best_damage = 0.0
    best_attack: Optional[Attack] = frozenset() if budget >= 0 else None
    if best_attack is None:
        return 0.0, None
    for attack in all_attacks(cdpat):
        cost = attack_cost(cdpat, attack)
        if cost > budget + 1e-9:
            continue
        damage = expected_damage(cdpat, attack)
        if damage > best_damage + 1e-9:
            best_damage = damage
            best_attack = attack
    return best_damage, best_attack


def enumerate_min_cost_given_expected_damage(
    cdpat: CostDamageProbAT, threshold: float
) -> Tuple[Optional[float], Optional[Attack]]:
    """Solve CgED by enumeration: min cost achieving expected damage ≥ L."""
    best_cost: Optional[float] = None
    best_attack: Optional[Attack] = None
    for attack in all_attacks(cdpat):
        damage = expected_damage(cdpat, attack)
        if damage + 1e-9 < threshold:
            continue
        cost = attack_cost(cdpat, attack)
        if best_cost is None or cost < best_cost - 1e-9:
            best_cost = cost
            best_attack = attack
    return best_cost, best_attack
