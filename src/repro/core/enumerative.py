"""The enumerative baseline.

The paper compares its bottom-up and BILP methods against "an enumerative
method that goes through all attacks to find the Pareto optimal ones"
(Section X).  This module implements that baseline faithfully — evaluate
``ĉ`` and ``d̂`` (or ``d̂_E``) for every one of the ``2^|B|`` attacks and
keep the non-dominated ones — for both the deterministic and probabilistic
settings and for the single-objective problems DgC/CgD/EDgC/CgED.

It is exponential by construction; it exists as the correctness oracle for
tests and as the comparison baseline in the timing experiments (Table III
and Fig. 7).

Kernel representation
---------------------
Attacks are indexed as integer bitsets over the sorted BAS universe.  Costs
and damages for *all* ``2^n`` attacks are tabulated with a subset DP; node
reachability is evaluated once per node as a ``2^n``-bit bitmap (gates are a
single big-int AND/OR over their children's bitmaps), which also works for
DAG-like trees since every node is evaluated exactly once.  In the
probabilistic setting, expected damages for all attacks are obtained from
the deterministic damage table by a per-BAS zeta transform
(``E[m] = p·E[m] + (1−p)·E[m \\ {i}]``), turning the former
per-attack actualization sum — exponential on DAGs — into an ``O(n·2^n)``
sweep.  Universes beyond :data:`_TABLE_LIMIT` BASs fall back to the
original per-attack evaluation to bound table memory.
"""

from __future__ import annotations

from typing import Iterator, List, Optional, Tuple

from ..attacktree.attributes import CostDamageAT, CostDamageProbAT
from ..attacktree.node import NodeType
from ..pareto.front import ParetoFront, ParetoPoint
from ..pareto.poset import EPSILON
from ..probability.actualization import expected_damage
from .semantics import Attack, all_attacks, attack_cost, evaluate_attack

__all__ = [
    "enumerate_pareto_front",
    "enumerate_pareto_front_probabilistic",
    "enumerate_max_damage_given_cost",
    "enumerate_min_cost_given_damage",
    "enumerate_max_expected_damage_given_cost",
    "enumerate_min_cost_given_expected_damage",
]

#: Largest BAS universe the table-based evaluation is used for; the tables
#: take ``O(2^n)`` memory, so bigger models use per-attack evaluation (which
#: would be the only part of the baseline still feasible there anyway).
_TABLE_LIMIT = 16


def _evaluation_tables(
    model,
) -> Tuple[List[str], dict, List[float], List[float], bytes]:
    """Tabulate cost, damage and root reachability for all ``2^n`` attacks.

    Returns ``(bas, index, costs, damages, root_bitmap)`` where lists are
    indexed by attack bitset over the sorted BAS universe and
    ``root_bitmap`` packs the root's reach bit for every attack.
    """
    tree = model.tree
    bas = sorted(tree.basic_attack_steps)
    n = len(bas)
    size = 1 << n
    index = {name: i for i, name in enumerate(bas)}
    bit_cost = [model.cost[name] for name in bas]
    bit_damage = [model.damage[name] for name in bas]
    costs = [0.0] * size
    damages = [0.0] * size
    for mask in range(1, size):
        low = mask & -mask
        rest = mask ^ low
        i = low.bit_length() - 1
        costs[mask] = costs[rest] + bit_cost[i]
        damages[mask] = damages[rest] + bit_damage[i]

    # Reachability bitmaps: bit m of ``reached[v]`` says whether attack m
    # reaches node v.  A BAS's bitmap is the periodic "bit i set" pattern;
    # gates combine children with one big-int AND/OR each.
    bas_bitmap = []
    for i in range(n):
        stride = 1 << i
        block = ((1 << stride) - 1) << stride
        pattern = 0
        for start in range(0, size, stride << 1):
            pattern |= block << start
        bas_bitmap.append(pattern)
    all_ones = (1 << size) - 1
    reached = {}
    for name in tree.node_names:  # children before parents
        node = tree.node(name)
        if node.is_bas:
            reached[name] = bas_bitmap[index[name]]
        elif node.type is NodeType.AND:
            bitmap = all_ones
            for child in node.children:
                bitmap &= reached[child]
            reached[name] = bitmap
        else:
            bitmap = 0
            for child in node.children:
                bitmap |= reached[child]
            reached[name] = bitmap
        gate_damage = 0.0 if node.is_bas else model.damage[name]
        if gate_damage != 0.0:
            data = reached[name].to_bytes((size + 7) // 8, "little")
            for byte_index, byte in enumerate(data):
                if not byte:
                    continue
                base = byte_index << 3
                while byte:
                    low = byte & -byte
                    damages[base + low.bit_length() - 1] += gate_damage
                    byte ^= low
    root_bitmap = reached[tree.root].to_bytes((size + 7) // 8, "little")
    return bas, index, costs, damages, root_bitmap


def _expected_damage_table(
    cdpat: CostDamageProbAT, bas: List[str], damages: List[float]
) -> List[float]:
    """Expected damages for all attacks via a per-BAS zeta transform.

    One pass per BAS replaces the damage of every attack containing it by
    the probability mix of "attempt succeeded" and "attempt failed", so
    after ``n`` passes entry ``m`` holds ``d̂_E`` of attack ``m`` — summing
    over actualizations without enumerating them (valid for DAGs too, as no
    independence between nodes is assumed).
    """
    expected = list(damages)
    size = len(expected)
    for i, name in enumerate(bas):
        success = cdpat.probability[name]
        failure = 1.0 - success
        bit = 1 << i
        for mask in range(bit, size):
            if mask & bit:
                expected[mask] = (
                    success * expected[mask] + failure * expected[mask ^ bit]
                )
    return expected


def _evaluated_deterministic(
    cdat: CostDamageAT,
) -> Iterator[Tuple[Attack, float, float, bool]]:
    """Yield ``(attack, cost, damage, reaches_root)`` for every attack,
    in the canonical (size, lexicographic) order of :func:`all_attacks`."""
    if len(cdat.tree.basic_attack_steps) > _TABLE_LIMIT:
        for attack in all_attacks(cdat):
            cost, damage, reaches_root = evaluate_attack(cdat, attack)
            yield attack, cost, damage, reaches_root
        return
    _, index, costs, damages, root_bitmap = _evaluation_tables(cdat)
    for attack in all_attacks(cdat):
        mask = 0
        for name in attack:
            mask |= 1 << index[name]
        reaches_root = bool(root_bitmap[mask >> 3] >> (mask & 7) & 1)
        yield attack, costs[mask], damages[mask], reaches_root


def _evaluated_probabilistic(
    cdpat: CostDamageProbAT,
) -> Iterator[Tuple[Attack, float, float, bool]]:
    """Yield ``(attack, cost, expected_damage, reaches_root)`` per attack."""
    if len(cdpat.tree.basic_attack_steps) > _TABLE_LIMIT:
        for attack in all_attacks(cdpat):
            yield (
                attack,
                attack_cost(cdpat, attack),
                expected_damage(cdpat, attack),
                cdpat.tree.is_successful(attack),
            )
        return
    bas, index, costs, damages, root_bitmap = _evaluation_tables(cdpat)
    expected = _expected_damage_table(cdpat, bas, damages)
    for attack in all_attacks(cdpat):
        mask = 0
        for name in attack:
            mask |= 1 << index[name]
        reaches_root = bool(root_bitmap[mask >> 3] >> (mask & 7) & 1)
        yield attack, costs[mask], expected[mask], reaches_root


def enumerate_pareto_front(cdat: CostDamageAT) -> ParetoFront:
    """Solve CDPF by full enumeration of all attacks.

    Every attack is evaluated; the :class:`ParetoFront` constructor keeps
    the non-dominated ``(cost, damage)`` values together with a witness
    attack each.
    """
    points = [
        ParetoPoint(cost=cost, damage=damage, attack=attack,
                    reaches_root=reaches_root)
        for attack, cost, damage, reaches_root in _evaluated_deterministic(cdat)
    ]
    return ParetoFront(points)


def enumerate_pareto_front_probabilistic(cdpat: CostDamageProbAT) -> ParetoFront:
    """Solve CEDPF by full enumeration.

    The expected damage of every attack is exact (the zeta transform sums
    over all actualizations), including for DAG-like trees — the cell the
    paper leaves open.
    """
    points = [
        ParetoPoint(cost=cost, damage=damage, attack=attack,
                    reaches_root=reaches_root)
        for attack, cost, damage, reaches_root in _evaluated_probabilistic(cdpat)
    ]
    return ParetoFront(points)


def enumerate_max_damage_given_cost(
    cdat: CostDamageAT, budget: float
) -> Tuple[float, Optional[Attack]]:
    """Solve DgC by enumeration: the most damaging attack with ``ĉ(x) ≤ U``.

    Returns ``(d_opt, witness)``.  The empty attack is always feasible, so
    ``d_opt ≥ 0`` and the witness is never ``None`` for non-negative budgets;
    a negative budget returns ``(0.0, None)`` for robustness.
    """
    if budget < 0:
        return 0.0, None
    best_damage = 0.0
    best_attack: Optional[Attack] = frozenset()
    for attack, cost, damage, _ in _evaluated_deterministic(cdat):
        if cost <= budget + EPSILON and damage > best_damage + EPSILON:
            best_damage = damage
            best_attack = attack
    return best_damage, best_attack


def enumerate_min_cost_given_damage(
    cdat: CostDamageAT, threshold: float
) -> Tuple[Optional[float], Optional[Attack]]:
    """Solve CgD by enumeration: the cheapest attack with ``d̂(x) ≥ L``.

    Returns ``(c_opt, witness)`` or ``(None, None)`` when the threshold is
    unachievable even by activating every BAS.
    """
    best_cost: Optional[float] = None
    best_attack: Optional[Attack] = None
    for attack, cost, damage, _ in _evaluated_deterministic(cdat):
        if damage + EPSILON >= threshold and (
            best_cost is None or cost < best_cost - EPSILON
        ):
            best_cost = cost
            best_attack = attack
    return best_cost, best_attack


def enumerate_max_expected_damage_given_cost(
    cdpat: CostDamageProbAT, budget: float
) -> Tuple[float, Optional[Attack]]:
    """Solve EDgC by enumeration: max expected damage under a cost budget."""
    if budget < 0:
        return 0.0, None
    best_damage = 0.0
    best_attack: Optional[Attack] = frozenset()
    for attack, cost, damage, _ in _evaluated_probabilistic(cdpat):
        if cost <= budget + EPSILON and damage > best_damage + EPSILON:
            best_damage = damage
            best_attack = attack
    return best_damage, best_attack


def enumerate_min_cost_given_expected_damage(
    cdpat: CostDamageProbAT, threshold: float
) -> Tuple[Optional[float], Optional[Attack]]:
    """Solve CgED by enumeration: min cost achieving expected damage ≥ L."""
    best_cost: Optional[float] = None
    best_attack: Optional[Attack] = None
    for attack, cost, damage, _ in _evaluated_probabilistic(cdpat):
        if damage + EPSILON < threshold:
            continue
        if best_cost is None or cost < best_cost - EPSILON:
            best_cost = cost
            best_attack = attack
    return best_cost, best_attack
