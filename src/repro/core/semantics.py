"""Attack semantics: cost, damage, and the structure function.

This module implements Definitions 2–4 of the paper for the deterministic
setting:

* an **attack** ``x`` is a subset of the BASs (equivalently a status vector
  in ``B^B``);
* the **structure function** ``S(x, v)`` says whether node ``v`` is reached
  by attack ``x`` (delegated to :meth:`AttackTree.structure_function`);
* the **cost** ``ĉ(x) = Σ_{v∈B} x_v c(v)`` and the **damage**
  ``d̂(x) = Σ_{v∈N} S(x, v) d(v)``.

The probabilistic counterparts (``PS``, ``d̂_E``) live in
:mod:`repro.probability.actualization`.
"""

from __future__ import annotations

import itertools
from typing import FrozenSet, Iterable, Iterator, Tuple

from ..attacktree.attributes import CostDamageAT, CostDamageProbAT
from ..attacktree.tree import AttackTree

__all__ = [
    "Attack",
    "normalize_attack",
    "attack_cost",
    "attack_damage",
    "evaluate_attack",
    "all_attacks",
    "attacks_within_budget",
    "successful_attacks",
    "dominated_by",
    "is_nondecreasing_damage",
]

#: An attack is a frozenset of activated BAS names (Definition 2).
Attack = FrozenSet[str]


def normalize_attack(model: CostDamageAT | CostDamageProbAT | AttackTree,
                     attack: Iterable[str]) -> Attack:
    """Validate an attack against a model and return it as a frozenset.

    Raises ``KeyError`` if the attack references names that are not BASs of
    the model's tree.
    """
    tree = model if isinstance(model, AttackTree) else model.tree
    result = frozenset(attack)
    unknown = result - tree.basic_attack_steps
    if unknown:
        raise KeyError(
            f"attack references names that are not BASs: {sorted(unknown)!r}"
        )
    return result


def attack_cost(cdat: CostDamageAT | CostDamageProbAT, attack: Iterable[str]) -> float:
    """Total cost ``ĉ(x)``: the sum of the costs of the activated BASs."""
    normalized = normalize_attack(cdat, attack)
    return sum(cdat.cost[bas] for bas in normalized)


def attack_damage(cdat: CostDamageAT | CostDamageProbAT, attack: Iterable[str]) -> float:
    """Total damage ``d̂(x)``: the summed damage of every node reached by ``x``.

    Note that *all* reached nodes contribute, not only the root — this is the
    paper's central modelling point (Section IV): attacks that fail to reach
    the top node can still do damage on intermediate nodes.
    """
    normalized = normalize_attack(cdat, attack)
    reached = cdat.tree.structure_function(normalized)
    return sum(cdat.damage[node] for node, hit in reached.items() if hit)


def evaluate_attack(
    cdat: CostDamageAT | CostDamageProbAT, attack: Iterable[str]
) -> Tuple[float, float, bool]:
    """Return ``(ĉ(x), d̂(x), S(x, R_T))`` for an attack in one pass."""
    normalized = normalize_attack(cdat, attack)
    reached = cdat.tree.structure_function(normalized)
    cost = sum(cdat.cost[bas] for bas in normalized)
    damage = sum(cdat.damage[node] for node, hit in reached.items() if hit)
    return cost, damage, reached[cdat.tree.root]


def all_attacks(model: CostDamageAT | CostDamageProbAT | AttackTree) -> Iterator[Attack]:
    """Iterate over all ``2^|B|`` attacks, smallest first.

    The iteration order (by attack size, then lexicographic) is deterministic
    so that enumerative results are reproducible.
    """
    tree = model if isinstance(model, AttackTree) else model.tree
    bas = sorted(tree.basic_attack_steps)
    for size in range(len(bas) + 1):
        for combo in itertools.combinations(bas, size):
            yield frozenset(combo)


def attacks_within_budget(
    cdat: CostDamageAT | CostDamageProbAT, budget: float
) -> Iterator[Attack]:
    """Iterate over attacks whose cost does not exceed ``budget``.

    The enumeration prunes supersets implicitly only in the trivial sense
    (cost is monotone, so once a combination exceeds the budget adding BASs
    cannot help); it is still exponential in the worst case and is intended
    for the enumerative baseline and for tests.
    """
    for attack in all_attacks(cdat):
        if attack_cost(cdat, attack) <= budget + 1e-12:
            yield attack


def successful_attacks(cdat: CostDamageAT | CostDamageProbAT) -> Iterator[Attack]:
    """Iterate over attacks that reach the root node (``S(x, R_T) = 1``)."""
    for attack in all_attacks(cdat):
        if cdat.tree.is_successful(attack):
            yield attack


def dominated_by(
    cdat: CostDamageAT, candidate: Iterable[str], other: Iterable[str]
) -> bool:
    """Return ``True`` when ``other`` dominates ``candidate``.

    ``other`` dominates ``candidate`` when it costs at most as much and does
    at least as much damage, and the two are not value-equivalent.
    """
    candidate_cost, candidate_damage, _ = evaluate_attack(cdat, candidate)
    other_cost, other_damage, _ = evaluate_attack(cdat, other)
    if other_cost > candidate_cost or other_damage < candidate_damage:
        return False
    return (other_cost, other_damage) != (candidate_cost, candidate_damage)


def is_nondecreasing_damage(cdat: CostDamageAT, sample_limit: int = 4096) -> bool:
    """Check that ``d̂`` is nondecreasing w.r.t. attack inclusion.

    Theorem 2 of the paper states that cd-AT damage functions are exactly
    the nondecreasing functions; this check verifies the easy direction on a
    concrete cd-AT by comparing every attack with its single-BAS extensions.
    For trees with more than ``log2(sample_limit)`` BASs the check walks a
    deterministic subsample of attacks instead of all of them.
    """
    bas = sorted(cdat.tree.basic_attack_steps)
    attacks: Iterable[Attack]
    if 2 ** len(bas) <= sample_limit:
        attacks = all_attacks(cdat)
    else:
        # Deterministic subsample: prefixes and suffixes of the sorted BAS list
        # plus alternating patterns; enough to catch implementation errors.
        attacks = (
            [frozenset(bas[:k]) for k in range(len(bas) + 1)]
            + [frozenset(bas[k:]) for k in range(len(bas) + 1)]
            + [frozenset(bas[::2]), frozenset(bas[1::2])]
        )
    for attack in attacks:
        base_damage = attack_damage(cdat, attack)
        for extra in bas:
            if extra in attack:
                continue
            extended = attack | {extra}
            if attack_damage(cdat, extended) + 1e-9 < base_damage:
                return False
    return True
