"""Knapsack bridges: the hardness and expressivity constructions of Section V.

Two constructions from the paper's negative results are implemented here so
that they can be tested and reused:

* **Theorem 1** (NP-completeness).  Every binary-knapsack decision problem
  "is there ``x`` with value ``f(x) ≥ L`` and weight ``g(x) ≤ U``" reduces
  to a cost-damage decision problem on a *flat* treelike AT: one BAS per
  item with cost = weight and damage = value, an AND root with damage 0.
  :func:`knapsack_to_cdat` builds that AT;
  :func:`cost_damage_decision` solves the cost-damage decision problem
  (via any of the library's solvers), completing the reduction.

* **Theorem 2** (expressivity).  For *any* nondecreasing function
  ``f : 2^X → R≥0`` there is a cd-AT whose damage function equals ``f``.
  :func:`nondecreasing_function_to_cdat` implements the explicit
  construction from the paper's appendix (AND gates ``A_i`` for each
  subset, OR gates ``O_j`` over suffixes, damages set to consecutive
  differences of ``f``).  The construction is exponential in ``|X|`` — it
  is an expressivity witness, not an efficient encoding — and is therefore
  restricted to small ``X``.
"""

from __future__ import annotations

import itertools
from dataclasses import dataclass
from typing import Callable, Dict, FrozenSet, List, Optional, Sequence, Tuple

from ..attacktree.attributes import CostDamageAT
from ..attacktree.builder import AttackTreeBuilder
from ..pareto.poset import EPSILON
from .bottom_up import max_damage_given_cost_treelike, pareto_front_treelike

__all__ = [
    "KnapsackInstance",
    "knapsack_to_cdat",
    "cost_damage_decision",
    "solve_knapsack_via_cdat",
    "nondecreasing_function_to_cdat",
]


@dataclass(frozen=True)
class KnapsackInstance:
    """A 0/1 knapsack instance: item values, item weights, capacity.

    The associated decision problem asks for a subset with total value at
    least ``target`` and total weight at most ``capacity``.
    """

    values: Tuple[float, ...]
    weights: Tuple[float, ...]
    capacity: float
    target: float = 0.0

    def __post_init__(self) -> None:
        if len(self.values) != len(self.weights):
            raise ValueError("values and weights must have the same length")
        if any(v < 0 for v in self.values) or any(w < 0 for w in self.weights):
            raise ValueError("knapsack values and weights must be non-negative")

    @property
    def size(self) -> int:
        """Number of items."""
        return len(self.values)


def knapsack_to_cdat(instance: KnapsackInstance) -> CostDamageAT:
    """The Theorem 1 reduction: knapsack instance → flat treelike cd-AT.

    Item ``i`` becomes BAS ``item_i`` with cost ``weights[i]`` and damage
    ``values[i]``; the root is an AND gate over all items with damage 0
    (its only purpose is to give the AT a root — it does not influence
    ``ĉ`` or ``d̂``).
    """
    builder = AttackTreeBuilder()
    names = []
    for index in range(instance.size):
        name = f"item_{index}"
        builder.bas(name, cost=instance.weights[index], damage=instance.values[index])
        names.append(name)
    if not names:
        raise ValueError("a knapsack instance must have at least one item")
    builder.and_gate("root", names, damage=0.0)
    return builder.build_cd(root="root")


def cost_damage_decision(
    cdat: CostDamageAT, cost_bound: float, damage_bound: float
) -> Tuple[bool, Optional[FrozenSet[str]]]:
    """Solve the cost-damage decision problem (CDDP).

    "Is there an attack ``x`` with ``ĉ(x) ≤ U`` and ``d̂(x) ≥ L``?"  The
    answer exists iff the most damaging affordable attack reaches ``L``.
    The budget is ε-filtered exactly once, inside the DgC solver — querying
    a budget-restricted front a second time would widen the effective
    tolerance to 2ε.
    """
    if cdat.tree.is_treelike:
        damage, witness = max_damage_given_cost_treelike(cdat, cost_bound)
    else:
        from .bilp import max_damage_given_cost_bilp

        damage, witness = max_damage_given_cost_bilp(cdat, cost_bound)
    feasible = damage + EPSILON >= damage_bound
    return feasible, (witness if feasible else None)


def solve_knapsack_via_cdat(instance: KnapsackInstance) -> Tuple[float, FrozenSet[int]]:
    """Solve the optimisation version of a knapsack instance through the AT.

    Returns ``(best_value, chosen_item_indices)``.  This demonstrates that
    DgC generalises binary knapsack: the reduction of Theorem 1 followed by
    a DgC query yields the optimal packing.
    """
    cdat = knapsack_to_cdat(instance)
    front = pareto_front_treelike(cdat, budget=instance.capacity)
    point = front.best_attack_given_cost(instance.capacity)
    if point is None or point.attack is None:
        return 0.0, frozenset()
    chosen = frozenset(int(name.split("_", 1)[1]) for name in point.attack)
    return point.damage, chosen


def nondecreasing_function_to_cdat(
    ground_set: Sequence[str],
    function: Callable[[FrozenSet[str]], float],
) -> CostDamageAT:
    """The Theorem 2 construction: any nondecreasing set function as a d̂.

    Parameters
    ----------
    ground_set:
        The set ``X`` of BAS names (at most 12 elements — the construction
        creates ``O(2^|X|)`` gates).
    function:
        A nondecreasing, non-negative set function ``f``; nondecreasing
        means ``f(S) ≤ f(T)`` whenever ``S ⊆ T``.  Violations raise
        ``ValueError``.

    Returns
    -------
    CostDamageAT
        A cd-AT with BAS set ``X``, all costs 0, whose damage function
        satisfies ``d̂(x) = f(x)`` for every attack ``x``.
    """
    elements = list(ground_set)
    if len(set(elements)) != len(elements):
        raise ValueError("ground set contains duplicates")
    if len(elements) > 12:
        raise ValueError(
            "the Theorem 2 construction is exponential; restrict X to ≤ 12 elements"
        )

    subsets: List[FrozenSet[str]] = [
        frozenset(combo)
        for size in range(len(elements) + 1)
        for combo in itertools.combinations(elements, size)
    ]
    values: Dict[FrozenSet[str], float] = {}
    for subset in subsets:
        value = float(function(subset))
        if value < 0:
            raise ValueError(f"f({sorted(subset)!r}) = {value} is negative")
        values[subset] = value
    for small in subsets:
        for large in subsets:
            if small <= large and values[small] > values[large] + 1e-9:
                raise ValueError(
                    "function is not nondecreasing: "
                    f"f({sorted(small)!r}) > f({sorted(large)!r})"
                )

    # Every cd-AT satisfies d̂(∅) = 0 (the empty attack reaches no node), so
    # the construction — like the theorem — requires f(∅) = 0.
    if values[frozenset()] > 1e-12:
        raise ValueError(
            "the damage function of a cd-AT always maps the empty attack to 0; "
            "shift the function so that f(∅) = 0"
        )

    # Order x^1, …, x^{2^n}: by function value, ties broken so that subsets
    # precede supersets (sorting by (value, |x|, lexicographic) achieves both
    # requirements of the proof: values nondecreasing along the order, and
    # x^i ⪯ x^j implies i ≤ j).  The empty set is necessarily x^1.
    ordered = sorted(subsets, key=lambda s: (values[s], len(s), tuple(sorted(s))))

    builder = AttackTreeBuilder()
    for element in elements:
        builder.bas(element, cost=0.0, damage=0.0)

    and_names: List[str] = []
    for index, subset in enumerate(ordered, start=1):
        name = f"A{index}"
        if subset:
            builder.and_gate(name, sorted(subset), damage=0.0)
        else:
            # The paper's A_1 = AND(∅) is an always-true constant.  Because
            # f(∅) = 0, A_1 only matters through O_1, whose damage is
            # f(x^1) = 0 anyway; encoding A_1 as an OR over all elements
            # (reached by every non-empty attack) therefore preserves d̂.
            builder.or_gate(name, sorted(elements), damage=0.0)
        and_names.append(name)

    or_names: List[str] = []
    for j in range(1, len(ordered) + 1):
        name = f"O{j}"
        children = and_names[j - 1:]
        builder.or_gate(name, children, damage=0.0)
        or_names.append(name)

    builder.and_gate("root", or_names, damage=0.0)

    # Damages: d(O_1) = f(x^1), d(O_{j+1}) = f(x^{j+1}) − f(x^j) ≥ 0.
    builder.set_damage(or_names[0], values[ordered[0]])
    for j in range(1, len(ordered)):
        difference = max(0.0, values[ordered[j]] - values[ordered[j - 1]])
        builder.set_damage(or_names[j], difference)

    return builder.build_cd(root="root")
