"""Bottom-up cost-damage analysis for treelike ATs (probabilistic setting).

This module implements Section IX of the paper.  The recursion mirrors the
deterministic one (:mod:`repro.core.bottom_up`) but works in the
*probabilistic attribute-triple domain* ``PTrip = R≥0 × R≥0 × [0, 1]``:
each partial attack on ``T_v`` is summarised by
``(ĉ(x), d̂_E(x), PS(x, v))`` — its cost, its expected damage within the
sub-tree, and the probability that the sub-tree's root is reached.

When folding children into a gate (Equations (11)–(13)):

* an AND gate multiplies the children's reach probabilities
  (``p₁·p₂``, Equation (9));
* an OR gate combines them with ``p₁ ⋆ p₂ = p₁ + p₂ − p₁p₂`` (Equation (8));
* the gate's own damage contributes ``PS(x, v)·d(v)`` to the expected damage
  (Equation (10)).

Both rules rely on the independence of sibling sub-trees, which holds
exactly because the AT is treelike.  Theorems 8 and 9 read EDgC and CEDPF
off the root front, exactly as in the deterministic case.

A notable practical difference (Example 10): in the probabilistic setting it
can be Pareto-optimal to attempt *more* BASs than strictly necessary, because
redundant attempts raise the reach probability; root fronts are therefore
typically larger than their deterministic counterparts.
"""

from __future__ import annotations

import math
from dataclasses import dataclass
from typing import Dict, FrozenSet, Iterable, List, Optional, Tuple

from ..attacktree.attributes import CostDamageProbAT
from ..attacktree.node import NodeType
from ..pareto.front import ParetoFront, ParetoPoint
from ..pareto.poset import EPSILON, pareto_minimal_pairs, pareto_minimal_triples

__all__ = [
    "ProbabilisticAttributedAttack",
    "node_pareto_front_probabilistic",
    "pareto_front_treelike_probabilistic",
    "max_expected_damage_given_cost_treelike",
    "min_cost_given_expected_damage_treelike",
]


def probabilistic_or(p1: float, p2: float) -> float:
    """The ``⋆`` operator: probability that at least one of two independent
    events with probabilities ``p1`` and ``p2`` occurs."""
    return p1 + p2 - p1 * p2


@dataclass(frozen=True)
class ProbabilisticAttributedAttack:
    """A partial attack with its PTrip attributes and witness.

    Attributes
    ----------
    cost:
        ``ĉ_v(x)`` — cost of the attempted BASs.
    expected_damage:
        ``d̂_{E,v}(x)`` — expected damage within the sub-tree.
    reach_probability:
        ``PS(x, v)`` — probability that the sub-tree's root is reached.
    attack:
        Witness: the attempted BASs.
    """

    cost: float
    expected_damage: float
    reach_probability: float
    attack: FrozenSet[str]

    @property
    def triple(self) -> Tuple[float, float, float]:
        """The PTrip value ``(c, d, p)``."""
        return (self.cost, self.expected_damage, self.reach_probability)


def _prune(
    candidates: Iterable[ProbabilisticAttributedAttack],
    budget: float,
) -> List[ProbabilisticAttributedAttack]:
    """The paper's ``min_U`` on PTrip: budget filter plus Pareto filter."""
    affordable = [c for c in candidates if c.cost <= budget + EPSILON]
    return pareto_minimal_triples(affordable, key=lambda a: a.triple)


def _bas_front(
    cdpat: CostDamageProbAT, name: str, budget: float
) -> List[ProbabilisticAttributedAttack]:
    """``C^P_U`` at a BAS (Equation (11)).

    Attempting the BAS reaches it with probability ``p(v)`` and therefore
    contributes ``p(v)·d(v)`` expected damage.
    """
    idle = ProbabilisticAttributedAttack(
        cost=0.0, expected_damage=0.0, reach_probability=0.0, attack=frozenset()
    )
    cost = cdpat.cost[name]
    if cost > budget + EPSILON:
        return [idle]
    probability = cdpat.probability[name]
    active = ProbabilisticAttributedAttack(
        cost=cost,
        expected_damage=probability * cdpat.damage[name],
        reach_probability=probability,
        attack=frozenset({name}),
    )
    return [idle, active]


def _combine_gate(
    accumulated: List[ProbabilisticAttributedAttack],
    child_front: List[ProbabilisticAttributedAttack],
    gate_type: NodeType,
    budget: float,
) -> List[ProbabilisticAttributedAttack]:
    """Fold one more child into the running combination for a gate.

    As in the deterministic solver, the gate's own damage is applied after
    the last child has been folded, keeping the fold associative (the ⋆ and
    product operators are associative on [0, 1]).
    """
    combined: List[ProbabilisticAttributedAttack] = []
    for left in accumulated:
        for right in child_front:
            if gate_type is NodeType.AND:
                reach = left.reach_probability * right.reach_probability
            else:
                reach = probabilistic_or(left.reach_probability, right.reach_probability)
            combined.append(
                ProbabilisticAttributedAttack(
                    cost=left.cost + right.cost,
                    expected_damage=left.expected_damage + right.expected_damage,
                    reach_probability=reach,
                    attack=left.attack | right.attack,
                )
            )
    return _prune(combined, budget)


def node_pareto_front_probabilistic(
    cdpat: CostDamageProbAT,
    node: Optional[str] = None,
    budget: float = math.inf,
) -> List[ProbabilisticAttributedAttack]:
    """Compute the incomplete probabilistic Pareto front ``C^P_U(v)``.

    Parameters and behaviour mirror
    :func:`repro.core.bottom_up.node_pareto_front`; the computation follows
    Equations (11)–(13) and Theorem 10 of the paper.
    """
    tree = cdpat.tree
    if not tree.is_treelike:
        raise ValueError(
            "the probabilistic bottom-up method requires a treelike AT; "
            "probabilistic DAG-like analysis is an open problem in the paper "
            "(see repro.extensions.prob_dag for approximate support)"
        )
    if budget < 0:
        raise ValueError("the cost budget must be non-negative")
    target = node if node is not None else tree.root
    if target not in tree.nodes:
        raise KeyError(f"no node named {target!r} in this attack tree")

    fronts: Dict[str, List[ProbabilisticAttributedAttack]] = {}
    for name in tree.node_names:  # children before parents
        current = tree.node(name)
        if current.is_bas:
            fronts[name] = _bas_front(cdpat, name, budget)
            continue
        accumulated = fronts[current.children[0]]
        for child in current.children[1:]:
            accumulated = _combine_gate(accumulated, fronts[child], current.type, budget)
        gate_damage = cdpat.damage[name]
        with_gate_damage = [
            ProbabilisticAttributedAttack(
                cost=item.cost,
                expected_damage=item.expected_damage
                + item.reach_probability * gate_damage,
                reach_probability=item.reach_probability,
                attack=item.attack,
            )
            for item in accumulated
        ]
        fronts[name] = _prune(with_gate_damage, budget)

    return fronts[target]


def pareto_front_treelike_probabilistic(
    cdpat: CostDamageProbAT, budget: float = math.inf
) -> ParetoFront:
    """Solve CEDPF for a treelike cdp-AT bottom-up (Theorem 9)."""
    root_front = node_pareto_front_probabilistic(cdpat, cdpat.tree.root, budget=budget)
    points = [
        ParetoPoint(
            cost=item.cost,
            damage=item.expected_damage,
            attack=item.attack,
            reaches_root=item.reach_probability > 0.0,
        )
        for item in root_front
    ]
    return ParetoFront(points)


def max_expected_damage_given_cost_treelike(
    cdpat: CostDamageProbAT, budget: float
) -> Tuple[float, Optional[FrozenSet[str]]]:
    """Solve EDgC for a treelike cdp-AT (Theorem 8)."""
    if budget < 0:
        return 0.0, None
    root_front = node_pareto_front_probabilistic(cdpat, cdpat.tree.root, budget=budget)
    best = max(root_front, key=lambda item: item.expected_damage)
    return best.expected_damage, best.attack


def min_cost_given_expected_damage_treelike(
    cdpat: CostDamageProbAT, threshold: float
) -> Tuple[Optional[float], Optional[FrozenSet[str]]]:
    """Solve CgED for a treelike cdp-AT via the full front (Equation (2))."""
    front = pareto_front_treelike_probabilistic(cdpat)
    point = front.cheapest_attack_given_damage(threshold)
    if point is None:
        return None, None
    return point.cost, point.attack
