"""Bottom-up cost-damage analysis for treelike ATs (probabilistic setting).

This module implements Section IX of the paper.  The recursion mirrors the
deterministic one (:mod:`repro.core.bottom_up`) but works in the
*probabilistic attribute-triple domain* ``PTrip = R≥0 × R≥0 × [0, 1]``:
each partial attack on ``T_v`` is summarised by
``(ĉ(x), d̂_E(x), PS(x, v))`` — its cost, its expected damage within the
sub-tree, and the probability that the sub-tree's root is reached.

When folding children into a gate (Equations (11)–(13)):

* an AND gate multiplies the children's reach probabilities
  (``p₁·p₂``, Equation (9));
* an OR gate combines them with ``p₁ ⋆ p₂ = p₁ + p₂ − p₁p₂`` (Equation (8));
* the gate's own damage contributes ``PS(x, v)·d(v)`` to the expected damage
  (Equation (10)).

Both rules rely on the independence of sibling sub-trees, which holds
exactly because the AT is treelike.  Theorems 8 and 9 read EDgC and CEDPF
off the root front, exactly as in the deterministic case.

A notable practical difference (Example 10): in the probabilistic setting it
can be Pareto-optimal to attempt *more* BASs than strictly necessary, because
redundant attempts raise the reach probability; root fronts are therefore
typically larger than their deterministic counterparts.

Kernel representation
---------------------
As in the deterministic kernel, candidates are rows of parallel lists —
``(cost, expected damage, reach probability, bitset mask)`` — instead of
per-candidate dataclasses, and witness attacks are integer bitsets over the
subtree-local BAS universe.  Because the reach probability is continuous the
front cannot be split into reached/not-reached quadrants; instead pruning is
an exact 3-D sweep: rows are sorted by (cost asc, damage desc, probability
desc) and checked against a monotone (damage, probability) skyline of the
rows kept so far, which makes each insertion ``O(log k)`` amortised instead
of the former ``O(k)`` window scan.  Structurally identical subtrees are
memoised by interned fingerprint; masks are materialised to
``frozenset[str]`` and the paper's ε-tolerant ``min_U`` applied only at the
API boundary.
"""

from __future__ import annotations

import math
from bisect import bisect_left, bisect_right
from dataclasses import dataclass
from typing import Dict, FrozenSet, List, Optional, Tuple

from ..attacktree.attributes import CostDamageProbAT
from ..attacktree.node import NodeType
from ..pareto.front import ParetoFront, ParetoPoint
from ..pareto.poset import EPSILON, pareto_minimal_triples

__all__ = [
    "ProbabilisticAttributedAttack",
    "node_pareto_front_probabilistic",
    "pareto_front_treelike_probabilistic",
    "max_expected_damage_given_cost_treelike",
    "min_cost_given_expected_damage_treelike",
]


def probabilistic_or(p1: float, p2: float) -> float:
    """The ``⋆`` operator: probability that at least one of two independent
    events with probabilities ``p1`` and ``p2`` occurs."""
    return p1 + p2 - p1 * p2


@dataclass(frozen=True)
class ProbabilisticAttributedAttack:
    """A partial attack with its PTrip attributes and witness.

    Attributes
    ----------
    cost:
        ``ĉ_v(x)`` — cost of the attempted BASs.
    expected_damage:
        ``d̂_{E,v}(x)`` — expected damage within the sub-tree.
    reach_probability:
        ``PS(x, v)`` — probability that the sub-tree's root is reached.
    attack:
        Witness: the attempted BASs.
    """

    cost: float
    expected_damage: float
    reach_probability: float
    attack: FrozenSet[str]

    @property
    def triple(self) -> Tuple[float, float, float]:
        """The PTrip value ``(c, d, p)``."""
        return (self.cost, self.expected_damage, self.reach_probability)


# A row-sorted front: parallel (costs, damages, probabilities, masks) lists,
# exactly Pareto-minimal, sorted by (cost asc, damage desc, probability desc).
_Rows = Tuple[List[float], List[float], List[float], List[int]]


def _prune3(buffer: List[Tuple[float, float, float, int]]) -> _Rows:
    """Exact 3-D Pareto minimisation of ``(cost, damage, prob, mask)`` rows.

    Rows are processed in (cost asc, damage desc, prob desc) order, so every
    kept row costs at most as much as the candidate; the candidate is
    dominated iff some kept row also has damage ≥ and probability ≥ its own.
    The kept rows' undominated (damage, probability) pairs form a skyline —
    damages strictly decreasing, probabilities strictly increasing — queried
    and maintained by binary search.  Equal-valued duplicates are dropped
    (the front is a set of attribute values; the first witness is kept).
    """
    buffer.sort(key=lambda row: (row[0], -row[1], -row[2]))
    costs: List[float] = []
    damages: List[float] = []
    probabilities: List[float] = []
    masks: List[int] = []
    sky_keys: List[float] = []  # negated damages, ascending (for bisect)
    sky_probs: List[float] = []  # probabilities, strictly increasing
    for cost, damage, probability, mask in buffer:
        hi = bisect_right(sky_keys, -damage)
        if hi > 0 and sky_probs[hi - 1] >= probability:
            continue  # weakly dominated by a kept row (or a duplicate)
        lo = bisect_left(sky_keys, -damage)
        while lo < len(sky_keys) and sky_probs[lo] <= probability:
            del sky_keys[lo]
            del sky_probs[lo]
        sky_keys.insert(lo, -damage)
        sky_probs.insert(lo, probability)
        costs.append(cost)
        damages.append(damage)
        probabilities.append(probability)
        masks.append(mask)
    return costs, damages, probabilities, masks


class _ProbKernel:
    """Bottom-up PTrip fold with fingerprint memoisation.

    One instance per solver call; see :class:`repro.core.bottom_up._TripleKernel`
    for the memo discipline (fronts are shared read-only, masks live in the
    subtree-local bit universe).
    """

    def __init__(self, cdpat: CostDamageProbAT, limit: float) -> None:
        self.cdpat = cdpat
        self.limit = limit
        self.fingerprints: Dict[object, int] = {}
        self.memo: Dict[int, Tuple[_Rows, int]] = {}

    def _intern(self, key: object) -> int:
        return self.fingerprints.setdefault(key, len(self.fingerprints))

    def compute(self, target: str) -> Tuple[_Rows, Tuple[str, ...]]:
        tree = self.cdpat.tree
        order: List[str] = []
        stack = [target]
        while stack:
            name = stack.pop()
            order.append(name)
            stack.extend(tree.node(name).children)
        done: Dict[str, Tuple[_Rows, Tuple[str, ...], int]] = {}
        for name in reversed(order):
            node = tree.node(name)
            if node.is_bas:
                cost = self.cdpat.cost[name]
                damage = self.cdpat.damage[name]
                probability = self.cdpat.probability[name]
                fingerprint = self._intern(("B", cost, damage, probability))
                cached = self.memo.get(fingerprint)
                if cached is None:
                    if cost > self.limit:
                        front: _Rows = ([0.0], [0.0], [0.0], [0])
                    else:
                        front = _prune3(
                            [
                                (0.0, 0.0, 0.0, 0),
                                (cost, probability * damage, probability, 1),
                            ]
                        )
                    cached = (front, 1)
                    self.memo[fingerprint] = cached
                done[name] = (cached[0], (name,), fingerprint)
                continue
            child_results = [done[child] for child in node.children]
            names: Tuple[str, ...] = ()
            for _, child_names, _ in child_results:
                names += child_names
            gate_damage = self.cdpat.damage[name]
            fingerprint = self._intern(
                (node.type.value, gate_damage, tuple(r[2] for r in child_results))
            )
            cached = self.memo.get(fingerprint)
            if cached is not None:
                done[name] = (cached[0], names, fingerprint)
                continue
            conjunctive = node.type is NodeType.AND
            front = child_results[0][0]
            width = len(child_results[0][1])
            for child_front, child_names, _ in child_results[1:]:
                front = self._fold(front, child_front, conjunctive, width)
                width += len(child_names)
            if gate_damage != 0.0:
                fc, fd, fp, fm = front
                front = _prune3(
                    [
                        (fc[i], fd[i] + fp[i] * gate_damage, fp[i], fm[i])
                        for i in range(len(fc))
                    ]
                )
            self.memo[fingerprint] = (front, len(names))
            done[name] = (front, names, fingerprint)
        front, names, _ = done[target]
        return front, names

    def _fold(
        self, left: _Rows, right: _Rows, conjunctive: bool, shift: int
    ) -> _Rows:
        """Fold one child in (Equations (12)–(13)), budget-pruned early."""
        lc, ld, lp, lm = left
        rc, rd, rp, rm = right
        limit = self.limit
        buffer: List[Tuple[float, float, float, int]] = []
        append = buffer.append
        for i in range(len(lc)):
            ci = lc[i]
            di = ld[i]
            pi = lp[i]
            mi = lm[i]
            for j in range(len(rc)):
                cost = ci + rc[j]
                if cost > limit:
                    break  # right-hand costs ascend: nothing further fits
                pj = rp[j]
                reach = pi * pj if conjunctive else pi + pj - pi * pj
                append((cost, di + rd[j], reach, mi | (rm[j] << shift)))
        return _prune3(buffer)


def _mask_to_attack(mask: int, names: Tuple[str, ...]) -> FrozenSet[str]:
    selected = []
    while mask:
        low = mask & -mask
        selected.append(names[low.bit_length() - 1])
        mask ^= low
    return frozenset(selected)


def node_pareto_front_probabilistic(
    cdpat: CostDamageProbAT,
    node: Optional[str] = None,
    budget: float = math.inf,
) -> List[ProbabilisticAttributedAttack]:
    """Compute the incomplete probabilistic Pareto front ``C^P_U(v)``.

    Parameters and behaviour mirror
    :func:`repro.core.bottom_up.node_pareto_front`; the computation follows
    Equations (11)–(13) and Theorem 10 of the paper.
    """
    tree = cdpat.tree
    if not tree.is_treelike:
        raise ValueError(
            "the probabilistic bottom-up method requires a treelike AT; "
            "probabilistic DAG-like analysis is an open problem in the paper "
            "(see repro.extensions.prob_dag for approximate support)"
        )
    if budget < 0:
        raise ValueError("the cost budget must be non-negative")
    target = node if node is not None else tree.root
    if target not in tree.nodes:
        raise KeyError(f"no node named {target!r} in this attack tree")

    kernel = _ProbKernel(cdpat, budget + EPSILON)
    (costs, damages, probabilities, masks), names = kernel.compute(target)
    items = [
        ProbabilisticAttributedAttack(
            cost=costs[i],
            expected_damage=damages[i],
            reach_probability=probabilities[i],
            attack=_mask_to_attack(masks[i], names),
        )
        for i in range(len(costs))
    ]
    # The paper's ε-tolerant min_U is applied once, at the boundary.
    return pareto_minimal_triples(items, key=lambda item: item.triple)


def pareto_front_treelike_probabilistic(
    cdpat: CostDamageProbAT, budget: float = math.inf
) -> ParetoFront:
    """Solve CEDPF for a treelike cdp-AT bottom-up (Theorem 9)."""
    root_front = node_pareto_front_probabilistic(cdpat, cdpat.tree.root, budget=budget)
    points = [
        ParetoPoint(
            cost=item.cost,
            damage=item.expected_damage,
            attack=item.attack,
            reaches_root=item.reach_probability > 0.0,
        )
        for item in root_front
    ]
    return ParetoFront(points)


def max_expected_damage_given_cost_treelike(
    cdpat: CostDamageProbAT, budget: float
) -> Tuple[float, Optional[FrozenSet[str]]]:
    """Solve EDgC for a treelike cdp-AT (Theorem 8).

    Expected-damage ties are broken towards the least cost, then the fewest
    attempted BASs, mirroring the deterministic DgC solver.
    """
    if budget < 0:
        return 0.0, None
    root_front = node_pareto_front_probabilistic(cdpat, cdpat.tree.root, budget=budget)
    best = max(
        root_front,
        key=lambda item: (item.expected_damage, -item.cost, -len(item.attack)),
    )
    return best.expected_damage, best.attack


def min_cost_given_expected_damage_treelike(
    cdpat: CostDamageProbAT, threshold: float
) -> Tuple[Optional[float], Optional[FrozenSet[str]]]:
    """Solve CgED for a treelike cdp-AT via the full front (Equation (2))."""
    front = pareto_front_treelike_probabilistic(cdpat)
    point = front.cheapest_attack_given_damage(threshold)
    if point is None:
        return None, None
    return point.cost, point.attack
